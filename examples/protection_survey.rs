//! A miniature protection-model survey: records a pointer-chasing
//! workload once and asks every published protection model (Mondrian,
//! iMPX, software fat pointers, Hardbound, the M-Machine, and both CHERI
//! widths) what it would have cost — the paper's Section 7 methodology
//! on one screen.
//!
//! ```sh
//! cargo run --example protection_survey
//! ```

use cheri::limit::models::{all_models, baseline};
use cheri::limit::TracedHeap;

fn main() {
    // A little binary search tree, built and queried through the
    // recording heap.
    let mut h = TracedHeap::new();
    const VAL: u64 = 0;
    const L: u64 = 8;
    const R: u64 = 16;
    let root = h.alloc(24);
    h.store_int(root, VAL, 500);
    let mut rng = 42u64;
    for _ in 0..400 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let key = (rng >> 33) as i64 % 1000;
        // insert(key)
        let mut p = root;
        loop {
            h.compute(3);
            let v = h.load_int(p, VAL);
            let side = if key < v { L } else { R };
            let next = h.load_ptr(p, side);
            if next.is_null() {
                let n = h.alloc(24);
                h.store_int(n, VAL, key);
                h.store_ptr(p, side, n);
                break;
            }
            p = next;
        }
    }
    let trace = h.finish("bst-insert");

    let base = baseline(&trace);
    println!(
        "workload: 400 BST inserts — {} accesses, {} objects\n",
        trace.accesses(),
        trace.objects.len()
    );
    println!(
        "{:<13}{:>9}{:>9}{:>9}{:>11}{:>11}",
        "model", "pages%", "bytes%", "refs%", "instr-opt%", "instr-pess%"
    );
    println!("{:<13}{:>8}%{:>8}%{:>8}%{:>10}%{:>10}%", "baseline", 0, 0, 0, 0, 0);
    for model in all_models() {
        let o = model.simulate(&trace).percent_over(&base);
        println!(
            "{:<13}{:>8.1}%{:>8.1}%{:>8.1}%{:>10.1}%{:>10.1}%",
            model.name(),
            o.pages,
            o.bytes,
            o.refs,
            o.instrs_opt,
            o.instrs_pess
        );
    }
    println!("\n(overheads vs the unprotected baseline; see `fig3_limit_study`");
    println!(" in cheri-bench for the full Olden-suite version of this table)");
}
