//! Quickstart: assemble a small CHERI program, run it under the
//! simulated OS, and watch the hardware enforce bounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cheri::asm::{reg, Asm};
use cheri::os::{abi, boot, ExitReason, KernelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Boot the machine: BERI + CHERI coprocessor + tagged memory, with
    // the host-level kernel providing paging and syscalls.
    let mut kernel = boot(KernelConfig::default());
    let layout = kernel.layout();

    // A program that derives a 64-byte capability from C0 (the
    // address-space capability the OS delegated at exec), writes through
    // it, reads back, and exits with the value.
    let mut a = Asm::new(layout.text_base);
    a.li64(reg::T0, layout.heap_base as i64);
    a.cincbase(1, 0, reg::T0); // C1 = C0 rebased to the heap
    a.li64(reg::T1, 64);
    a.csetlen(1, 1, reg::T1); // ... 64 bytes long
    a.li64(reg::T2, 1234);
    a.csd(reg::T2, reg::ZERO, 0, 1); // *(u64*)C1 = 1234
    a.cld(reg::A0, reg::ZERO, 0, 1); // read it back
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let program = a.finalize()?;

    let outcome = kernel.exec_and_run(&program)?;
    println!("program exited with: {:?}", outcome.exit);
    println!(
        "executed {} instructions in {} simulated cycles (IPC {:.2})",
        outcome.stats.instructions,
        outcome.stats.cycles,
        outcome.stats.ipc()
    );
    assert_eq!(outcome.exit_value(), Some(1234));

    // Now the same program but reading one double past the end: the
    // capability coprocessor traps before memory is touched.
    let mut a = Asm::new(layout.text_base);
    a.li64(reg::T0, layout.heap_base as i64);
    a.cincbase(1, 0, reg::T0);
    a.li64(reg::T1, 64);
    a.csetlen(1, 1, reg::T1);
    a.li64(reg::T3, 64); // first out-of-bounds byte
    a.cld(reg::A0, reg::T3, 0, 1);
    a.li64(reg::V0, abi::SYS_EXIT as i64);
    a.syscall(0);
    let overflowing = a.finalize()?;

    let outcome = kernel.exec_and_run(&overflowing)?;
    match outcome.exit {
        ExitReason::CapFault { cause, pc } => {
            println!("\noverflow caught by hardware at pc {pc:#x}: {cause}");
        }
        other => panic!("expected a capability fault, got {other:?}"),
    }
    Ok(())
}
