//! Memory safety for C (paper Section 5.1): the same buggy program —
//! a loop that writes one element past the end of a heap buffer —
//! compiled three ways:
//!
//! * conventional MIPS: the overflow silently corrupts the neighbouring
//!   allocation;
//! * CCured-style software fat pointers: the inserted check catches it;
//! * CHERI: the capability bounds catch it in hardware, with the
//!   faulting register and cause reported.
//!
//! ```sh
//! cargo run --example memory_safety
//! ```

use cheri::cc::ir::build::*;
use cheri::cc::ir::{CmpOp, FuncDef, Module, Stmt, StructDef, Ty};
use cheri::cc::strategy::{CapPtr, LegacyPtr, PtrStrategy, SoftFatPtr};
use cheri::os::{boot, ExitReason, KernelConfig};

/// `cell { value }` — an 8-byte heap cell.
const CELL: usize = 0;

/// Builds: a = alloc(4 cells); b = alloc(1 cell); b[0] = 7;
/// for i in 0..=4 { a[i] = 1 }   // off-by-one!
/// return b[0];                   // 7 if nothing was smashed
fn buggy_module() -> Module {
    Module {
        structs: vec![StructDef { name: "cell", fields: vec![Ty::I64] }],
        funcs: vec![FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(CELL), Ty::ptr(CELL), Ty::I64],
            body: vec![
                Stmt::Let(0, alloc(CELL, c(4))),
                Stmt::Let(1, alloc(CELL, c(1))),
                Stmt::Store { ptr: l(1), strukt: CELL, field: 0, value: c(7) },
                Stmt::Let(2, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Le, l(2), c(4)), // <= : off by one
                    body: vec![
                        Stmt::Store {
                            ptr: index(l(0), CELL, l(2)),
                            strukt: CELL,
                            field: 0,
                            value: c(1),
                        },
                        Stmt::Let(2, add(l(2), c(1))),
                    ],
                },
                Stmt::Return(Some(load(l(1), CELL, 0))),
            ],
        }],
        entry: 0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = buggy_module();
    let strategies: [&dyn PtrStrategy; 3] = [&LegacyPtr, &SoftFatPtr::checked(), &CapPtr::c256()];
    for strategy in strategies {
        let program = cheri::cc::compile(&module, strategy, Default::default())?;
        let mut kernel = boot(KernelConfig::default());
        let outcome = kernel.exec_and_run(&program)?;
        print!("{:<14}", strategy.name());
        match outcome.exit {
            ExitReason::Exit(7) => {
                unreachable!("the bump allocator packs b right after a")
            }
            ExitReason::Exit(v) => {
                println!("ran to completion — neighbouring allocation smashed (b[0] = {v})");
                assert_eq!(v, 1, "the overflow should have overwritten b[0]");
            }
            ExitReason::SoftBoundsFault { pc } => {
                println!("software bounds check failed at pc {pc:#x}");
            }
            ExitReason::CapFault { cause, pc } => {
                println!("hardware capability fault at pc {pc:#x}: {cause}");
            }
            other => println!("unexpected outcome: {other:?}"),
        }
    }
    println!("\nOnly the unprotected binary lets the corruption through —");
    println!("and CHERI needed no per-access check instructions to stop it.");
    Ok(())
}
