//! Tag-oblivious memcpy (paper Section 4.2): "capability load and store
//! instructions [can] copy 256-bit blocks of memory while remaining
//! oblivious to whether they are copying data or a capability. As a
//! result, a simple implementation of memcpy() can copy data structures
//! containing both."
//!
//! This example builds a mixed structure (a capability next to plain
//! data) in simulated memory, memcpy()s it with an assembled CLC/CSC
//! loop, and shows (a) the capability survives the copy with its tag,
//! and (b) forging the same bits with ordinary data stores produces an
//! untagged — unusable — value.
//!
//! ```sh
//! cargo run --example tagged_memcpy
//! ```

use cheri::asm::{reg, Asm};
use cheri::core::{Capability, Perms};
use cheri::sim::{Machine, MachineConfig, StepResult};

const SRC: u64 = 0x4000;
const DST: u64 = 0x6000;
const GRANULES: i64 = 4; // copy 128 bytes

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });

    // A mixed structure at SRC: granule 0 = a capability, granule 1 =
    // plain data, granule 2 = capability, granule 3 = data.
    let heap_obj = Capability::new(0x9000, 96, Perms::LOAD | Perms::STORE)?;
    m.mem.write_cap(SRC, &heap_obj)?;
    m.mem.write_u64(SRC + 32, 0x1122_3344)?;
    m.mem.write_cap(SRC + 64, &heap_obj.and_perm(Perms::LOAD)?)?;
    m.mem.write_u64(SRC + 96, 0x5566_7788)?;

    // memcpy(DST, SRC, 128) as a CLC/CSC loop — never inspects tags.
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li64(reg::T0, 0); // byte cursor
    a.li64(reg::T1, GRANULES * 32);
    a.li64(reg::T2, SRC as i64);
    a.li64(reg::T3, DST as i64);
    a.bind(top).unwrap();
    a.daddu(reg::T8, reg::T2, reg::T0);
    a.clc(4, reg::T8, 0, 0); // C4 = 257 bits at SRC+cursor (via C0)
    a.daddu(reg::T8, reg::T3, reg::T0);
    a.csc(4, reg::T8, 0, 0); // store them at DST+cursor
    a.daddiu(reg::T0, reg::T0, 32);
    a.sltu(reg::AT, reg::T0, reg::T1);
    a.bne(reg::AT, reg::ZERO, top);
    a.syscall(0);
    let prog = a.finalize()?;
    m.load_code(prog.base, &prog.words)?;
    m.cpu.jump_to(prog.entry);
    loop {
        match m.step()? {
            StepResult::Continue => {}
            StepResult::Syscall => break,
            other => panic!("memcpy failed: {other:?}"),
        }
    }

    // The copy preserved both data and capabilities, tags included.
    let copied = m.mem.read_cap(DST)?;
    println!("granule 0: {copied}  tag={}", u8::from(copied.tag()));
    assert!(copied.tag());
    assert_eq!(copied.base(), 0x9000);
    assert_eq!(m.mem.read_u64(DST + 32)?, 0x1122_3344);
    let ro = m.mem.read_cap(DST + 64)?;
    assert!(ro.tag());
    assert!(!ro.perms().contains(Perms::STORE));
    println!("granule 2: {ro}  tag={}", u8::from(ro.tag()));
    assert_eq!(m.mem.read_u64(DST + 96)?, 0x5566_7788);
    println!("memcpy preserved 2 capabilities and 2 data granules\n");

    // Forgery attempt: write the same 32 bytes with ordinary stores.
    let image = heap_obj.to_bytes();
    for (i, chunk) in image.chunks(8).enumerate() {
        m.mem.write_u64(DST + 128 + 8 * i as u64, u64::from_be_bytes(chunk.try_into()?))?;
    }
    let forged = m.mem.read_cap(DST + 128)?;
    println!(
        "forged bits: base={:#x} len={:#x} tag={}",
        forged.base(),
        forged.length(),
        u8::from(forged.tag())
    );
    assert!(!forged.tag(), "data stores must never create a tag");
    assert!(forged.check_data_access(0x9000, 8, Perms::LOAD).is_err());
    println!("identical bits, but no tag: the forgery is unusable.");
    Ok(())
}
