//! Sandboxing legacy code (paper Sections 4.1, 5.3): "Conventional
//! binaries are sandboxed in micro-address spaces within existing
//! processes by constraining C0 and PCC."
//!
//! A "parent" sets up a 4 KB sandbox and runs an unmodified legacy MIPS
//! routine inside it. The legacy code uses ordinary `ld`/`sd` with
//! ordinary pointers — it has no idea capabilities exist — yet every
//! access is implicitly offset and bounded by C0, so its address 0 is
//! the sandbox base and anything outside traps.
//!
//! ```sh
//! cargo run --example sandbox
//! ```

use cheri::asm::{reg, Asm};
use cheri::core::{CapExcCode, Capability, Perms};
use cheri::sim::{Machine, MachineConfig, StepResult, TrapKind};

const SANDBOX_BASE: u64 = 0x8000;
const SANDBOX_LEN: u64 = 0x1000;
const SECRET_ADDR: u64 = 0x4000;

/// Legacy routine: sums the 8 doubles at *its* address 0 — unmodified
/// MIPS code, no capability instructions at all.
fn legacy_sum() -> cheri::asm::Program {
    let mut a = Asm::new(0x1000);
    let top = a.new_label();
    a.li64(reg::T0, 0); // cursor (sandbox-relative!)
    a.li64(reg::V0, 0);
    a.li64(reg::T2, 8);
    a.bind(top).unwrap();
    a.ld(reg::T1, reg::T0, 0);
    a.daddu(reg::V0, reg::V0, reg::T1);
    a.daddiu(reg::T0, reg::T0, 8);
    a.daddiu(reg::T2, reg::T2, -1);
    a.bgtz(reg::T2, top);
    a.syscall(0);
    a.finalize().unwrap()
}

/// The same routine, but nosy: also reads absolute address 0x4000,
/// where the parent keeps a secret.
fn legacy_nosy() -> cheri::asm::Program {
    let mut a = Asm::new(0x1000);
    a.li64(reg::T0, SECRET_ADDR as i64);
    a.ld(reg::V0, reg::T0, 0);
    a.syscall(0);
    a.finalize().unwrap()
}

fn run_sandboxed(
    prog: &cheri::asm::Program,
) -> Result<Result<u64, TrapKind>, Box<dyn std::error::Error>> {
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    // Parent data: a secret outside the sandbox, inputs inside it.
    m.mem.write_u64(SECRET_ADDR, 0xdead_beef)?;
    for i in 0..8 {
        m.mem.write_u64(SANDBOX_BASE + 8 * i, i + 1)?;
    }
    // Code lives outside the sandbox; PCC grants execute over it only.
    m.load_code(prog.base, &prog.words)?;
    let code = Capability::new(prog.base, prog.size_bytes(), Perms::EXECUTE | Perms::LOAD)?;
    m.cpu.caps.set_pcc(code);
    // The sandbox: C0 constrained to [SANDBOX_BASE, +LEN), data only.
    let sandbox = Capability::new(SANDBOX_BASE, SANDBOX_LEN, Perms::LOAD | Perms::STORE)?;
    m.cpu.caps.set_c0(sandbox);
    m.cpu.jump_to(prog.entry);
    loop {
        match m.step()? {
            StepResult::Continue => {}
            StepResult::Syscall => return Ok(Ok(m.cpu.gpr[reg::V0 as usize])),
            StepResult::Trap(e) => return Ok(Err(e.kind)),
            other => panic!("{other:?}"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("sandbox: C0 = [{SANDBOX_BASE:#x}, {:#x}), data-only\n", SANDBOX_BASE + SANDBOX_LEN);

    match run_sandboxed(&legacy_sum())? {
        Ok(v) => {
            println!("well-behaved legacy code: sum of its 8 inputs = {v}");
            assert_eq!(v, 36);
        }
        Err(e) => panic!("benign code must run: {e}"),
    }

    match run_sandboxed(&legacy_nosy())? {
        Ok(v) => panic!("sandbox escape! read {v:#x}"),
        Err(TrapKind::CapViolation(cause)) => {
            println!("nosy legacy code: trapped — {cause}");
            assert_eq!(cause.code(), CapExcCode::LengthViolation);
            assert_eq!(cause.reg(), 0, "the violation is attributed to C0");
        }
        Err(other) => panic!("expected a capability violation, got {other}"),
    }

    println!("\nThe unmodified binary ran fine on data it owns, and its");
    println!("attempt to reach the parent's secret never touched memory.");
    Ok(())
}
