//! # cheri — a Rust reproduction of the CHERI capability model
//!
//! This is the umbrella crate of a from-scratch reproduction of
//! *"The CHERI capability model: Revisiting RISC in an age of risk"*
//! (Woodruff et al., ISCA 2014). It re-exports the workspace's member
//! crates under one roof so examples, integration tests, and downstream
//! users can depend on a single crate:
//!
//! * [`core`] (`cheri-core`) — the capability model: 256-bit and
//!   compressed 128-bit formats, permissions, monotonic manipulation,
//!   capability exceptions, the register file.
//! * [`mem`] (`cheri-mem`) — tagged physical memory: the 1-bit-per-256-bit
//!   tag table and the tag controller with its 8 KB tag cache.
//! * [`sim`] (`beri-sim`) — the BERI CPU: a 64-bit MIPS IV interpreter
//!   with CP0, software-managed TLB, the CP2 capability coprocessor, and
//!   a cycle-approximate cache/branch model.
//! * [`asm`] (`cheri-asm`) — a MIPS64+CHERI macro-assembler.
//! * [`cc`] (`cheri-cc`) — a tiny compiler parameterised by pointer
//!   strategy: legacy MIPS, CCured-style software fat pointers, or CHERI
//!   capabilities.
//! * [`os`] (`cheri-os`) — the minimal OS substrate: exec with
//!   capability delegation, demand paging, syscalls, contexts.
//! * [`olden`] (`cheri-olden`) — the Olden benchmarks, in both compiled
//!   (DSL) and native-traced form.
//! * [`limit`] (`cheri-limit`) — the Figure 3 limit study: traces plus
//!   eight protection-model overhead simulators and Table 2.
//! * [`area`] (`cheri-area`) — the Figure 6 / §9 area and frequency
//!   model.
//!
//! ## Quick start
//!
//! Catch a heap overflow in hardware:
//!
//! ```
//! use cheri::core::{Capability, Perms};
//!
//! let almighty = Capability::max();
//! let obj = almighty.inc_base(0x1000)?.set_len(16)?;
//! assert!(obj.check_data_access(0x1000 + 16, 1, Perms::LOAD).is_err());
//! # Ok::<(), cheri::core::CapCause>(())
//! ```
//!
//! Run the `examples/` binaries for end-to-end scenarios (assembled
//! programs under the simulated OS), and the `cheri-bench` harnesses to
//! regenerate every table and figure of the paper.

pub use beri_sim as sim;
pub use cheri_area as area;
pub use cheri_asm as asm;
pub use cheri_cc as cc;
pub use cheri_core as core;
pub use cheri_limit as limit;
pub use cheri_mem as mem;
pub use cheri_olden as olden;
pub use cheri_os as os;
pub use cheri_prof as prof;
pub use cheri_serve as serve;
pub use cheri_snap as snap;
pub use cheri_sweep as sweep;
pub use cheri_telem as telem;
pub use cheri_trace as trace;
pub use cheri_work as work;
