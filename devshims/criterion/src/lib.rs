//! A small, dependency-free, offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the `[[bench]]` targets are driven by this shim instead of the
//! real criterion. It covers exactly the subset the workspace uses:
//!
//! * `Criterion::default().warm_up_time(..).measurement_time(..).sample_size(..)`
//! * `c.benchmark_group(name)` / `c.bench_function(name, ..)`
//! * `group.throughput(Throughput::Elements(n))`
//! * `group.bench_function(name, |b| b.iter(|| ..))` / `group.finish()`
//! * `criterion_group! { name = ..; config = ..; targets = .. }` (and the
//!   positional form), `criterion_main!`
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples; each sample runs the closure in a
//! batch sized so one batch takes roughly `measurement_time /
//! sample_size`. The median per-iteration time is reported, with the
//! min/max sample range and (when a throughput was declared) the
//! derived elements/second. Results go to stdout, one line per
//! benchmark — there is no HTML report, statistics engine, or
//! comparison with saved baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared units of work per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1200),
            samples: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.samples = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let cfg = self.clone();
        run_one(&cfg, name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares work-per-iteration for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_one(self.criterion, &id, self.throughput, f);
        self
    }

    /// Ends the group (accepted for API compatibility; prints nothing).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`, discarding each return value
    /// through a black box.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: how many iterations fit in one sample slot?
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Warm-up, re-estimating the per-iteration cost as we go.
    let warm_start = Instant::now();
    while warm_start.elapsed() < cfg.warm_up {
        let budget = cfg.warm_up.saturating_sub(warm_start.elapsed());
        b.iters = iters_for(budget.min(cfg.warm_up / 4), per_iter);
        f(&mut b);
        per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
        per_iter = per_iter.max(Duration::from_nanos(1));
    }

    // Measurement: fixed-size samples.
    let slot = cfg.measurement / u32::try_from(cfg.samples).unwrap_or(u32::MAX);
    let iters = iters_for(slot, per_iter);
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);

    let mut line =
        format!("{id:<40} time: [{} {} {}]", fmt_time(lo), fmt_time(median), fmt_time(hi));
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {} elem/s", fmt_count(n as f64 / median)));
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            line.push_str(&format!("  thrpt: {} B/s", fmt_count(n as f64 / median)));
        }
        _ => {}
    }
    println!("{line}");
}

fn iters_for(slot: Duration, per_iter: Duration) -> u64 {
    (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 32) as u64
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a benchmark group: both the `name/config/targets` form and
/// the positional `criterion_group!(benches, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran) + 1
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
