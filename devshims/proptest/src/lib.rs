//! A small, dependency-free, offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the property tests are driven by this shim instead of the real
//! proptest. It implements exactly the subset the workspace uses:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy, ..) { .. } }`
//! * `any::<T>()` for the integer primitives and `bool`
//! * integer `Range` / `RangeInclusive` strategies (`0u64..1 << 40`)
//! * tuple strategies up to arity 6
//! * `Just`, `Strategy::prop_map`, `prop_oneof!`
//! * `proptest::collection::vec`, `proptest::sample::subsequence`
//! * `prop_assert!`, `prop_assert_eq!`, `ProptestConfig::with_cases`
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a fixed per-test seed (derived from the
//!   test's name), so runs are fully deterministic and reproducible;
//! * there is no shrinking — the failing case's inputs are reported via
//!   the panic message of the assertion that fired;
//! * the default case count is 64 (proptest's is 256) to keep the
//!   simulator-heavy property tests fast in CI.
//!
//! Integer generation is edge-biased: roughly one case in four draws
//! from {min, max, 0, 1, small} instead of uniformly, which is where
//! most arithmetic/bounds bugs live.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything the workspace's `use proptest::prelude::*;` needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG: SplitMix64 — tiny, seedable, good enough for test-case generation.
// ---------------------------------------------------------------------------

/// Deterministic test-case generator state.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name, so each test gets a stable,
    /// distinct stream.
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait StrategyObj<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn StrategyObj<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_obj(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() and integer ranges
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value (edge-biased).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1 in 4: an edge value; otherwise uniform bits.
                if rng.below(4) == 0 {
                    match rng.below(5) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        _ => rng.below(256) as $t,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64() as u128
                } else {
                    u128::from(rng.below(span as u64))
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = if span > u128::from(u64::MAX) {
                    rng.next_u64() as u128
                } else {
                    u128::from(rng.below(span as u64))
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// collection / sample
// ---------------------------------------------------------------------------

/// Anything that can describe a collection size: an exact `usize`, a
/// half-open `Range`, or an inclusive `RangeInclusive` (mirroring
/// proptest's `SizeRange` conversions).
pub trait IntoSizeRange {
    /// The half-open `[start, end)` size range.
    fn into_size_range(self) -> std::ops::Range<usize>;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> std::ops::Range<usize> {
        self..self + 1
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn into_size_range(self) -> std::ops::Range<usize> {
        self
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn into_size_range(self) -> std::ops::Range<usize> {
        *self.start()..*self.end() + 1
    }
}

/// `proptest::collection` — collection strategies.
pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `len in range` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, range: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { elem, range: range.into_size_range() }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        range: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.range.end - self.range.start).max(1);
            let len = self.range.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::sample` — sampling strategies.
pub mod sample {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::ops::Range;

    /// An order-preserving random subsequence of `values` whose length
    /// lies in `count` (clamped to the available length).
    pub fn subsequence<T: Clone>(values: Vec<T>, count: impl IntoSizeRange) -> Subsequence<T> {
        Subsequence { values, count: count.into_size_range() }
    }

    /// The strategy returned by [`subsequence`].
    pub struct Subsequence<T> {
        values: Vec<T>,
        count: Range<usize>,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.values.len();
            let lo = self.count.start.min(n);
            let hi = self.count.end.min(n + 1).max(lo + 1);
            let want = lo + rng.below((hi - lo) as u64) as usize;
            // Partial Fisher–Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..want.min(n) {
                let j = i + rng.below((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut picked: Vec<usize> = idx[..want.min(n)].to_vec();
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config, errors, macros
// ---------------------------------------------------------------------------

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed `prop_assert!` in a generated case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines deterministic property tests. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let dbg = format!(concat!($(stringify!($arg), " = {:?}  "),+), $(&$arg),+);
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, cfg.cases, e, dbg
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Asserts inside a property test (reports the failing case's inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n  {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::from_name("subseq");
        let s = sample::subsequence((0usize..12).collect::<Vec<_>>(), 3..12);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 3 && v.len() < 12);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated tuples/maps/oneofs compose.
        #[test]
        fn macro_smoke(x in any::<u32>(), v in collection::vec(0u8..10, 1..5)) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(u64::from(x) * 2, u64::from(x) + u64::from(x));
            let y = prop_oneof![Just(1u8), Just(2u8)].generate(&mut TestRng::from_name("inner"));
            prop_assert!(y == 1 || y == 2);
        }
    }
}
