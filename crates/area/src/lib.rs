//! # cheri-area — the FPGA area and frequency model
//!
//! Section 9: "A synthesis of CHERI, excluding peripherals, consumes 32%
//! more logic elements than BERI ... our current implementation reduces
//! clock speed by 8.1%, as BERI achieves a maximum frequency of
//! 110.84 MHz, while the capability coprocessor reaches 102.54 MHz."
//! Figure 6 breaks the CHERI core's layout into eleven modules.
//!
//! There is no synthesis toolchain in this reproduction, so this crate is
//! an *analytic* model: the Figure 6 module shares are encoded as
//! per-module logic-element weights together with each module's
//! CHERI-attributable fraction, and the headline §9 numbers (area and
//! fmax overheads) are *derived* from those weights plus a critical-path
//! model — making explicit which modules the 32% consists of
//! (capability unit, tag cache, and the widened pipeline/cache paths).

// Library paths must report errors, not abort: every fallible path
// returns Result or uses expect with a stated invariant. Tests may
// unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use core::fmt;

/// One module of the Figure 6 layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Component {
    /// Module name as labelled in Figure 6.
    pub name: &'static str,
    /// Share of the CHERI core's logic elements (Figure 6 percentages).
    pub share: f64,
    /// Fraction of this module attributable to the capability extensions
    /// (absent or smaller in plain BERI). The capability unit and tag
    /// cache are wholly CHERI; the pipeline, data caches and L2 carry the
    /// 257-bit datapath widening ("logic in the main pipeline to allow
    /// loading and storing 256-bit capabilities into the data cache").
    pub cheri_fraction: f64,
}

/// The Figure 6 component breakdown.
pub const COMPONENTS: [Component; 11] = [
    Component { name: "BERI Pipeline", share: 18.6, cheri_fraction: 0.16 },
    Component { name: "Floating Point", share: 31.8, cheri_fraction: 0.0 },
    Component { name: "Capability Unit", share: 14.7, cheri_fraction: 1.0 },
    Component { name: "Tag Cache", share: 4.0, cheri_fraction: 1.0 },
    Component { name: "CPro0 & TLB", share: 7.8, cheri_fraction: 0.04 },
    Component { name: "Level 2 Cache", share: 6.6, cheri_fraction: 0.18 },
    Component { name: "L1 Data Cache", share: 4.6, cheri_fraction: 0.22 },
    Component { name: "L1 Instr. Cache", share: 2.4, cheri_fraction: 0.0 },
    Component { name: "Debug", share: 4.7, cheri_fraction: 0.0 },
    Component { name: "Multiply & Divide", share: 2.6, cheri_fraction: 0.0 },
    Component { name: "Branch Predictor", share: 2.3, cheri_fraction: 0.0 },
];

/// Abstract logic elements of the full CHERI core (sets the scale; only
/// ratios are meaningful).
pub const CHERI_TOTAL_LES: f64 = 100_000.0;

/// Logic elements attributable to the capability extensions.
#[must_use]
pub fn cheri_only_les() -> f64 {
    COMPONENTS.iter().map(|c| c.share / 100.0 * CHERI_TOTAL_LES * c.cheri_fraction).sum()
}

/// Logic elements of the plain BERI core (CHERI minus the attributable
/// logic).
#[must_use]
pub fn beri_les() -> f64 {
    CHERI_TOTAL_LES - cheri_only_les()
}

/// The §9 area overhead: CHERI logic over BERI logic, as a fraction
/// (the paper reports 32%).
#[must_use]
pub fn area_overhead() -> f64 {
    CHERI_TOTAL_LES / beri_les() - 1.0
}

/// One segment of the critical path, in nanoseconds at the synthesised
/// corner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathSegment {
    /// Pipeline stage or structure.
    pub name: &'static str,
    /// Delay contribution in ns.
    pub ns: f64,
    /// Present only with the capability coprocessor fitted.
    pub cheri_only: bool,
}

/// The critical path through the Execute/Memory-Access region, where the
/// capability checks sit (Figure 2). BERI's path closes at 110.84 MHz.
pub const CRITICAL_PATH: [PathSegment; 5] = [
    PathSegment { name: "operand forward/bypass", ns: 2.10, cheri_only: false },
    PathSegment { name: "64-bit ALU / address generate", ns: 3.45, cheri_only: false },
    PathSegment { name: "capability bounds & permission check", ns: 0.73, cheri_only: true },
    PathSegment { name: "D-cache way select", ns: 2.30, cheri_only: false },
    PathSegment { name: "writeback mux & setup", ns: 1.17, cheri_only: false },
];

/// BERI's maximum frequency in MHz (path without the CHERI segment).
#[must_use]
pub fn fmax_beri_mhz() -> f64 {
    1000.0 / CRITICAL_PATH.iter().filter(|s| !s.cheri_only).map(|s| s.ns).sum::<f64>()
}

/// CHERI's maximum frequency in MHz (full path).
#[must_use]
pub fn fmax_cheri_mhz() -> f64 {
    1000.0 / CRITICAL_PATH.iter().map(|s| s.ns).sum::<f64>()
}

/// The §9 frequency penalty as the paper states it: how much faster
/// BERI clocks than CHERI (reported as 8.1%).
#[must_use]
pub fn frequency_penalty() -> f64 {
    fmax_beri_mhz() / fmax_cheri_mhz() - 1.0
}

/// Renders Figure 6 (the layout pie) and the §9 numbers as text.
#[must_use]
pub fn render() -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 6: CHERI layout on FPGA ==");
    let _ = writeln!(out, "{:<22}{:>8}  {:>14}", "module", "share", "CHERI-specific");
    for c in COMPONENTS {
        let _ =
            writeln!(out, "{:<22}{:>7.1}%  {:>13.1}%", c.name, c.share, c.share * c.cheri_fraction);
    }
    let _ = writeln!(out, "\n== Section 9 ==");
    let _ = writeln!(
        out,
        "logic overhead (CHERI vs BERI): {:>5.1}%   (paper: 32%)",
        area_overhead() * 100.0
    );
    let _ = writeln!(
        out,
        "fmax: BERI {:.2} MHz, CHERI {:.2} MHz   (paper: 110.84 / 102.54)",
        fmax_beri_mhz(),
        fmax_cheri_mhz()
    );
    let _ =
        writeln!(out, "frequency penalty: {:>4.1}%   (paper: 8.1%)", frequency_penalty() * 100.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_hundred() {
        let total: f64 = COMPONENTS.iter().map(|c| c.share).sum();
        assert!((total - 100.0).abs() < 0.2, "shares sum to {total}");
    }

    #[test]
    fn figure6_shares_match_paper() {
        let get = |n: &str| COMPONENTS.iter().find(|c| c.name == n).unwrap().share;
        assert_eq!(get("BERI Pipeline"), 18.6);
        assert_eq!(get("Floating Point"), 31.8);
        assert_eq!(get("Capability Unit"), 14.7);
        assert_eq!(get("Tag Cache"), 4.0);
        assert_eq!(get("CPro0 & TLB"), 7.8);
        assert_eq!(get("Branch Predictor"), 2.3);
    }

    #[test]
    fn derived_area_overhead_matches_section9() {
        let pct = area_overhead() * 100.0;
        assert!((pct - 32.0).abs() < 1.5, "derived {pct}% vs paper 32%");
    }

    #[test]
    fn derived_fmax_matches_section9() {
        assert!((fmax_beri_mhz() - 110.84).abs() < 1.0, "{}", fmax_beri_mhz());
        assert!((fmax_cheri_mhz() - 102.54).abs() < 1.0, "{}", fmax_cheri_mhz());
        let pct = frequency_penalty() * 100.0;
        assert!((pct - 8.1).abs() < 0.8, "derived {pct}% vs paper 8.1%");
    }

    #[test]
    fn capability_unit_and_tag_cache_are_wholly_cheri() {
        for c in COMPONENTS {
            if c.name == "Capability Unit" || c.name == "Tag Cache" {
                assert_eq!(c.cheri_fraction, 1.0);
            }
        }
        // The FPU predates the capability extensions entirely.
        let fpu = COMPONENTS.iter().find(|c| c.name == "Floating Point").unwrap();
        assert_eq!(fpu.cheri_fraction, 0.0);
    }

    #[test]
    fn render_mentions_key_rows() {
        let s = render();
        assert!(s.contains("Capability Unit"));
        assert!(s.contains("32%"));
        assert!(s.contains("110.84"));
    }
}
