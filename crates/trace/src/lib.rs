//! # cheri-trace — unified tracing & metrics for the CHERI reproduction
//!
//! Every quantity the paper measures (the Figure 4/5 overheads, the
//! §4.2 tag-cache behaviour, the §8 ablations) is an architectural
//! event count. This crate gives those events one shared vocabulary
//! ([`TraceEvent`]), one delivery mechanism (the [`Sink`] trait and the
//! statically dispatched [`AnySink`]), and one export format (the
//! [`Snapshot`] produced by a [`MetricsRegistry`], with mechanical
//! [`Snapshot::diff`] between runs).
//!
//! ## Design constraints
//!
//! * **No external dependencies.** JSON lines are written and parsed by
//!   the hand-rolled [`json`] module; no serde.
//! * **Near-zero cost when disabled.** Instrumented components cache a
//!   single `bool` derived from [`Sink::enabled`]; with no sink attached
//!   (or a [`NullSink`]) the hot path is one predictable branch and the
//!   event value is never even constructed — emission sites take an
//!   `FnOnce() -> TraceEvent` via [`emit`].
//! * **Observational transparency.** Sinks only observe; nothing in
//!   this crate feeds back into architectural state. An integration
//!   test in `cheri-bench` asserts that a fully aggregated run and an
//!   un-instrumented run of an Olden workload reach bit-identical
//!   architectural end-states.
//! * **Exact parity with legacy counters.** The per-struct counters
//!   (`beri_sim::Stats`, `Cache` hit/miss fields, `TagCacheStats`)
//!   remain authoritative and their public accessors keep working; the
//!   event stream is emitted adjacent to every legacy increment so an
//!   [`AggregateSink`] reproduces the same numbers under the canonical
//!   names in [`names`].
//!
//! ## Quick use
//!
//! ```
//! use cheri_trace::{shared, AggregateSink, AnySink, emit, CacheLevel, TraceEvent};
//!
//! let sink = shared(AnySink::Aggregate(AggregateSink::new()));
//! let attached = Some(sink.clone());
//! emit(&attached, || TraceEvent::CacheAccess {
//!     level: CacheLevel::L1D,
//!     write: false,
//!     hit: true,
//!     writeback: false,
//! });
//! let snap = match &*sink.borrow() {
//!     AnySink::Aggregate(a) => a.snapshot(),
//!     _ => unreachable!(),
//! };
//! assert_eq!(snap.counter("cache.l1d.hits"), 1);
//! ```

// Library paths must report errors, not abort: every fallible path
// returns Result or uses expect with a stated invariant. Tests may
// unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod event;
pub mod json;
mod metrics;
mod sink;

pub use event::{CacheLevel, SpanKind, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry, Snapshot, SnapshotDiff};
pub use sink::{
    active, emit, marker, shared, AggregateSink, AnySink, JsonlSink, NullSink, RingBufferSink,
    SharedSink, Sink,
};

/// Canonical metric names shared by the event aggregator and the legacy
/// counter exporters, so the two sides can be compared for exact
/// equality. Keep `beri_sim::Machine::metrics` and
/// [`AggregateSink`] in sync with this list.
pub mod names {
    /// Instructions retired.
    pub const INSTRUCTIONS: &str = "sim.instructions";
    /// Capability instructions retired.
    pub const CAP_INSTRUCTIONS: &str = "sim.cap_instructions";
    /// L1 instruction-cache hits/misses/writebacks.
    pub const L1I_HITS: &str = "cache.l1i.hits";
    pub const L1I_MISSES: &str = "cache.l1i.misses";
    pub const L1I_WRITEBACKS: &str = "cache.l1i.writebacks";
    /// L1 data-cache hits/misses/writebacks.
    pub const L1D_HITS: &str = "cache.l1d.hits";
    pub const L1D_MISSES: &str = "cache.l1d.misses";
    pub const L1D_WRITEBACKS: &str = "cache.l1d.writebacks";
    /// Unified L2 hits/misses/writebacks.
    pub const L2_HITS: &str = "cache.l2.hits";
    pub const L2_MISSES: &str = "cache.l2.misses";
    pub const L2_WRITEBACKS: &str = "cache.l2.writebacks";
    /// TLB refills taken.
    pub const TLB_REFILLS: &str = "tlb.refills";
    /// Tag-table (§4.2) reads and writes.
    pub const TAG_TABLE_READS: &str = "tag.table.reads";
    pub const TAG_TABLE_WRITES: &str = "tag.table.writes";
    /// Tag-cache hits/misses/writebacks.
    pub const TAG_CACHE_HITS: &str = "tag.cache.hits";
    pub const TAG_CACHE_MISSES: &str = "tag.cache.misses";
    pub const TAG_CACHE_WRITEBACKS: &str = "tag.cache.writebacks";
    /// Capability exceptions raised.
    pub const CAP_EXCEPTIONS: &str = "cap.exceptions";
    /// Syscalls serviced by the kernel.
    pub const SYSCALLS: &str = "os.syscalls";
    /// Address-space context switches.
    pub const CONTEXT_SWITCHES: &str = "os.context_switches";
    /// Protection-domain calls and returns (CCall/CReturn model).
    pub const DOMAIN_CALLS: &str = "os.domain_calls";
    pub const DOMAIN_RETURNS: &str = "os.domain_returns";
    /// Data-side memory operations observed at retire.
    pub const LOADS: &str = "mem.loads";
    pub const STORES: &str = "mem.stores";
    /// Latency histograms (log2-bucketed cycles).
    pub const LAT_DATA_ACCESS: &str = "latency.data_access";
    pub const LAT_TLB_REFILL: &str = "latency.tlb_refill";
    pub const LAT_SYSCALL: &str = "latency.syscall";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_reports_disabled_and_skips_event_construction() {
        let sink = shared(AnySink::Null(NullSink));
        let attached = Some(sink);
        let mut built = false;
        emit(&attached, || {
            built = true;
            TraceEvent::TlbRefill { vaddr: 0, cycles: 30 }
        });
        assert!(!built, "NullSink must not force event construction");
    }

    #[test]
    fn aggregate_matches_event_stream() {
        let sink = shared(AnySink::Aggregate(AggregateSink::new()));
        let attached = Some(sink.clone());
        for i in 0..10u64 {
            emit(&attached, || TraceEvent::Retire { pc: 0x1000 + 4 * i, cap: i % 2 == 0 });
        }
        emit(&attached, || TraceEvent::Syscall { nr: 4, cycles: 120 });
        emit(&attached, || TraceEvent::TagCache { hit: false, writeback: true });
        let snap = match &*sink.borrow() {
            AnySink::Aggregate(a) => a.snapshot(),
            _ => unreachable!(),
        };
        assert_eq!(snap.counter(names::INSTRUCTIONS), 10);
        assert_eq!(snap.counter(names::CAP_INSTRUCTIONS), 5);
        assert_eq!(snap.counter(names::SYSCALLS), 1);
        assert_eq!(snap.counter(names::TAG_CACHE_MISSES), 1);
        assert_eq!(snap.counter(names::TAG_CACHE_WRITEBACKS), 1);
        let h = snap.histogram(names::LAT_SYSCALL).expect("syscall latency recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn ring_buffer_keeps_last_n() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..8u64 {
            ring.on_event(&TraceEvent::Retire { pc: i, cap: false });
        }
        let pcs: Vec<u64> = ring
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Retire { pc, .. } => *pc,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(pcs, vec![5, 6, 7]);
    }

    #[test]
    fn snapshot_roundtrip_and_diff() {
        let mut reg = MetricsRegistry::new();
        reg.add(names::TLB_REFILLS, 7);
        reg.add(names::SYSCALLS, 2);
        reg.record(names::LAT_TLB_REFILL, 30);
        reg.record(names::LAT_TLB_REFILL, 31);
        let a = reg.snapshot();
        reg.add(names::TLB_REFILLS, 5);
        let b = reg.snapshot();

        let text = a.to_json();
        let back = Snapshot::from_json(&text).expect("parse own output");
        assert_eq!(back, a);

        let d = a.diff(&b);
        let tlb = d.entries().iter().find(|e| e.0 == names::TLB_REFILLS).expect("tlb in diff");
        assert_eq!((tlb.1, tlb.2), (7, 12));
        assert_eq!(tlb.3, 5);
        let sys = d.entries().iter().find(|e| e.0 == names::SYSCALLS).unwrap();
        assert_eq!(sys.3, 0);
    }
}
