//! The architectural event vocabulary.
//!
//! Events are small `Copy` values: emission sites construct them inside
//! an `FnOnce` (see [`crate::emit`]) so a disabled sink never pays for
//! the construction, and an enabled sink never allocates per event.

use crate::json::JsonWriter;

/// Which cache in the modelled hierarchy an access hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2.
    L2,
}

impl CacheLevel {
    /// Lower-case short name used in metric names and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheLevel::L1I => "l1i",
            CacheLevel::L1D => "l1d",
            CacheLevel::L2 => "l2",
        }
    }
}

/// What a [`TraceEvent::SpanBegin`]/[`TraceEvent::SpanEnd`] pair brackets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A benchmark phase (between `SYS_PHASE` markers).
    Phase,
    /// A protection-domain activation (between domain call and return).
    Domain,
}

impl SpanKind {
    /// Lower-case short name used in JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Domain => "domain",
        }
    }
}

/// One architectural event, as observed by the simulator, the memory
/// hierarchy, the tag controller, or the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction retired. `cap` marks capability instructions.
    Retire { pc: u64, cap: bool },
    /// One cache lookup at `level`. `writeback` marks a dirty-victim
    /// eviction triggered by this access.
    CacheAccess { level: CacheLevel, write: bool, hit: bool, writeback: bool },
    /// A data-side access completed; `cycles` is the full hierarchy
    /// charge for the access (feeds the `latency.data_access`
    /// histogram).
    DataAccess { write: bool, bytes: u64, cycles: u64 },
    /// A TLB refill was taken for `vaddr`; `cycles` is the refill
    /// tariff charged by the kernel handler.
    TlbRefill { vaddr: u64, cycles: u64 },
    /// The tag controller answered a tag lookup (one per
    /// `TagCacheStats::lookups`).
    TagTableRead { addr: u64, tag: bool },
    /// The tag controller updated the tag table (one per
    /// `TagCacheStats::updates`).
    TagTableWrite { addr: u64, tag: bool },
    /// One tag-cache line probe (§4.2): hit or miss, with an optional
    /// dirty writeback.
    TagCache { hit: bool, writeback: bool },
    /// A capability exception was raised (`code`/`reg` follow the
    /// CP2 cause-register encoding of Table 2).
    CapException { code: u8, reg: u8, pc: u64 },
    /// The kernel serviced syscall `nr`, charging `cycles`.
    Syscall { nr: u64, cycles: u64 },
    /// The kernel switched address spaces (process `pid` now running).
    ContextSwitch { pid: u64 },
    /// A protection-domain crossing: `enter` is a domain call into
    /// `to`, `!enter` a return from `from`.
    DomainCross { from: u64, to: u64, enter: bool },
    /// A timeline span opened (kernel phase or domain activation) at
    /// guest cycle `cycles`. Spans are pure timeline structure: they
    /// carry no counter and aggregation ignores them.
    SpanBegin { kind: SpanKind, id: u64, cycles: u64 },
    /// The matching span closed at guest cycle `cycles`.
    SpanEnd { kind: SpanKind, id: u64, cycles: u64 },
}

impl TraceEvent {
    /// Short kind tag used as the JSON `ev` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::CacheAccess { .. } => "cache",
            TraceEvent::DataAccess { .. } => "data",
            TraceEvent::TlbRefill { .. } => "tlb_refill",
            TraceEvent::TagTableRead { .. } => "tag_read",
            TraceEvent::TagTableWrite { .. } => "tag_write",
            TraceEvent::TagCache { .. } => "tag_cache",
            TraceEvent::CapException { .. } => "cap_exc",
            TraceEvent::Syscall { .. } => "syscall",
            TraceEvent::ContextSwitch { .. } => "ctx_switch",
            TraceEvent::DomainCross { .. } => "domain",
            TraceEvent::SpanBegin { .. } => "span_begin",
            TraceEvent::SpanEnd { .. } => "span_end",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.str_field("ev", self.kind());
        match *self {
            TraceEvent::Retire { pc, cap } => {
                w.hex_field("pc", pc);
                w.bool_field("cap", cap);
            }
            TraceEvent::CacheAccess { level, write, hit, writeback } => {
                w.str_field("level", level.as_str());
                w.bool_field("write", write);
                w.bool_field("hit", hit);
                if writeback {
                    w.bool_field("wb", true);
                }
            }
            TraceEvent::DataAccess { write, bytes, cycles } => {
                w.bool_field("write", write);
                w.u64_field("bytes", bytes);
                w.u64_field("cycles", cycles);
            }
            TraceEvent::TlbRefill { vaddr, cycles } => {
                w.hex_field("vaddr", vaddr);
                w.u64_field("cycles", cycles);
            }
            TraceEvent::TagTableRead { addr, tag } | TraceEvent::TagTableWrite { addr, tag } => {
                w.hex_field("addr", addr);
                w.bool_field("tag", tag);
            }
            TraceEvent::TagCache { hit, writeback } => {
                w.bool_field("hit", hit);
                if writeback {
                    w.bool_field("wb", true);
                }
            }
            TraceEvent::CapException { code, reg, pc } => {
                w.u64_field("code", u64::from(code));
                w.u64_field("reg", u64::from(reg));
                w.hex_field("pc", pc);
            }
            TraceEvent::Syscall { nr, cycles } => {
                w.u64_field("nr", nr);
                w.u64_field("cycles", cycles);
            }
            TraceEvent::ContextSwitch { pid } => {
                w.u64_field("pid", pid);
            }
            TraceEvent::DomainCross { from, to, enter } => {
                w.u64_field("from", from);
                w.u64_field("to", to);
                w.bool_field("enter", enter);
            }
            TraceEvent::SpanBegin { kind, id, cycles }
            | TraceEvent::SpanEnd { kind, id, cycles } => {
                w.str_field("kind", kind.as_str());
                w.u64_field("id", id);
                w.u64_field("cycles", cycles);
            }
        }
        w.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_compact_json() {
        let ev = TraceEvent::CacheAccess {
            level: CacheLevel::L2,
            write: true,
            hit: false,
            writeback: true,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"cache","level":"l2","write":true,"hit":false,"wb":true}"#
        );
        let ev = TraceEvent::Retire { pc: 0x1000, cap: false };
        assert_eq!(ev.to_json(), r#"{"ev":"retire","pc":"0x1000","cap":false}"#);
    }
}
