//! Hand-rolled JSON support — the workspace builds offline, so there is
//! no serde. The writer emits compact objects field-by-field; the
//! parser is a small recursive-descent reader for the snapshot files
//! this crate itself produces (objects, arrays, strings, unsigned
//! integers, booleans, null). It is not a general-purpose validator —
//! it accepts exactly the JSON this crate writes, plus whitespace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental writer for one compact JSON object.
pub struct JsonWriter {
    buf: String,
    first: bool,
}

impl JsonWriter {
    /// Starts an object (`{`).
    #[must_use]
    pub fn object() -> JsonWriter {
        JsonWriter { buf: String::from("{"), first: true }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Appends `"name":"value"` with escaping.
    pub fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Appends `"name":123`.
    pub fn u64_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends `"name":-123`.
    pub fn i64_field(&mut self, name: &str, value: i64) {
        self.key(name);
        let _ = write!(self.buf, "{value}");
    }

    /// Appends `"name":"0x1f"` — addresses read better in hex, and the
    /// string form keeps the parser integer-only.
    pub fn hex_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.buf, "\"{value:#x}\"");
    }

    /// Appends `"name":true|false`.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Appends `"name":<raw>` where `raw` is already-valid JSON.
    pub fn raw_field(&mut self, name: &str, raw: &str) {
        self.key(name);
        self.buf.push_str(raw);
    }

    /// Closes the object and returns the string.
    #[must_use]
    pub fn close(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escapes `s` into `out` per JSON string rules.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value (unsigned-integer numbers only — all quantities
/// in this crate are event counts and cycle totals).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("bad utf-8 at byte {}", *pos))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_then_parser_roundtrip() {
        let mut w = JsonWriter::object();
        w.str_field("name", "tree\"add\n");
        w.u64_field("count", 42);
        w.bool_field("ok", true);
        w.raw_field("list", "[1,2,3]");
        let text = w.close();
        let v = parse(&text).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["name"].as_str(), Some("tree\"add\n"));
        assert_eq!(obj["count"].as_u64(), Some(42));
        assert_eq!(obj["ok"], Json::Bool(true));
        assert_eq!(obj["list"].as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    /// Round-trips a string through the writer and parser and asserts
    /// it comes back unchanged.
    fn roundtrip(s: &str) {
        let mut w = JsonWriter::object();
        w.str_field("v", s);
        let text = w.close();
        let v = parse(&text).unwrap_or_else(|e| panic!("parse of {text:?} failed: {e}"));
        assert_eq!(v.as_obj().unwrap()["v"].as_str(), Some(s), "round-trip of {s:?}");
    }

    #[test]
    fn escaping_roundtrips_control_characters() {
        roundtrip("\u{0}");
        roundtrip("\u{1}\u{2}\u{3}");
        roundtrip("a\nb\rc\td");
        roundtrip("\u{8}\u{c}\u{b}"); // backspace, form feed, vertical tab
        roundtrip("\u{1f}\u{7f}"); // unit separator; DEL is not escaped but must survive
                                   // Every C0 control character, individually.
        for c in 0u32..0x20 {
            let s = char::from_u32(c).map(String::from).expect("C0 is valid char");
            roundtrip(&s);
        }
    }

    #[test]
    fn escaping_roundtrips_non_ascii() {
        roundtrip("héllo wörld");
        roundtrip("日本語のラベル");
        roundtrip("emoji \u{1f980} crab"); // astral plane (4-byte UTF-8)
        roundtrip("mixed: ascii → ünïcode → 漢字");
    }

    #[test]
    fn escaping_roundtrips_embedded_quotes_and_backslashes() {
        roundtrip(r#"run start: "treeadd"/cheri"#);
        roundtrip(r"back\slash");
        roundtrip(r#"\" tricky \\" nested"#);
        roundtrip("\"\\\"\\"); // quote, backslash, quote, backslash
        roundtrip("already-escaped-looking: \\n \\u0041");
    }

    #[test]
    fn escaped_control_chars_render_as_unicode_escapes() {
        let mut w = JsonWriter::object();
        w.str_field("v", "\u{1}\n\"x\\");
        let text = w.close();
        // Raw control bytes must not appear in the output.
        assert!(text.bytes().all(|b| b >= 0x20), "output has raw control bytes: {text:?}");
        assert_eq!(text, "{\"v\":\"\\u0001\\n\\\"x\\\\\"}");
    }
}
