//! Event delivery: the [`Sink`] trait, the concrete sinks, and the
//! statically dispatched [`AnySink`] that instrumented components hold.
//!
//! The simulator is single-threaded, so sinks are shared as
//! `Rc<RefCell<AnySink>>` ([`SharedSink`]): the machine, the cache
//! hierarchy, the tag controller, and the kernel each hold a clone of
//! the same handle and all feed one stream.

use crate::event::TraceEvent;
use crate::metrics::{MetricsRegistry, Snapshot};
use crate::names;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::rc::Rc;

/// A consumer of architectural trace events.
pub trait Sink {
    /// Delivers one event. Called only when [`Sink::enabled`] is true.
    fn on_event(&mut self, ev: &TraceEvent);

    /// Delivers an out-of-band marker (e.g. "run start: treeadd/cheri").
    /// Sinks that have no use for markers ignore them.
    fn marker(&mut self, _label: &str) {}

    /// Flushes buffered output, if any.
    fn flush(&mut self) {}

    /// Whether events should be constructed and delivered at all.
    /// Emission sites check this before building the event, so a
    /// disabled sink costs one branch per site.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; reports itself disabled so emission sites skip
/// event construction entirely. Attaching a `NullSink` is equivalent to
/// attaching nothing — the transparency bench measures exactly this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    fn on_event(&mut self, _ev: &TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the last *N* events for post-mortem inspection (e.g. "what led
/// up to this capability exception?").
#[derive(Clone, Debug)]
pub struct RingBufferSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingBufferSink {
        let capacity = capacity.max(1);
        RingBufferSink { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.buf
    }

    /// How many events were evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Sink for RingBufferSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// Streams events as JSON lines to any writer (file, stdout, Vec).
/// Markers appear as `{"marker":"..."}` lines.
pub struct JsonlSink {
    out: Box<dyn Write>,
    written: u64,
}

impl JsonlSink {
    /// Wraps a writer. Callers should pass something buffered (e.g.
    /// `BufWriter<File>`) — one `write_all` is issued per event.
    #[must_use]
    pub fn new(out: Box<dyn Write>) -> JsonlSink {
        JsonlSink { out, written: 0 }
    }

    /// Creates the file at `path` (truncating) and streams to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Events written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").field("written", &self.written).finish_non_exhaustive()
    }
}

impl Sink for JsonlSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        let mut line = ev.to_json();
        line.push('\n');
        // Trace output is best-effort observation; an I/O error must not
        // perturb the simulated machine, so it is swallowed here and
        // surfaced by the final flush if persistent.
        let _ = self.out.write_all(line.as_bytes());
        self.written += 1;
    }

    fn marker(&mut self, label: &str) {
        let mut w = crate::json::JsonWriter::object();
        w.str_field("marker", label);
        let mut line = w.close();
        line.push('\n');
        let _ = self.out.write_all(line.as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Folds the event stream into the canonical named counters and latency
/// histograms of a [`MetricsRegistry`]. The names match what
/// `beri_sim::Machine::metrics` exports from the legacy per-struct
/// counters, so the two can be asserted equal.
#[derive(Clone, Debug, Default)]
pub struct AggregateSink {
    registry: MetricsRegistry,
}

impl AggregateSink {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> AggregateSink {
        AggregateSink::default()
    }

    /// The accumulated registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A snapshot of the accumulated state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Sink for AggregateSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        let r = &mut self.registry;
        match *ev {
            TraceEvent::Retire { cap, .. } => {
                r.add(names::INSTRUCTIONS, 1);
                if cap {
                    r.add(names::CAP_INSTRUCTIONS, 1);
                }
            }
            TraceEvent::CacheAccess { level, hit, writeback, .. } => {
                use crate::event::CacheLevel::*;
                let (h, m, w) = match level {
                    L1I => (names::L1I_HITS, names::L1I_MISSES, names::L1I_WRITEBACKS),
                    L1D => (names::L1D_HITS, names::L1D_MISSES, names::L1D_WRITEBACKS),
                    L2 => (names::L2_HITS, names::L2_MISSES, names::L2_WRITEBACKS),
                };
                r.add(if hit { h } else { m }, 1);
                if writeback {
                    r.add(w, 1);
                }
            }
            TraceEvent::DataAccess { write, cycles, .. } => {
                r.add(if write { names::STORES } else { names::LOADS }, 1);
                r.record(names::LAT_DATA_ACCESS, cycles);
            }
            TraceEvent::TlbRefill { cycles, .. } => {
                r.add(names::TLB_REFILLS, 1);
                r.record(names::LAT_TLB_REFILL, cycles);
            }
            TraceEvent::TagTableRead { .. } => r.add(names::TAG_TABLE_READS, 1),
            TraceEvent::TagTableWrite { .. } => r.add(names::TAG_TABLE_WRITES, 1),
            TraceEvent::TagCache { hit, writeback } => {
                r.add(if hit { names::TAG_CACHE_HITS } else { names::TAG_CACHE_MISSES }, 1);
                if writeback {
                    r.add(names::TAG_CACHE_WRITEBACKS, 1);
                }
            }
            TraceEvent::CapException { .. } => r.add(names::CAP_EXCEPTIONS, 1),
            TraceEvent::Syscall { cycles, .. } => {
                r.add(names::SYSCALLS, 1);
                r.record(names::LAT_SYSCALL, cycles);
            }
            TraceEvent::ContextSwitch { .. } => r.add(names::CONTEXT_SWITCHES, 1),
            TraceEvent::DomainCross { enter, .. } => {
                r.add(if enter { names::DOMAIN_CALLS } else { names::DOMAIN_RETURNS }, 1);
            }
            // Spans are timeline structure, not counters: every span is
            // paired with a counted event (Syscall for phases,
            // DomainCross for domains), so counting them here would
            // break the aggregate-vs-legacy parity checks.
            TraceEvent::SpanBegin { .. } | TraceEvent::SpanEnd { .. } => {}
        }
    }
}

/// All sink shapes behind one statically dispatched enum, so the hot
/// emission path never goes through a vtable.
#[derive(Debug)]
pub enum AnySink {
    /// Discard (disabled).
    Null(NullSink),
    /// Last-N ring buffer.
    Ring(RingBufferSink),
    /// JSON-lines stream.
    Jsonl(JsonlSink),
    /// Counter/histogram aggregation.
    Aggregate(AggregateSink),
    /// Fan-out to several sinks (e.g. JSONL + aggregate in one run).
    Multi(Vec<AnySink>),
}

impl Sink for AnySink {
    fn on_event(&mut self, ev: &TraceEvent) {
        match self {
            AnySink::Null(s) => s.on_event(ev),
            AnySink::Ring(s) => s.on_event(ev),
            AnySink::Jsonl(s) => s.on_event(ev),
            AnySink::Aggregate(s) => s.on_event(ev),
            AnySink::Multi(sinks) => {
                for s in sinks {
                    if s.enabled() {
                        s.on_event(ev);
                    }
                }
            }
        }
    }

    fn marker(&mut self, label: &str) {
        match self {
            AnySink::Null(s) => s.marker(label),
            AnySink::Ring(s) => s.marker(label),
            AnySink::Jsonl(s) => s.marker(label),
            AnySink::Aggregate(s) => s.marker(label),
            AnySink::Multi(sinks) => {
                for s in sinks {
                    s.marker(label);
                }
            }
        }
    }

    fn flush(&mut self) {
        match self {
            AnySink::Null(s) => s.flush(),
            AnySink::Ring(s) => s.flush(),
            AnySink::Jsonl(s) => s.flush(),
            AnySink::Aggregate(s) => s.flush(),
            AnySink::Multi(sinks) => {
                for s in sinks {
                    s.flush();
                }
            }
        }
    }

    fn enabled(&self) -> bool {
        match self {
            AnySink::Null(s) => s.enabled(),
            AnySink::Ring(s) => s.enabled(),
            AnySink::Jsonl(s) => s.enabled(),
            AnySink::Aggregate(s) => s.enabled(),
            AnySink::Multi(sinks) => sinks.iter().any(Sink::enabled),
        }
    }
}

/// The shared handle instrumented components hold. `Rc` because the
/// whole simulator is single-threaded; cloning the handle clones the
/// *reference*, so every component feeds the same sink.
pub type SharedSink = Rc<RefCell<AnySink>>;

/// Wraps a sink into the shared handle form.
#[must_use]
pub fn shared(sink: AnySink) -> SharedSink {
    Rc::new(RefCell::new(sink))
}

/// Normalizes a sink handle for attachment: a disabled sink (a
/// [`NullSink`], or a `Multi` of nothing but null sinks) is equivalent
/// to no sink at all, so instrumented components store `None` for it
/// and the per-event cost collapses to the bare `Option` check — the
/// "tracing off" configuration runs the exact baseline code path.
/// Sinks never change their enabled state after construction, so this
/// is safe to decide once.
#[must_use]
pub fn active(sink: Option<SharedSink>) -> Option<SharedSink> {
    sink.filter(|s| s.borrow().enabled())
}

/// Emits an event through an optional sink handle. The event closure
/// runs only when a sink is attached *and* enabled — with no sink (or a
/// [`NullSink`]) the cost is the `Option` check plus one load.
#[inline]
pub fn emit(sink: &Option<SharedSink>, make: impl FnOnce() -> TraceEvent) {
    if let Some(handle) = sink {
        let mut s = handle.borrow_mut();
        if s.enabled() {
            let ev = make();
            s.on_event(&ev);
        }
    }
}

/// Sends an out-of-band marker through an optional sink handle.
pub fn marker(sink: &Option<SharedSink>, label: &str) {
    if let Some(handle) = sink {
        handle.borrow_mut().marker(label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CacheLevel;

    #[test]
    fn jsonl_writes_one_line_per_event_plus_markers() {
        let buf: Rc<RefCell<Vec<u8>>> = Rc::default();
        struct Tee(Rc<RefCell<Vec<u8>>>);
        impl Write for Tee {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Box::new(Tee(buf.clone())));
        sink.marker("run start: treeadd/cheri");
        sink.on_event(&TraceEvent::CacheAccess {
            level: CacheLevel::L1I,
            write: false,
            hit: true,
            writeback: false,
        });
        sink.flush();
        let text = String::from_utf8(buf.borrow().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"marker":"run start: treeadd/cheri"}"#);
        assert!(lines[1].contains(r#""ev":"cache""#));
        assert_eq!(sink.written(), 1);
    }

    #[test]
    fn multi_fans_out_and_enabled_is_any() {
        let multi =
            AnySink::Multi(vec![AnySink::Null(NullSink), AnySink::Aggregate(AggregateSink::new())]);
        assert!(multi.enabled());
        let sink = shared(multi);
        let attached = Some(sink.clone());
        emit(&attached, || TraceEvent::ContextSwitch { pid: 1 });
        match &*sink.borrow() {
            AnySink::Multi(sinks) => match &sinks[1] {
                AnySink::Aggregate(a) => {
                    assert_eq!(a.snapshot().counter(crate::names::CONTEXT_SWITCHES), 1);
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }

        let all_null = AnySink::Multi(vec![AnySink::Null(NullSink)]);
        assert!(!all_null.enabled());
    }
}
