//! Named counters, log2-bucketed latency histograms, and mechanical
//! run-to-run comparison.

use crate::json::{self, Json, JsonWriter};
use std::collections::BTreeMap;
use std::fmt;

/// A log2-bucketed histogram of cycle counts: bucket 0 holds zeros,
/// bucket *k* (k ≥ 1) holds values with highest set bit *k−1*, i.e. the
/// range `[2^(k-1), 2^k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; 65], count: 0, sum: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index for `v`.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c != 0).map(|(i, &c)| (i, c))
    }

    /// Inclusive-exclusive value range covered by bucket `i`.
    #[must_use]
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2))
        }
    }

    fn to_json_raw(&self) -> String {
        let mut w = JsonWriter::object();
        w.u64_field("count", self.count);
        w.u64_field("sum", self.sum);
        let buckets: Vec<String> =
            self.nonzero_buckets().map(|(i, c)| format!("[{i},{c}]")).collect();
        w.raw_field("buckets", &format!("[{}]", buckets.join(",")));
        w.close()
    }

    fn from_json(v: &Json) -> Result<Histogram, String> {
        let obj = v.as_obj().ok_or("histogram must be an object")?;
        let mut h = Histogram::new();
        h.count = obj.get("count").and_then(Json::as_u64).ok_or("missing count")?;
        h.sum = obj.get("sum").and_then(Json::as_u64).ok_or("missing sum")?;
        for pair in obj.get("buckets").and_then(Json::as_arr).ok_or("missing buckets")? {
            let pair = pair.as_arr().ok_or("bucket must be [index,count]")?;
            let (i, c) = match pair {
                [i, c] => (
                    i.as_u64().ok_or("bad bucket index")? as usize,
                    c.as_u64().ok_or("bad bucket count")?,
                ),
                _ => return Err("bucket must be a pair".into()),
            };
            *h.buckets.get_mut(i).ok_or("bucket index out of range")? = c;
        }
        Ok(h)
    }
}

/// A named set of counters and latency histograms. This is the single
/// accumulation point the scattered legacy counters are exported into
/// (via `Machine::metrics`) and that the event-driven
/// [`AggregateSink`](crate::AggregateSink) feeds directly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets counter `name` to an absolute value (used when exporting
    /// legacy struct counters wholesale).
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Records one latency observation into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Current value of counter `name` (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// An owned, comparable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: self.histograms.iter().map(|(&k, v)| (k.to_string(), v.clone())).collect(),
        }
    }

    /// Per-counter deltas between two snapshots (convenience forward to
    /// [`Snapshot::diff`]).
    #[must_use]
    pub fn diff(a: &Snapshot, b: &Snapshot) -> SnapshotDiff {
        a.diff(b)
    }
}

/// An immutable, serialisable copy of a registry's state at one moment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Value of counter `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Histogram `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// Inserts/overwrites a counter (used by exporters).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Inserts/overwrites a histogram (used by exporters).
    pub fn set_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    /// Per-counter deltas from `self` (the "before"/"a" run) to `other`
    /// (the "after"/"b" run), covering the union of names.
    ///
    /// Counters are monotone, so a regression (`b < a`) means the
    /// counter was reset between the snapshots rather than that work
    /// was undone. Instead of reporting a nonsense negative delta (or
    /// panicking on unsigned underflow, as a naive `b - a` would), the
    /// delta saturates to 0 and the row is flagged in
    /// [`SnapshotDiff::warnings`].
    #[must_use]
    pub fn diff(&self, other: &Snapshot) -> SnapshotDiff {
        let mut names: Vec<&String> = self.counters.keys().collect();
        for k in other.counters.keys() {
            if !self.counters.contains_key(k) {
                names.push(k);
            }
        }
        names.sort();
        let mut warnings = Vec::new();
        let entries = names
            .into_iter()
            .map(|name| {
                let a = self.counter(name);
                let b = other.counter(name);
                let delta = if b >= a {
                    i128::from(b - a)
                } else {
                    warnings.push(format!(
                        "counter `{name}` regressed ({a} -> {b}); \
                         saturating delta to 0 (reset between snapshots?)"
                    ));
                    0
                };
                (name.clone(), a, b, delta)
            })
            .collect();
        SnapshotDiff { entries, warnings }
    }

    /// Serialises as one JSON object:
    /// `{"counters":{..},"histograms":{..}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = JsonWriter::object();
        for (k, v) in &self.counters {
            counters.u64_field(k, *v);
        }
        let mut histograms = JsonWriter::object();
        for (k, h) in &self.histograms {
            histograms.raw_field(k, &h.to_json_raw());
        }
        let mut w = JsonWriter::object();
        w.raw_field("counters", &counters.close());
        w.raw_field("histograms", &histograms.close());
        w.close()
    }

    /// Parses the output of [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("snapshot must be an object")?;
        let mut snap = Snapshot::default();
        if let Some(counters) = obj.get("counters") {
            for (k, v) in counters.as_obj().ok_or("counters must be an object")? {
                snap.counters.insert(k.clone(), v.as_u64().ok_or("counter must be a u64")?);
            }
        }
        if let Some(hists) = obj.get("histograms") {
            for (k, v) in hists.as_obj().ok_or("histograms must be an object")? {
                snap.histograms.insert(k.clone(), Histogram::from_json(v)?);
            }
        }
        Ok(snap)
    }

    /// Renders an aligned human-readable table of all counters, then
    /// histogram summaries.
    #[must_use]
    pub fn render_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = String::new();
        out.push_str(&format!("{:<width$}  {:>16}\n", "counter", "value"));
        out.push_str(&format!("{:-<width$}  {:->16}\n", "", ""));
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v:>16}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  {:>16}  (mean {:.1} cycles, max bucket ",
                h.count(),
                h.mean()
            ));
            let top = h.nonzero_buckets().last();
            match top {
                Some((i, _)) => {
                    let (lo, hi) = Histogram::bucket_range(i);
                    out.push_str(&format!("[{lo},{hi}))\n"));
                }
                None => out.push_str("-)\n"),
            }
        }
        out
    }
}

/// The result of diffing two snapshots: `(name, a, b, b - a)` rows,
/// with the delta saturated to 0 (and a warning recorded) when a
/// counter regressed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    entries: Vec<(String, u64, u64, i128)>,
    warnings: Vec<String>,
}

impl SnapshotDiff {
    /// All rows in name order.
    #[must_use]
    pub fn entries(&self) -> &[(String, u64, u64, i128)] {
        &self.entries
    }

    /// Rows whose delta is nonzero.
    pub fn changed(&self) -> impl Iterator<Item = &(String, u64, u64, i128)> {
        self.entries.iter().filter(|e| e.3 != 0)
    }

    /// One message per counter whose value regressed between the
    /// snapshots (delta saturated to 0).
    #[must_use]
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }
}

impl fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.entries.iter().map(|e| e.0.len()).max().unwrap_or(8).max(8);
        writeln!(f, "{:<width$}  {:>16}  {:>16}  {:>17}", "counter", "a", "b", "delta")?;
        for (name, a, b, d) in &self.entries {
            writeln!(f, "{name:<width$}  {a:>16}  {b:>16}  {d:>+17}")?;
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40] {
            let (lo, hi) = Histogram::bucket_range(Histogram::bucket_of(v));
            assert!(v >= lo && (v < hi || hi < lo), "{v} not in [{lo},{hi})");
        }
    }

    #[test]
    fn histogram_json_roundtrip() {
        let mut h = Histogram::new();
        for v in [0, 1, 30, 30, 31, 120, 1 << 20] {
            h.record(v);
        }
        let v = json::parse(&h.to_json_raw()).unwrap();
        let back = Histogram::from_json(&v).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn registry_snapshot_is_independent() {
        let mut reg = MetricsRegistry::new();
        reg.add("x", 1);
        let snap = reg.snapshot();
        reg.add("x", 10);
        assert_eq!(snap.counter("x"), 1);
        assert_eq!(reg.counter("x"), 11);
    }

    #[test]
    fn diff_covers_union_of_names() {
        let mut a = Snapshot::default();
        a.set_counter("only_a", 3);
        let mut b = Snapshot::default();
        b.set_counter("only_b", 4);
        let d = a.diff(&b);
        assert_eq!(d.entries().len(), 2);
        // "only_a" went 3 -> 0: a regression, saturated to 0.
        assert_eq!(d.entries()[0], ("only_a".into(), 3, 0, 0));
        assert_eq!(d.entries()[1], ("only_b".into(), 0, 4, 4));
        assert_eq!(d.changed().count(), 1);
        assert_eq!(d.warnings().len(), 1);
        assert!(d.warnings()[0].contains("only_a"), "warning names the counter");
    }

    #[test]
    fn diff_saturates_regressed_counters_with_warning() {
        let mut a = Snapshot::default();
        a.set_counter("cycles", 1_000);
        a.set_counter("instructions", 500);
        let mut b = Snapshot::default();
        b.set_counter("cycles", 250); // counter was reset mid-window
        b.set_counter("instructions", 900);
        let d = a.diff(&b);
        assert_eq!(d.entries()[0], ("cycles".into(), 1_000, 250, 0));
        assert_eq!(d.entries()[1], ("instructions".into(), 500, 900, 400));
        assert_eq!(d.warnings().len(), 1);
        assert!(d.warnings()[0].contains("cycles"));
        assert!(format!("{d}").contains("warning:"), "Display surfaces the warning");
    }
}
