//! The execution engine behind the service: a persistent worker pool
//! plus the cache → pool → cold decision ladder for each job.
//!
//! Batch and served execution share one code path by construction:
//! every rung of the ladder bottoms out in the same `cheri-sweep`
//! runners the batch binaries use — [`run_spec_resume`] for warm
//! execution (exactly `xsweep --warm`'s restore path) and
//! [`run_spec_split`] for cold execution (exactly its cold path). The
//! service adds only *where results come from* (cache, pooled snapshot,
//! fresh boot), never *how they are computed* — which is why the
//! transparency gate can demand byte-identity with the batch report.

use crate::cache::{cache_key_canonical, ResultCache, NO_SNAPSHOT};
use crate::pool::{boot_snapshot, SnapshotPool};
use crate::protocol::{Origin, StatsSnapshot};
use crate::signal;
use crate::telem::{elapsed_us, JobCtx, PhaseRecorder, ServiceTelem};
use cheri_sweep::{
    profile_matrix, run_matrix, run_spec_profiled, run_spec_resume_spanned, run_spec_split_spanned,
    JobRecord, JobSpec, Profile, SweepReport,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A cooperative stop token: set programmatically (shutdown request,
/// test) and optionally wired to the process signal flag (SIGINT /
/// SIGTERM in the `cheri-serve` binary). Checked between jobs, never
/// mid-job — a running simulation always completes, which is what makes
/// drain-on-shutdown leave no partial state behind.
#[derive(Clone)]
pub struct Stop {
    flag: Arc<AtomicBool>,
    watch_signals: bool,
}

impl Stop {
    /// A fresh token. With `watch_signals`, delivery of SIGINT/SIGTERM
    /// (after [`signal::install`]) also trips it.
    #[must_use]
    pub fn new(watch_signals: bool) -> Stop {
        Stop { flag: Arc::new(AtomicBool::new(false)), watch_signals }
    }

    /// Trips the token.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested (programmatically or, if
    /// watched, by signal).
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || (self.watch_signals && signal::requested())
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads fed from one shared
/// queue. All requests on all connections shard their jobs into the
/// same pool, so total simulator parallelism is bounded by the worker
/// count no matter how many clients are connected.
pub struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Task>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
    queued: Arc<AtomicU64>,
    busy: Arc<AtomicU64>,
    alive: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` (≥ 1) threads.
    #[must_use]
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicU64::new(0));
        let busy = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicU64::new(workers as u64));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = rx.clone();
            let queued = queued.clone();
            let busy = busy.clone();
            let alive = alive.clone();
            handles.push(std::thread::spawn(move || {
                loop {
                    // Take the next task with the queue lock released
                    // before running it, so workers execute concurrently.
                    let task = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match task {
                        Ok(task) => {
                            queued.fetch_sub(1, Ordering::Relaxed);
                            busy.fetch_add(1, Ordering::Relaxed);
                            task();
                            busy.fetch_sub(1, Ordering::Relaxed);
                        }
                        Err(_) => break, // all senders gone: shutdown
                    }
                }
                alive.fetch_sub(1, Ordering::Relaxed);
            }));
        }
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            workers,
            queued,
            busy,
            alive,
        }
    }

    /// The pool's thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks submitted but not yet picked up by a worker.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Workers currently executing a task.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.busy.load(Ordering::Relaxed)
    }

    /// Worker threads still running (drops below [`WorkerPool::workers`]
    /// only during shutdown — or if a worker died, which `health`
    /// reports as not ready).
    #[must_use]
    pub fn alive(&self) -> u64 {
        self.alive.load(Ordering::Relaxed)
    }

    /// Submits a task; returns `false` if the pool has shut down (the
    /// task is dropped).
    pub fn submit<F: FnOnce() + Send + 'static>(&self, task: F) -> bool {
        match self.tx.lock() {
            Ok(guard) => match guard.as_ref() {
                Some(tx) => {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    let sent = tx.send(Box::new(task)).is_ok();
                    if !sent {
                        self.queued.fetch_sub(1, Ordering::Relaxed);
                    }
                    sent
                }
                None => false,
            },
            Err(_) => false,
        }
    }

    /// Closes the queue and joins every worker. Tasks already queued
    /// still run (they are expected to bail fast once a [`Stop`] token
    /// is tripped); new submissions are refused.
    pub fn shutdown(&self) {
        if let Ok(mut guard) = self.tx.lock() {
            guard.take();
        }
        let handles = match self.handles.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => return,
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-job decision ladder (cache → warm pool → cold boot) plus the
/// shared state it works over. One engine serves every connection.
pub struct JobEngine {
    cache: ResultCache,
    pool: SnapshotPool,
    warm: bool,
    jobs: AtomicU64,
    warm_runs: AtomicU64,
    cold_runs: AtomicU64,
    telem: Arc<ServiceTelem>,
}

impl JobEngine {
    /// A fresh engine. `cache_enabled` gates the result cache;
    /// `warm_enabled` gates snapshot-pool execution (off = every
    /// uncached job boots cold, the configuration the warm-vs-cold
    /// benchmark compares against). Telemetry is attached and enabled;
    /// use [`JobEngine::with_telem`] to share or disable it.
    #[must_use]
    pub fn new(cache_enabled: bool, warm_enabled: bool) -> JobEngine {
        JobEngine::with_telem(cache_enabled, warm_enabled, Arc::new(ServiceTelem::new(true)))
    }

    /// As [`JobEngine::new`] with a caller-supplied telemetry handle
    /// (the server shares one between the engine and the wire verbs).
    #[must_use]
    pub fn with_telem(
        cache_enabled: bool,
        warm_enabled: bool,
        telem: Arc<ServiceTelem>,
    ) -> JobEngine {
        JobEngine {
            cache: ResultCache::new(cache_enabled),
            pool: SnapshotPool::new(),
            warm: warm_enabled,
            jobs: AtomicU64::new(0),
            warm_runs: AtomicU64::new(0),
            cold_runs: AtomicU64::new(0),
            telem,
        }
    }

    /// The snapshot pool (exposed for prewarm and tests).
    #[must_use]
    pub fn pool(&self) -> &SnapshotPool {
        &self.pool
    }

    /// The result cache (exposed for tests).
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The telemetry handle this engine records into.
    #[must_use]
    pub fn telem(&self) -> &Arc<ServiceTelem> {
        &self.telem
    }

    /// Whether warm (snapshot-pool) execution is enabled.
    #[must_use]
    pub fn warm_enabled(&self) -> bool {
        self.warm
    }

    /// Executes one job through the ladder:
    ///
    /// 1. pooled snapshot present → cache lookup under (config,
    ///    snapshot-hash); hit → served from cache;
    /// 2. miss but pool entry present and warm execution enabled →
    ///    restore and run the computation phase ([`run_spec_resume`]);
    /// 3. otherwise → full cold run via [`run_spec_split`], pooling the
    ///    phase-2 snapshot it captures for every later request.
    ///
    /// `use_cache = false` (the load generator's hot mode) skips step 1
    /// and does not store, forcing real execution.
    ///
    /// `ctx` attributes the job's phase spans and latency to a request
    /// (pass [`JobCtx::default`] outside request handling). Telemetry
    /// observes the ladder, never steers it: the `*_spanned` runners
    /// invoked here are the same functions the batch path runs with a
    /// no-op hook.
    ///
    /// # Errors
    ///
    /// Compile/OS/restore errors rendered as strings.
    pub fn execute(
        &self,
        spec: &JobSpec,
        use_cache: bool,
        ctx: JobCtx,
    ) -> Result<(JobRecord, Origin), String> {
        let t0 = Instant::now();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let canon = spec.canonical_json();
        if let Some(entry) = self.pool.get(&canon) {
            let key = cache_key_canonical(&canon, entry.hash);
            if use_cache {
                if let Some(rec) = self.cache.lookup(key) {
                    self.telem.job_finished(Origin::Cached, elapsed_us(t0));
                    return Ok((rec, Origin::Cached));
                }
            }
            if self.warm {
                let block_cache = spec.machine_config().block_cache;
                let mut phases = PhaseRecorder::new(&self.telem, ctx, Origin::Warm.name());
                let result =
                    run_spec_resume_spanned(spec, &entry.snapshot, block_cache, &mut |n, b| {
                        phases.note(n, b);
                    })?;
                let rec = JobRecord::from_result(&result);
                if use_cache {
                    self.cache.store(key, &rec);
                }
                self.warm_runs.fetch_add(1, Ordering::Relaxed);
                self.telem.job_finished(Origin::Warm, elapsed_us(t0));
                return Ok((rec, Origin::Warm));
            }
        }
        let mut phases = PhaseRecorder::new(&self.telem, ctx, Origin::Cold.name());
        let (result, snap) = run_spec_split_spanned(spec, spec.machine_config(), &mut |n, b| {
            phases.note(n, b);
        })?;
        let rec = JobRecord::from_result(&result);
        let hash = match snap {
            Some(snap) => self.pool.insert(canon.clone(), snap).hash,
            None => NO_SNAPSHOT,
        };
        if use_cache {
            self.cache.store(cache_key_canonical(&canon, hash), &rec);
        }
        self.cold_runs.fetch_add(1, Ordering::Relaxed);
        self.telem.job_finished(Origin::Cold, elapsed_us(t0));
        Ok((rec, Origin::Cold))
    }

    /// Re-executes one job from its pooled snapshot, bypassing the
    /// cache, and returns the record plus the hash of the state it
    /// resumed from — the service's triage hook (`replay` requests).
    ///
    /// # Errors
    ///
    /// If no snapshot is pooled for the job, or on restore/run errors.
    pub fn execute_replay(
        &self,
        spec: &JobSpec,
        ctx: JobCtx,
    ) -> Result<(JobRecord, cheri_snap::StateHash), String> {
        let t0 = Instant::now();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let canon = spec.canonical_json();
        let entry = self.pool.get(&canon).ok_or_else(|| {
            format!("no pooled snapshot for {} (run it once or prewarm)", spec.key())
        })?;
        let block_cache = spec.machine_config().block_cache;
        let mut phases = PhaseRecorder::new(&self.telem, ctx, Origin::Warm.name());
        let result = run_spec_resume_spanned(spec, &entry.snapshot, block_cache, &mut |n, b| {
            phases.note(n, b);
        })?;
        self.warm_runs.fetch_add(1, Ordering::Relaxed);
        self.telem.job_finished(Origin::Warm, elapsed_us(t0));
        Ok((JobRecord::from_result(&result), entry.hash))
    }

    /// Runs one job cold with the guest profiler attached and returns
    /// the record plus the serialised profile. Profiled runs are never
    /// cached or warm-started: the profile is an observational artifact
    /// of a *whole* run, and a restore resets it by design.
    ///
    /// # Errors
    ///
    /// As [`JobEngine::execute`].
    pub fn execute_profiled(&self, spec: &JobSpec) -> Result<(JobRecord, String), String> {
        let t0 = Instant::now();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let (result, profile) = run_spec_profiled(spec, spec.machine_config())?;
        self.cold_runs.fetch_add(1, Ordering::Relaxed);
        self.telem.job_finished(Origin::Cold, elapsed_us(t0));
        Ok((JobRecord::from_result(&result), profile.to_json()))
    }

    /// Fills the pool with phase-2 pre-boots for every job of `profile`
    /// that does not already have one, sharded across the worker pool.
    /// Returns the number of entries added. Stops early (skipping
    /// remaining boots) if `stop` trips.
    pub fn prewarm(self: &Arc<Self>, profile: Profile, workers: &WorkerPool, stop: &Stop) -> usize {
        let specs = profile_matrix(profile);
        let (tx, rx) = mpsc::channel::<bool>();
        let mut submitted = 0usize;
        for spec in specs {
            let canon = spec.canonical_json();
            if self.pool.get(&canon).is_some() {
                continue;
            }
            let engine = self.clone();
            let stop = stop.clone();
            let tx = tx.clone();
            let ok = workers.submit(move || {
                let added = if stop.stopping() {
                    false
                } else {
                    match boot_snapshot(&spec) {
                        Ok(Some(snap)) => {
                            engine.pool.insert(canon, snap);
                            true
                        }
                        Ok(None) | Err(_) => false,
                    }
                };
                let _ = tx.send(added);
            });
            if ok {
                submitted += 1;
            }
        }
        drop(tx);
        rx.into_iter().filter(|&added| added).count().min(submitted)
    }

    /// The engine's counters as one consistent-enough snapshot (each
    /// counter is individually exact; the set is sampled without a
    /// global lock). Server-level fields — uptime, worker count,
    /// version — are the caller's to fill in.
    #[must_use]
    pub fn stats(&self, requests: u64) -> StatsSnapshot {
        StatsSnapshot {
            requests,
            jobs: self.jobs.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cached_results: self.cache.len() as u64,
            warm_runs: self.warm_runs.load(Ordering::Relaxed),
            cold_runs: self.cold_runs.load(Ordering::Relaxed),
            pool_entries: self.pool.len() as u64,
            cache_enabled: self.cache.enabled(),
            warm_enabled: self.warm,
            ..StatsSnapshot::default()
        }
    }
}

/// One job's outcome inside a sweep, as reported to the collector.
enum JobOut {
    Done(Box<(JobRecord, Origin)>),
    Aborted,
    Failed(String),
}

/// Runs a whole profile matrix through the engine, sharding jobs across
/// the worker pool and invoking `progress(done, total, key, origin)` as
/// each job lands (in completion order — the *report* is assembled in
/// canonical matrix order regardless). Returns `Ok(None)` if `stop`
/// tripped before every job executed (the drain path: running jobs
/// complete, queued jobs bail).
///
/// `req` attributes the sweep's spans (queue wait per job, phases per
/// job) to a request id; pass 0 for work not driven by a wire request.
///
/// # Errors
///
/// The first job failure, with its key.
pub fn run_profile<F>(
    engine: &Arc<JobEngine>,
    workers: &WorkerPool,
    profile: Profile,
    use_cache: bool,
    stop: &Stop,
    req: u64,
    mut progress: F,
) -> Result<Option<SweepReport>, String>
where
    F: FnMut(u64, u64, &str, Origin),
{
    let specs = profile_matrix(profile);
    let total = specs.len();
    let (tx, rx) = mpsc::channel::<(usize, JobOut)>();
    let mut submitted = 0usize;
    for (i, spec) in specs.iter().enumerate() {
        let spec = *spec;
        let worker_engine = engine.clone();
        let stop = stop.clone();
        let tx = tx.clone();
        let ctx = JobCtx { req, job: i as u64 };
        let queued_at = Instant::now();
        engine.telem().queue_begin(ctx);
        let ok = workers.submit(move || {
            let engine = worker_engine;
            engine.telem().queue_end(ctx, elapsed_us(queued_at));
            let out = if stop.stopping() {
                JobOut::Aborted
            } else {
                match engine.execute(&spec, use_cache, ctx) {
                    Ok(done) => JobOut::Done(Box::new(done)),
                    Err(e) => JobOut::Failed(format!("{}: {e}", spec.key())),
                }
            };
            let _ = tx.send((i, out));
        });
        if ok {
            submitted += 1;
        } else {
            // The task never entered the queue; close its span so the
            // stream stays balanced.
            engine.telem().queue_end(ctx, elapsed_us(queued_at));
        }
    }
    drop(tx);

    let mut slots: Vec<Option<JobRecord>> = Vec::new();
    slots.resize_with(total, || None);
    let mut done = 0u64;
    let mut aborted = submitted < total;
    for (i, out) in rx {
        match out {
            JobOut::Done(boxed) => {
                let (record, origin) = *boxed;
                done += 1;
                progress(done, total as u64, &record.key, origin);
                slots[i] = Some(record);
            }
            JobOut::Aborted => aborted = true,
            JobOut::Failed(msg) => return Err(msg),
        }
    }
    if aborted || slots.iter().any(Option::is_none) {
        return Ok(None);
    }
    let jobs: Vec<JobRecord> = slots.into_iter().flatten().collect();
    Ok(Some(SweepReport { profile: profile.name().to_string(), jobs }))
}

/// The in-process transparency gate: serves `profile` through the
/// engine (cache + pool as configured), runs the *same* matrix through
/// the cold batch path ([`run_matrix`] — the library form of `xsweep`'s
/// default mode), and demands the two serialised reports be
/// byte-identical. Returns the served report on success.
///
/// # Errors
///
/// Names the first diverging job, or propagates a job failure.
pub fn transparency_gate(
    engine: &Arc<JobEngine>,
    workers: &WorkerPool,
    profile: Profile,
) -> Result<SweepReport, String> {
    let stop = Stop::new(false);
    let served = run_profile(engine, workers, profile, true, &stop, 0, |_, _, _, _| {})?
        .ok_or("served sweep aborted unexpectedly")?;
    let batch = run_matrix(profile, workers.workers());
    verify_against_batch(&served, &batch)?;
    Ok(served)
}

/// The byte-identity comparison at the heart of the gate, split out so
/// the server can reuse it for `verify: true` sweep requests.
///
/// # Errors
///
/// Names the first diverging job.
pub fn verify_against_batch(served: &SweepReport, batch: &SweepReport) -> Result<(), String> {
    if served.to_json() == batch.to_json() {
        return Ok(());
    }
    let key = served
        .jobs
        .iter()
        .zip(&batch.jobs)
        .find(|(a, b)| a != b)
        .map_or_else(|| "<report>".to_string(), |(a, _)| a.key.clone());
    Err(format!(
        "served report diverges from the cold batch report (first diverging job: {key}) — \
         serving must be transparent; triage with snapreplay"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pool_runs_submitted_tasks() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32usize {
            let tx = tx.clone();
            assert!(pool.submit(move || {
                let _ = tx.send(i);
            }));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        pool.shutdown();
        assert!(!pool.submit(|| {}), "submit after shutdown must be refused");
    }

    #[test]
    fn stop_token_trips_once() {
        let stop = Stop::new(false);
        assert!(!stop.stopping());
        stop.clone().request();
        assert!(stop.stopping(), "clones share the flag");
    }
}
