//! The TCP server: accept loop, per-connection request handling, and
//! graceful drain.
//!
//! One thread accepts connections (non-blocking, polling the [`Stop`]
//! token); each connection gets a thread that reads request lines and
//! writes event lines; all actual simulation is submitted to the shared
//! [`WorkerPool`]. Shutdown — a `shutdown` request, [`Stop::request`],
//! or (in the binary) SIGINT/SIGTERM — is cooperative: jobs already
//! executing on workers run to completion, queued jobs bail, sweeps
//! that lost jobs answer with an `error` event instead of a report, and
//! nothing partial is ever written: served reports are persisted by
//! writing to a `.tmp` sibling and renaming only after the full report
//! is on disk, and only for sweeps that completed every job.
//!
//! Telemetry rides alongside: every *work* request (sweep, job,
//! profile, replay) is assigned a monotonic request id, bracketed by a
//! request span, and threaded through the engine so queue-wait,
//! boot/restore, simulate, and serialize phases land in the shared
//! [`ServiceTelem`]. Read-only verbs — `ping`, `stats`, `metrics`,
//! `health` — take no id and record nothing, which is what keeps idle
//! `metrics` scrapes byte-identical. The final drain flushes the span
//! timeline and metric snapshot to `telem_out` with the same
//! `.tmp`-then-rename discipline as reports.

use crate::engine::{run_profile, verify_against_batch, JobEngine, Stop, WorkerPool};
use crate::protocol::{
    decode_request, encode_event, Event, HealthSnapshot, Origin, Request, SCHEMA,
};
use crate::telem::{self, elapsed_us, JobCtx, ServiceTelem};
use cheri_sweep::Profile;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often blocked reads and the accept loop wake to poll the stop
/// token.
const POLL: Duration = Duration::from_millis(100);

/// Prewarm states for the readiness probe.
const PREWARM_NONE: u64 = 0;
const PREWARM_RUNNING: u64 = 1;
const PREWARM_DONE: u64 = 2;

/// Server construction parameters.
pub struct ServerConfig {
    /// Worker threads executing jobs (default: host parallelism).
    pub workers: usize,
    /// Enable the content-hashed result cache.
    pub cache: bool,
    /// Enable warm execution from the snapshot pool.
    pub warm: bool,
    /// Persist every completed served sweep report under this
    /// directory (atomically) when set.
    pub results_dir: Option<PathBuf>,
    /// Also trip the stop token on SIGINT/SIGTERM (the binary sets
    /// this; tests leave it off so a ^C to the test runner cannot leak
    /// into server state).
    pub watch_signals: bool,
    /// Record telemetry (spans + metrics). Off is the detached half of
    /// the overhead A/B: every telemetry operation becomes a no-op.
    pub telem: bool,
    /// Write the final telemetry flush (Chrome trace + metric snapshot)
    /// to this path on drain, atomically.
    pub telem_out: Option<PathBuf>,
    /// Queue depth at or above which `health` reports not ready.
    pub queue_limit: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: cheri_sweep::default_threads(),
            cache: true,
            warm: true,
            results_dir: None,
            watch_signals: false,
            telem: true,
            telem_out: None,
            queue_limit: 256,
        }
    }
}

struct Shared {
    engine: Arc<JobEngine>,
    workers: WorkerPool,
    stop: Stop,
    telem: Arc<ServiceTelem>,
    results_dir: Option<PathBuf>,
    telem_out: Option<PathBuf>,
    requests: AtomicU64,
    /// Allocator for work-request ids (1-based; 0 means "no request").
    work_reqs: AtomicU64,
    prewarm_state: AtomicU64,
    queue_limit: u64,
    start: Instant,
}

/// The listening server. [`Server::serve`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; read the result
    /// back with [`Server::local_addr`]) and builds the engine and
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Socket errors from binding.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let telem = Arc::new(ServiceTelem::new(cfg.telem));
        let shared = Arc::new(Shared {
            engine: Arc::new(JobEngine::with_telem(cfg.cache, cfg.warm, telem.clone())),
            workers: WorkerPool::new(cfg.workers),
            stop: Stop::new(cfg.watch_signals),
            telem,
            results_dir: cfg.results_dir,
            telem_out: cfg.telem_out,
            requests: AtomicU64::new(0),
            work_reqs: AtomicU64::new(0),
            prewarm_state: AtomicU64::new(PREWARM_NONE),
            queue_limit: cfg.queue_limit,
            start: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop token sharing this server's flag — trip it to initiate a
    /// drain from another thread (tests, embedders).
    #[must_use]
    pub fn stop_handle(&self) -> Stop {
        self.shared.stop.clone()
    }

    /// The engine (for prewarming and inspection).
    #[must_use]
    pub fn engine(&self) -> Arc<JobEngine> {
        self.shared.engine.clone()
    }

    /// The shared telemetry handle (for tests and embedders).
    #[must_use]
    pub fn telem(&self) -> Arc<ServiceTelem> {
        self.shared.telem.clone()
    }

    /// Pre-boots the snapshot pool for `profile` before serving;
    /// returns entries added. `health` reports not ready from the call
    /// to the return.
    #[must_use]
    pub fn prewarm(&self, profile: Profile) -> usize {
        self.shared.prewarm_state.store(PREWARM_RUNNING, Ordering::SeqCst);
        let added = self.shared.engine.prewarm(profile, &self.shared.workers, &self.shared.stop);
        self.shared.prewarm_state.store(PREWARM_DONE, Ordering::SeqCst);
        added
    }

    /// As [`Server::prewarm`], but in a background thread so the server
    /// can accept connections (answering `health` with `ready: false`,
    /// `prewarm: "running"`) while the pool boots.
    pub fn prewarm_background(&self, profile: Profile) {
        // Flip the state *before* the thread exists so no health probe
        // can observe "none"/ready in the gap.
        self.shared.prewarm_state.store(PREWARM_RUNNING, Ordering::SeqCst);
        let shared = self.shared.clone();
        std::thread::spawn(move || {
            let _ = shared.engine.prewarm(profile, &shared.workers, &shared.stop);
            shared.prewarm_state.store(PREWARM_DONE, Ordering::SeqCst);
        });
    }

    /// Accepts and serves connections until the stop token trips, then
    /// drains: in-flight jobs finish, queued jobs bail, workers and
    /// connection threads are joined, and — last, so it sees every
    /// span — the telemetry flush is written if configured. Returns
    /// `Ok(())` on a clean drain — the binary turns this into exit
    /// status 0.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only (per-connection errors close that
    /// connection).
    pub fn serve(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stop.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = self.shared.clone();
                    conns.push(std::thread::spawn(move || handle_connection(stream, &shared)));
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => return Err(e),
            }
        }
        // Drain: close the queue (queued jobs bail against the tripped
        // stop token), join workers, then the connection threads.
        self.shared.workers.shutdown();
        for h in conns {
            let _ = h.join();
        }
        // Every producer of spans has been joined; the flush is final.
        if let Some(path) = &self.shared.telem_out {
            flush_telem(path, &self.shared.telem);
        }
        Ok(())
    }
}

fn send(writer: &mut TcpStream, ev: &Event) -> bool {
    let mut line = encode_event(ev);
    line.push('\n');
    writer.write_all(line.as_bytes()).and_then(|()| writer.flush()).is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Accepted sockets inherit the listener's non-blocking flag on some
    // platforms; force blocking reads with a timeout so the thread can
    // poll the stop token while idle.
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let text = std::mem::take(&mut line);
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if handle_request(text, &mut writer, shared) {
                    return;
                }
            }
            // A timeout mid-line leaves the partial line in the buffer;
            // the retry continues appending where it left off.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.stopping() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Milliseconds since the server started.
fn uptime_ms(shared: &Shared) -> u64 {
    u64::try_from(shared.start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The readiness conjunction behind the `health` verb.
fn health(shared: &Shared) -> HealthSnapshot {
    let workers = shared.workers.workers() as u64;
    let workers_alive = shared.workers.alive();
    let queue_depth = shared.workers.queue_depth();
    let prewarm = match shared.prewarm_state.load(Ordering::SeqCst) {
        PREWARM_RUNNING => "running",
        PREWARM_DONE => "done",
        _ => "none",
    };
    let ready = !shared.stop.stopping()
        && workers_alive == workers
        && prewarm != "running"
        && queue_depth < shared.queue_limit;
    HealthSnapshot {
        ready,
        prewarm: prewarm.to_string(),
        workers_alive,
        workers,
        queue_depth,
        queue_limit: shared.queue_limit,
        uptime_ms: uptime_ms(shared),
    }
}

/// One `metrics` scrape: live gauges refreshed, registry rendered.
fn scrape(shared: &Shared) -> String {
    shared.telem.scrape(&[
        (telem::QUEUE_DEPTH, shared.workers.queue_depth()),
        (telem::WORKERS, shared.workers.workers() as u64),
        (telem::WORKERS_ALIVE, shared.workers.alive()),
        (telem::WORKERS_BUSY, shared.workers.busy()),
        (telem::POOL_ENTRIES, shared.engine.pool().len() as u64),
        (telem::CACHED_RESULTS, shared.engine.cache().len() as u64),
    ])
}

/// Allocates the next work-request id (1-based).
fn next_req(shared: &Shared) -> u64 {
    shared.work_reqs.fetch_add(1, Ordering::Relaxed) + 1
}

/// The request span's closing tag, read off the outcome event.
fn end_tag(ev: &Event) -> &'static str {
    match ev {
        Event::Record { origin, .. } => origin.name(),
        Event::Report { .. } => "sweep",
        Event::Profile { .. } => "profile",
        Event::Error { .. } => "error",
        _ => "ok",
    }
}

/// Handles one request; returns `true` when the connection should
/// close (shutdown requested, or the client is unreachable).
fn handle_request(text: &str, writer: &mut TcpStream, shared: &Shared) -> bool {
    let req = match decode_request(text) {
        Ok(req) => req,
        Err(e) => return !send(writer, &Event::Error { message: format!("bad request: {e}") }),
    };
    let observe_only =
        matches!(req, Request::Ping | Request::Stats | Request::Metrics | Request::Health);
    if shared.stop.stopping() && !observe_only {
        return !send(writer, &Event::Error { message: "server is shutting down".into() });
    }
    match req {
        Request::Ping => !send(writer, &Event::Pong { schema: SCHEMA.into() }),
        Request::Stats => {
            let mut stats = shared.engine.stats(shared.requests.load(Ordering::Relaxed));
            stats.uptime_ms = uptime_ms(shared);
            stats.workers = shared.workers.workers() as u64;
            stats.version = env!("CARGO_PKG_VERSION").to_string();
            !send(writer, &Event::Stats(stats))
        }
        Request::Metrics => !send(writer, &Event::Metrics { text: scrape(shared) }),
        Request::Health => !send(writer, &Event::Health(health(shared))),
        Request::Shutdown => {
            send(writer, &Event::Ok);
            shared.stop.request();
            true
        }
        Request::Sweep { profile, cache, verify } => {
            let req_id = next_req(shared);
            shared.telem.request_begin(req_id);
            handle_sweep(writer, shared, profile, cache, verify, req_id)
        }
        Request::Job { parts, cache } => {
            let ctx = JobCtx::single(next_req(shared));
            shared.telem.request_begin(ctx.req);
            let reply = run_on_pool(shared, ctx, move |engine| {
                let spec = parts.spec()?;
                let (record, origin) = engine.execute(&spec, cache, ctx)?;
                let json = engine.telem().serialize_span(ctx.req, || record.to_json());
                Ok(Event::Record {
                    key: record.key.clone(),
                    origin,
                    snap_hash: String::new(),
                    record: json,
                    req: ctx.req,
                })
            });
            shared.telem.request_end(ctx.req, end_tag(&reply));
            !send(writer, &reply)
        }
        Request::Profile { parts } => {
            let ctx = JobCtx::single(next_req(shared));
            shared.telem.request_begin(ctx.req);
            let reply = run_on_pool(shared, ctx, move |engine| {
                let spec = parts.spec()?;
                let (record, profile) = engine.execute_profiled(&spec)?;
                let json = engine.telem().serialize_span(ctx.req, || record.to_json());
                Ok(Event::Profile { key: record.key.clone(), record: json, profile, req: ctx.req })
            });
            shared.telem.request_end(ctx.req, end_tag(&reply));
            !send(writer, &reply)
        }
        Request::Replay { parts } => {
            let ctx = JobCtx::single(next_req(shared));
            shared.telem.request_begin(ctx.req);
            let reply = run_on_pool(shared, ctx, move |engine| {
                let spec = parts.spec()?;
                let (record, hash) = engine.execute_replay(&spec, ctx)?;
                let json = engine.telem().serialize_span(ctx.req, || record.to_json());
                Ok(Event::Record {
                    key: record.key.clone(),
                    origin: Origin::Warm,
                    snap_hash: hash.to_string(),
                    record: json,
                    req: ctx.req,
                })
            });
            shared.telem.request_end(ctx.req, end_tag(&reply));
            !send(writer, &reply)
        }
    }
}

/// Ships one closure to the worker pool and blocks this connection
/// thread for its outcome, so single-job requests obey the same global
/// parallelism bound as sweeps. The queue wait (submission to pickup)
/// is spanned and recorded; a refused submission closes the span
/// immediately so the stream stays balanced.
fn run_on_pool<F>(shared: &Shared, ctx: JobCtx, work: F) -> Event
where
    F: FnOnce(&JobEngine) -> Result<Event, String> + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Result<Event, String>>();
    let engine = shared.engine.clone();
    let stop = shared.stop.clone();
    let worker_telem = shared.telem.clone();
    let queued_at = Instant::now();
    shared.telem.queue_begin(ctx);
    let submitted = shared.workers.submit(move || {
        worker_telem.queue_end(ctx, elapsed_us(queued_at));
        let out = if stop.stopping() {
            Err("server is shutting down".to_string())
        } else {
            work(&engine)
        };
        let _ = tx.send(out);
    });
    if !submitted {
        shared.telem.queue_end(ctx, elapsed_us(queued_at));
        return Event::Error { message: "server is shutting down".into() };
    }
    match rx.recv() {
        Ok(Ok(ev)) => ev,
        Ok(Err(msg)) => Event::Error { message: msg },
        Err(_) => Event::Error { message: "job was dropped during shutdown".into() },
    }
}

fn handle_sweep(
    writer: &mut TcpStream,
    shared: &Shared,
    profile: Profile,
    cache: bool,
    verify: bool,
    req: u64,
) -> bool {
    let fail = |writer: &mut TcpStream, message: String| {
        shared.telem.request_end(req, "error");
        !send(writer, &Event::Error { message })
    };
    let outcome = run_profile(
        &shared.engine,
        &shared.workers,
        profile,
        cache,
        &shared.stop,
        req,
        |done, total, key, origin| {
            // Progress is advisory; a vanished client must not stop the
            // jobs already queued, so write errors are ignored here and
            // surface on the terminal event instead.
            let _ = send(writer, &Event::Progress { done, total, key: key.to_string(), origin });
        },
    );
    let report = match outcome {
        Err(message) => return fail(writer, message),
        Ok(None) => {
            let message = "sweep aborted by server shutdown (drained, nothing written)".into();
            return fail(writer, message);
        }
        Ok(Some(report)) => report,
    };
    if verify {
        // The in-process transparency gate: the same matrix through the
        // cold batch path must serialise byte-identically.
        let batch = cheri_sweep::run_matrix(profile, shared.workers.workers());
        if let Err(message) = verify_against_batch(&report, &batch) {
            return fail(writer, message);
        }
    }
    // One rendering feeds both the wire event and the persisted file,
    // so what lands on disk is byte-identical to what the client read.
    let rendered = shared.telem.serialize_span(req, || report.to_json());
    if let Some(dir) = &shared.results_dir {
        persist_report(dir, &report.profile, &rendered, shared.requests.load(Ordering::Relaxed));
    }
    let ev =
        Event::Report { profile: report.profile.clone(), verified: verify, report: rendered, req };
    shared.telem.request_end(req, "sweep");
    !send(writer, &ev)
}

/// Persists a *complete* report atomically: full write to a `.tmp`
/// sibling, then rename. A crash or shutdown at any point leaves either
/// nothing or a finished report — never a partial file.
fn persist_report(dir: &std::path::Path, profile: &str, rendered: &str, serial: u64) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let name = format!("serve-{profile}-{serial}.json");
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp"));
    if std::fs::write(&tmp, rendered).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Writes the final telemetry flush with the same atomicity discipline
/// as [`persist_report`]: the file either appears whole or not at all.
fn flush_telem(path: &std::path::Path, telem: &ServiceTelem) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { return };
    let tmp = path.with_file_name(format!("{name}.tmp"));
    if std::fs::write(&tmp, telem.flush_json()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}
