//! The TCP server: accept loop, per-connection request handling, and
//! graceful drain.
//!
//! One thread accepts connections (non-blocking, polling the [`Stop`]
//! token); each connection gets a thread that reads request lines and
//! writes event lines; all actual simulation is submitted to the shared
//! [`WorkerPool`]. Shutdown — a `shutdown` request, [`Stop::request`],
//! or (in the binary) SIGINT/SIGTERM — is cooperative: jobs already
//! executing on workers run to completion, queued jobs bail, sweeps
//! that lost jobs answer with an `error` event instead of a report, and
//! nothing partial is ever written: served reports are persisted by
//! writing to a `.tmp` sibling and renaming only after the full report
//! is on disk, and only for sweeps that completed every job.

use crate::engine::{run_profile, verify_against_batch, JobEngine, Stop, WorkerPool};
use crate::protocol::{decode_request, encode_event, Event, Origin, Request, SCHEMA};
use cheri_sweep::{run_matrix, Profile, SweepReport};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// How often blocked reads and the accept loop wake to poll the stop
/// token.
const POLL: Duration = Duration::from_millis(100);

/// Server construction parameters.
pub struct ServerConfig {
    /// Worker threads executing jobs (default: host parallelism).
    pub workers: usize,
    /// Enable the content-hashed result cache.
    pub cache: bool,
    /// Enable warm execution from the snapshot pool.
    pub warm: bool,
    /// Persist every completed served sweep report under this
    /// directory (atomically) when set.
    pub results_dir: Option<PathBuf>,
    /// Also trip the stop token on SIGINT/SIGTERM (the binary sets
    /// this; tests leave it off so a ^C to the test runner cannot leak
    /// into server state).
    pub watch_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: cheri_sweep::default_threads(),
            cache: true,
            warm: true,
            results_dir: None,
            watch_signals: false,
        }
    }
}

struct Shared {
    engine: Arc<JobEngine>,
    workers: WorkerPool,
    stop: Stop,
    results_dir: Option<PathBuf>,
    requests: AtomicU64,
}

/// The listening server. [`Server::serve`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; read the result
    /// back with [`Server::local_addr`]) and builds the engine and
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Socket errors from binding.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            engine: Arc::new(JobEngine::new(cfg.cache, cfg.warm)),
            workers: WorkerPool::new(cfg.workers),
            stop: Stop::new(cfg.watch_signals),
            results_dir: cfg.results_dir,
            requests: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop token sharing this server's flag — trip it to initiate a
    /// drain from another thread (tests, embedders).
    #[must_use]
    pub fn stop_handle(&self) -> Stop {
        self.shared.stop.clone()
    }

    /// The engine (for prewarming and inspection).
    #[must_use]
    pub fn engine(&self) -> Arc<JobEngine> {
        self.shared.engine.clone()
    }

    /// Pre-boots the snapshot pool for `profile` before serving;
    /// returns entries added.
    #[must_use]
    pub fn prewarm(&self, profile: Profile) -> usize {
        self.shared.engine.prewarm(profile, &self.shared.workers, &self.shared.stop)
    }

    /// Accepts and serves connections until the stop token trips, then
    /// drains: in-flight jobs finish, queued jobs bail, workers and
    /// connection threads are joined. Returns `Ok(())` on a clean
    /// drain — the binary turns this into exit status 0.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only (per-connection errors close that
    /// connection).
    pub fn serve(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stop.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = self.shared.clone();
                    conns.push(std::thread::spawn(move || handle_connection(stream, &shared)));
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => return Err(e),
            }
        }
        // Drain: close the queue (queued jobs bail against the tripped
        // stop token), join workers, then the connection threads.
        self.shared.workers.shutdown();
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

fn send(writer: &mut TcpStream, ev: &Event) -> bool {
    let mut line = encode_event(ev);
    line.push('\n');
    writer.write_all(line.as_bytes()).and_then(|()| writer.flush()).is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Accepted sockets inherit the listener's non-blocking flag on some
    // platforms; force blocking reads with a timeout so the thread can
    // poll the stop token while idle.
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let text = std::mem::take(&mut line);
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if handle_request(text, &mut writer, shared) {
                    return;
                }
            }
            // A timeout mid-line leaves the partial line in the buffer;
            // the retry continues appending where it left off.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.stopping() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one request; returns `true` when the connection should
/// close (shutdown requested, or the client is unreachable).
fn handle_request(text: &str, writer: &mut TcpStream, shared: &Shared) -> bool {
    let req = match decode_request(text) {
        Ok(req) => req,
        Err(e) => return !send(writer, &Event::Error { message: format!("bad request: {e}") }),
    };
    if shared.stop.stopping() && !matches!(req, Request::Ping | Request::Stats) {
        return !send(writer, &Event::Error { message: "server is shutting down".into() });
    }
    match req {
        Request::Ping => !send(writer, &Event::Pong { schema: SCHEMA.into() }),
        Request::Stats => {
            let stats = shared.engine.stats(shared.requests.load(Ordering::Relaxed));
            !send(writer, &Event::Stats(stats))
        }
        Request::Shutdown => {
            send(writer, &Event::Ok);
            shared.stop.request();
            true
        }
        Request::Sweep { profile, cache, verify } => {
            handle_sweep(writer, shared, profile, cache, verify)
        }
        Request::Job { parts, cache } => {
            let reply = run_on_pool(shared, move |engine| {
                let spec = parts.spec()?;
                let (record, origin) = engine.execute(&spec, cache)?;
                Ok(Event::Record {
                    key: record.key.clone(),
                    origin,
                    snap_hash: String::new(),
                    record: record.to_json(),
                })
            });
            !send(writer, &reply)
        }
        Request::Profile { parts } => {
            let reply = run_on_pool(shared, move |engine| {
                let spec = parts.spec()?;
                let (record, profile) = engine.execute_profiled(&spec)?;
                Ok(Event::Profile { key: record.key.clone(), record: record.to_json(), profile })
            });
            !send(writer, &reply)
        }
        Request::Replay { parts } => {
            let reply = run_on_pool(shared, move |engine| {
                let spec = parts.spec()?;
                let (record, hash) = engine.execute_replay(&spec)?;
                Ok(Event::Record {
                    key: record.key.clone(),
                    origin: Origin::Warm,
                    snap_hash: hash.to_string(),
                    record: record.to_json(),
                })
            });
            !send(writer, &reply)
        }
    }
}

/// Ships one closure to the worker pool and blocks this connection
/// thread for its outcome, so single-job requests obey the same global
/// parallelism bound as sweeps.
fn run_on_pool<F>(shared: &Shared, work: F) -> Event
where
    F: FnOnce(&JobEngine) -> Result<Event, String> + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Result<Event, String>>();
    let engine = shared.engine.clone();
    let stop = shared.stop.clone();
    let submitted = shared.workers.submit(move || {
        let out = if stop.stopping() {
            Err("server is shutting down".to_string())
        } else {
            work(&engine)
        };
        let _ = tx.send(out);
    });
    if !submitted {
        return Event::Error { message: "server is shutting down".into() };
    }
    match rx.recv() {
        Ok(Ok(ev)) => ev,
        Ok(Err(msg)) => Event::Error { message: msg },
        Err(_) => Event::Error { message: "job was dropped during shutdown".into() },
    }
}

fn handle_sweep(
    writer: &mut TcpStream,
    shared: &Shared,
    profile: Profile,
    cache: bool,
    verify: bool,
) -> bool {
    let outcome = run_profile(
        &shared.engine,
        &shared.workers,
        profile,
        cache,
        &shared.stop,
        |done, total, key, origin| {
            // Progress is advisory; a vanished client must not stop the
            // jobs already queued, so write errors are ignored here and
            // surface on the terminal event instead.
            let _ = send(writer, &Event::Progress { done, total, key: key.to_string(), origin });
        },
    );
    let report = match outcome {
        Err(message) => return !send(writer, &Event::Error { message }),
        Ok(None) => {
            let message = "sweep aborted by server shutdown (drained, nothing written)".into();
            return !send(writer, &Event::Error { message });
        }
        Ok(Some(report)) => report,
    };
    if verify {
        // The in-process transparency gate: the same matrix through the
        // cold batch path must serialise byte-identically.
        let batch = run_matrix(profile, shared.workers.workers());
        if let Err(message) = verify_against_batch(&report, &batch) {
            return !send(writer, &Event::Error { message });
        }
    }
    if let Some(dir) = &shared.results_dir {
        persist_report(dir, &report, shared.requests.load(Ordering::Relaxed));
    }
    let ev = Event::Report {
        profile: report.profile.clone(),
        verified: verify,
        report: report.to_json(),
    };
    !send(writer, &ev)
}

/// Persists a *complete* report atomically: full write to a `.tmp`
/// sibling, then rename. A crash or shutdown at any point leaves either
/// nothing or a finished report — never a partial file.
fn persist_report(dir: &std::path::Path, report: &SweepReport, serial: u64) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let name = format!("serve-{}-{serial}.json", report.profile);
    let path = dir.join(&name);
    let tmp = dir.join(format!("{name}.tmp"));
    if std::fs::write(&tmp, report.to_json()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}
