//! The `cheri-serve/v1` wire protocol: line-delimited JSON over TCP.
//!
//! Every message — request or event — is exactly one JSON object on one
//! line, terminated by `\n`, serialised with the workspace's hand-rolled
//! JSON ([`cheri_trace::json`]). A client sends one [`Request`] line and
//! then reads [`Event`] lines until a terminal event arrives (`report`,
//! `record`, `profile`, `stats`, `pong`, `ok`, or `error`); `progress`
//! events may precede the terminal event of a sweep.
//!
//! Payload reports ride *inside* the protocol as escaped JSON strings
//! rather than as nested objects: the transparency contract is
//! byte-identity with the batch `xsweep` report, and only a string
//! round-trip (escape on send, unescape on receive) preserves the exact
//! bytes of the inner document through the protocol layer.
//!
//! Job-shaped requests name their cell by the same strings the batch
//! binaries take on the command line (workload, strategy with aliases,
//! tag-cache KB) plus a problem-size [`Profile`]; they resolve to a
//! [`JobSpec`] through [`JobSpec::from_parts`], the one constructor all
//! by-name surfaces share, so a job spelled over the wire means exactly
//! the experiment the batch path would run.

use cheri_sweep::{JobSpec, Profile};
use cheri_trace::json::{self, Json, JsonWriter};
use std::collections::BTreeMap;

/// Schema identifier exchanged in `ping`/`pong`.
pub const SCHEMA: &str = "cheri-serve/v1";

/// How a served job result was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Returned from the content-hashed result cache; nothing executed.
    Cached,
    /// Executed warm: restored from the pooled phase-2 snapshot and run
    /// from the allocation → computation boundary.
    Warm,
    /// Executed cold: full boot + compile + exec + run.
    Cold,
}

impl Origin {
    /// The wire spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Origin::Cached => "cached",
            Origin::Warm => "warm",
            Origin::Cold => "cold",
        }
    }

    /// Parses the wire spelling.
    #[must_use]
    pub fn parse(name: &str) -> Option<Origin> {
        Some(match name {
            "cached" => Origin::Cached,
            "warm" => Origin::Warm,
            "cold" => Origin::Cold,
            _ => return None,
        })
    }
}

/// A job cell named by its command-line parts, as carried on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobParts {
    /// Workload name (`treeadd`, `bisort`, `mst`, `perimeter`,
    /// `vmloop`, `allocstress`).
    pub workload: String,
    /// Strategy name, aliases accepted (`cheri`, `c128`, ...).
    pub strategy: String,
    /// Tag-cache capacity in KB.
    pub tag_kb: usize,
    /// The problem-size preset the job runs at.
    pub profile: Profile,
}

impl JobParts {
    /// Resolves the parts to the canonical [`JobSpec`].
    ///
    /// # Errors
    ///
    /// Names the unknown workload/strategy.
    pub fn spec(&self) -> Result<JobSpec, String> {
        JobSpec::from_parts(&self.workload, &self.strategy, self.tag_kb, self.profile.params())
            .ok_or_else(|| {
                format!("unknown workload/strategy '{}/{}'", self.workload, self.strategy)
            })
    }
}

/// A client request: one line, one job of work (or one admin action).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness + schema probe.
    Ping,
    /// Run a whole profile matrix; stream progress; end with `report`.
    Sweep {
        /// Matrix preset to expand and run.
        profile: Profile,
        /// Consult/populate the result cache (`false` forces execution —
        /// the load generator's hot-path mode).
        cache: bool,
        /// After serving, re-run the matrix through the cold batch path
        /// in-process and assert byte-identity (the transparency gate).
        verify: bool,
    },
    /// Run one cell; end with `record`.
    Job {
        /// The cell, by name.
        parts: JobParts,
        /// Consult/populate the result cache.
        cache: bool,
    },
    /// Run one cell with the guest profiler attached; end with `profile`.
    Profile {
        /// The cell, by name.
        parts: JobParts,
    },
    /// Re-execute one cell from its pooled snapshot, bypassing the
    /// cache; end with `record` carrying the snapshot's state hash.
    Replay {
        /// The cell, by name.
        parts: JobParts,
    },
    /// Server counters; end with `stats`.
    Stats,
    /// Prometheus text exposition of the telemetry registry; end with
    /// `metrics`.
    Metrics,
    /// Readiness probe; end with `health`.
    Health,
    /// Drain in-flight jobs and exit; end with `ok`.
    Shutdown,
}

/// A snapshot of the server's counters plus its build/config identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted (all kinds).
    pub requests: u64,
    /// Jobs executed or served from cache.
    pub jobs: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries resident in the result cache.
    pub cached_results: u64,
    /// Warm (snapshot-resumed) executions.
    pub warm_runs: u64,
    /// Cold (full-boot) executions.
    pub cold_runs: u64,
    /// Phase-2 snapshots resident in the pool.
    pub pool_entries: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker threads in the pool (config echo).
    pub workers: u64,
    /// Whether the result cache is enabled (config echo).
    pub cache_enabled: bool,
    /// Whether warm execution is enabled (config echo).
    pub warm_enabled: bool,
    /// The server's crate version.
    pub version: String,
}

/// The server's readiness, as answered by the `health` verb. `ready`
/// is the conjunction the CI probe keys on: every worker alive, any
/// requested prewarm finished, queue depth under the limit, and not
/// draining.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// The overall readiness verdict.
    pub ready: bool,
    /// Prewarm state: `none` (never requested — ready), `running`, or
    /// `done`.
    pub prewarm: String,
    /// Worker threads still running.
    pub workers_alive: u64,
    /// Worker threads configured.
    pub workers: u64,
    /// Tasks queued but not yet picked up.
    pub queue_depth: u64,
    /// Queue depth at or above which the server reports not ready.
    pub queue_limit: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

/// A server event: one line; terminal unless it is `progress`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Reply to `ping`.
    Pong {
        /// The server's protocol schema (must equal [`SCHEMA`]).
        schema: String,
    },
    /// One job of a sweep finished (emitted in completion order).
    Progress {
        /// Jobs finished so far.
        done: u64,
        /// Jobs in the sweep.
        total: u64,
        /// The finished job's key.
        key: String,
        /// How its result was obtained.
        origin: Origin,
    },
    /// A sweep finished: the full report, byte-exact.
    Report {
        /// Profile the report covers.
        profile: String,
        /// Whether the in-process transparency gate ran and passed.
        verified: bool,
        /// The serialised `SweepReport`, byte-identical to what the
        /// batch `xsweep` path writes for the same matrix.
        report: String,
        /// The server-assigned request id (the span lane in a telemetry
        /// dump; 0 from servers predating telemetry).
        req: u64,
    },
    /// A single job finished.
    Record {
        /// The job key.
        key: String,
        /// How the result was obtained.
        origin: Origin,
        /// For replay: the pooled snapshot's state hash (hex); empty
        /// otherwise.
        snap_hash: String,
        /// The serialised `JobRecord`.
        record: String,
        /// The server-assigned request id (see [`Event::Report`]).
        req: u64,
    },
    /// A profiled job finished.
    Profile {
        /// The job key.
        key: String,
        /// The serialised `JobRecord` (byte-identical to an unprofiled
        /// run — profiling is observational).
        record: String,
        /// The serialised `ProfileReport`.
        profile: String,
        /// The server-assigned request id (see [`Event::Report`]).
        req: u64,
    },
    /// Reply to `stats`.
    Stats(StatsSnapshot),
    /// Reply to `metrics`.
    Metrics {
        /// The Prometheus text exposition (format 0.0.4), byte-stable
        /// across idle scrapes.
        text: String,
    },
    /// Reply to `health`.
    Health(HealthSnapshot),
    /// Acknowledgement (shutdown accepted).
    Ok,
    /// The request failed; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn job_fields(w: &mut JsonWriter, parts: &JobParts) {
    w.str_field("workload", &parts.workload);
    w.str_field("strategy", &parts.strategy);
    w.u64_field("tag_kb", parts.tag_kb as u64);
    w.str_field("profile", parts.profile.name());
}

/// Serialises a request as one JSON line (no trailing newline).
#[must_use]
pub fn encode_request(req: &Request) -> String {
    let mut w = JsonWriter::object();
    match req {
        Request::Ping => w.str_field("type", "ping"),
        Request::Sweep { profile, cache, verify } => {
            w.str_field("type", "sweep");
            w.str_field("profile", profile.name());
            w.bool_field("cache", *cache);
            w.bool_field("verify", *verify);
        }
        Request::Job { parts, cache } => {
            w.str_field("type", "job");
            job_fields(&mut w, parts);
            w.bool_field("cache", *cache);
        }
        Request::Profile { parts } => {
            w.str_field("type", "profile");
            job_fields(&mut w, parts);
        }
        Request::Replay { parts } => {
            w.str_field("type", "replay");
            job_fields(&mut w, parts);
        }
        Request::Stats => w.str_field("type", "stats"),
        Request::Metrics => w.str_field("type", "metrics"),
        Request::Health => w.str_field("type", "health"),
        Request::Shutdown => w.str_field("type", "shutdown"),
    }
    w.close()
}

fn get_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn get_bool(obj: &BTreeMap<String, Json>, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field '{key}' must be a boolean")),
    }
}

fn get_u64(obj: &BTreeMap<String, Json>, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field '{key}'"))
}

/// Tolerant integer read for fields newer than the oldest speaker of
/// the schema: absent means `default`, present must be an integer.
fn get_u64_or(obj: &BTreeMap<String, Json>, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| format!("field '{key}' must be an integer")),
    }
}

/// As [`get_u64_or`] for strings.
fn get_str_or(obj: &BTreeMap<String, Json>, key: &str, default: &str) -> Result<String, String> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(v) => {
            v.as_str().map(str::to_string).ok_or_else(|| format!("field '{key}' must be a string"))
        }
    }
}

fn get_profile(obj: &BTreeMap<String, Json>, default: Profile) -> Result<Profile, String> {
    match obj.get("profile") {
        None => Ok(default),
        Some(v) => {
            let name = v.as_str().ok_or("field 'profile' must be a string")?;
            Profile::parse(name).ok_or_else(|| format!("unknown profile '{name}'"))
        }
    }
}

fn get_parts(obj: &BTreeMap<String, Json>) -> Result<JobParts, String> {
    let parts = JobParts {
        workload: get_str(obj, "workload")?,
        strategy: get_str(obj, "strategy")?,
        tag_kb: usize::try_from(get_u64(obj, "tag_kb")?).map_err(|_| "tag_kb out of range")?,
        profile: get_profile(obj, Profile::Smoke)?,
    };
    // Validate names at the protocol boundary so a bad request is
    // rejected before any work is scheduled.
    parts.spec()?;
    Ok(parts)
}

/// Parses one request line. Field order and whitespace are irrelevant —
/// the line goes through the JSON parser, and job identity is decided
/// by [`JobSpec::canonical_json`] downstream, never by the raw bytes.
///
/// # Errors
///
/// Describes the first malformation found (bad JSON, unknown `type`,
/// missing field, unknown workload/strategy/profile name).
pub fn decode_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line.trim())?;
    let obj = v.as_obj().ok_or("request must be a JSON object")?;
    let kind = get_str(obj, "type")?;
    Ok(match kind.as_str() {
        "ping" => Request::Ping,
        "sweep" => Request::Sweep {
            profile: get_profile(obj, Profile::Smoke)?,
            cache: get_bool(obj, "cache", true)?,
            verify: get_bool(obj, "verify", false)?,
        },
        "job" => Request::Job { parts: get_parts(obj)?, cache: get_bool(obj, "cache", true)? },
        "profile" => Request::Profile { parts: get_parts(obj)? },
        "replay" => Request::Replay { parts: get_parts(obj)? },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown request type '{other}'")),
    })
}

/// Serialises an event as one JSON line (no trailing newline).
#[must_use]
pub fn encode_event(ev: &Event) -> String {
    let mut w = JsonWriter::object();
    match ev {
        Event::Pong { schema } => {
            w.str_field("type", "pong");
            w.str_field("schema", schema);
        }
        Event::Progress { done, total, key, origin } => {
            w.str_field("type", "progress");
            w.u64_field("done", *done);
            w.u64_field("total", *total);
            w.str_field("key", key);
            w.str_field("origin", origin.name());
        }
        Event::Report { profile, verified, report, req } => {
            w.str_field("type", "report");
            w.str_field("profile", profile);
            w.bool_field("verified", *verified);
            w.str_field("report", report);
            w.u64_field("req", *req);
        }
        Event::Record { key, origin, snap_hash, record, req } => {
            w.str_field("type", "record");
            w.str_field("key", key);
            w.str_field("origin", origin.name());
            w.str_field("snap_hash", snap_hash);
            w.str_field("record", record);
            w.u64_field("req", *req);
        }
        Event::Profile { key, record, profile, req } => {
            w.str_field("type", "profile");
            w.str_field("key", key);
            w.str_field("record", record);
            w.str_field("profile", profile);
            w.u64_field("req", *req);
        }
        Event::Stats(s) => {
            w.str_field("type", "stats");
            w.u64_field("requests", s.requests);
            w.u64_field("jobs", s.jobs);
            w.u64_field("cache_hits", s.cache_hits);
            w.u64_field("cache_misses", s.cache_misses);
            w.u64_field("cached_results", s.cached_results);
            w.u64_field("warm_runs", s.warm_runs);
            w.u64_field("cold_runs", s.cold_runs);
            w.u64_field("pool_entries", s.pool_entries);
            w.u64_field("uptime_ms", s.uptime_ms);
            w.u64_field("workers", s.workers);
            w.bool_field("cache_enabled", s.cache_enabled);
            w.bool_field("warm_enabled", s.warm_enabled);
            w.str_field("version", &s.version);
        }
        Event::Metrics { text } => {
            w.str_field("type", "metrics");
            w.str_field("text", text);
        }
        Event::Health(h) => {
            w.str_field("type", "health");
            w.bool_field("ready", h.ready);
            w.str_field("prewarm", &h.prewarm);
            w.u64_field("workers_alive", h.workers_alive);
            w.u64_field("workers", h.workers);
            w.u64_field("queue_depth", h.queue_depth);
            w.u64_field("queue_limit", h.queue_limit);
            w.u64_field("uptime_ms", h.uptime_ms);
        }
        Event::Ok => w.str_field("type", "ok"),
        Event::Error { message } => {
            w.str_field("type", "error");
            w.str_field("message", message);
        }
    }
    w.close()
}

/// Parses one event line.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_event(line: &str) -> Result<Event, String> {
    let v = json::parse(line.trim())?;
    let obj = v.as_obj().ok_or("event must be a JSON object")?;
    let kind = get_str(obj, "type")?;
    let origin = |o: &BTreeMap<String, Json>| -> Result<Origin, String> {
        let name = get_str(o, "origin")?;
        Origin::parse(&name).ok_or_else(|| format!("unknown origin '{name}'"))
    };
    Ok(match kind.as_str() {
        "pong" => Event::Pong { schema: get_str(obj, "schema")? },
        "progress" => Event::Progress {
            done: get_u64(obj, "done")?,
            total: get_u64(obj, "total")?,
            key: get_str(obj, "key")?,
            origin: origin(obj)?,
        },
        "report" => Event::Report {
            profile: get_str(obj, "profile")?,
            verified: get_bool(obj, "verified", false)?,
            report: get_str(obj, "report")?,
            req: get_u64_or(obj, "req", 0)?,
        },
        "record" => Event::Record {
            key: get_str(obj, "key")?,
            origin: origin(obj)?,
            snap_hash: get_str(obj, "snap_hash")?,
            record: get_str(obj, "record")?,
            req: get_u64_or(obj, "req", 0)?,
        },
        "profile" => Event::Profile {
            key: get_str(obj, "key")?,
            record: get_str(obj, "record")?,
            profile: get_str(obj, "profile")?,
            req: get_u64_or(obj, "req", 0)?,
        },
        "stats" => Event::Stats(StatsSnapshot {
            requests: get_u64(obj, "requests")?,
            jobs: get_u64(obj, "jobs")?,
            cache_hits: get_u64(obj, "cache_hits")?,
            cache_misses: get_u64(obj, "cache_misses")?,
            cached_results: get_u64(obj, "cached_results")?,
            warm_runs: get_u64(obj, "warm_runs")?,
            cold_runs: get_u64(obj, "cold_runs")?,
            pool_entries: get_u64(obj, "pool_entries")?,
            uptime_ms: get_u64_or(obj, "uptime_ms", 0)?,
            workers: get_u64_or(obj, "workers", 0)?,
            cache_enabled: get_bool(obj, "cache_enabled", false)?,
            warm_enabled: get_bool(obj, "warm_enabled", false)?,
            version: get_str_or(obj, "version", "")?,
        }),
        "metrics" => Event::Metrics { text: get_str(obj, "text")? },
        "health" => Event::Health(HealthSnapshot {
            ready: get_bool(obj, "ready", false)?,
            prewarm: get_str_or(obj, "prewarm", "none")?,
            workers_alive: get_u64_or(obj, "workers_alive", 0)?,
            workers: get_u64_or(obj, "workers", 0)?,
            queue_depth: get_u64_or(obj, "queue_depth", 0)?,
            queue_limit: get_u64_or(obj, "queue_limit", 0)?,
            uptime_ms: get_u64_or(obj, "uptime_ms", 0)?,
        }),
        "ok" => Event::Ok,
        "error" => Event::Error { message: get_str(obj, "message")? },
        other => return Err(format!("unknown event type '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Ping,
            Request::Sweep { profile: Profile::Smoke, cache: true, verify: false },
            Request::Sweep { profile: Profile::Full, cache: false, verify: true },
            Request::Job {
                parts: JobParts {
                    workload: "treeadd".into(),
                    strategy: "cheri".into(),
                    tag_kb: 8,
                    profile: Profile::Smoke,
                },
                cache: true,
            },
            Request::Profile {
                parts: JobParts {
                    workload: "mst".into(),
                    strategy: "cheri128".into(),
                    tag_kb: 16,
                    profile: Profile::Smoke,
                },
            },
            Request::Replay {
                parts: JobParts {
                    workload: "bisort".into(),
                    strategy: "mips".into(),
                    tag_kb: 8,
                    profile: Profile::Smoke,
                },
            },
            Request::Stats,
            Request::Metrics,
            Request::Health,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(decode_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn event_roundtrip() {
        let report = "{\"schema\":1,\"jobs\":[\n{\"key\":\"a/b\"}\n]}\n";
        let evs = [
            Event::Pong { schema: SCHEMA.into() },
            Event::Progress {
                done: 3,
                total: 20,
                key: "treeadd/cheri/tag8".into(),
                origin: Origin::Warm,
            },
            Event::Report {
                profile: "smoke".into(),
                verified: true,
                report: report.into(),
                req: 4,
            },
            Event::Record {
                key: "mst/mips/tag8".into(),
                origin: Origin::Cached,
                snap_hash: "00000000deadbeef".into(),
                record: "{\"key\":\"mst/mips/tag8\"}".into(),
                req: 17,
            },
            Event::Profile {
                key: "mst/cheri/tag8".into(),
                record: "{}".into(),
                profile: "{\"total\":{}}".into(),
                req: 0,
            },
            Event::Stats(StatsSnapshot {
                requests: 9,
                jobs: 40,
                cache_hits: 12,
                uptime_ms: 4321,
                workers: 2,
                cache_enabled: true,
                warm_enabled: true,
                version: "0.1.0".into(),
                ..StatsSnapshot::default()
            }),
            Event::Metrics { text: "# TYPE serve_jobs_total counter\nserve_jobs_total 3\n".into() },
            Event::Health(HealthSnapshot {
                ready: true,
                prewarm: "done".into(),
                workers_alive: 2,
                workers: 2,
                queue_depth: 0,
                queue_limit: 256,
                uptime_ms: 99,
            }),
            Event::Ok,
            Event::Error { message: "no pooled snapshot\nfor job".into() },
        ];
        for ev in evs {
            let line = encode_event(&ev);
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(decode_event(&line).unwrap(), ev, "{line}");
        }
    }

    #[test]
    fn embedded_report_bytes_survive_the_wire() {
        // Multi-line payload with quotes and tabs: the exact bytes must
        // come back out — this is what the byte-identity gate rides on.
        let payload = "{\"a\":1,\n\t\"b\":[2,3]}\n";
        let ev = Event::Report {
            profile: "full".into(),
            verified: false,
            report: payload.into(),
            req: 1,
        };
        match decode_event(&encode_event(&ev)).unwrap() {
            Event::Report { report, .. } => assert_eq!(report, payload),
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn decode_is_layout_insensitive() {
        // Same request, different field order and whitespace.
        let a = decode_request(
            "{\"type\":\"job\",\"workload\":\"treeadd\",\"strategy\":\"cheri\",\"tag_kb\":8}",
        )
        .unwrap();
        let b = decode_request(
            "  { \"tag_kb\" : 8 , \"strategy\" : \"cheri\" ,\n \"workload\" : \"treeadd\" , \"type\" : \"job\" } ",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn decode_tolerates_pre_telemetry_lines() {
        // Lines from a server predating the telemetry fields decode with
        // defaults rather than erroring.
        match decode_event("{\"type\":\"record\",\"key\":\"k\",\"origin\":\"cold\",\"snap_hash\":\"\",\"record\":\"{}\"}")
            .unwrap()
        {
            Event::Record { req, .. } => assert_eq!(req, 0),
            other => panic!("wrong event: {other:?}"),
        }
        match decode_event(
            "{\"type\":\"stats\",\"requests\":1,\"jobs\":0,\"cache_hits\":0,\"cache_misses\":0,\
             \"cached_results\":0,\"warm_runs\":0,\"cold_runs\":0,\"pool_entries\":0}",
        )
        .unwrap()
        {
            Event::Stats(s) => {
                assert_eq!(s.uptime_ms, 0);
                assert_eq!(s.version, "");
                assert!(!s.cache_enabled);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_unknown_names() {
        assert!(decode_request("{\"type\":\"warp\"}").is_err());
        assert!(decode_request(
            "{\"type\":\"job\",\"workload\":\"nosuch\",\"strategy\":\"cheri\",\"tag_kb\":8}"
        )
        .is_err());
        assert!(decode_request("{\"type\":\"sweep\",\"profile\":\"gigantic\"}").is_err());
        assert!(decode_event("{\"type\":\"blip\"}").is_err());
    }
}
