//! The snapshot pool: pre-booted phase-2 machine states, one per job
//! configuration, that workers clone-and-resume for warm execution.
//!
//! Every Olden workload issues `SYS_PHASE 2` when its computation phase
//! begins, so a snapshot at that boundary has compilation, exec, and
//! allocation already paid for ([`WARM_SNAPSHOT_PHASE`]). The pool maps
//! a job's canonical configuration ([`JobSpec::canonical_json`]) to that
//! snapshot plus its [`StateHash`]; the hash feeds the result-cache key,
//! binding every cached result to the exact state it was computed from.
//!
//! Entries are immutable once inserted (`Arc`-shared, read-only), so any
//! number of workers can resume from the same snapshot concurrently.
//! The simulator is deterministic, so a second cold run of the same
//! configuration reproduces the same snapshot byte-for-byte; the pool
//! keeps the first entry and drops duplicates, making racing inserts
//! harmless.

use cheri_olden::dsl::BenchSession;
use cheri_snap::{Snapshot, StateHash};
use cheri_sweep::{JobSpec, WARM_SNAPSHOT_PHASE};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One pooled pre-boot: the phase-2 snapshot and its canonical hash.
pub struct PoolEntry {
    /// The machine+kernel state at the allocation → computation
    /// boundary.
    pub snapshot: Snapshot,
    /// [`StateHash`] of the snapshot's canonical serialization,
    /// computed once at insertion.
    pub hash: StateHash,
}

/// A thread-safe map from canonical job configuration to pooled
/// snapshot.
#[derive(Default)]
pub struct SnapshotPool {
    map: Mutex<HashMap<String, Arc<PoolEntry>>>,
}

impl SnapshotPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> SnapshotPool {
        SnapshotPool::default()
    }

    /// Looks up the entry for a canonical configuration.
    #[must_use]
    pub fn get(&self, canonical_config: &str) -> Option<Arc<PoolEntry>> {
        self.map.lock().map_or(None, |m| m.get(canonical_config).cloned())
    }

    /// Inserts a snapshot (hashing it once) and returns the resident
    /// entry. If another worker won the race, the existing entry is
    /// returned and the duplicate dropped — deterministic execution
    /// makes the two byte-identical anyway.
    pub fn insert(&self, canonical_config: String, snapshot: Snapshot) -> Arc<PoolEntry> {
        let hash = snapshot.state_hash();
        let entry = Arc::new(PoolEntry { snapshot, hash });
        match self.map.lock() {
            Ok(mut m) => m.entry(canonical_config).or_insert(entry).clone(),
            Err(_) => entry,
        }
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().map_or(0, |m| m.len())
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Boots one job to the phase-2 boundary and returns the snapshot —
/// the pre-warm path, which pays boot + compile + exec + allocation but
/// *not* the computation phase. Returns `Ok(None)` if the workload
/// exits before the boundary (nothing to pool; every run of it is cold
/// by construction).
///
/// # Errors
///
/// Compile/OS errors rendered as strings, as in the sweep runners.
pub fn boot_snapshot(spec: &JobSpec) -> Result<Option<Snapshot>, String> {
    let strategy = spec.strategy.strategy();
    let module = spec.workload.module(&spec.params);
    let mut session =
        BenchSession::start_module(&module, strategy.as_ref(), spec.machine_config(), None)
            .map_err(|e| e.to_string())?;
    match session.run_until_phase(WARM_SNAPSHOT_PHASE).map_err(|e| e.to_string())? {
        Some(_) => Ok(None),
        None => Ok(Some(session.snapshot())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_olden::OldenParams;
    use cheri_sweep::StrategyKind;
    use cheri_work::Workload;

    #[test]
    fn pool_insert_is_first_writer_wins() {
        let spec = JobSpec::new(Workload::Treeadd, StrategyKind::Mips, OldenParams::scaled());
        let snap = boot_snapshot(&spec).unwrap().expect("treeadd reaches phase 2");
        let pool = SnapshotPool::new();
        let canon = spec.canonical_json();
        let first = pool.insert(canon.clone(), snap.clone());
        let second = pool.insert(canon.clone(), snap);
        assert!(Arc::ptr_eq(&first, &second), "duplicate insert must return the resident entry");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(&canon).unwrap().hash, first.hash);
        assert!(pool.get("other").is_none());
    }
}
