//! Service telemetry: the glue between the generic `cheri-telem`
//! primitives and this service's metric vocabulary.
//!
//! One [`ServiceTelem`] is shared by the server, the engine, and the
//! worker pool. It owns the metric *names* and the batching discipline
//! that makes the scrape invariants hold: every histogram observation
//! is recorded in the same registry critical section as the counter
//! that counts it, so `_count == counter` in every `metrics` scrape —
//! see the table in DESIGN.md §4i.
//!
//! Telemetry must never perturb served results. That holds by
//! construction: the engine's runners are the *same functions* whether
//! observed or not (`run_spec_split_spanned` with a no-op hook *is*
//! `run_spec_split`), all metrics are derived from host clocks and
//! counters outside the simulator, and a [`ServiceTelem`] constructed
//! disabled turns every operation into a no-op — the detached half of
//! the overhead A/B in EXPERIMENTS.md.

use crate::protocol::Origin;
use cheri_telem::{SpanLog, SpanPhase, TelemRegistry};
use cheri_trace::json::JsonWriter;
use std::time::Instant;

/// Counter: jobs completed through the engine (any origin).
pub const JOBS: &str = "serve_jobs_total";
/// Counters: jobs completed per origin (their sum equals [`JOBS`]).
pub const JOBS_CACHED: &str = "serve_jobs_cached_total";
/// See [`JOBS_CACHED`].
pub const JOBS_WARM: &str = "serve_jobs_warm_total";
/// See [`JOBS_CACHED`].
pub const JOBS_COLD: &str = "serve_jobs_cold_total";
/// Counters paired 1:1 with the phase histograms below.
pub const BOOTS: &str = "serve_boots_total";
/// See [`BOOTS`].
pub const RESTORES: &str = "serve_restores_total";
/// See [`BOOTS`].
pub const SIMULATES: &str = "serve_simulates_total";
/// See [`BOOTS`].
pub const QUEUE_WAITS: &str = "serve_queue_waits_total";
/// See [`BOOTS`].
pub const SERIALIZES: &str = "serve_serializes_total";
/// Histogram: wall latency of one engine job (`_count` == [`JOBS`]).
pub const JOB_LATENCY_US: &str = "serve_job_latency_us";
/// Histograms: per-phase wall times (`_count` == their counters).
pub const BOOT_US: &str = "serve_boot_us";
/// See [`BOOT_US`].
pub const RESTORE_US: &str = "serve_restore_us";
/// See [`BOOT_US`].
pub const SIMULATE_US: &str = "serve_simulate_us";
/// See [`BOOT_US`].
pub const QUEUE_WAIT_US: &str = "serve_queue_wait_us";
/// See [`BOOT_US`].
pub const SERIALIZE_US: &str = "serve_serialize_us";
/// Gauge: exact maximum of [`JOB_LATENCY_US`] (the bucketed exposition
/// cannot carry it; maintained in the same batch as the observation).
pub const JOB_LATENCY_MAX_US: &str = "serve_job_latency_max_us";
/// Gauges refreshed from live server state at scrape time.
pub const QUEUE_DEPTH: &str = "serve_queue_depth";
/// See [`QUEUE_DEPTH`].
pub const WORKERS: &str = "serve_workers";
/// See [`QUEUE_DEPTH`].
pub const WORKERS_ALIVE: &str = "serve_workers_alive";
/// See [`QUEUE_DEPTH`].
pub const WORKERS_BUSY: &str = "serve_workers_busy";
/// See [`QUEUE_DEPTH`].
pub const POOL_ENTRIES: &str = "serve_pool_entries";
/// See [`QUEUE_DEPTH`].
pub const CACHED_RESULTS: &str = "serve_cached_results";

/// The (histogram, counter) pairs whose `_count`/`_sum` must equal the
/// counter in every scrape — the machine-checkable consistency table.
pub const HIST_COUNTER_PAIRS: &[(&str, &str)] = &[
    (JOB_LATENCY_US, JOBS),
    (BOOT_US, BOOTS),
    (RESTORE_US, RESTORES),
    (SIMULATE_US, SIMULATES),
    (QUEUE_WAIT_US, QUEUE_WAITS),
    (SERIALIZE_US, SERIALIZES),
];

/// Identifies one engine job inside one request for span attribution:
/// `req` is the server-assigned monotonic request id (0 for work not
/// driven by a wire request — tests, the selfcheck gate), `job` the
/// index of the job within the request (0 for single-job verbs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobCtx {
    /// The request id (one Chrome-trace lane per id).
    pub req: u64,
    /// The job index within the request.
    pub job: u64,
}

impl JobCtx {
    /// The context for a single-job request.
    #[must_use]
    pub fn single(req: u64) -> JobCtx {
        JobCtx { req, job: 0 }
    }
}

/// The service's shared telemetry state: one registry, one span log.
pub struct ServiceTelem {
    registry: TelemRegistry,
    spans: SpanLog,
}

pub(crate) fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl ServiceTelem {
    /// Fresh telemetry; disabled makes every operation a no-op.
    #[must_use]
    pub fn new(enabled: bool) -> ServiceTelem {
        ServiceTelem { registry: TelemRegistry::new(enabled), spans: SpanLog::new(enabled) }
    }

    /// Whether telemetry is recorded at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// The metric registry.
    #[must_use]
    pub fn registry(&self) -> &TelemRegistry {
        &self.registry
    }

    /// The span log.
    #[must_use]
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Opens the request-level span for a work request.
    pub fn request_begin(&self, req: u64) {
        self.spans.begin(SpanPhase::Request, req, 0);
    }

    /// Closes the request-level span, tagged with how the request
    /// resolved (an origin name, `"sweep"`, or `"error"`).
    pub fn request_end(&self, req: u64, tag: &'static str) {
        self.spans.end_tagged(SpanPhase::Request, req, 0, tag);
    }

    /// Opens the queue-wait span (at submission to the worker pool).
    pub fn queue_begin(&self, ctx: JobCtx) {
        self.spans.begin(SpanPhase::Queue, ctx.req, ctx.job);
    }

    /// Closes the queue-wait span (when a worker picks the task up) and
    /// records the wait with its counter in one batch.
    pub fn queue_end(&self, ctx: JobCtx, waited_us: u64) {
        self.spans.end(SpanPhase::Queue, ctx.req, ctx.job);
        self.registry.batch(|b| {
            b.add(QUEUE_WAITS, 1);
            b.record(QUEUE_WAIT_US, waited_us);
        });
    }

    /// Runs `f` (a serialisation step) inside a serialize span,
    /// recording its wall time with its counter in one batch.
    pub fn serialize_span<T>(&self, req: u64, f: impl FnOnce() -> T) -> T {
        self.spans.begin(SpanPhase::Serialize, req, 0);
        let t0 = Instant::now();
        let out = f();
        let us = elapsed_us(t0);
        self.spans.end(SpanPhase::Serialize, req, 0);
        self.registry.batch(|b| {
            b.add(SERIALIZES, 1);
            b.record(SERIALIZE_US, us);
        });
        out
    }

    /// Records one completed engine job: the per-origin counter, the
    /// total, the latency observation, and the exact max — one batch,
    /// so `serve_jobs_total == cached + warm + cold ==
    /// serve_job_latency_us._count` in every scrape.
    pub fn job_finished(&self, origin: Origin, latency_us: u64) {
        let per_origin = match origin {
            Origin::Cached => JOBS_CACHED,
            Origin::Warm => JOBS_WARM,
            Origin::Cold => JOBS_COLD,
        };
        self.registry.batch(|b| {
            b.add(JOBS, 1);
            b.add(per_origin, 1);
            b.record(JOB_LATENCY_US, latency_us);
            b.gauge_max(JOB_LATENCY_MAX_US, latency_us);
        });
    }

    /// One `metrics` scrape: refreshes the point-in-time gauges (live
    /// server state sampled at scrape time) in one batch, then renders
    /// the registry as a Prometheus text exposition. Gauge refresh is
    /// idempotent, so idle scrapes are byte-identical.
    #[must_use]
    pub fn scrape(&self, gauges: &[(&'static str, u64)]) -> String {
        self.registry.batch(|b| {
            for (name, value) in gauges {
                b.set_gauge(name, *value);
            }
        });
        cheri_telem::render_exposition(&self.registry.snapshot())
    }

    /// The final-flush document: a Chrome trace-event JSON (loadable in
    /// `chrome://tracing` / Perfetto, which ignore the extra key) with
    /// the final metric snapshot embedded under `telemMetrics`.
    #[must_use]
    pub fn flush_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.raw_field("traceEvents", &self.spans.to_chrome_events_json());
        w.str_field("displayTimeUnit", "ms");
        w.raw_field("telemMetrics", &self.registry.snapshot().to_json());
        w.close()
    }
}

/// Adapts the sweep runners' span hook (`(phase_name, is_begin)`) to
/// the span log and the phase histograms: begin events start a host
/// timer and open the span; end events close it (tagged with the job's
/// origin) and record the duration with its counter in one batch.
pub struct PhaseRecorder<'a> {
    telem: &'a ServiceTelem,
    ctx: JobCtx,
    origin_tag: &'static str,
    started: Vec<(&'static str, Instant)>,
}

fn phase_metrics(name: &str) -> Option<(SpanPhase, &'static str, &'static str)> {
    Some(match name {
        "boot" => (SpanPhase::Boot, BOOTS, BOOT_US),
        "restore" => (SpanPhase::Restore, RESTORES, RESTORE_US),
        "simulate" => (SpanPhase::Simulate, SIMULATES, SIMULATE_US),
        _ => return None,
    })
}

impl<'a> PhaseRecorder<'a> {
    /// A recorder for one job; `origin_tag` labels every end event.
    #[must_use]
    pub fn new(
        telem: &'a ServiceTelem,
        ctx: JobCtx,
        origin_tag: &'static str,
    ) -> PhaseRecorder<'a> {
        PhaseRecorder { telem, ctx, origin_tag, started: Vec::new() }
    }

    /// The hook body: pass `&mut |name, begin| rec.note(name, begin)`
    /// to a `*_spanned` runner.
    pub fn note(&mut self, name: &'static str, begin: bool) {
        if !self.telem.enabled() {
            return;
        }
        let Some((phase, counter, hist)) = phase_metrics(name) else { return };
        if begin {
            self.started.push((name, Instant::now()));
            self.telem.spans.begin(phase, self.ctx.req, self.ctx.job);
        } else {
            let us = self
                .started
                .iter()
                .rposition(|(n, _)| *n == name)
                .map(|i| elapsed_us(self.started.remove(i).1))
                .unwrap_or(0);
            self.telem.spans.end_tagged(phase, self.ctx.req, self.ctx.job, self.origin_tag);
            self.telem.registry.batch(|b| {
                b.add(counter, 1);
                b.record(hist, us);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_recorder_balances_and_pairs_counts() {
        let telem = ServiceTelem::new(true);
        let ctx = JobCtx { req: 5, job: 1 };
        let mut rec = PhaseRecorder::new(&telem, ctx, "warm");
        rec.note("restore", true);
        rec.note("restore", false);
        rec.note("simulate", true);
        rec.note("simulate", false);
        telem.job_finished(Origin::Warm, 1234);
        telem.spans().check_balance().unwrap();
        let snap = telem.registry().snapshot();
        for (hist, counter) in HIST_COUNTER_PAIRS {
            let count = snap.histogram(hist).map_or(0, cheri_telem::HistSnapshot::count);
            assert_eq!(count, snap.counter(counter), "{hist} vs {counter}");
        }
        assert_eq!(snap.counter(JOBS), 1);
        assert_eq!(snap.counter(JOBS_WARM), 1);
        assert_eq!(snap.gauge(JOB_LATENCY_MAX_US), 1234);
    }

    #[test]
    fn disabled_telem_is_inert() {
        let telem = ServiceTelem::new(false);
        let mut rec = PhaseRecorder::new(&telem, JobCtx::default(), "cold");
        rec.note("boot", true);
        rec.note("boot", false);
        telem.job_finished(Origin::Cold, 9);
        let out = telem.serialize_span(1, || 42);
        assert_eq!(out, 42);
        assert!(telem.spans().is_empty());
        assert_eq!(telem.registry().snapshot(), cheri_telem::TelemSnapshot::default());
    }
}
