//! `cheri-serve`: a persistent sweep/profile simulation service with a
//! snapshot-warmed worker pool.
//!
//! The batch binaries (`xsweep`, `profbin`) pay a full boot + compile +
//! exec + allocation for every job of every invocation. This crate
//! keeps a simulator *resident*: a TCP server ([`Server`]) speaking
//! line-delimited JSON ([`protocol`], `cheri-serve/v1`) shards incoming
//! sweep/job/profile/replay requests across a persistent [`WorkerPool`],
//! executes them warm from a pool of pre-booted phase-2 snapshots
//! ([`SnapshotPool`]), and dedups identical work through a
//! content-hashed result cache ([`ResultCache`]) keyed on the job's
//! canonical configuration plus the [`cheri_snap::StateHash`] of the
//! snapshot it would run from.
//!
//! The service's contract is **transparency**: a served report must be
//! byte-identical to what the cold batch path (`xsweep`) writes for the
//! same matrix. Cache, pool, and sharding may change *where* a result
//! comes from, never *what* it is — [`transparency_gate`] asserts this
//! in-process, the `serveload --expect` flag asserts it end-to-end over
//! the wire, and CI pins a served smoke report against the blessed
//! baseline. The contract is only achievable because the simulator is
//! deterministic and both paths bottom out in the same `cheri-sweep`
//! runners; see DESIGN.md §4f.
//!
//! Shutdown (protocol `shutdown` request, or SIGINT/SIGTERM in the
//! binary via [`signal`]) is a cooperative drain: jobs already executing
//! finish, queued jobs bail, and served reports are only ever persisted
//! whole and atomically — a kill mid-sweep leaves no partial files.

pub mod cache;
pub mod client;
pub mod engine;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod telem;

pub use cache::{cache_key, cache_key_canonical, ResultCache, NO_SNAPSHOT};
pub use client::Client;
pub use engine::{
    run_profile, transparency_gate, verify_against_batch, JobEngine, Stop, WorkerPool,
};
pub use pool::{boot_snapshot, PoolEntry, SnapshotPool};
pub use protocol::{
    decode_event, decode_request, encode_event, encode_request, Event, HealthSnapshot, JobParts,
    Origin, Request, StatsSnapshot, SCHEMA,
};
pub use server::{Server, ServerConfig};
pub use telem::{JobCtx, PhaseRecorder, ServiceTelem, HIST_COUNTER_PAIRS};
