//! A blocking client for the `cheri-serve/v1` protocol, used by the
//! `serveload` load generator, the CI smoke round-trip, and the tests.
//!
//! The client is deliberately thin: it frames lines, encodes requests,
//! decodes events, and offers one helper per request kind that runs the
//! request to its terminal event. Report payloads are returned as the
//! raw strings carried on the wire — the byte-identity contract means
//! the caller compares and persists those bytes, so the client never
//! re-serialises them.

use crate::protocol::{
    decode_event, encode_request, Event, HealthSnapshot, JobParts, Origin, Request, StatsSnapshot,
};
use cheri_sweep::Profile;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a `cheri-serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    last_req: u64,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer, last_req: 0 })
    }

    /// The server-assigned request id of the most recent terminal
    /// work event read on this connection (0 before any) — the span
    /// lane to look for in a `--telem-out` timeline.
    #[must_use]
    pub fn last_req(&self) -> u64 {
        self.last_req
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Socket errors rendered as strings.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        let mut line = encode_request(req);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Reads and decodes the next event line.
    ///
    /// # Errors
    ///
    /// Socket errors, a closed connection, or a malformed event.
    pub fn next_event(&mut self) -> Result<Event, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => {
                let ev = decode_event(&line)?;
                if let Event::Report { req, .. }
                | Event::Record { req, .. }
                | Event::Profile { req, .. } = &ev
                {
                    self.last_req = *req;
                }
                Ok(ev)
            }
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Pings the server; returns its schema string.
    ///
    /// # Errors
    ///
    /// Transport errors or an unexpected event.
    pub fn ping(&mut self) -> Result<String, String> {
        self.send(&Request::Ping)?;
        match self.next_event()? {
            Event::Pong { schema } => Ok(schema),
            Event::Error { message } => Err(message),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Runs a sweep to completion, invoking `progress` per finished job,
    /// and returns the raw report bytes plus whether the server's
    /// in-process transparency gate ran (`verify: true` requests).
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side `error` event (including the
    /// drained-on-shutdown abort).
    pub fn sweep<F>(
        &mut self,
        profile: Profile,
        cache: bool,
        verify: bool,
        mut progress: F,
    ) -> Result<(String, bool), String>
    where
        F: FnMut(u64, u64, &str, Origin),
    {
        self.send(&Request::Sweep { profile, cache, verify })?;
        loop {
            match self.next_event()? {
                Event::Progress { done, total, key, origin } => progress(done, total, &key, origin),
                Event::Report { report, verified, .. } => return Ok((report, verified)),
                Event::Error { message } => return Err(message),
                other => return Err(format!("expected progress/report, got {other:?}")),
            }
        }
    }

    /// Runs one job; returns `(key, origin, raw record bytes)`.
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side `error` event.
    pub fn job(
        &mut self,
        parts: JobParts,
        cache: bool,
    ) -> Result<(String, Origin, String), String> {
        self.send(&Request::Job { parts, cache })?;
        match self.next_event()? {
            Event::Record { key, origin, record, .. } => Ok((key, origin, record)),
            Event::Error { message } => Err(message),
            other => Err(format!("expected record, got {other:?}")),
        }
    }

    /// Runs one profiled job; returns `(key, raw record, raw profile)`.
    ///
    /// # Errors
    ///
    /// Transport errors or a server-side `error` event.
    pub fn profile(&mut self, parts: JobParts) -> Result<(String, String, String), String> {
        self.send(&Request::Profile { parts })?;
        match self.next_event()? {
            Event::Profile { key, record, profile, .. } => Ok((key, record, profile)),
            Event::Error { message } => Err(message),
            other => Err(format!("expected profile, got {other:?}")),
        }
    }

    /// Replays one job from its pooled snapshot; returns `(key,
    /// snapshot state hash, raw record bytes)`.
    ///
    /// # Errors
    ///
    /// Transport errors, no pooled snapshot, or a server-side error.
    pub fn replay(&mut self, parts: JobParts) -> Result<(String, String, String), String> {
        self.send(&Request::Replay { parts })?;
        match self.next_event()? {
            Event::Record { key, snap_hash, record, .. } => Ok((key, snap_hash, record)),
            Event::Error { message } => Err(message),
            other => Err(format!("expected record, got {other:?}")),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport errors or an unexpected event.
    pub fn stats(&mut self) -> Result<StatsSnapshot, String> {
        self.send(&Request::Stats)?;
        match self.next_event()? {
            Event::Stats(s) => Ok(s),
            Event::Error { message } => Err(message),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Fetches one Prometheus text exposition of the server's metrics.
    ///
    /// # Errors
    ///
    /// Transport errors or an unexpected event.
    pub fn metrics(&mut self) -> Result<String, String> {
        self.send(&Request::Metrics)?;
        match self.next_event()? {
            Event::Metrics { text } => Ok(text),
            Event::Error { message } => Err(message),
            other => Err(format!("expected metrics, got {other:?}")),
        }
    }

    /// Fetches the server's readiness.
    ///
    /// # Errors
    ///
    /// Transport errors or an unexpected event.
    pub fn health(&mut self) -> Result<HealthSnapshot, String> {
        self.send(&Request::Health)?;
        match self.next_event()? {
            Event::Health(h) => Ok(h),
            Event::Error { message } => Err(message),
            other => Err(format!("expected health, got {other:?}")),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Transport errors or an unexpected event.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        match self.next_event()? {
            Event::Ok => Ok(()),
            Event::Error { message } => Err(message),
            other => Err(format!("expected ok, got {other:?}")),
        }
    }
}
