//! The content-hashed result cache: identical work is executed once.
//!
//! A cache key binds together everything that determines a job's
//! result: the job's complete canonical configuration
//! ([`JobSpec::canonical_json`] — workload, strategy, tag-cache size,
//! variant, every problem-size parameter) and the [`StateHash`] of the
//! pooled phase-2 snapshot the job would execute from. The simulator is
//! deterministic, so (config, start state) → result is a pure function
//! and a hit can be served as stored bytes without re-execution.
//!
//! Hashing the *canonical* config — not the request's raw bytes — means
//! two clients spelling the same job with different JSON field order,
//! whitespace, or strategy aliases dedup onto one entry. Folding the
//! snapshot hash in means a pool rebuilt from different state (a changed
//! simulator, a different parameter preset) can never serve a stale
//! result: the key changes with the state.

use cheri_snap::StateHash;
use cheri_sweep::{JobRecord, JobSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The [`StateHash`] used when a job has no pooled snapshot (the
/// workload exits before the phase-2 boundary, so every execution is a
/// full cold run from the same empty prefix).
pub const NO_SNAPSHOT: StateHash = StateHash(0);

/// Computes the result-cache key for a job: FNV-1a over the canonical
/// configuration followed by the snapshot hash. The two halves are
/// joined with a `#snap=` separator so neither can masquerade as part
/// of the other.
#[must_use]
pub fn cache_key(spec: &JobSpec, snap: StateHash) -> u64 {
    cache_key_canonical(&spec.canonical_json(), snap)
}

/// As [`cache_key`], from an already-canonicalised configuration (the
/// engine canonicalises once per execution and reuses the string).
#[must_use]
pub fn cache_key_canonical(canonical_config: &str, snap: StateHash) -> u64 {
    let mut text = String::with_capacity(canonical_config.len() + 24);
    text.push_str(canonical_config);
    text.push_str("#snap=");
    text.push_str(&snap.to_string());
    StateHash::of_bytes(text.as_bytes()).0
}

/// A thread-safe result cache with hit/miss accounting.
///
/// A disabled cache ([`ResultCache::new`] with `enabled = false`) never
/// hits and never stores, so a load-generation run can force every
/// request down the execution path while keeping the same call sites.
pub struct ResultCache {
    map: Mutex<HashMap<u64, JobRecord>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new(enabled: bool) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled,
        }
    }

    /// Whether this cache stores anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Looks a key up, counting the hit or miss. Always a (counted)
    /// miss when the cache is disabled.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<JobRecord> {
        let found = if self.enabled {
            self.map.lock().map_or(None, |m| m.get(&key).cloned())
        } else {
            None
        };
        match found {
            Some(rec) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rec)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a record (no-op when disabled). Two workers racing on the
    /// same key store byte-identical records — the simulator is
    /// deterministic — so last-write-wins is harmless.
    pub fn store(&self, key: u64, record: &JobRecord) {
        if self.enabled {
            if let Ok(mut m) = self.map.lock() {
                m.insert(key, record.clone());
            }
        }
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().map_or(0, |m| m.len())
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_olden::OldenParams;
    use cheri_sweep::StrategyKind;
    use cheri_work::Workload;
    use std::collections::BTreeMap;

    fn record(key: &str) -> JobRecord {
        JobRecord {
            key: key.to_string(),
            workload: "treeadd".into(),
            strategy: "cheri".into(),
            cap_bits: 256,
            tag_cache_kb: 8,
            checksums: vec![42],
            counters: BTreeMap::new(),
        }
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ResultCache::new(false);
        cache.store(7, &record("a"));
        assert_eq!(cache.lookup(7), None);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn enabled_cache_counts_hits_and_misses() {
        let cache = ResultCache::new(true);
        assert_eq!(cache.lookup(1), None);
        cache.store(1, &record("a"));
        assert_eq!(cache.lookup(1).unwrap().key, "a");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn key_separates_config_from_snapshot() {
        let spec = JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, OldenParams::scaled());
        let k1 = cache_key(&spec, NO_SNAPSHOT);
        let k2 = cache_key(&spec, StateHash(1));
        assert_ne!(k1, k2, "snapshot hash must contribute to the key");
        let other = JobSpec::new(Workload::Mst, StrategyKind::Cheri256, OldenParams::scaled());
        assert_ne!(cache_key(&other, NO_SNAPSHOT), k1, "config must contribute to the key");
        assert_eq!(cache_key(&spec, NO_SNAPSHOT), k1, "key must be stable");
        // Every workload (including the runtime-system pair) keys to a
        // distinct entry at the same strategy/params.
        let keys: Vec<u64> = Workload::ALL
            .into_iter()
            .map(|w| {
                let s = JobSpec::new(w, StrategyKind::Cheri256, OldenParams::scaled());
                cache_key(&s, NO_SNAPSHOT)
            })
            .collect();
        let unique: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len(), "workloads must not collide in the cache");
    }
}
