//! Minimal async-signal-safe shutdown flag for SIGINT / SIGTERM.
//!
//! The workspace builds offline with no `libc`/`signal-hook` crates, so
//! the handler is registered through the C `signal(2)` entry point that
//! `std` already links on Unix. The handler does the only
//! async-signal-safe thing possible: it stores into a static atomic,
//! which [`crate::Stop`] tokens built with `watch_signals` poll between
//! jobs. On non-Unix targets installation is a no-op and shutdown is
//! driven purely by the `shutdown` protocol request.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has been delivered since [`install`].
#[must_use]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    #[link_name = "signal"]
    fn libc_signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the flag-setting handler for SIGINT (2) and SIGTERM (15).
/// Call once from the binary's `main`; harmless to call again.
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `signal` is registering an async-signal-safe handler
    // (a single atomic store) for two standard termination signals.
    unsafe {
        libc_signal(2, on_signal);
        libc_signal(15, on_signal);
    }
}
