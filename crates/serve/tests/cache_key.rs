//! Result-cache key stability: the cache key must be a function of the
//! job's *configuration* and the *state* it runs from — never of wire
//! formatting — and must change whenever either input changes.

use cheri_olden::OldenParams;
use cheri_serve::cache::{cache_key, NO_SNAPSHOT};
use cheri_serve::pool::boot_snapshot;
use cheri_serve::protocol::decode_request;
use cheri_serve::Request;
use cheri_snap::{Snapshot, StateHash};
use cheri_sweep::JobSpec;

/// The same job spelled with different field order and whitespace must
/// decode to the same spec and therefore the same cache key — identity
/// is decided by the canonical serialization, not the request bytes.
#[test]
fn wire_layout_does_not_change_the_key() {
    let a = "{\"type\":\"job\",\"workload\":\"treeadd\",\"strategy\":\"cheri\",\"tag_kb\":8}";
    let b = "  { \"tag_kb\" : 8 ,\n \"strategy\" : \"cheri\" , \"workload\" : \"treeadd\" , \
             \"type\" : \"job\" }  ";
    let spec_of = |line: &str| -> JobSpec {
        match decode_request(line).unwrap() {
            Request::Job { parts, .. } => parts.spec().unwrap(),
            other => panic!("expected a job request, got {other:?}"),
        }
    };
    let (sa, sb) = (spec_of(a), spec_of(b));
    assert_eq!(sa.canonical_json(), sb.canonical_json());
    let snap = StateHash(0xdead_beef);
    assert_eq!(cache_key(&sa, snap), cache_key(&sb, snap));
}

/// Aliases resolve to the same strategy, hence the same key.
#[test]
fn strategy_aliases_share_a_key() {
    let params = OldenParams::scaled();
    let a = JobSpec::from_parts("treeadd", "cheri", 8, params).unwrap();
    let b = JobSpec::from_parts("treeadd", "cap", 8, params).unwrap();
    assert_eq!(cache_key(&a, NO_SNAPSHOT), cache_key(&b, NO_SNAPSHOT));
}

/// Any single configuration change must produce a different key: a
/// collision here would serve one experiment's numbers as another's.
#[test]
fn every_config_field_changes_the_key() {
    let params = OldenParams::scaled();
    let base = JobSpec::from_parts("treeadd", "cheri", 8, params).unwrap();
    let base_key = cache_key(&base, NO_SNAPSHOT);

    let variants = [
        JobSpec::from_parts("mst", "cheri", 8, params).unwrap(),
        JobSpec::from_parts("treeadd", "mips", 8, params).unwrap(),
        JobSpec::from_parts("treeadd", "cheri128", 8, params).unwrap(),
        JobSpec::from_parts("treeadd", "cheri", 16, params).unwrap(),
        JobSpec::from_parts("treeadd", "cheri", 8, OldenParams::medium()).unwrap(),
    ];
    for v in &variants {
        assert_ne!(
            cache_key(v, NO_SNAPSHOT),
            base_key,
            "distinct config must give a distinct key: {}",
            v.canonical_json()
        );
    }

    // The starting state is part of the key too: the same config warm
    // vs from a different snapshot must not collide.
    assert_ne!(cache_key(&base, StateHash(1)), base_key);
    assert_ne!(cache_key(&base, StateHash(1)), cache_key(&base, StateHash(2)));
}

/// A snapshot must hash identically after a serialization round-trip:
/// the pool hashes at insertion, and replay/triage hash after restore —
/// if the two disagreed, every cache key would dangle.
#[test]
fn restored_snapshot_hashes_like_the_original() {
    let params = OldenParams::scaled();
    let spec = JobSpec::from_parts("treeadd", "mips", 8, params).unwrap();
    let snap = boot_snapshot(&spec).unwrap().expect("treeadd reaches the phase-2 boundary");
    let original = snap.state_hash();
    let restored = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(restored.state_hash(), original);
    // And the hash feeds a different key than the no-snapshot case.
    assert_ne!(cache_key(&spec, original), cache_key(&spec, NO_SNAPSHOT));
}
