//! The `metrics` and `health` wire verbs: exposition validity, idle
//! byte-stability, the scrape-time consistency invariants, and the
//! readiness flip after a background prewarm.

use cheri_serve::{Client, JobParts, Origin, Server, ServerConfig, HIST_COUNTER_PAIRS};
use cheri_sweep::Profile;
use cheri_telem::parse_exposition;
use std::time::{Duration, Instant};

fn spawn_server(cfg: ServerConfig) -> (String, Server) {
    Server::bind("127.0.0.1:0", cfg).map(|s| (s.local_addr().unwrap().to_string(), s)).unwrap()
}

/// An idle server's exposition is pinned byte-for-byte: only the six
/// scrape-time gauges, in name order, and a second scrape changes
/// nothing. Read-only verbs must not create metrics — that is the whole
/// byte-stability design.
#[test]
fn idle_scrape_is_golden_and_byte_stable() {
    let (addr, server) = spawn_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(&addr).unwrap();

    let first = client.metrics().unwrap();
    let golden = "\
# TYPE serve_cached_results gauge
serve_cached_results 0
# TYPE serve_pool_entries gauge
serve_pool_entries 0
# TYPE serve_queue_depth gauge
serve_queue_depth 0
# TYPE serve_workers gauge
serve_workers 2
# TYPE serve_workers_alive gauge
serve_workers_alive 2
# TYPE serve_workers_busy gauge
serve_workers_busy 0
";
    assert_eq!(first, golden, "idle exposition must match the golden scrape exactly");

    // Interleave other read-only verbs, then scrape again: not a byte
    // may differ.
    let _ = client.ping().unwrap();
    let _ = client.health().unwrap();
    let _ = client.stats().unwrap();
    let second = client.metrics().unwrap();
    assert_eq!(first, second, "idle scrapes must be byte-identical");

    // And the exposition passes its own validating parser.
    parse_exposition(&first).expect("golden scrape must parse");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// After real work, every scrape must be internally consistent: each
/// phase histogram's `_count` (and the exposition's `+Inf` bucket)
/// equals its paired counter, and the per-origin job counters sum to
/// the total — the invariants the batched registry writes guarantee.
#[test]
fn scrape_invariants_hold_after_work() {
    let (addr, server) = spawn_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(&addr).unwrap();

    let parts = JobParts {
        workload: "treeadd".into(),
        strategy: "cheri".into(),
        tag_kb: 8,
        profile: Profile::Smoke,
    };
    // Cold, then cached: two origins exercised, histograms populated.
    let (_, first_origin, _) = client.job(parts.clone(), true).unwrap();
    assert_eq!(first_origin, Origin::Cold);
    let (_, repeat_origin, _) = client.job(parts, true).unwrap();
    assert_eq!(repeat_origin, Origin::Cached);

    let text = client.metrics().unwrap();
    let exp = parse_exposition(&text).expect("exposition must validate");

    let jobs = exp.counter("serve_jobs_total").expect("jobs counter present");
    assert_eq!(jobs, 2);
    let by_origin: u64 = ["cached", "warm", "cold"]
        .iter()
        .map(|o| exp.counter(&format!("serve_jobs_{o}_total")).unwrap_or(0))
        .sum();
    assert_eq!(by_origin, jobs, "per-origin counters must sum to the total");

    for (hist, counter) in HIST_COUNTER_PAIRS {
        let count = exp.counter(counter).unwrap_or(0);
        match exp.histogram(hist) {
            Some(h) => {
                assert_eq!(h.count, count, "{hist}._count must equal {counter}");
                let (_, inf) = h.buckets.last().expect("histograms end with +Inf");
                assert_eq!(*inf, count, "{hist} +Inf bucket must equal {counter}");
            }
            None => assert_eq!(count, 0, "{counter} without its histogram {hist}"),
        }
    }

    // The exact-max gauge is bounded below by the histogram's reach: it
    // came from the same batch as some latency observation.
    let max = exp.gauge("serve_job_latency_max_us").expect("max gauge present");
    assert!(max > 0);

    // Idle again: two consecutive scrapes are byte-identical.
    assert_eq!(text, client.metrics().unwrap(), "post-work idle scrapes must be byte-stable");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// The CI startup sequence: a server prewarming in the background
/// answers `health` immediately with `ready: false` / `prewarm:
/// "running"`, and flips to `ready: true` / `"done"` once the pool is
/// booted — without ever refusing the probe.
#[test]
fn health_flips_ready_after_background_prewarm() {
    let (addr, server) = spawn_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    server.prewarm_background(Profile::Smoke);
    let handle = std::thread::spawn(move || server.serve());
    let mut client = Client::connect(&addr).unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_running = false;
    let final_health = loop {
        let h = client.health().unwrap();
        if h.prewarm == "running" {
            assert!(!h.ready, "a prewarming server must not report ready");
            saw_running = true;
        }
        if h.ready {
            break h;
        }
        assert!(Instant::now() < deadline, "prewarm did not finish in time");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(final_health.prewarm, "done");
    assert_eq!(final_health.workers_alive, final_health.workers);
    assert!(final_health.queue_depth < final_health.queue_limit);
    // The scheduling race (prewarm finishing before the first probe) is
    // legal but should be rare with a whole profile to boot; either way
    // the terminal state is what CI keys on.
    let _ = saw_running;

    // The pool the prewarm filled is visible in the next scrape.
    let exp = parse_exposition(&client.metrics().unwrap()).unwrap();
    assert!(exp.gauge("serve_pool_entries").unwrap_or(0) > 0, "prewarm must fill the pool");
    // Prewarm contributes nothing to job telemetry: no jobs ran.
    assert_eq!(exp.counter("serve_jobs_total"), None, "prewarm must not count as jobs");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}
