//! The transparency contract, end to end: a sweep served over real TCP
//! must deliver a report byte-identical to the cold batch path, and the
//! result cache must serve repeats without changing a byte — with
//! telemetry attached and recording throughout, since that is how the
//! service actually runs.

use cheri_serve::{
    transparency_gate, Client, JobEngine, Origin, Server, ServerConfig, WorkerPool,
    HIST_COUNTER_PAIRS,
};
use cheri_sweep::{run_matrix, Profile};
use std::sync::Arc;

fn spawn_server(cfg: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    (addr, std::thread::spawn(move || server.serve()))
}

#[test]
fn served_sweep_is_byte_identical_to_batch() {
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    let (addr, handle) = spawn_server(cfg);
    let mut client = Client::connect(&addr).unwrap();

    // First pass executes (warm or cold); progress must tick every job.
    let mut seen = 0u64;
    let (served, verified) = client
        .sweep(Profile::Smoke, true, false, |done, total, _key, _origin| {
            seen += 1;
            assert!(done <= total);
        })
        .unwrap();
    assert!(!verified);
    let batch = run_matrix(Profile::Smoke, 2).to_json();
    assert_eq!(served, batch, "served sweep must reproduce the batch report byte-for-byte");
    assert_eq!(seen as usize, cheri_sweep::profile_matrix(Profile::Smoke).len());

    // Second pass: same matrix, now answered from the result cache —
    // and still the same bytes.
    let mut origins = Vec::new();
    let (cached, _) =
        client.sweep(Profile::Smoke, true, false, |_, _, _, origin| origins.push(origin)).unwrap();
    assert_eq!(cached, batch, "cached results must not change a byte");
    assert!(
        origins.iter().all(|o| *o == Origin::Cached),
        "second identical sweep must be fully deduped: {origins:?}"
    );

    let stats = client.stats().unwrap();
    assert!(stats.cache_hits >= origins.len() as u64);
    assert!(stats.pool_entries > 0, "phase-2 snapshots should have been pooled");
    assert_eq!(stats.workers, 2, "stats must echo the worker config");
    assert!(stats.cache_enabled && stats.warm_enabled, "stats must echo the cache/warm config");
    assert_eq!(stats.version, env!("CARGO_PKG_VERSION"));
    assert_eq!(client.last_req(), 2, "two sweeps -> request ids 1 and 2");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn single_job_record_matches_its_report_line() {
    let (addr, handle) = spawn_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    let mut client = Client::connect(&addr).unwrap();

    let batch = run_matrix(Profile::Smoke, 2);
    let parts = cheri_serve::JobParts {
        workload: "treeadd".into(),
        strategy: "cheri".into(),
        tag_kb: 8,
        profile: Profile::Smoke,
    };
    let (key, _origin, record) = client.job(parts, true).unwrap();
    let expected = batch.job(&key).expect("job is part of the smoke matrix");
    assert_eq!(record, expected.to_json(), "served record must equal its batch report line");

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// The `cheri-work` runtime workloads served one job at a time over the
/// socket must reproduce their batch report lines byte-for-byte, and a
/// repeat of the same cell must come back from the result cache
/// unchanged — the transparency contract extends to the new workloads,
/// not just the Olden four.
#[test]
fn served_new_workload_jobs_match_batch_lines() {
    let (addr, handle) = spawn_server(ServerConfig { workers: 2, ..ServerConfig::default() });
    let mut client = Client::connect(&addr).unwrap();

    let batch = run_matrix(Profile::Smoke, 2);
    for (workload, strategy) in [("vmloop", "cheri128"), ("allocstress", "mips")] {
        let parts = cheri_serve::JobParts {
            workload: workload.into(),
            strategy: strategy.into(),
            tag_kb: 8,
            profile: Profile::Smoke,
        };
        let (key, _origin, record) = client.job(parts.clone(), true).unwrap();
        let expected = batch.job(&key).unwrap_or_else(|| panic!("{key} in the smoke matrix"));
        assert_eq!(record, expected.to_json(), "{key}: served record must equal the batch line");

        let (_, origin, repeat) = client.job(parts, true).unwrap();
        assert_eq!(origin, Origin::Cached, "{key}: repeat must be answered from the cache");
        assert_eq!(repeat, record, "{key}: cached record must not change a byte");
    }

    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
}

/// The in-process gate the `--selfcheck` flag and `verify: true` sweeps
/// run: served (cache + warm pool) vs cold batch, byte-compared — with
/// telemetry enabled, which is the acceptance form of "observation does
/// not perturb results". The span stream the gate produced must also
/// balance, and every phase histogram must agree with its counter.
#[test]
fn transparency_gate_passes_on_smoke_with_telemetry_attached() {
    let engine = Arc::new(JobEngine::new(true, true));
    assert!(engine.telem().enabled(), "the gate must run with telemetry recording");
    let workers = WorkerPool::new(2);
    let report = transparency_gate(&engine, &workers, Profile::Smoke).unwrap();
    assert_eq!(report.profile, "smoke");
    assert!(!report.jobs.is_empty());
    workers.shutdown();

    let telem = engine.telem();
    assert!(!telem.spans().is_empty(), "the served pass must have recorded phase spans");
    telem.spans().check_balance().expect("every span the gate opened must close");
    let snap = telem.registry().snapshot();
    assert_eq!(
        snap.counter("serve_jobs_total"),
        report.jobs.len() as u64,
        "one job_finished per matrix job"
    );
    for (hist, counter) in HIST_COUNTER_PAIRS {
        let count = snap.histogram(hist).map_or(0, cheri_telem::HistSnapshot::count);
        assert_eq!(count, snap.counter(counter), "{hist} count must equal {counter}");
    }
}
