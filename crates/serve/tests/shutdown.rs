//! Graceful-shutdown drain: tripping the stop token mid-sweep must
//! leave `results/` with no partial files — either nothing new, or only
//! complete, parseable reports — and the telemetry flush must follow
//! the same contract: a whole, parseable timeline or no file at all.

use cheri_serve::{Client, Event, Request, Server, ServerConfig};
use cheri_sweep::{Profile, SweepReport};
use cheri_trace::json;
use std::path::PathBuf;

/// A per-test scratch directory under the target dir (unique per test
/// name; removed and recreated so reruns start clean).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn mid_sweep_shutdown_leaves_no_partial_files() {
    let dir = scratch("shutdown-drain");
    let telem_out = dir.join("telem").join("serve-telem.json");
    let cfg = ServerConfig {
        workers: 2,
        cache: false, // force real execution so the sweep takes time
        warm: true,
        results_dir: Some(dir.clone()),
        telem_out: Some(telem_out.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.serve());

    let mut client = Client::connect(&addr).unwrap();
    client.send(&Request::Sweep { profile: Profile::Smoke, cache: false, verify: false }).unwrap();

    // Trip the stop token as soon as the first job lands, while the
    // rest of the matrix is still queued or executing.
    let mut tripped = false;
    let terminal = loop {
        match client.next_event().unwrap() {
            Event::Progress { .. } => {
                if !tripped {
                    stop.request();
                    tripped = true;
                }
            }
            other => break other,
        }
    };
    match terminal {
        // The expected drain outcome: the sweep aborted, nothing written.
        Event::Error { message } => {
            assert!(message.contains("aborted") || message.contains("shutting down"), "{message}");
        }
        // Scheduling race: every job finished before the stop landed —
        // then the persisted report must be complete (asserted below).
        Event::Report { .. } => {}
        other => panic!("unexpected terminal event: {other:?}"),
    }

    handle.join().unwrap().unwrap();

    // The drain contract, on disk: no temp files, and anything that was
    // persisted is a complete, parseable report for the full matrix.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "partial file left behind: {name}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report = SweepReport::from_json(&text)
            .unwrap_or_else(|e| panic!("{name} is not a complete report: {e}"));
        assert_eq!(report.jobs.len(), cheri_sweep::profile_matrix(Profile::Smoke).len());
    }

    // The same contract for the telemetry flush: the drain wrote the
    // whole file (valid JSON, a traceEvents array, the final metric
    // snapshot) and left no `.tmp` sibling behind.
    let telem_dir = telem_out.parent().unwrap();
    for entry in std::fs::read_dir(telem_dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "partial telem file left behind: {name}");
    }
    let flushed = std::fs::read_to_string(&telem_out).expect("telem flush missing after drain");
    let parsed = json::parse(&flushed).unwrap();
    let obj = parsed.as_obj().unwrap();
    assert!(obj["traceEvents"].as_arr().is_some());
    assert!(obj["telemMetrics"].as_obj().is_some());
}

#[test]
fn requests_after_shutdown_are_refused() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.serve());

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.ping().unwrap(), cheri_serve::SCHEMA);
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    // A fresh connection is refused outright once the listener is gone.
    assert!(
        Client::connect(&addr).is_err() || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().is_err()
        }
    );
}
