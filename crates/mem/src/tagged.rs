//! The 257-bit tagged-memory interface (Section 4.2).
//!
//! [`TaggedMem`] combines [`PhysMem`] and [`TagController`] and enforces
//! the CHERI tag semantics:
//!
//! * any non-capability store clears the tags of every granule it touches;
//! * `CSC` stores 256 bits plus the register's tag;
//! * `CLC` loads 256 bits plus the granule's tag — so copying untagged
//!   data through capability registers is harmless, and `memcpy()` can
//!   move mixed data/capability structures obliviously.

use cheri_core::{Capability, CAP_SIZE_BYTES};

use crate::ctrl::{TagCacheStats, TagController};
use crate::error::MemError;
use crate::phys::PhysMem;
use crate::TAG_GRANULE;

/// Tagged physical memory: DRAM plus tag manager.
///
/// # Example
///
/// ```
/// use cheri_core::{Capability, Perms};
/// use cheri_mem::TaggedMem;
///
/// let mut m = TaggedMem::new(1 << 16);
/// let cap = Capability::new(0x100, 64, Perms::LOAD | Perms::STORE)?;
/// m.write_cap(0x40, &cap)?;
/// // A data store anywhere in the granule destroys the capability:
/// m.write_u8(0x41, 0)?;
/// let (reloaded, tag) = m.read_cap_raw(0x40)?;
/// assert!(!tag);
/// assert_eq!(Capability::from_bytes(&reloaded, tag).tag(), false);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct TaggedMem {
    phys: PhysMem,
    tags: TagController,
}

impl TaggedMem {
    /// Allocates `size` bytes of tagged memory with the default 8 KB tag
    /// cache.
    #[must_use]
    pub fn new(size: usize) -> TaggedMem {
        TaggedMem { phys: PhysMem::new(size), tags: TagController::new(size as u64) }
    }

    /// As [`TaggedMem::new`] with a custom tag-cache size (ablation).
    #[must_use]
    pub fn with_tag_cache(size: usize, tag_cache_bytes: usize) -> TaggedMem {
        TaggedMem::with_config(size, tag_cache_bytes, TAG_GRANULE)
    }

    /// Full configuration, including the tag granule: 32 bytes for the
    /// architectural 256-bit capability, 16 bytes for the 128-bit
    /// production format.
    #[must_use]
    pub fn with_config(size: usize, tag_cache_bytes: usize, granule: u64) -> TaggedMem {
        TaggedMem {
            phys: PhysMem::new(size),
            tags: TagController::with_config(size as u64, tag_cache_bytes, granule),
        }
    }

    /// Bytes covered by one tag bit in this configuration.
    #[must_use]
    pub fn granule(&self) -> u64 {
        self.tags.table().granule_size()
    }

    /// Reads one tagged granule of `self.granule()` bytes at `addr`
    /// (granule-aligned), returning the tag.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] / [`MemError::OutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the configured granule.
    pub fn read_tagged(&mut self, addr: u64, buf: &mut [u8]) -> Result<bool, MemError> {
        let g = self.granule();
        assert_eq!(buf.len() as u64, g, "buffer must be one granule");
        if !addr.is_multiple_of(g) {
            return Err(MemError::Misaligned { addr, required: g });
        }
        self.phys.read_bytes(addr, buf)?;
        Ok(self.tags.read_tag(addr))
    }

    /// Writes one tagged granule (the `CSC`-level store for the
    /// configured capability width).
    ///
    /// # Errors
    ///
    /// As [`TaggedMem::read_tagged`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the configured granule.
    pub fn write_tagged(&mut self, addr: u64, buf: &[u8], tag: bool) -> Result<(), MemError> {
        let g = self.granule();
        assert_eq!(buf.len() as u64, g, "buffer must be one granule");
        if !addr.is_multiple_of(g) {
            return Err(MemError::Misaligned { addr, required: g });
        }
        self.phys.write_bytes(addr, buf)?;
        self.tags.write_tag(addr, tag);
        Ok(())
    }

    /// Physical memory size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.phys.size()
    }

    /// Tag-controller statistics.
    #[must_use]
    pub fn tag_stats(&self) -> TagCacheStats {
        self.tags.stats()
    }

    /// Resets tag-controller statistics.
    pub fn reset_tag_stats(&mut self) {
        self.tags.reset_stats();
    }

    /// Attaches (or detaches, with `None`) a trace sink on the tag
    /// controller; see [`TagController::set_trace_sink`].
    pub fn set_trace_sink(&mut self, sink: Option<cheri_trace::SharedSink>) {
        self.tags.set_trace_sink(sink);
    }

    /// Attaches (or detaches, with `None`) a profiler miss probe on the
    /// tag controller; see [`TagController::set_miss_probe`].
    pub fn set_tag_miss_probe(&mut self, probe: Option<std::rc::Rc<std::cell::Cell<u64>>>) {
        self.tags.set_miss_probe(probe);
    }

    /// The underlying tag controller (for inspection, e.g. the GC sketch).
    #[must_use]
    pub fn tag_controller(&self) -> &TagController {
        &self.tags
    }

    // --- data accesses (clear tags on store) -----------------------------

    /// Reads raw bytes (data read; tags unaffected).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        self.phys.read_bytes(addr, buf)
    }

    /// Writes raw data bytes, clearing every covering tag.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        self.phys.write_bytes(addr, bytes)?;
        self.tags.clear_tags_for_store(addr, bytes.len() as u64);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        self.phys.read_u8(addr)
    }

    /// Reads a big-endian u16.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u16(&self, addr: u64) -> Result<u16, MemError> {
        self.phys.read_u16(addr)
    }

    /// Reads a big-endian u32.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        self.phys.read_u32(addr)
    }

    /// Reads a big-endian u64.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        self.phys.read_u64(addr)
    }

    /// Writes one byte (clears the covering tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.phys.write_u8(addr, v)?;
        self.tags.clear_tags_for_store(addr, 1);
        Ok(())
    }

    /// Writes a big-endian u16 (clears the covering tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Writes a big-endian u32 (clears the covering tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Writes a big-endian u64 (clears the covering tag).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    // --- capability accesses ---------------------------------------------

    fn check_cap_align(addr: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(TAG_GRANULE) {
            Err(MemError::Misaligned { addr, required: TAG_GRANULE })
        } else {
            Ok(())
        }
    }

    /// `CLC`-level read: 256 bits of data plus the granule tag.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] for non-granule-aligned addresses, or
    /// [`MemError::OutOfRange`].
    pub fn read_cap_raw(&mut self, addr: u64) -> Result<([u8; CAP_SIZE_BYTES], bool), MemError> {
        Self::check_cap_align(addr)?;
        let mut buf = [0u8; CAP_SIZE_BYTES];
        self.phys.read_bytes(addr, &mut buf)?;
        let tag = self.tags.read_tag(addr);
        Ok((buf, tag))
    }

    /// `CLC`-level read decoded into a [`Capability`] value (tag reflects
    /// the granule tag).
    ///
    /// # Errors
    ///
    /// As [`TaggedMem::read_cap_raw`].
    pub fn read_cap(&mut self, addr: u64) -> Result<Capability, MemError> {
        let (bytes, tag) = self.read_cap_raw(addr)?;
        Ok(Capability::from_bytes(&bytes, tag))
    }

    /// `CSC`-level write of a register value: stores the 256-bit image and
    /// sets the granule tag to the register's tag. This is how capability
    /// registers holding plain data copy 256-bit blocks "while remaining
    /// oblivious to whether they are copying data or a capability".
    ///
    /// # Errors
    ///
    /// As [`TaggedMem::read_cap_raw`].
    pub fn write_cap(&mut self, addr: u64, cap: &Capability) -> Result<(), MemError> {
        Self::check_cap_align(addr)?;
        self.phys.write_bytes(addr, &cap.to_bytes())?;
        self.tags.write_tag(addr, cap.tag());
        Ok(())
    }

    /// Raw `CSC`-level write from bytes plus an explicit tag.
    ///
    /// # Errors
    ///
    /// As [`TaggedMem::read_cap_raw`].
    pub fn write_cap_raw(
        &mut self,
        addr: u64,
        bytes: &[u8; CAP_SIZE_BYTES],
        tag: bool,
    ) -> Result<(), MemError> {
        Self::check_cap_align(addr)?;
        self.phys.write_bytes(addr, bytes)?;
        self.tags.write_tag(addr, tag);
        Ok(())
    }

    // --- snapshots --------------------------------------------------------

    /// Exports the complete memory state — DRAM image and tag table as
    /// run-length-encoded big-endian words, plus the tag-cache contents
    /// and statistics — for `cheri-snap`.
    #[must_use]
    pub fn export_state(&self) -> cheri_snap::MemState {
        let image = self.phys.image();
        debug_assert!(image.len().is_multiple_of(8), "DRAM size is always 8-aligned");
        let words = cheri_snap::rle_encode(image.chunks_exact(8).map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            u64::from_be_bytes(b)
        }));
        let tags = cheri_snap::rle_encode(self.tags.table().words().iter().copied());
        let s = self.tags.stats();
        cheri_snap::MemState {
            bytes: self.phys.size(),
            granule: self.granule(),
            words,
            tags,
            tag_cache: self
                .tags
                .export_lines()
                .into_iter()
                .map(|(valid, dirty, line_index)| cheri_snap::TagCacheLineState {
                    valid,
                    dirty,
                    line_index,
                })
                .collect(),
            tag_stats: [s.lookups, s.updates, s.hits, s.misses, s.writebacks],
        }
    }

    /// Restores memory state exported by [`TaggedMem::export_state`].
    ///
    /// The import deliberately bypasses the architectural store path:
    /// [`TaggedMem::write_bytes`] clears tags and charges tag-cache
    /// traffic, either of which would corrupt the restored state. DRAM
    /// bytes, tag-table words, tag-cache lines and tag statistics are
    /// each written directly.
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] when the snapshot's geometry (memory
    /// size, granule, tag-cache line count) does not match this
    /// memory's configuration.
    pub fn import_state(&mut self, s: &cheri_snap::MemState) -> Result<(), cheri_snap::SnapError> {
        if s.bytes != self.phys.size() {
            return Err(cheri_snap::SnapError(format!(
                "memory size mismatch: snapshot {} bytes, machine {} bytes",
                s.bytes,
                self.phys.size()
            )));
        }
        if s.granule != self.granule() {
            return Err(cheri_snap::SnapError(format!(
                "tag granule mismatch: snapshot {}, machine {}",
                s.granule,
                self.granule()
            )));
        }
        if cheri_snap::rle_len(&s.words) * 8 != s.bytes {
            return Err(cheri_snap::SnapError(format!(
                "DRAM image holds {} words, want {}",
                cheri_snap::rle_len(&s.words),
                s.bytes / 8
            )));
        }
        let tag_words = self.tags.table().words().len() as u64;
        if cheri_snap::rle_len(&s.tags) != tag_words {
            return Err(cheri_snap::SnapError(format!(
                "tag table holds {} words, want {tag_words}",
                cheri_snap::rle_len(&s.tags)
            )));
        }
        if s.tag_cache.len() != self.tags.export_lines().len() {
            return Err(cheri_snap::SnapError(format!(
                "tag cache holds {} lines, machine has {}",
                s.tag_cache.len(),
                self.tags.export_lines().len()
            )));
        }
        let image = self.phys.image_mut();
        let mut at = 0usize;
        for &(count, value) in &s.words {
            let be = value.to_be_bytes();
            for _ in 0..count {
                image[at..at + 8].copy_from_slice(&be);
                at += 8;
            }
        }
        self.tags.table_mut().set_words(&cheri_snap::rle_decode(&s.tags));
        let lines: Vec<(bool, bool, u64)> =
            s.tag_cache.iter().map(|l| (l.valid, l.dirty, l.line_index)).collect();
        let [lookups, updates, hits, misses, writebacks] = s.tag_stats;
        self.tags
            .import_lines(&lines, TagCacheStats { lookups, updates, hits, misses, writebacks });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::Perms;

    fn cap() -> Capability {
        Capability::new(0x1000, 0x100, Perms::LOAD | Perms::STORE).unwrap()
    }

    #[test]
    fn cap_store_load_roundtrip_preserves_tag() {
        let mut m = TaggedMem::new(4096);
        m.write_cap(64, &cap()).unwrap();
        let c = m.read_cap(64).unwrap();
        assert!(c.tag());
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.length(), 0x100);
    }

    #[test]
    fn data_store_clears_tag() {
        let mut m = TaggedMem::new(4096);
        m.write_cap(64, &cap()).unwrap();
        m.write_u64(72, 0x42).unwrap(); // inside the granule
        let c = m.read_cap(64).unwrap();
        assert!(!c.tag(), "tag must be cleared by a data store");
        // The other 24 bytes of the image are intact.
        assert_eq!(c.base(), 0x1000);
    }

    #[test]
    fn data_store_outside_granule_preserves_tag() {
        let mut m = TaggedMem::new(4096);
        m.write_cap(64, &cap()).unwrap();
        m.write_u64(96, 0x42).unwrap(); // next granule
        assert!(m.read_cap(64).unwrap().tag());
    }

    #[test]
    fn straddling_data_store_clears_both_granules() {
        let mut m = TaggedMem::new(4096);
        m.write_cap(64, &cap()).unwrap();
        m.write_cap(96, &cap()).unwrap();
        m.write_bytes(92, &[0; 8]).unwrap(); // spans 64..96 and 96..128
        assert!(!m.read_cap(64).unwrap().tag());
        assert!(!m.read_cap(96).unwrap().tag());
    }

    #[test]
    fn untagged_cap_store_moves_data_without_tag() {
        // memcpy() via CLC/CSC of a plain-data granule.
        let mut m = TaggedMem::new(4096);
        m.write_u64(64, 0xdead).unwrap();
        let (bytes, tag) = m.read_cap_raw(64).unwrap();
        assert!(!tag);
        m.write_cap_raw(128, &bytes, tag).unwrap();
        assert_eq!(m.read_u64(128).unwrap(), 0xdead);
        assert!(!m.read_cap(128).unwrap().tag());
    }

    #[test]
    fn memcpy_of_mixed_structure_preserves_capabilities() {
        // A 64-byte structure: one capability granule + one data granule.
        let mut m = TaggedMem::new(4096);
        m.write_cap(0, &cap()).unwrap();
        m.write_u64(32, 123).unwrap();
        // Copy granule-by-granule through the 257-bit interface.
        for g in 0..2u64 {
            let (b, t) = m.read_cap_raw(g * 32).unwrap();
            m.write_cap_raw(1024 + g * 32, &b, t).unwrap();
        }
        assert!(m.read_cap(1024).unwrap().tag());
        assert_eq!(m.read_u64(1056).unwrap(), 123);
    }

    #[test]
    fn misaligned_cap_access_rejected() {
        let mut m = TaggedMem::new(4096);
        assert_eq!(
            m.write_cap(65, &cap()).unwrap_err(),
            MemError::Misaligned { addr: 65, required: 32 }
        );
        assert!(m.read_cap(16).is_err());
    }

    #[test]
    fn tag_stats_accumulate() {
        let mut m = TaggedMem::new(1 << 16);
        m.write_cap(0, &cap()).unwrap();
        let _ = m.read_cap(0).unwrap();
        let s = m.tag_stats();
        assert!(s.lookups >= 1);
        assert!(s.updates >= 1);
        m.reset_tag_stats();
        assert_eq!(m.tag_stats().lookups, 0);
    }
}
