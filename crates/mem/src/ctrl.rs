//! The tag manager / controller (Section 4.2).
//!
//! "A tag manager below the last level cache presents a 257-bit,
//! tagged-memory interface to the CHERI cache hierarchy. The manager
//! associates each memory transaction with a tag from the table and
//! ensures consistency between memory and tags. ... the current tag
//! controller (which minimizes table lookups using an 8 KB tag cache) does
//! not noticeably degrade performance."
//!
//! The controller here models that design: tag reads/writes go through a
//! direct-mapped write-back cache of tag-table lines, and the controller
//! counts the DRAM traffic the table generates — the quantity the paper's
//! claim (and our tag-cache ablation bench) is about.

use std::cell::Cell;
use std::rc::Rc;

use crate::tags::TagTable;
use crate::{DEFAULT_TAG_CACHE_BYTES, TAG_GRANULE, TAG_LINE_BYTES};
use cheri_trace::{emit, SharedSink, TraceEvent};

/// Statistics maintained by the tag controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagCacheStats {
    /// Tag lookups (one per memory transaction through the controller).
    pub lookups: u64,
    /// Tag writes (capability stores and tag-clearing data stores).
    pub updates: u64,
    /// Tag-cache hits.
    pub hits: u64,
    /// Tag-cache misses (each costs a DRAM tag-line read).
    pub misses: u64,
    /// Dirty lines written back to the DRAM tag table.
    pub writebacks: u64,
}

impl TagCacheStats {
    /// Hit rate over all lookups+updates, in [0, 1]; 1.0 for an idle
    /// controller.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Extra DRAM bytes moved on behalf of the tag table.
    #[must_use]
    pub fn dram_tag_bytes(&self) -> u64 {
        (self.misses + self.writebacks) * TAG_LINE_BYTES
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TagCacheLine {
    valid: bool,
    dirty: bool,
    line_index: u64,
}

/// The tag manager: tag table + direct-mapped write-back tag cache.
///
/// # Example
///
/// ```
/// use cheri_mem::TagController;
///
/// let mut ctl = TagController::new(1 << 20); // 1 MB physical memory
/// ctl.write_tag(0x100, true);
/// assert!(ctl.read_tag(0x100));
/// // The second access to the same granule's line hits the tag cache:
/// assert!(ctl.stats().hits >= 1);
/// ```
#[derive(Clone, Debug)]
pub struct TagController {
    table: TagTable,
    lines: Vec<TagCacheLine>,
    /// `log2(bytes_per_line())` — the line math runs on every data
    /// store, so it shifts instead of dividing.
    line_shift: u32,
    stats: TagCacheStats,
    // Trace sink shared with the rest of the machine (cloning the
    // controller shares the sink handle, which is what snapshot-style
    // clones want).
    sink: Option<SharedSink>,
    // Host-side miss tick shared with a profiler: bumped once per
    // tag-cache miss, never serialized, never guest-visible.
    miss_probe: Option<Rc<Cell<u64>>>,
}

impl TagController {
    /// A controller for `mem_size` bytes of physical memory with the
    /// paper's default 8 KB tag cache.
    #[must_use]
    pub fn new(mem_size: u64) -> TagController {
        TagController::with_cache_bytes(mem_size, DEFAULT_TAG_CACHE_BYTES)
    }

    /// A controller with a custom tag-cache capacity (for the ablation
    /// bench). A capacity of 0 disables caching: every access is a miss.
    #[must_use]
    pub fn with_cache_bytes(mem_size: u64, cache_bytes: usize) -> TagController {
        TagController::with_config(mem_size, cache_bytes, TAG_GRANULE)
    }

    /// Full configuration: cache capacity plus tag granule (16 bytes for
    /// the 128-bit capability format).
    #[must_use]
    pub fn with_config(mem_size: u64, cache_bytes: usize, granule: u64) -> TagController {
        let nlines = cache_bytes / TAG_LINE_BYTES as usize;
        let bytes_per_line = TAG_LINE_BYTES * 8 * granule;
        debug_assert!(bytes_per_line.is_power_of_two());
        TagController {
            table: TagTable::with_granule(mem_size, granule),
            lines: vec![TagCacheLine::default(); nlines],
            line_shift: bytes_per_line.trailing_zeros(),
            stats: TagCacheStats::default(),
            sink: None,
            miss_probe: None,
        }
    }

    /// Attaches (or with `None`, detaches) a trace sink. Every
    /// tag-cache probe and tag-table read/write is mirrored into the
    /// sink adjacent to the corresponding [`TagCacheStats`] increment,
    /// so aggregated event counts equal the legacy statistics exactly.
    pub fn set_trace_sink(&mut self, sink: Option<SharedSink>) {
        self.sink = sink;
    }

    /// Attaches (or with `None`, detaches) a host-side miss probe: a
    /// shared counter bumped once per tag-cache miss. Profilers read it
    /// to attribute tag misses to guest PCs by delta sampling. The
    /// probe is pure observation — it never affects statistics, guest
    /// state, or snapshots.
    pub fn set_miss_probe(&mut self, probe: Option<Rc<Cell<u64>>>) {
        self.miss_probe = probe;
    }

    /// Physical bytes of memory covered by one tag-cache line.
    #[must_use]
    pub fn bytes_per_line(&self) -> u64 {
        TAG_LINE_BYTES * 8 * self.table.granule_size()
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TagCacheStats {
        self.stats
    }

    /// Resets the statistics (not the cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = TagCacheStats::default();
    }

    /// Direct access to the underlying table (no cache modelling) —
    /// used by debugger-style inspection and tests.
    #[must_use]
    pub fn table(&self) -> &TagTable {
        &self.table
    }

    /// Mutable table access for snapshot import (no cache modelling,
    /// no statistics).
    pub(crate) fn table_mut(&mut self) -> &mut TagTable {
        &mut self.table
    }

    /// Tag-cache lines as `(valid, dirty, line_index)`, for snapshot
    /// export.
    pub(crate) fn export_lines(&self) -> Vec<(bool, bool, u64)> {
        self.lines.iter().map(|l| (l.valid, l.dirty, l.line_index)).collect()
    }

    /// Restores tag-cache lines and statistics from a snapshot. The
    /// line count must match this controller's geometry (checked by the
    /// caller, which owns the error path).
    pub(crate) fn import_lines(&mut self, lines: &[(bool, bool, u64)], stats: TagCacheStats) {
        debug_assert_eq!(lines.len(), self.lines.len());
        for (slot, &(valid, dirty, line_index)) in self.lines.iter_mut().zip(lines) {
            *slot = TagCacheLine { valid, dirty, line_index };
        }
        self.stats = stats;
    }

    fn touch_line(&mut self, paddr: u64, make_dirty: bool) {
        if self.lines.is_empty() {
            self.stats.misses += 1;
            if let Some(p) = &self.miss_probe {
                p.set(p.get() + 1);
            }
            if make_dirty {
                self.stats.writebacks += 1; // write-through when uncached
            }
            emit(&self.sink, || TraceEvent::TagCache { hit: false, writeback: make_dirty });
            return;
        }
        let line_index = paddr >> self.line_shift;
        let slot = (line_index % self.lines.len() as u64) as usize;
        let line = &mut self.lines[slot];
        if line.valid && line.line_index == line_index {
            self.stats.hits += 1;
            emit(&self.sink, || TraceEvent::TagCache { hit: true, writeback: false });
        } else {
            self.stats.misses += 1;
            if let Some(p) = &self.miss_probe {
                p.set(p.get() + 1);
            }
            let writeback = line.valid && line.dirty;
            if writeback {
                self.stats.writebacks += 1;
            }
            line.valid = true;
            line.dirty = false;
            line.line_index = line_index;
            emit(&self.sink, || TraceEvent::TagCache { hit: false, writeback });
        }
        if make_dirty {
            self.lines[slot].dirty = true;
        }
    }

    /// Reads the tag for the granule covering `paddr`, through the cache.
    #[must_use]
    pub fn read_tag(&mut self, paddr: u64) -> bool {
        self.stats.lookups += 1;
        self.touch_line(paddr, false);
        let tag = self.table.get(paddr);
        emit(&self.sink, || TraceEvent::TagTableRead { addr: paddr, tag });
        tag
    }

    /// Writes the tag for the granule covering `paddr`, through the cache.
    pub fn write_tag(&mut self, paddr: u64, tag: bool) {
        self.stats.updates += 1;
        self.touch_line(paddr, true);
        self.table.set(paddr, tag);
        emit(&self.sink, || TraceEvent::TagTableWrite { addr: paddr, tag });
    }

    /// Clears all tags overlapped by a data store of `len` bytes at
    /// `paddr` (the "non-capability store clears the bit" rule).
    ///
    /// As an optimisation mirroring the hardware, the controller only
    /// performs a table update when a granule might be tagged; but every
    /// store still consults the covering line once.
    pub fn clear_tags_for_store(&mut self, paddr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.stats.updates += 1;
        self.touch_line(paddr, true);
        self.table.clear_range(paddr, len);
        emit(&self.sink, || TraceEvent::TagTableWrite { addr: paddr, tag: false });
        // A store crossing a line boundary touches the second line too.
        let last = paddr + len - 1;
        if last >> self.line_shift != paddr >> self.line_shift {
            self.touch_line(last, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cache_is_8kb() {
        let ctl = TagController::new(1 << 20);
        assert_eq!(ctl.lines.len() * TAG_LINE_BYTES as usize, 8 * 1024);
    }

    #[test]
    fn one_line_covers_16kb() {
        assert_eq!(TagController::new(1 << 20).bytes_per_line(), 16 * 1024);
        // 128-bit configuration: half the coverage per line.
        assert_eq!(TagController::with_config(1 << 20, 8192, 16).bytes_per_line(), 8 * 1024);
    }

    #[test]
    fn repeated_access_hits() {
        let mut ctl = TagController::new(1 << 20);
        ctl.write_tag(0, true);
        for _ in 0..100 {
            assert!(ctl.read_tag(0));
        }
        let s = ctl.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 100);
        assert!(s.hit_rate() > 0.99);
    }

    #[test]
    fn distinct_lines_conflict_in_direct_mapped_cache() {
        // 8 KB cache = 128 lines; two addresses 128 lines apart alias.
        let stride = 16 * 1024 * 128u64;
        let mut ctl = TagController::new(2 * stride + 1024);
        let _ = ctl.read_tag(0);
        let _ = ctl.read_tag(stride);
        let _ = ctl.read_tag(0);
        assert_eq!(ctl.stats().misses, 3);
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let stride = 16 * 1024 * 128u64;
        let mut ctl = TagController::new(2 * stride + 1024);
        ctl.write_tag(0, true);
        let _ = ctl.read_tag(stride); // evicts dirty line 0
        assert_eq!(ctl.stats().writebacks, 1);
        assert!(ctl.stats().dram_tag_bytes() >= 2 * TAG_LINE_BYTES);
    }

    #[test]
    fn zero_byte_cache_misses_always() {
        let mut ctl = TagController::with_cache_bytes(1 << 20, 0);
        let _ = ctl.read_tag(0);
        let _ = ctl.read_tag(0);
        assert_eq!(ctl.stats().hits, 0);
        assert_eq!(ctl.stats().misses, 2);
    }

    #[test]
    fn store_clears_tags_through_controller() {
        let mut ctl = TagController::new(1 << 20);
        ctl.write_tag(64, true);
        assert!(ctl.read_tag(64));
        ctl.clear_tags_for_store(70, 4);
        assert!(!ctl.read_tag(64));
    }

    #[test]
    fn idle_hit_rate_is_one() {
        let ctl = TagController::new(1024);
        assert_eq!(ctl.stats().hit_rate(), 1.0);
    }
}
