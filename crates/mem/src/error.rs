//! Physical-memory access errors.

use core::fmt;

/// An error accessing physical memory.
///
/// These are *simulator-level* errors (the guest machine is misconfigured
/// or the simulator has a bug): guest-visible protection violations are
/// [`cheri_core::CapCause`]s or TLB exceptions, raised before an access
/// ever reaches physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The access extends past the end of physical memory.
    OutOfRange {
        /// First byte of the access.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Physical memory size in bytes.
        mem_size: u64,
    },
    /// A naturally-aligned access was required.
    Misaligned {
        /// The offending address.
        addr: u64,
        /// The required alignment in bytes.
        required: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size, mem_size } => write!(
                f,
                "physical access {addr:#x}+{size:#x} outside memory of {mem_size:#x} bytes"
            ),
            MemError::Misaligned { addr, required } => {
                write!(f, "physical access at {addr:#x} requires {required}-byte alignment")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_addresses() {
        let e = MemError::OutOfRange { addr: 0x100, size: 8, mem_size: 0x80 };
        assert!(e.to_string().contains("0x100"));
        let m = MemError::Misaligned { addr: 0x11, required: 32 };
        assert!(m.to_string().contains("32-byte"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MemError::Misaligned { addr: 1, required: 2 });
        assert!(!e.to_string().is_empty());
    }
}
