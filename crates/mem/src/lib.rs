//! # cheri-mem — tagged physical memory
//!
//! Section 4.2 of the ISCA 2014 CHERI paper: "CHERI tags physical memory,
//! not virtual memory ... This table holds one tag bit for each 256-bit
//! line in memory, or 4 MB of tag space per gigabyte of memory. A tag
//! manager below the last level cache presents a 257-bit, tagged-memory
//! interface to the CHERI cache hierarchy. ... the current tag controller
//! (which minimizes table lookups using an 8 KB tag cache) does not
//! noticeably degrade performance."
//!
//! This crate provides that stack:
//!
//! * [`PhysMem`] — flat big-endian physical DRAM.
//! * [`TagTable`] — the in-DRAM tag bitmap (1 bit / 32-byte granule).
//! * [`TagController`] — the tag manager with its configurable
//!   direct-mapped tag cache (default 8 KB) and DRAM-traffic statistics,
//!   so the tag-cache ablation benchmark can sweep the size.
//! * [`TaggedMem`] — the 257-bit-wide memory interface: ordinary data
//!   writes clear covering tags; capability stores set or clear the
//!   granule tag; capability loads return data plus tag.

pub mod ctrl;
pub mod error;
pub mod phys;
pub mod tagged;
pub mod tags;

pub use ctrl::{TagCacheStats, TagController};
pub use error::MemError;
pub use phys::PhysMem;
pub use tagged::TaggedMem;
pub use tags::TagTable;

/// Bytes covered by one tag bit (256 bits).
pub const TAG_GRANULE: u64 = cheri_core::TAG_GRANULE;

/// Default tag-cache capacity in bytes (Section 4.2: "an 8KB tag cache").
pub const DEFAULT_TAG_CACHE_BYTES: usize = 8 * 1024;

/// Bytes of tag-table line fetched from DRAM per tag-cache miss.
/// 64 bytes of tags cover 16 KB of physical memory.
pub const TAG_LINE_BYTES: u64 = 64;
