//! Flat physical DRAM.
//!
//! BERI/CHERI is a big-endian 64-bit MIPS machine, so all multi-byte
//! accessors here are big-endian.

use crate::error::MemError;

/// Byte-addressable physical memory.
///
/// # Example
///
/// ```
/// use cheri_mem::PhysMem;
///
/// let mut m = PhysMem::new(4096);
/// m.write_u64(0x100, 0xdead_beef_cafe_f00d)?;
/// assert_eq!(m.read_u64(0x100)?, 0xdead_beef_cafe_f00d);
/// // Big-endian byte order, as on MIPS:
/// assert_eq!(m.read_u8(0x100)?, 0xde);
/// # Ok::<(), cheri_mem::MemError>(())
/// ```
#[derive(Clone)]
pub struct PhysMem {
    data: Vec<u8>,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not fit in host memory (allocation failure).
    #[must_use]
    pub fn new(size: usize) -> PhysMem {
        PhysMem { data: vec![0; size] }
    }

    /// Physical memory size in bytes.
    #[must_use]
    #[inline]
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }

    #[inline]
    fn check(&self, addr: u64, size: u64) -> Result<usize, MemError> {
        let end = addr.checked_add(size);
        match end {
            Some(end) if end <= self.size() => Ok(addr as usize),
            _ => Err(MemError::OutOfRange { addr, size, mem_size: self.size() }),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the access extends past the end of
    /// memory.
    #[inline]
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let a = self.check(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[a..a + buf.len()]);
        Ok(())
    }

    /// Writes `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the access extends past the end of
    /// memory.
    #[inline]
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let a = self.check(addr, bytes.len() as u64)?;
        self.data[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        let a = self.check(addr, 1)?;
        Ok(self.data[a])
    }

    /// Reads a big-endian 16-bit half-word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u16(&self, addr: u64) -> Result<u16, MemError> {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b)?;
        Ok(u16::from_be_bytes(b))
    }

    /// Reads a big-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a big-endian 64-bit double-word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_be_bytes(b))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        let a = self.check(addr, 1)?;
        self.data[a] = v;
        Ok(())
    }

    /// Writes a big-endian 16-bit half-word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Writes a big-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// Writes a big-endian 64-bit double-word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`].
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_be_bytes())
    }

    /// The whole DRAM image, for snapshot export.
    pub(crate) fn image(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the whole DRAM image, for snapshot import
    /// (bypasses the architectural write path on purpose: restoring a
    /// snapshot must not perturb tag state or traffic counters).
    pub(crate) fn image_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl core::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PhysMem({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = PhysMem::new(64);
        assert_eq!(m.read_u64(0).unwrap(), 0);
        assert_eq!(m.read_u8(63).unwrap(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut m = PhysMem::new(16);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 1);
        assert_eq!(m.read_u8(3).unwrap(), 4);
        assert_eq!(m.read_u16(0).unwrap(), 0x0102);
        assert_eq!(m.read_u16(2).unwrap(), 0x0304);
    }

    #[test]
    fn widths_roundtrip() {
        let mut m = PhysMem::new(64);
        m.write_u8(1, 0xab).unwrap();
        m.write_u16(2, 0xbeef).unwrap();
        m.write_u32(4, 0xdead_beef).unwrap();
        m.write_u64(8, u64::MAX - 1).unwrap();
        assert_eq!(m.read_u8(1).unwrap(), 0xab);
        assert_eq!(m.read_u16(2).unwrap(), 0xbeef);
        assert_eq!(m.read_u32(4).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u64(8).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn out_of_range_detected() {
        let mut m = PhysMem::new(16);
        assert!(m.read_u64(9).is_err());
        assert!(m.read_u8(16).is_err());
        assert!(m.write_u64(15, 0).is_err());
        // Wrapping addresses do not panic.
        assert!(m.read_u64(u64::MAX - 2).is_err());
    }

    #[test]
    fn unaligned_accesses_allowed_at_phys_level() {
        // Alignment is enforced architecturally (by the CPU), not here.
        let mut m = PhysMem::new(32);
        m.write_u64(3, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(3).unwrap(), 0x1122_3344_5566_7788);
    }
}
