//! The in-DRAM tag table: one validity bit per 256-bit granule of physical
//! memory (Section 4.2).

use crate::TAG_GRANULE;

/// The flat tag bitmap for a physical memory.
///
/// "This table holds one tag bit for each 256-bit line in memory, or 4 MB
/// of tag space per gigabyte of memory."
///
/// The granule defaults to the architectural 256 bits; the 128-bit
/// capability configuration (the paper's proposed production format)
/// uses a 16-byte granule instead.
///
/// # Example
///
/// ```
/// use cheri_mem::TagTable;
///
/// let mut t = TagTable::new(1 << 30); // 1 GB of physical memory
/// assert_eq!(t.table_bytes(), 4 << 20); // 4 MB of tags
/// t.set(0x40, true);
/// assert!(t.get(0x40));
/// assert!(t.get(0x5f)); // same granule
/// assert!(!t.get(0x60)); // next granule
/// ```
#[derive(Clone, Debug)]
pub struct TagTable {
    bits: Vec<u64>,
    granules: u64,
    granule_size: u64,
    /// `log2(granule_size)` — granule indexing runs on every store, so
    /// it shifts instead of dividing.
    granule_shift: u32,
}

impl TagTable {
    /// Creates an all-clear tag table covering `mem_size` bytes of
    /// physical memory with the architectural 32-byte granule.
    #[must_use]
    pub fn new(mem_size: u64) -> TagTable {
        TagTable::with_granule(mem_size, TAG_GRANULE)
    }

    /// As [`TagTable::new`] with a custom power-of-two granule (16 bytes
    /// for the 128-bit capability configuration).
    ///
    /// # Panics
    ///
    /// Panics if `granule_size` is not a power of two >= 8.
    #[must_use]
    pub fn with_granule(mem_size: u64, granule_size: u64) -> TagTable {
        assert!(granule_size.is_power_of_two() && granule_size >= 8, "bad tag granule");
        let granules = mem_size.div_ceil(granule_size);
        TagTable {
            bits: vec![0; granules.div_ceil(64) as usize],
            granules,
            granule_size,
            granule_shift: granule_size.trailing_zeros(),
        }
    }

    /// Bytes covered by one tag bit.
    #[must_use]
    pub fn granule_size(&self) -> u64 {
        self.granule_size
    }

    /// Number of tag granules covered.
    #[must_use]
    pub fn granules(&self) -> u64 {
        self.granules
    }

    /// Size of the table itself in bytes — the DRAM the tag manager
    /// reserves (4 MB per GB).
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.granules.div_ceil(8)
    }

    /// Granule index for a physical address.
    #[inline]
    #[must_use]
    pub fn granule_of(&self, paddr: u64) -> u64 {
        paddr >> self.granule_shift
    }

    /// Reads the tag covering physical address `paddr`.
    ///
    /// # Panics
    ///
    /// Panics if `paddr` is beyond the covered memory (a simulator bug:
    /// physical range checks happen in [`crate::PhysMem`] first).
    #[must_use]
    pub fn get(&self, paddr: u64) -> bool {
        let g = self.granule_of(paddr);
        assert!(g < self.granules, "tag lookup beyond physical memory");
        self.bits[(g / 64) as usize] >> (g % 64) & 1 == 1
    }

    /// Sets or clears the tag covering `paddr`.
    ///
    /// # Panics
    ///
    /// As for [`TagTable::get`].
    pub fn set(&mut self, paddr: u64, tag: bool) {
        let g = self.granule_of(paddr);
        assert!(g < self.granules, "tag store beyond physical memory");
        let (w, b) = ((g / 64) as usize, g % 64);
        if tag {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// Clears every tag whose granule overlaps `[paddr, paddr+len)` — the
    /// effect of a non-capability store (Section 4.2: "Any non-capability
    /// store clears this bit").
    pub fn clear_range(&mut self, paddr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = self.granule_of(paddr);
        let last = self.granule_of(paddr + len - 1);
        for g in first..=last {
            let a = g * self.granule_size;
            if a < self.granules * self.granule_size {
                self.set(a, false);
            }
        }
    }

    /// Total number of set tags (used by tests and the GC sketch in the
    /// future-work example).
    #[must_use]
    pub fn count_set(&self) -> u64 {
        self.bits.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// The raw bitmap words, for snapshot export.
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Overwrites the raw bitmap words, for snapshot import. The word
    /// count must match this table's geometry.
    pub(crate) fn set_words(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.bits.len(), "tag table word count mismatch");
        self.bits.copy_from_slice(words);
    }

    /// Iterates over the physical base addresses of all tagged granules.
    pub fn iter_tagged(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.granules).filter_map(move |g| {
            if self.bits[(g / 64) as usize] >> (g % 64) & 1 == 1 {
                Some(g * self.granule_size)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_megabytes_per_gigabyte() {
        // The paper's headline storage ratio.
        let t = TagTable::new(1 << 30);
        assert_eq!(t.table_bytes(), 4 << 20);
    }

    #[test]
    fn all_clear_at_reset() {
        let t = TagTable::new(1024);
        assert_eq!(t.count_set(), 0);
        assert!(!t.get(0));
    }

    #[test]
    fn set_get_granularity() {
        let mut t = TagTable::new(4096);
        t.set(100, true); // granule 3 covers 96..128
        assert!(t.get(96));
        assert!(t.get(127));
        assert!(!t.get(95));
        assert!(!t.get(128));
        assert_eq!(t.count_set(), 1);
    }

    #[test]
    fn clear_range_covers_partial_granules() {
        let mut t = TagTable::new(4096);
        for a in [0u64, 32, 64, 96] {
            t.set(a, true);
        }
        // A 1-byte store at 33 clears only granule 1.
        t.clear_range(33, 1);
        assert!(t.get(0));
        assert!(!t.get(32));
        assert!(t.get(64));
        // A store straddling granules 2 and 3 clears both.
        t.clear_range(95, 2);
        assert!(!t.get(64));
        assert!(!t.get(96));
        // Zero-length clears are no-ops.
        t.set(0, true);
        t.clear_range(0, 0);
        assert!(t.get(0));
    }

    #[test]
    fn iter_tagged_yields_bases() {
        let mut t = TagTable::new(4096);
        t.set(40, true);
        t.set(2048, true);
        let v: Vec<u64> = t.iter_tagged().collect();
        assert_eq!(v, vec![32, 2048]);
    }

    #[test]
    #[should_panic(expected = "beyond physical memory")]
    fn out_of_range_lookup_panics() {
        let t = TagTable::new(64);
        let _ = t.get(64);
    }
}
