//! The 31-bit capability permission vector (Figure 1, Section 4.1).
//!
//! "The permissions field is a 31-bit vector with a '1' in each position
//! indicating an allowed permission for the region. Permissions include load
//! data, store data, execute, and load and store for capabilities. The other
//! 26 permissions ... are being used for experimentation."

use core::fmt;
use core::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// A set of capability permissions.
///
/// `Perms` is a thin newtype over the low 31 bits of a `u32`. The five
/// architecturally defined permissions of the ISCA 2014 paper have named
/// constants; the remaining bits are reserved for experimentation
/// ([`Perms::RESERVED_MASK`]) and round-trip through memory untouched.
///
/// # Example
///
/// ```
/// use cheri_core::Perms;
///
/// let rw = Perms::LOAD | Perms::STORE;
/// assert!(rw.contains(Perms::LOAD));
/// assert!(!rw.contains(Perms::EXECUTE));
/// // CAndPerm-style restriction can only clear bits:
/// let ro = rw & Perms::LOAD;
/// assert!(ro.is_subset_of(rw));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Perms(u32);

impl Perms {
    /// Permit loading data through the capability.
    pub const LOAD: Perms = Perms(1 << 0);
    /// Permit storing data through the capability.
    pub const STORE: Perms = Perms(1 << 1);
    /// Permit instruction fetch through the capability (used by `PCC`).
    pub const EXECUTE: Perms = Perms(1 << 2);
    /// Permit loading *capabilities* (tagged 256-bit values) through the
    /// capability (`CLC`).
    pub const LOAD_CAP: Perms = Perms(1 << 3);
    /// Permit storing *capabilities* through the capability (`CSC`).
    pub const STORE_CAP: Perms = Perms(1 << 4);

    /// Mask of the 26 reserved/experimentation permission bits.
    pub const RESERVED_MASK: u32 = ((1 << 31) - 1) & !0b1_1111;

    /// Mask of all 31 valid permission bits.
    pub const ALL_MASK: u32 = (1 << 31) - 1;

    /// The empty permission set.
    ///
    /// ```
    /// use cheri_core::Perms;
    /// assert!(!Perms::NONE.contains(Perms::LOAD));
    /// ```
    pub const NONE: Perms = Perms(0);

    /// Every permission bit set — the permissions held by the reset
    /// capability (Section 4.3: "On CPU reset, capability registers are
    /// initialized, granting the OS access to the entire address space").
    pub const ALL: Perms = Perms(Self::ALL_MASK);

    /// Constructs a permission set from raw bits, truncating to the 31
    /// architectural bits.
    ///
    /// ```
    /// use cheri_core::Perms;
    /// assert_eq!(Perms::from_bits_truncate(u32::MAX).bits(), (1 << 31) - 1);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_bits_truncate(bits: u32) -> Perms {
        Perms(bits & Self::ALL_MASK)
    }

    /// Returns the raw 31-bit vector.
    #[inline]
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns `true` if every permission in `other` is present in `self`.
    #[inline]
    #[must_use]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if `self` grants no more than `other` — the
    /// monotonicity relation used to verify that capability manipulation
    /// never increases privilege.
    #[inline]
    #[must_use]
    pub const fn is_subset_of(self, other: Perms) -> bool {
        other.contains(self)
    }

    /// Returns `true` if no permission bits are set.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The intersection of two permission sets (the semantics of
    /// `CAndPerm`, Table 1: "Restrict permissions").
    #[inline]
    #[must_use]
    pub const fn intersect(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }

    /// Iterates over the named architectural permissions contained in the
    /// set, as `(bit, mnemonic)` pairs. Reserved bits are not yielded.
    pub fn iter_named(self) -> impl Iterator<Item = (Perms, &'static str)> {
        [
            (Perms::LOAD, "load"),
            (Perms::STORE, "store"),
            (Perms::EXECUTE, "execute"),
            (Perms::LOAD_CAP, "load-cap"),
            (Perms::STORE_CAP, "store-cap"),
        ]
        .into_iter()
        .filter(move |(p, _)| self.contains(*p))
    }
}

impl BitOr for Perms {
    type Output = Perms;
    #[inline]
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    #[inline]
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    #[inline]
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl BitAndAssign for Perms {
    #[inline]
    fn bitand_assign(&mut self, rhs: Perms) {
        self.0 &= rhs.0;
    }
}

impl Not for Perms {
    type Output = Perms;
    #[inline]
    fn not(self) -> Perms {
        Perms(!self.0 & Self::ALL_MASK)
    }
}

impl From<Perms> for u32 {
    #[inline]
    fn from(p: Perms) -> u32 {
        p.bits()
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perms(")?;
        let mut first = true;
        for (_, name) in self.iter_named() {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{name}")?;
            first = false;
        }
        if self.0 & Self::RESERVED_MASK != 0 {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "reserved:{:#x}", self.0 & Self::RESERVED_MASK)?;
            first = false;
        }
        if first {
            write!(f, "none")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = ['-'; 5];
        if self.contains(Perms::LOAD) {
            s[0] = 'r';
        }
        if self.contains(Perms::STORE) {
            s[1] = 'w';
        }
        if self.contains(Perms::EXECUTE) {
            s[2] = 'x';
        }
        if self.contains(Perms::LOAD_CAP) {
            s[3] = 'R';
        }
        if self.contains(Perms::STORE_CAP) {
            s[4] = 'W';
        }
        for c in s {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Binary for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_bits_are_distinct() {
        let all = [Perms::LOAD, Perms::STORE, Perms::EXECUTE, Perms::LOAD_CAP, Perms::STORE_CAP];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert!((*a & *b).is_empty(), "{a:?} overlaps {b:?}");
                }
            }
        }
    }

    #[test]
    fn all_has_31_bits() {
        assert_eq!(Perms::ALL.bits().count_ones(), 31);
        assert_eq!(Perms::ALL.bits(), 0x7fff_ffff);
    }

    #[test]
    fn reserved_mask_excludes_named() {
        assert_eq!(Perms::RESERVED_MASK.count_ones(), 26);
        for (p, _) in Perms::ALL.iter_named() {
            assert_eq!(p.bits() & Perms::RESERVED_MASK, 0);
        }
    }

    #[test]
    fn truncation_drops_bit_31() {
        assert_eq!(Perms::from_bits_truncate(0x8000_0000).bits(), 0);
    }

    #[test]
    fn subset_relation() {
        let rw = Perms::LOAD | Perms::STORE;
        assert!(Perms::LOAD.is_subset_of(rw));
        assert!(rw.is_subset_of(Perms::ALL));
        assert!(!rw.is_subset_of(Perms::LOAD));
        assert!(Perms::NONE.is_subset_of(Perms::NONE));
    }

    #[test]
    fn intersect_is_commutative_and_reducing() {
        let a = Perms::LOAD | Perms::EXECUTE;
        let b = Perms::LOAD | Perms::STORE;
        assert_eq!(a.intersect(b), b.intersect(a));
        assert!(a.intersect(b).is_subset_of(a));
        assert!(a.intersect(b).is_subset_of(b));
        assert_eq!(a.intersect(b), Perms::LOAD);
    }

    #[test]
    fn not_stays_within_31_bits() {
        assert_eq!(!Perms::NONE, Perms::ALL);
        assert_eq!(!Perms::ALL, Perms::NONE);
        assert_eq!((!Perms::LOAD).bits() & !Perms::ALL_MASK, 0);
    }

    #[test]
    fn display_is_rwx_style() {
        let p = Perms::LOAD | Perms::STORE | Perms::STORE_CAP;
        assert_eq!(p.to_string(), "rw--W");
        assert_eq!(Perms::NONE.to_string(), "-----");
        assert_eq!(Perms::ALL.to_string(), "rwxRW");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", Perms::NONE), "Perms(none)");
        assert!(format!("{:?}", Perms::LOAD).contains("load"));
        let with_reserved = Perms::from_bits_truncate(1 << 10);
        assert!(format!("{with_reserved:?}").contains("reserved"));
    }

    #[test]
    fn binary_and_hex_formatting() {
        let p = Perms::LOAD | Perms::EXECUTE;
        assert_eq!(format!("{p:b}"), "101");
        assert_eq!(format!("{p:x}"), "5");
        assert_eq!(format!("{p:o}"), "5");
        assert_eq!(format!("{p:X}"), "5");
    }
}
