//! # cheri-core — the CHERI memory-capability model
//!
//! This crate implements the architectural capability model of
//! *"The CHERI capability model: Revisiting RISC in an age of risk"*
//! (Woodruff et al., ISCA 2014), independent of any particular pipeline:
//!
//! * [`Capability`] — the 256-bit architectural capability of Figure 1:
//!   a 31-bit permission vector, a 64-bit `base`, a 64-bit `length`,
//!   a reserved field used for experimentation, and an out-of-band tag.
//! * [`Perms`] — the permission vector (load/store/execute/load-cap/store-cap
//!   plus reserved experimentation bits).
//! * Monotonic manipulation operations (`CIncBase`, `CSetLen`, `CAndPerm`,
//!   `CClearTag`, `CToPtr`, `CFromPtr`, ...) as fallible methods that can
//!   *only reduce* privilege — the unforgeability property of Section 4.2.
//! * [`CapCause`]/[`CapExcCode`] — capability exception causes raised when a
//!   check fails.
//! * [`CapRegFile`] — the 32-entry capability register file plus `PCC`
//!   (Section 4.1); `C0` is the implicit legacy data capability.
//! * [`compress::Compressed128`] — the proposed 128-bit production format
//!   (Section 7's "128b CHERI" column), a Low-Fat-pointer-style
//!   floating-point encoding of bounds.
//! * [`ops::CapInstrKind`] — the catalogue of Table 1 instructions, used by
//!   the assembler, the simulator's capability coprocessor, and the Table 1
//!   harness.
//!
//! The crate is `#![no_std]`-shaped in spirit (no I/O, no allocation beyond
//! `alloc`-free types) so that the simulator, the limit study, and tests can
//! all share one authoritative definition of the model.
//!
//! ## Example
//!
//! Deriving a bounded, read-only capability from the initial all-powerful
//! capability, exactly as a `malloc()` returning a `const` buffer would
//! (Section 5.1):
//!
//! ```
//! use cheri_core::{Capability, Perms};
//!
//! let almighty = Capability::max();
//! let obj = almighty.inc_base(0x1000)?.set_len(64)?;
//! let ro = obj.and_perm(Perms::LOAD)?;
//! assert_eq!(ro.base(), 0x1000);
//! assert_eq!(ro.length(), 64);
//! assert!(ro.check_data_access(0x1000, 8, Perms::LOAD).is_ok());
//! assert!(ro.check_data_access(0x1000, 8, Perms::STORE).is_err());
//! # Ok::<(), cheri_core::CapCause>(())
//! ```

pub mod cap;
pub mod compress;
pub mod exception;
pub mod ops;
pub mod perms;
pub mod regfile;

pub use cap::Capability;
pub use compress::Compressed128;
pub use exception::{CapCause, CapExcCode};
pub use ops::CapInstrKind;
pub use perms::Perms;
pub use regfile::{CapRegFile, PCC_INDEX};

/// Number of architectural capability registers (Section 4.1: "There are 32
/// capability registers ... mirroring the number of integer and
/// floating-point registers in MIPS").
pub const NUM_CAP_REGS: usize = 32;

/// Width of one architectural capability in bytes (Figure 1: 256 bits).
pub const CAP_SIZE_BYTES: usize = 32;

/// Width of the compressed production capability in bytes (Section 7:
/// "128b CHERI").
pub const CAP128_SIZE_BYTES: usize = 16;

/// Tag granularity: one tag bit per 256-bit (32-byte) memory granule
/// (Section 4.2: "one tag bit for each 256-bit line in memory").
pub const TAG_GRANULE: u64 = 32;
