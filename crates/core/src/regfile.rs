//! The capability register file (Section 4.1).
//!
//! "CHERI implements an additional register file for capabilities ... There
//! are 32 capability registers, each 256-bit wide." `C0` is the implicit
//! legacy data capability through which all MIPS loads and stores are
//! offset; `PCC` is the implied program-counter capability validating
//! instruction fetch.

use core::fmt;

use crate::cap::Capability;
use crate::NUM_CAP_REGS;

/// Pseudo-index used by [`CapRegFile::get`]/[`CapRegFile::set`] to address
/// `PCC` where an instruction encoding calls for it.
pub const PCC_INDEX: u8 = 0xff;

/// The 32-entry capability register file plus `PCC`.
///
/// At reset every register (including `PCC`) holds the almighty capability
/// so that an unmodified OS "can run unchanged without knowledge of the
/// capability extensions" (Section 4.3). The OS then restricts and
/// delegates on `execve()`.
///
/// # Example
///
/// ```
/// use cheri_core::{CapRegFile, Capability, Perms};
///
/// let mut regs = CapRegFile::new();
/// // Sandbox legacy code by constraining C0 (Section 5.3):
/// let sandbox = regs.c0().inc_base(0x1000)?.set_len(0x1000)?;
/// regs.set_c0(sandbox);
/// assert_eq!(regs.c0().base(), 0x1000);
/// # Ok::<(), cheri_core::CapCause>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CapRegFile {
    regs: [Capability; NUM_CAP_REGS],
    pcc: Capability,
}

impl CapRegFile {
    /// A reset register file: every register and `PCC` hold
    /// [`Capability::max`].
    #[must_use]
    pub fn new() -> CapRegFile {
        CapRegFile { regs: [Capability::max(); NUM_CAP_REGS], pcc: Capability::max() }
    }

    /// A register file with *no* authority anywhere — the starting point
    /// for constructing a confined protection domain, where each right
    /// must be delegated explicitly.
    #[must_use]
    pub fn empty() -> CapRegFile {
        CapRegFile { regs: [Capability::null(); NUM_CAP_REGS], pcc: Capability::null() }
    }

    /// Reads register `index` (0–31) or `PCC` via [`PCC_INDEX`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is neither a valid register number nor
    /// [`PCC_INDEX`]; the decoder guarantees 5-bit register fields, so an
    /// out-of-range index is a simulator bug, not a guest error.
    #[must_use]
    pub fn get(&self, index: u8) -> &Capability {
        if index == PCC_INDEX {
            &self.pcc
        } else {
            &self.regs[usize::from(index)]
        }
    }

    /// Writes register `index` (0–31) or `PCC` via [`PCC_INDEX`].
    ///
    /// # Panics
    ///
    /// As for [`CapRegFile::get`].
    pub fn set(&mut self, index: u8, cap: Capability) {
        if index == PCC_INDEX {
            self.pcc = cap;
        } else {
            self.regs[usize::from(index)] = cap;
        }
    }

    /// The implicit legacy data capability `C0` (Section 4.1: "Existing
    /// MIPS load and store instructions are implicitly offset via
    /// capability register 0").
    #[must_use]
    pub fn c0(&self) -> &Capability {
        &self.regs[0]
    }

    /// Replaces `C0`, e.g. to sandbox legacy code (Section 5.3).
    pub fn set_c0(&mut self, cap: Capability) {
        self.regs[0] = cap;
    }

    /// The program counter capability.
    #[must_use]
    pub fn pcc(&self) -> &Capability {
        &self.pcc
    }

    /// Replaces `PCC` (used by `CJR`/`CJALR` and exception entry).
    pub fn set_pcc(&mut self, cap: Capability) {
        self.pcc = cap;
    }

    /// Iterates over the 32 numbered registers (not `PCC`).
    pub fn iter(&self) -> impl Iterator<Item = &Capability> {
        self.regs.iter()
    }

    /// Returns `true` if every tagged capability in `self` (including
    /// `PCC`) is dominated by `bound` — i.e. the register file's ambient
    /// authority does not exceed `bound`. Used to verify delegation and
    /// the unforgeability property.
    #[must_use]
    pub fn within(&self, bound: &Capability) -> bool {
        self.iter().all(|c| bound.dominates(c)) && bound.dominates(&self.pcc)
    }
}

impl Default for CapRegFile {
    /// Equivalent to [`CapRegFile::new`] (the reset state).
    fn default() -> CapRegFile {
        CapRegFile::new()
    }
}

impl fmt::Debug for CapRegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CapRegFile {{")?;
        writeln!(f, "  PCC: {}", self.pcc)?;
        for (i, c) in self.regs.iter().enumerate() {
            if !c.is_null() {
                writeln!(f, "  C{i:02}: {c}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::Perms;

    #[test]
    fn reset_state_is_almighty() {
        let r = CapRegFile::new();
        assert_eq!(*r.c0(), Capability::max());
        assert_eq!(*r.pcc(), Capability::max());
        assert!(r.within(&Capability::max()));
    }

    #[test]
    fn empty_state_has_no_authority() {
        let r = CapRegFile::empty();
        assert!(r.within(&Capability::null()));
        assert!(!r.pcc().tag());
    }

    #[test]
    fn get_set_roundtrip_including_pcc() {
        let mut r = CapRegFile::new();
        let c = Capability::new(0x2000, 0x100, Perms::LOAD).unwrap();
        r.set(7, c);
        assert_eq!(*r.get(7), c);
        r.set(PCC_INDEX, c);
        assert_eq!(*r.get(PCC_INDEX), c);
        assert_eq!(*r.pcc(), c);
    }

    #[test]
    fn within_detects_excess_authority() {
        let mut r = CapRegFile::empty();
        let bound = Capability::new(0x1000, 0x1000, Perms::ALL).unwrap();
        r.set(3, bound.inc_base(0x10).unwrap());
        r.set_pcc(bound.and_perm(Perms::EXECUTE).unwrap());
        assert!(r.within(&bound));
        // Slip in something outside the bound:
        r.set(4, Capability::new(0, 0x10000, Perms::LOAD).unwrap());
        assert!(!r.within(&bound));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_range_index_panics() {
        let r = CapRegFile::new();
        let _ = r.get(32);
    }

    #[test]
    fn debug_elides_null_registers() {
        let mut r = CapRegFile::empty();
        r.set(5, Capability::max());
        let s = format!("{r:?}");
        assert!(s.contains("C05"));
        assert!(!s.contains("C06"));
    }
}
