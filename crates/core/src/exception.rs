//! Capability exception causes.
//!
//! The capability coprocessor "exchanges operands with [the pipeline] and
//! [the pipeline] receives exceptions from it" (Section 4). When a
//! capability check fails, CHERI raises a coprocessor-2 exception carrying a
//! cause code and the index of the offending capability register.

use core::fmt;

/// Why a capability check failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CapExcCode {
    /// The capability register's tag was clear — the value is plain data
    /// and may not be dereferenced or jumped through.
    TagViolation,
    /// An access fell (partly) outside `[base, base+length)`.
    LengthViolation,
    /// The capability lacks [`crate::Perms::LOAD`].
    PermitLoadViolation,
    /// The capability lacks [`crate::Perms::STORE`].
    PermitStoreViolation,
    /// The capability lacks [`crate::Perms::EXECUTE`].
    PermitExecuteViolation,
    /// The capability lacks [`crate::Perms::LOAD_CAP`].
    PermitLoadCapViolation,
    /// The capability lacks [`crate::Perms::STORE_CAP`].
    PermitStoreCapViolation,
    /// A manipulation would have *increased* privilege: `CIncBase` past the
    /// end of the region, `CSetLen` beyond the current length, or a
    /// `CFromPtr` outside the source region.
    MonotonicityViolation,
    /// The TLB entry for the page prohibits capability loads (Section 6.1:
    /// "CHERI extends page table entries with bits to authorize capability
    /// loads and stores").
    TlbProhibitLoadCap,
    /// The TLB entry for the page prohibits capability stores.
    TlbProhibitStoreCap,
    /// A capability load or store used an address that is not 256-bit
    /// aligned, so no single tag bit covers it.
    AlignmentViolation,
    /// Arithmetic on a capability field overflowed the 64-bit address
    /// space.
    AddressOverflow,
}

impl CapExcCode {
    /// A short, stable, lowercase description (suitable for `Display` per
    /// C-GOOD-ERR).
    #[must_use]
    pub const fn message(self) -> &'static str {
        match self {
            CapExcCode::TagViolation => "capability tag is clear",
            CapExcCode::LengthViolation => "access outside capability bounds",
            CapExcCode::PermitLoadViolation => "capability does not permit load",
            CapExcCode::PermitStoreViolation => "capability does not permit store",
            CapExcCode::PermitExecuteViolation => "capability does not permit execute",
            CapExcCode::PermitLoadCapViolation => "capability does not permit capability load",
            CapExcCode::PermitStoreCapViolation => "capability does not permit capability store",
            CapExcCode::MonotonicityViolation => "manipulation would increase privilege",
            CapExcCode::TlbProhibitLoadCap => "page prohibits capability loads",
            CapExcCode::TlbProhibitStoreCap => "page prohibits capability stores",
            CapExcCode::AlignmentViolation => "capability access is not 256-bit aligned",
            CapExcCode::AddressOverflow => "capability address arithmetic overflowed",
        }
    }

    /// The numeric cause code stored in the capability cause register, as
    /// the simulator exposes it to the OS.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            CapExcCode::TagViolation => 0x02,
            CapExcCode::LengthViolation => 0x01,
            CapExcCode::PermitLoadViolation => 0x12,
            CapExcCode::PermitStoreViolation => 0x13,
            CapExcCode::PermitExecuteViolation => 0x11,
            CapExcCode::PermitLoadCapViolation => 0x14,
            CapExcCode::PermitStoreCapViolation => 0x15,
            CapExcCode::MonotonicityViolation => 0x10,
            CapExcCode::TlbProhibitLoadCap => 0x20,
            CapExcCode::TlbProhibitStoreCap => 0x21,
            CapExcCode::AlignmentViolation => 0x22,
            CapExcCode::AddressOverflow => 0x23,
        }
    }
}

impl fmt::Display for CapExcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

/// A capability exception: a cause code plus the index of the capability
/// register that failed the check.
///
/// Register index 0xff denotes `PCC` (a fetch-side violation); indices
/// 0–31 denote `C0`–`C31`.
///
/// # Example
///
/// ```
/// use cheri_core::{CapCause, CapExcCode};
///
/// let cause = CapCause::new(CapExcCode::LengthViolation, 3);
/// assert_eq!(cause.reg(), 3);
/// assert_eq!(cause.to_string(), "access outside capability bounds (C3)");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CapCause {
    code: CapExcCode,
    reg: u8,
}

/// The pseudo register index reported for `PCC`-related faults.
pub const PCC_FAULT_REG: u8 = 0xff;

impl CapCause {
    /// Creates a cause for capability register `reg` (or [`PCC_FAULT_REG`]).
    #[must_use]
    pub const fn new(code: CapExcCode, reg: u8) -> CapCause {
        CapCause { code, reg }
    }

    /// The cause code.
    #[must_use]
    pub const fn code(self) -> CapExcCode {
        self.code
    }

    /// The offending capability register index.
    #[must_use]
    pub const fn reg(self) -> u8 {
        self.reg
    }

    /// Returns a copy of this cause re-attributed to register `reg`.
    ///
    /// The pure capability methods on [`crate::Capability`] do not know
    /// which register they were invoked on; the coprocessor uses this to
    /// fill in the register index before delivering the exception.
    #[must_use]
    pub const fn with_reg(self, reg: u8) -> CapCause {
        CapCause { code: self.code, reg }
    }

    /// The packed value of the capability cause register: cause code in the
    /// high byte, register index in the low byte.
    #[must_use]
    pub const fn packed(self) -> u16 {
        ((self.code.code() as u16) << 8) | self.reg as u16
    }
}

impl From<CapExcCode> for CapCause {
    /// Wraps a bare code with "register unknown" (0), to be re-attributed
    /// by the coprocessor via [`CapCause::with_reg`].
    fn from(code: CapExcCode) -> CapCause {
        CapCause::new(code, 0)
    }
}

impl fmt::Display for CapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.reg == PCC_FAULT_REG {
            write!(f, "{} (PCC)", self.code)
        } else {
            write!(f, "{} (C{})", self.code, self.reg)
        }
    }
}

impl std::error::Error for CapCause {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_roundtrips_fields() {
        let c = CapCause::new(CapExcCode::PermitStoreViolation, 17);
        assert_eq!(c.packed() >> 8, u16::from(CapExcCode::PermitStoreViolation.code()));
        assert_eq!(c.packed() & 0xff, 17);
    }

    #[test]
    fn with_reg_reattributes() {
        let c: CapCause = CapExcCode::TagViolation.into();
        assert_eq!(c.reg(), 0);
        assert_eq!(c.with_reg(9).reg(), 9);
        assert_eq!(c.with_reg(9).code(), CapExcCode::TagViolation);
    }

    #[test]
    fn pcc_display() {
        let c = CapCause::new(CapExcCode::PermitExecuteViolation, PCC_FAULT_REG);
        assert!(c.to_string().contains("(PCC)"));
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            CapExcCode::TagViolation,
            CapExcCode::LengthViolation,
            CapExcCode::PermitLoadViolation,
            CapExcCode::PermitStoreViolation,
            CapExcCode::PermitExecuteViolation,
            CapExcCode::PermitLoadCapViolation,
            CapExcCode::PermitStoreCapViolation,
            CapExcCode::MonotonicityViolation,
            CapExcCode::TlbProhibitLoadCap,
            CapExcCode::TlbProhibitStoreCap,
            CapExcCode::AlignmentViolation,
            CapExcCode::AddressOverflow,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code(), "{a:?} and {b:?} share a code");
            }
        }
    }

    #[test]
    fn messages_are_lowercase_without_period() {
        for code in [CapExcCode::TagViolation, CapExcCode::LengthViolation] {
            let m = code.message();
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let c = CapCause::new(CapExcCode::LengthViolation, 1);
        let e: Box<dyn std::error::Error> = Box::new(c);
        assert!(e.to_string().contains("bounds"));
    }
}
