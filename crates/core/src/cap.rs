//! The 256-bit architectural capability (Figure 1).
//!
//! A memory capability is "an unforgeable pointer that grants access to a
//! linear range of address space" (Section 3). The ISCA 2014 format carries
//! a 31-bit permission vector, a 64-bit `base`, a 64-bit `length`, and 97
//! reserved bits used for experimentation; validity is recorded in an
//! out-of-band tag bit.
//!
//! All manipulation operations are **monotonic**: they either reduce the
//! rights granted (smaller region, fewer permissions, cleared tag) or fail
//! with a [`CapCause`]. This is what makes capabilities unforgeable without
//! appealing to kernel mode (Section 4.2).

use core::fmt;

use crate::exception::{CapCause, CapExcCode};
use crate::perms::Perms;
use crate::{CAP_SIZE_BYTES, TAG_GRANULE};

/// A 256-bit CHERI memory capability plus its out-of-band tag.
///
/// The in-memory layout (as stored by `CSC` and produced by
/// [`Capability::to_bytes`]) is four big-endian 64-bit words:
///
/// ```text
/// word 0   [63:33] permissions (31 bits)   [32:0] reserved
/// word 1   reserved (experimentation field, Section 11)
/// word 2   base   (64 bits)
/// word 3   length (64 bits)
/// ```
///
/// The tag is *not* part of the 256 bits; it travels out of band through
/// the tagged memory hierarchy (Section 4.2).
///
/// # Example
///
/// ```
/// use cheri_core::{Capability, Perms};
///
/// // The reset capability grants everything …
/// let almighty = Capability::max();
/// // … and user code can only ever shrink it:
/// let heap = almighty.inc_base(0x4000_0000)?.set_len(1 << 20)?;
/// assert!(heap.check_data_access(0x4000_0000, 8, Perms::STORE).is_ok());
/// assert!(heap.check_data_access(0x4000_0000 + (1 << 20), 1, Perms::LOAD).is_err());
/// # Ok::<(), cheri_core::CapCause>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability {
    tag: bool,
    perms: Perms,
    reserved: u64,
    base: u64,
    length: u64,
}

impl Capability {
    /// The almighty capability installed in every capability register at
    /// CPU reset (Section 4.3): the whole 64-bit address space with all
    /// permissions, tagged valid.
    #[must_use]
    pub const fn max() -> Capability {
        Capability { tag: true, perms: Perms::ALL, reserved: 0, base: 0, length: u64::MAX }
    }

    /// The null capability: untagged, no permissions, empty region.
    /// This is what a cleared register holds and what `CFromPtr` produces
    /// for a NULL pointer.
    #[must_use]
    pub const fn null() -> Capability {
        Capability { tag: false, perms: Perms::NONE, reserved: 0, base: 0, length: 0 }
    }

    /// Builds a tagged capability over `[base, base+length)` with `perms`.
    ///
    /// This is a *model-level* constructor for tests, the OS (which is
    /// trusted to delegate the address space on `execve()`), and workload
    /// setup. Emulated user code can only obtain capabilities by deriving
    /// them from ones it already holds.
    ///
    /// # Errors
    ///
    /// Returns [`CapExcCode::AddressOverflow`] if `base + length` overflows
    /// the 64-bit address space.
    pub fn new(base: u64, length: u64, perms: Perms) -> Result<Capability, CapCause> {
        if base.checked_add(length).is_none() && !(base == 0 && length == u64::MAX) {
            // Allow the almighty base=0/len=MAX encoding, whose top is
            // 2^64-1; anything else that wraps is rejected.
            return Err(CapExcCode::AddressOverflow.into());
        }
        Ok(Capability { tag: true, perms, reserved: 0, base, length })
    }

    /// Whether the tag is set (the register holds a valid capability
    /// rather than plain data). Queried by `CGetTag`/`CBTS`/`CBTU`.
    #[inline]
    #[must_use]
    pub const fn tag(&self) -> bool {
        self.tag
    }

    /// The permission vector (`CGetPerm`).
    #[inline]
    #[must_use]
    pub const fn perms(&self) -> Perms {
        self.perms
    }

    /// The region base address (`CGetBase`).
    #[inline]
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The region length in bytes (`CGetLen`).
    #[inline]
    #[must_use]
    pub const fn length(&self) -> u64 {
        self.length
    }

    /// The reserved experimentation field (Section 11).
    #[inline]
    #[must_use]
    pub const fn reserved(&self) -> u64 {
        self.reserved
    }

    /// One past the last byte the capability can address, as a 65-bit
    /// quantity (`base + length` may equal 2^64 for the almighty
    /// capability).
    #[inline]
    #[must_use]
    pub fn top(&self) -> u128 {
        u128::from(self.base) + u128::from(self.length)
    }

    /// Whether this is bit-for-bit the null capability.
    #[inline]
    #[must_use]
    pub fn is_null(&self) -> bool {
        *self == Capability::null()
    }

    // --- Monotonic manipulation (Table 1) -------------------------------

    /// `CIncBase`: "Increase base and decrease length".
    ///
    /// A zero `delta` is permitted even on an untagged value and acts as
    /// a plain register copy — the `CIncBase cd, cb, $zero` move idiom
    /// (there is no separate move instruction in Table 1). Copying an
    /// untagged value is monotonic: it grants nothing.
    ///
    /// # Errors
    ///
    /// * [`CapExcCode::TagViolation`] if the tag is clear and `delta` is
    ///   non-zero — plain data cannot be refined into a capability.
    /// * [`CapExcCode::MonotonicityViolation`] if `delta > length`, which
    ///   would grant access past the original region.
    pub fn inc_base(&self, delta: u64) -> Result<Capability, CapCause> {
        if !self.tag {
            if delta == 0 {
                return Ok(*self);
            }
            return Err(CapExcCode::TagViolation.into());
        }
        if delta > self.length {
            return Err(CapExcCode::MonotonicityViolation.into());
        }
        // delta <= length <= top - base, so base + delta cannot overflow
        // past 2^64 - that would require top > 2^64.
        Ok(Capability { base: self.base.wrapping_add(delta), length: self.length - delta, ..*self })
    }

    /// `CSetLen`: "Set (reduce) length".
    ///
    /// # Errors
    ///
    /// * [`CapExcCode::TagViolation`] if the tag is clear.
    /// * [`CapExcCode::MonotonicityViolation`] if `new_len > length`.
    pub fn set_len(&self, new_len: u64) -> Result<Capability, CapCause> {
        if !self.tag {
            return Err(CapExcCode::TagViolation.into());
        }
        if new_len > self.length {
            return Err(CapExcCode::MonotonicityViolation.into());
        }
        Ok(Capability { length: new_len, ..*self })
    }

    /// `CAndPerm`: "Restrict permissions" — intersects the permission
    /// vector with `mask`.
    ///
    /// # Errors
    ///
    /// Returns [`CapExcCode::TagViolation`] if the tag is clear.
    pub fn and_perm(&self, mask: Perms) -> Result<Capability, CapCause> {
        if !self.tag {
            return Err(CapExcCode::TagViolation.into());
        }
        Ok(Capability { perms: self.perms.intersect(mask), ..*self })
    }

    /// `CClearTag`: "Invalidate a capability register". Always succeeds;
    /// the result can never be dereferenced again.
    #[must_use]
    pub fn clear_tag(&self) -> Capability {
        Capability { tag: false, ..*self }
    }

    /// `CToPtr`: "Generate C0-based integer pointer from a capability".
    ///
    /// Converts this capability into an integer usable by legacy code that
    /// addresses memory through `c0`. An untagged capability converts to 0
    /// (NULL), supporting the NULL-pointer idiom of C (Section 4.3).
    #[must_use]
    pub fn to_ptr(&self, c0: &Capability) -> u64 {
        if !self.tag {
            return 0;
        }
        self.base.wrapping_sub(c0.base)
    }

    /// `CFromPtr`: "CIncBase with support for NULL casts".
    ///
    /// Derives a capability for the object at legacy pointer `ptr` (an
    /// offset within `c0`'s region). A NULL `ptr` produces the null
    /// capability rather than a capability to `c0.base`, so round-tripping
    /// NULL through capability registers preserves NULL-ness.
    ///
    /// # Errors
    ///
    /// Propagates [`Capability::inc_base`] errors for non-NULL pointers.
    pub fn from_ptr(c0: &Capability, ptr: u64) -> Result<Capability, CapCause> {
        if ptr == 0 {
            return Ok(Capability::null());
        }
        c0.inc_base(ptr)
    }

    // --- Access checks ---------------------------------------------------

    /// Checks a data access of `size` bytes at virtual address `addr`
    /// requiring permission `perm` (one of [`Perms::LOAD`] or
    /// [`Perms::STORE`]).
    ///
    /// This is the check the capability coprocessor applies to every
    /// legacy MIPS load/store (via `C0`) and every `CL*`/`CS*`
    /// (Section 4.1).
    ///
    /// # Errors
    ///
    /// * [`CapExcCode::TagViolation`] — tag clear.
    /// * [`CapExcCode::PermitLoadViolation`] / `PermitStoreViolation` —
    ///   missing permission.
    /// * [`CapExcCode::LengthViolation`] — any accessed byte outside
    ///   `[base, base+length)`.
    #[inline]
    pub fn check_data_access(&self, addr: u64, size: u64, perm: Perms) -> Result<(), CapCause> {
        if !self.tag {
            return Err(CapExcCode::TagViolation.into());
        }
        if !self.perms.contains(perm) {
            let code = if perm.contains(Perms::STORE) {
                CapExcCode::PermitStoreViolation
            } else {
                CapExcCode::PermitLoadViolation
            };
            return Err(code.into());
        }
        self.check_bounds(addr, size)
    }

    /// Checks a capability load or store ([`Perms::LOAD_CAP`] /
    /// [`Perms::STORE_CAP`]) of one 256-bit granule at `addr`.
    ///
    /// # Errors
    ///
    /// In addition to the data-access errors, returns
    /// [`CapExcCode::AlignmentViolation`] if `addr` is not 32-byte aligned
    /// (tags cover aligned 256-bit granules only).
    pub fn check_cap_access(&self, addr: u64, store: bool) -> Result<(), CapCause> {
        self.check_cap_access_g(addr, store, TAG_GRANULE)
    }

    /// As [`Capability::check_cap_access`], for an implementation whose
    /// in-memory capability (and tag granule) is `granule` bytes — 16
    /// under the compressed 128-bit format. The architectural default is
    /// [`crate::CAP_SIZE_BYTES`]-sized granules.
    ///
    /// # Errors
    ///
    /// As [`Capability::check_cap_access`].
    pub fn check_cap_access_g(&self, addr: u64, store: bool, granule: u64) -> Result<(), CapCause> {
        debug_assert!(granule == TAG_GRANULE || granule == CAP_SIZE_BYTES as u64 / 2);
        if !self.tag {
            return Err(CapExcCode::TagViolation.into());
        }
        let (perm, code) = if store {
            (Perms::STORE_CAP, CapExcCode::PermitStoreCapViolation)
        } else {
            (Perms::LOAD_CAP, CapExcCode::PermitLoadCapViolation)
        };
        if !self.perms.contains(perm) {
            return Err(code.into());
        }
        // `granule` is a power of two (asserted above), so alignment is
        // a mask rather than a division.
        if addr & (granule - 1) != 0 {
            return Err(CapExcCode::AlignmentViolation.into());
        }
        self.check_bounds(addr, granule)
    }

    /// Checks an instruction fetch at `pc` against this capability acting
    /// as `PCC` (Section 4.4: the absolute program counter is validated
    /// against `PCC` in the Execute stage).
    ///
    /// # Errors
    ///
    /// Tag, execute-permission, and bounds violations as for data access.
    #[inline]
    pub fn check_execute(&self, pc: u64) -> Result<(), CapCause> {
        if !self.tag {
            return Err(CapExcCode::TagViolation.into());
        }
        if !self.perms.contains(Perms::EXECUTE) {
            return Err(CapExcCode::PermitExecuteViolation.into());
        }
        self.check_bounds(pc, 4)
    }

    #[inline]
    fn check_bounds(&self, addr: u64, size: u64) -> Result<(), CapCause> {
        // Equivalent to `addr < base || addr + size > base + length` in
        // 65-bit arithmetic, restated so it stays in u64: once
        // `addr >= base` and `size <= length` hold, both subtractions
        // are exact and the final comparison is the 65-bit one.
        if addr < self.base || size > self.length || addr - self.base > self.length - size {
            return Err(CapExcCode::LengthViolation.into());
        }
        Ok(())
    }

    /// Returns `true` if `other` grants no rights beyond `self`: its
    /// region is contained in `self`'s and its permissions are a subset.
    /// Untagged capabilities grant nothing and are dominated by anything.
    ///
    /// This is the ordering that the property tests use to state
    /// unforgeability: no sequence of user-mode operations can produce a
    /// capability not dominated by its sources.
    #[must_use]
    pub fn dominates(&self, other: &Capability) -> bool {
        if !other.tag {
            return true;
        }
        if !self.tag {
            return false;
        }
        other.base >= self.base && other.top() <= self.top() && other.perms.is_subset_of(self.perms)
    }

    // --- Memory representation (Figure 1) --------------------------------

    /// Serialises the 256-bit body (tag excluded) as four big-endian
    /// words in the Figure 1 layout.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; CAP_SIZE_BYTES] {
        let w0 = (u64::from(self.perms.bits()) << 33) | (self.reserved >> 32);
        let w1 = self.reserved << 32 >> 32; // low 32 bits of reserved, zero-extended
        let mut out = [0u8; CAP_SIZE_BYTES];
        out[0..8].copy_from_slice(&w0.to_be_bytes());
        out[8..16].copy_from_slice(&w1.to_be_bytes());
        out[16..24].copy_from_slice(&self.base.to_be_bytes());
        out[24..32].copy_from_slice(&self.length.to_be_bytes());
        out
    }

    /// Reconstructs a capability body from its 256-bit memory image and an
    /// externally supplied tag (the tag lives in the tag table, not in the
    /// 256 bits).
    #[must_use]
    pub fn from_bytes(bytes: &[u8; CAP_SIZE_BYTES], tag: bool) -> Capability {
        let w0 = u64::from_be_bytes(bytes[0..8].try_into().expect("8-byte slice"));
        let w1 = u64::from_be_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let base = u64::from_be_bytes(bytes[16..24].try_into().expect("8-byte slice"));
        let length = u64::from_be_bytes(bytes[24..32].try_into().expect("8-byte slice"));
        let perms = Perms::from_bits_truncate((w0 >> 33) as u32);
        let reserved = ((w0 & 0xffff_ffff) << 32) | (w1 & 0xffff_ffff);
        Capability { tag, perms, reserved, base, length }
    }

    /// Reinterprets 32 bytes of *untagged* memory as the register contents
    /// a `CLC` from untagged memory would produce: the bit pattern is
    /// loaded but the tag is clear, so it can be copied (e.g. by
    /// `memcpy()`, Section 4.2) but never dereferenced.
    #[must_use]
    pub fn from_untagged_bytes(bytes: &[u8; CAP_SIZE_BYTES]) -> Capability {
        Capability::from_bytes(bytes, false)
    }
}

impl Default for Capability {
    /// The null capability.
    fn default() -> Capability {
        Capability::null()
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Capability")
            .field("tag", &self.tag)
            .field("perms", &self.perms)
            .field("base", &format_args!("{:#x}", self.base))
            .field("length", &format_args!("{:#x}", self.length))
            .field("reserved", &format_args!("{:#x}", self.reserved))
            .finish()
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cap[{} {} base={:#x} len={:#x}]",
            if self.tag { "v" } else { "-" },
            self.perms,
            self.base,
            self.length
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_covers_everything() {
        let c = Capability::max();
        assert!(c.tag());
        assert_eq!(c.base(), 0);
        assert_eq!(c.top(), u128::from(u64::MAX));
        assert!(c.check_data_access(0, 8, Perms::LOAD).is_ok());
        assert!(c.check_data_access(u64::MAX - 8, 7, Perms::STORE).is_ok());
    }

    #[test]
    fn null_grants_nothing() {
        let c = Capability::null();
        assert!(!c.tag());
        assert!(c.is_null());
        assert_eq!(
            c.check_data_access(0, 1, Perms::LOAD).unwrap_err().code(),
            CapExcCode::TagViolation
        );
    }

    #[test]
    fn new_rejects_wrapping_region() {
        let err = Capability::new(u64::MAX, 2, Perms::ALL).unwrap_err();
        assert_eq!(err.code(), CapExcCode::AddressOverflow);
        // but base=0/len=MAX (the almighty encoding) is accepted
        assert!(Capability::new(0, u64::MAX, Perms::ALL).is_ok());
        // and exact fit to the top of the address space is accepted
        assert!(Capability::new(u64::MAX - 16, 16, Perms::ALL).is_ok());
    }

    #[test]
    fn inc_base_moves_and_shrinks() {
        let c = Capability::new(0x1000, 0x100, Perms::ALL).unwrap();
        let d = c.inc_base(0x10).unwrap();
        assert_eq!(d.base(), 0x1010);
        assert_eq!(d.length(), 0xf0);
        assert_eq!(d.top(), c.top());
    }

    #[test]
    fn inc_base_to_exact_end_is_empty_not_error() {
        let c = Capability::new(0x1000, 0x100, Perms::ALL).unwrap();
        let d = c.inc_base(0x100).unwrap();
        assert_eq!(d.length(), 0);
        assert!(d.check_data_access(d.base(), 1, Perms::LOAD).is_err());
    }

    #[test]
    fn inc_base_past_end_is_monotonicity_violation() {
        let c = Capability::new(0x1000, 0x100, Perms::ALL).unwrap();
        let err = c.inc_base(0x101).unwrap_err();
        assert_eq!(err.code(), CapExcCode::MonotonicityViolation);
    }

    #[test]
    fn set_len_cannot_grow() {
        let c = Capability::new(0x1000, 0x100, Perms::ALL).unwrap();
        assert!(c.set_len(0x100).is_ok());
        assert!(c.set_len(0).is_ok());
        assert_eq!(c.set_len(0x101).unwrap_err().code(), CapExcCode::MonotonicityViolation);
    }

    #[test]
    fn and_perm_only_clears() {
        let c = Capability::new(0, 64, Perms::LOAD | Perms::STORE).unwrap();
        let ro = c.and_perm(Perms::LOAD | Perms::EXECUTE).unwrap();
        // EXECUTE was not held, so it is not gained.
        assert_eq!(ro.perms(), Perms::LOAD);
    }

    #[test]
    fn manipulating_untagged_traps() {
        let c = Capability::max().clear_tag();
        assert_eq!(c.inc_base(1).unwrap_err().code(), CapExcCode::TagViolation);
        // ... but the zero-delta move idiom copies untagged values.
        assert_eq!(c.inc_base(0).unwrap(), c);
        assert_eq!(c.set_len(1).unwrap_err().code(), CapExcCode::TagViolation);
        assert_eq!(c.and_perm(Perms::LOAD).unwrap_err().code(), CapExcCode::TagViolation);
    }

    #[test]
    fn bounds_check_is_byte_granular() {
        // "Granularity should accommodate data structures ... with odd
        // numbers of bytes or words" (Section 2).
        let c = Capability::new(0x1000, 13, Perms::ALL).unwrap();
        assert!(c.check_data_access(0x100c, 1, Perms::LOAD).is_ok());
        assert!(c.check_data_access(0x100c, 2, Perms::LOAD).is_err());
        assert!(c.check_data_access(0xfff, 1, Perms::LOAD).is_err());
    }

    #[test]
    fn store_through_readonly_is_permit_store_violation() {
        let c = Capability::new(0, 64, Perms::LOAD).unwrap();
        assert_eq!(
            c.check_data_access(0, 8, Perms::STORE).unwrap_err().code(),
            CapExcCode::PermitStoreViolation
        );
    }

    #[test]
    fn cap_access_requires_alignment_and_perm() {
        let c = Capability::new(0, 4096, Perms::ALL).unwrap();
        assert!(c.check_cap_access(64, true).is_ok());
        assert_eq!(
            c.check_cap_access(65, true).unwrap_err().code(),
            CapExcCode::AlignmentViolation
        );
        let no_sc = c.and_perm(!Perms::STORE_CAP).unwrap();
        assert_eq!(
            no_sc.check_cap_access(64, true).unwrap_err().code(),
            CapExcCode::PermitStoreCapViolation
        );
        assert!(no_sc.check_cap_access(64, false).is_ok());
    }

    #[test]
    fn execute_check() {
        let pcc = Capability::new(0x1000, 0x100, Perms::EXECUTE | Perms::LOAD).unwrap();
        assert!(pcc.check_execute(0x1000).is_ok());
        assert!(pcc.check_execute(0x10fc).is_ok());
        assert_eq!(pcc.check_execute(0x1100).unwrap_err().code(), CapExcCode::LengthViolation);
        let data = pcc.and_perm(Perms::LOAD).unwrap();
        assert_eq!(
            data.check_execute(0x1000).unwrap_err().code(),
            CapExcCode::PermitExecuteViolation
        );
    }

    #[test]
    fn to_ptr_and_from_ptr_roundtrip() {
        let c0 = Capability::new(0x10000, 0x10000, Perms::ALL).unwrap();
        let obj = c0.inc_base(0x40).unwrap().set_len(32).unwrap();
        let p = obj.to_ptr(&c0);
        assert_eq!(p, 0x40);
        let back = Capability::from_ptr(&c0, p).unwrap();
        assert_eq!(back.base(), obj.base());
        // from_ptr cannot restore a reduced length - it spans to c0's end.
        assert_eq!(back.top(), c0.top());
    }

    #[test]
    fn null_casts() {
        let c0 = Capability::max();
        assert_eq!(Capability::null().to_ptr(&c0), 0);
        assert!(Capability::from_ptr(&c0, 0).unwrap().is_null());
    }

    #[test]
    fn from_ptr_out_of_region_fails() {
        let c0 = Capability::new(0, 0x1000, Perms::ALL).unwrap();
        assert_eq!(
            Capability::from_ptr(&c0, 0x1001).unwrap_err().code(),
            CapExcCode::MonotonicityViolation
        );
    }

    #[test]
    fn byte_roundtrip_preserves_fields() {
        let c =
            Capability::new(0xdead_beef_0000, 0x1234_5678, Perms::LOAD | Perms::STORE_CAP).unwrap();
        let bytes = c.to_bytes();
        let d = Capability::from_bytes(&bytes, true);
        assert_eq!(c, d);
    }

    #[test]
    fn byte_layout_matches_figure_1() {
        let c = Capability::new(0x1122_3344_5566_7788, 0x99aa_bbcc_ddee_ff00, Perms::ALL).unwrap();
        let b = c.to_bytes();
        // Permissions live in the top 31 bits of word 0.
        let w0 = u64::from_be_bytes(b[0..8].try_into().unwrap());
        assert_eq!((w0 >> 33) as u32, Perms::ALL.bits());
        // Base is word 2, length word 3, big-endian.
        assert_eq!(&b[16..24], &0x1122_3344_5566_7788u64.to_be_bytes());
        assert_eq!(&b[24..32], &0x99aa_bbcc_ddee_ff00u64.to_be_bytes());
    }

    #[test]
    fn untagged_load_preserves_bits_but_not_tag() {
        let c = Capability::new(0x1000, 64, Perms::ALL).unwrap();
        let d = Capability::from_untagged_bytes(&c.to_bytes());
        assert!(!d.tag());
        assert_eq!(d.base(), c.base());
        assert_eq!(d.length(), c.length());
    }

    #[test]
    fn dominates_ordering() {
        let big = Capability::new(0x1000, 0x1000, Perms::ALL).unwrap();
        let small = big.inc_base(0x100).unwrap().set_len(0x100).unwrap();
        let ro = small.and_perm(Perms::LOAD).unwrap();
        assert!(big.dominates(&small));
        assert!(big.dominates(&ro));
        assert!(small.dominates(&ro));
        assert!(!small.dominates(&big));
        assert!(!ro.dominates(&small));
        // Untagged values are dominated by everything.
        assert!(Capability::null().dominates(&big.clear_tag()));
        // And dominate nothing that is tagged.
        assert!(!Capability::null().dominates(&big));
    }

    #[test]
    fn display_and_debug_are_informative() {
        let c = Capability::new(0x1000, 0x40, Perms::LOAD | Perms::STORE).unwrap();
        let s = c.to_string();
        assert!(s.contains("base=0x1000"));
        assert!(s.contains("rw---"));
        assert!(format!("{c:?}").contains("0x40"));
    }
}
