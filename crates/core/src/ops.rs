//! The catalogue of CHERI instruction-set extensions (Table 1).
//!
//! [`CapInstrKind`] enumerates every instruction the paper adds to the
//! 64-bit MIPS IV ISA, grouped exactly as Table 1 groups them. The
//! assembler (`cheri-asm`), the capability coprocessor (`beri-sim`), and
//! the Table 1 reproduction harness all consume this one catalogue so the
//! three cannot drift apart.

use core::fmt;

/// The Table 1 instruction groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CapInstrGroup {
    /// Field inspection: move capability fields to general-purpose
    /// registers.
    Inspection,
    /// Monotonic field manipulation.
    Manipulation,
    /// Conversion between C pointers and capabilities (Section 4.3).
    PointerConversion,
    /// Branches on the capability tag bit.
    TagBranch,
    /// Capability register loads/stores and data loads/stores via a
    /// capability register.
    MemoryAccess,
    /// Load-linked / store-conditional via capability.
    Atomics,
    /// Jumps through capability registers (protected control flow).
    ControlFlow,
}

impl fmt::Display for CapInstrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapInstrGroup::Inspection => "inspection",
            CapInstrGroup::Manipulation => "manipulation",
            CapInstrGroup::PointerConversion => "pointer conversion",
            CapInstrGroup::TagBranch => "tag branch",
            CapInstrGroup::MemoryAccess => "memory access",
            CapInstrGroup::Atomics => "atomics",
            CapInstrGroup::ControlFlow => "control flow",
        };
        f.write_str(s)
    }
}

/// One CHERI instruction from Table 1.
///
/// The width-parameterised load/store families (`CL[BHWD][U]`, `CS[BHWD]`)
/// are expanded into their individual members, matching what the encoder
/// must emit.
///
/// # Example
///
/// ```
/// use cheri_core::CapInstrKind;
///
/// // Every Table 1 row is present:
/// assert!(CapInstrKind::ALL.len() >= 23);
/// let cincbase = CapInstrKind::CIncBase;
/// assert_eq!(cincbase.mnemonic(), "CIncBase");
/// assert_eq!(cincbase.description(), "Increase base and decrease length");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CapInstrKind {
    /// Move base to a GPR.
    CGetBase,
    /// Move length to a GPR.
    CGetLen,
    /// Move tag bit to a GPR.
    CGetTag,
    /// Move permissions to a GPR.
    CGetPerm,
    /// Move the PCC and PC to GPRs.
    CGetPCC,
    /// Increase base and decrease length.
    CIncBase,
    /// Set (reduce) length.
    CSetLen,
    /// Invalidate a capability register.
    CClearTag,
    /// Restrict permissions.
    CAndPerm,
    /// Generate C0-based integer pointer from a capability.
    CToPtr,
    /// CIncBase with support for NULL casts.
    CFromPtr,
    /// Branch if capability tag is unset.
    CBTU,
    /// Branch if capability tag is set.
    CBTS,
    /// Load capability register.
    CLC,
    /// Store capability register.
    CSC,
    /// Load byte via capability register.
    CLB,
    /// Load byte unsigned via capability register.
    CLBU,
    /// Load half-word via capability register.
    CLH,
    /// Load half-word unsigned via capability register.
    CLHU,
    /// Load word via capability register.
    CLW,
    /// Load word unsigned via capability register.
    CLWU,
    /// Load double via capability register.
    CLD,
    /// Store byte via capability register.
    CSB,
    /// Store half-word via capability register.
    CSH,
    /// Store word via capability register.
    CSW,
    /// Store double via capability register.
    CSD,
    /// Load linked (double) via capability register.
    CLLD,
    /// Store conditional (double) via capability register.
    CSCD,
    /// Jump capability register.
    CJR,
    /// Jump and link capability register.
    CJALR,
}

impl CapInstrKind {
    /// Every instruction, in Table 1 order.
    pub const ALL: &'static [CapInstrKind] = &[
        CapInstrKind::CGetBase,
        CapInstrKind::CGetLen,
        CapInstrKind::CGetTag,
        CapInstrKind::CGetPerm,
        CapInstrKind::CGetPCC,
        CapInstrKind::CIncBase,
        CapInstrKind::CSetLen,
        CapInstrKind::CClearTag,
        CapInstrKind::CAndPerm,
        CapInstrKind::CToPtr,
        CapInstrKind::CFromPtr,
        CapInstrKind::CBTU,
        CapInstrKind::CBTS,
        CapInstrKind::CLC,
        CapInstrKind::CSC,
        CapInstrKind::CLB,
        CapInstrKind::CLBU,
        CapInstrKind::CLH,
        CapInstrKind::CLHU,
        CapInstrKind::CLW,
        CapInstrKind::CLWU,
        CapInstrKind::CLD,
        CapInstrKind::CSB,
        CapInstrKind::CSH,
        CapInstrKind::CSW,
        CapInstrKind::CSD,
        CapInstrKind::CLLD,
        CapInstrKind::CSCD,
        CapInstrKind::CJR,
        CapInstrKind::CJALR,
    ];

    /// The assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CapInstrKind::CGetBase => "CGetBase",
            CapInstrKind::CGetLen => "CGetLen",
            CapInstrKind::CGetTag => "CGetTag",
            CapInstrKind::CGetPerm => "CGetPerm",
            CapInstrKind::CGetPCC => "CGetPCC",
            CapInstrKind::CIncBase => "CIncBase",
            CapInstrKind::CSetLen => "CSetLen",
            CapInstrKind::CClearTag => "CClearTag",
            CapInstrKind::CAndPerm => "CAndPerm",
            CapInstrKind::CToPtr => "CToPtr",
            CapInstrKind::CFromPtr => "CFromPtr",
            CapInstrKind::CBTU => "CBTU",
            CapInstrKind::CBTS => "CBTS",
            CapInstrKind::CLC => "CLC",
            CapInstrKind::CSC => "CSC",
            CapInstrKind::CLB => "CLB",
            CapInstrKind::CLBU => "CLBU",
            CapInstrKind::CLH => "CLH",
            CapInstrKind::CLHU => "CLHU",
            CapInstrKind::CLW => "CLW",
            CapInstrKind::CLWU => "CLWU",
            CapInstrKind::CLD => "CLD",
            CapInstrKind::CSB => "CSB",
            CapInstrKind::CSH => "CSH",
            CapInstrKind::CSW => "CSW",
            CapInstrKind::CSD => "CSD",
            CapInstrKind::CLLD => "CLLD",
            CapInstrKind::CSCD => "CSCD",
            CapInstrKind::CJR => "CJR",
            CapInstrKind::CJALR => "CJALR",
        }
    }

    /// The Table 1 description column.
    #[must_use]
    pub const fn description(self) -> &'static str {
        match self {
            CapInstrKind::CGetBase => "Move base to a GPR",
            CapInstrKind::CGetLen => "Move length to a GPR",
            CapInstrKind::CGetTag => "Move tag bit to a GPR",
            CapInstrKind::CGetPerm => "Move permissions to a GPR",
            CapInstrKind::CGetPCC => "Move the PCC and PC to GPRs",
            CapInstrKind::CIncBase => "Increase base and decrease length",
            CapInstrKind::CSetLen => "Set (reduce) length",
            CapInstrKind::CClearTag => "Invalidate a capability register",
            CapInstrKind::CAndPerm => "Restrict permissions",
            CapInstrKind::CToPtr => "Generate C0-based integer pointer from a capability",
            CapInstrKind::CFromPtr => "CIncBase with support for NULL casts",
            CapInstrKind::CBTU => "Branch if capability tag is unset",
            CapInstrKind::CBTS => "Branch if capability tag is set",
            CapInstrKind::CLC => "Load capability register",
            CapInstrKind::CSC => "Store capability register",
            CapInstrKind::CLB => "Load byte via capability register",
            CapInstrKind::CLBU => "Load byte via capability register (zero-extend)",
            CapInstrKind::CLH => "Load half-word via capability register",
            CapInstrKind::CLHU => "Load half-word via capability register (zero-extend)",
            CapInstrKind::CLW => "Load word via capability register",
            CapInstrKind::CLWU => "Load word via capability register (zero-extend)",
            CapInstrKind::CLD => "Load double via capability register",
            CapInstrKind::CSB => "Store byte via capability register",
            CapInstrKind::CSH => "Store half-word via capability register",
            CapInstrKind::CSW => "Store word via capability register",
            CapInstrKind::CSD => "Store double via capability register",
            CapInstrKind::CLLD => "Load linked via capability register",
            CapInstrKind::CSCD => "Store conditional via capability register",
            CapInstrKind::CJR => "Jump capability register",
            CapInstrKind::CJALR => "Jump and link capability register",
        }
    }

    /// The Table 1 group the instruction belongs to.
    #[must_use]
    pub const fn group(self) -> CapInstrGroup {
        match self {
            CapInstrKind::CGetBase
            | CapInstrKind::CGetLen
            | CapInstrKind::CGetTag
            | CapInstrKind::CGetPerm
            | CapInstrKind::CGetPCC => CapInstrGroup::Inspection,
            CapInstrKind::CIncBase
            | CapInstrKind::CSetLen
            | CapInstrKind::CClearTag
            | CapInstrKind::CAndPerm => CapInstrGroup::Manipulation,
            CapInstrKind::CToPtr | CapInstrKind::CFromPtr => CapInstrGroup::PointerConversion,
            CapInstrKind::CBTU | CapInstrKind::CBTS => CapInstrGroup::TagBranch,
            CapInstrKind::CLC
            | CapInstrKind::CSC
            | CapInstrKind::CLB
            | CapInstrKind::CLBU
            | CapInstrKind::CLH
            | CapInstrKind::CLHU
            | CapInstrKind::CLW
            | CapInstrKind::CLWU
            | CapInstrKind::CLD
            | CapInstrKind::CSB
            | CapInstrKind::CSH
            | CapInstrKind::CSW
            | CapInstrKind::CSD => CapInstrGroup::MemoryAccess,
            CapInstrKind::CLLD | CapInstrKind::CSCD => CapInstrGroup::Atomics,
            CapInstrKind::CJR | CapInstrKind::CJALR => CapInstrGroup::ControlFlow,
        }
    }

    /// Whether the instruction can raise a capability exception.
    #[must_use]
    pub const fn can_trap(self) -> bool {
        !matches!(
            self,
            CapInstrKind::CGetBase
                | CapInstrKind::CGetLen
                | CapInstrKind::CGetTag
                | CapInstrKind::CGetPerm
                | CapInstrKind::CGetPCC
                | CapInstrKind::CClearTag
                | CapInstrKind::CBTU
                | CapInstrKind::CBTS
                | CapInstrKind::CToPtr
        )
    }
}

impl fmt::Display for CapInstrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_contains_every_table1_row() {
        // 13 scalar rows + CL[BHWD][U]=7 + CS[BHWD]=4 + CLLD/CSCD + CJR/CJALR
        assert_eq!(CapInstrKind::ALL.len(), 30);
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<&str> = CapInstrKind::ALL.iter().map(|k| k.mnemonic()).collect();
        assert_eq!(set.len(), CapInstrKind::ALL.len());
    }

    #[test]
    fn every_group_is_populated() {
        let groups: HashSet<_> =
            CapInstrKind::ALL.iter().map(|k| format!("{}", k.group())).collect();
        assert_eq!(groups.len(), 7);
    }

    #[test]
    fn inspection_never_traps_manipulation_can() {
        assert!(!CapInstrKind::CGetBase.can_trap());
        assert!(!CapInstrKind::CGetPCC.can_trap());
        assert!(CapInstrKind::CIncBase.can_trap());
        assert!(CapInstrKind::CLC.can_trap());
        assert!(CapInstrKind::CJR.can_trap());
        // CClearTag and the tag branches are safe by construction.
        assert!(!CapInstrKind::CClearTag.can_trap());
        assert!(!CapInstrKind::CBTS.can_trap());
    }

    #[test]
    fn display_matches_mnemonic() {
        for k in CapInstrKind::ALL {
            assert_eq!(k.to_string(), k.mnemonic());
        }
    }
}
