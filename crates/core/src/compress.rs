//! The proposed 128-bit compressed capability format.
//!
//! Section 4.1: "An implementation intended for widespread deployment would
//! likely use a denser representation — for example, 128-bits using 40-bit
//! virtual addresses or the Low-Fat Pointer approach." Section 7 evaluates
//! this variant as "128b CHERI" and Section 8 concludes that "CHERI will
//! benefit from capability compression".
//!
//! Like the Low-Fat scheme, the compressed format trades *granularity* for
//! space: large regions must be aligned to, and sized in multiples of, a
//! power-of-two block. [`Compressed128::required_alignment`] tells an
//! allocator how much padding a given length needs, which the limit study
//! uses to charge the 128-bit variant its (small) padding overhead.

use core::fmt;

use crate::cap::Capability;
use crate::perms::Perms;
use crate::CAP128_SIZE_BYTES;

/// Number of virtual-address bits the compressed format supports.
pub const VADDR_BITS: u32 = 40;
/// Mantissa bits available for the length field.
pub const LEN_MANTISSA_BITS: u32 = 18;
/// Permission bits preserved by compression (the 5 architectural ones plus
/// 11 of the experimentation bits).
pub const PERM_BITS: u32 = 16;

/// Why a capability could not be represented in 128 bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompressError {
    /// `base` or `base+length` does not fit in [`VADDR_BITS`] bits.
    AddressTooWide,
    /// `base` or `length` is not aligned to the block size the length
    /// requires; the payload is the required alignment.
    Unaligned {
        /// Alignment (a power of two) that `base` and `length` must honour.
        required: u64,
    },
    /// The capability is untagged; only valid capabilities are compressed.
    Untagged,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::AddressTooWide => {
                write!(f, "address does not fit in {VADDR_BITS} bits")
            }
            CompressError::Unaligned { required } => {
                write!(f, "base/length not aligned to required {required}-byte block")
            }
            CompressError::Untagged => write!(f, "cannot compress an untagged capability"),
        }
    }
}

impl std::error::Error for CompressError {}

/// A 128-bit compressed capability.
///
/// Bit layout (most significant first, big-endian in memory):
///
/// ```text
/// [127:112] perms (16)   [111:106] exponent (6)   [105:88] len mantissa (18)
/// [87:48]   base (40)    [47:0]    reserved
/// ```
///
/// `length = mantissa << exponent`; `base` must be a multiple of
/// `1 << exponent`.
///
/// # Example
///
/// ```
/// use cheri_core::{Capability, Compressed128, Perms};
///
/// let c = Capability::new(0x1000, 0x2000, Perms::LOAD | Perms::STORE)?;
/// let z = Compressed128::try_from_cap(&c).expect("small aligned region is exact");
/// let back = z.decompress();
/// assert_eq!(back.base(), 0x1000);
/// assert_eq!(back.length(), 0x2000);
/// # Ok::<(), cheri_core::CapCause>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Compressed128 {
    perms: u16,
    exponent: u8,
    mantissa: u32,
    base: u64,
}

impl Compressed128 {
    /// Compresses an exact capability.
    ///
    /// # Errors
    ///
    /// * [`CompressError::Untagged`] for untagged inputs.
    /// * [`CompressError::AddressTooWide`] if the region does not fit in
    ///   40-bit virtual addresses.
    /// * [`CompressError::Unaligned`] if `base`/`length` are not multiples
    ///   of [`Compressed128::required_alignment`]`(length)` — the caller
    ///   (e.g. a capability-aware `malloc`) must pad.
    pub fn try_from_cap(cap: &Capability) -> Result<Compressed128, CompressError> {
        if !cap.tag() {
            return Err(CompressError::Untagged);
        }
        let base = cap.base();
        let length = cap.length();
        if base >= 1 << VADDR_BITS || cap.top() > 1 << VADDR_BITS {
            return Err(CompressError::AddressTooWide);
        }
        let align = Self::required_alignment(length);
        if !base.is_multiple_of(align) || !length.is_multiple_of(align) {
            return Err(CompressError::Unaligned { required: align });
        }
        let exponent = align.trailing_zeros() as u8;
        let mantissa = (length >> exponent) as u32;
        debug_assert!(mantissa < (1 << LEN_MANTISSA_BITS));
        Ok(Compressed128 { perms: (cap.perms().bits() & 0xffff) as u16, exponent, mantissa, base })
    }

    /// The power-of-two alignment that `base` and `length` must honour for
    /// a region of `length` bytes to be exactly representable.
    ///
    /// Regions up to 2^18 bytes are byte-granular (alignment 1); beyond
    /// that each doubling of the length doubles the required block size.
    ///
    /// ```
    /// use cheri_core::Compressed128;
    /// assert_eq!(Compressed128::required_alignment(100), 1);
    /// assert_eq!(Compressed128::required_alignment(1 << 18), 2);
    /// assert_eq!(Compressed128::required_alignment((1 << 20) + 1), 8);
    /// ```
    #[must_use]
    pub fn required_alignment(length: u64) -> u64 {
        let bits = 64 - length.leading_zeros();
        if bits <= LEN_MANTISSA_BITS {
            1
        } else {
            1 << (bits - LEN_MANTISSA_BITS)
        }
    }

    /// Rounds `length` up to the next exactly-representable length — the
    /// padding a 128-bit-capability allocator must apply. Used by the
    /// limit study to charge CHERI-128 its allocation padding.
    #[must_use]
    pub fn round_len(length: u64) -> u64 {
        let align = Self::required_alignment(length);
        length.div_ceil(align) * align
    }

    /// Expands back to the architectural 256-bit form. Permissions above
    /// bit 15 are lost by compression and decompress as zero.
    #[must_use]
    pub fn decompress(&self) -> Capability {
        let length = u64::from(self.mantissa) << self.exponent;
        Capability::new(self.base, length, Perms::from_bits_truncate(u32::from(self.perms)))
            .expect("compressed regions fit in 40 bits and cannot overflow")
    }

    /// The region base.
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The region length.
    #[must_use]
    pub const fn length(&self) -> u64 {
        (self.mantissa as u64) << self.exponent
    }

    /// Serialises to the 16-byte big-endian memory image.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; CAP128_SIZE_BYTES] {
        let hi: u64 = (u64::from(self.perms) << 48)
            | (u64::from(self.exponent & 0x3f) << 42)
            | (u64::from(self.mantissa & 0x3ffff) << 24)
            | (self.base >> 16);
        let lo: u64 = (self.base & 0xffff) << 48;
        let mut out = [0u8; CAP128_SIZE_BYTES];
        out[0..8].copy_from_slice(&hi.to_be_bytes());
        out[8..16].copy_from_slice(&lo.to_be_bytes());
        out
    }

    /// Deserialises from the 16-byte memory image.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; CAP128_SIZE_BYTES]) -> Compressed128 {
        let hi = u64::from_be_bytes(bytes[0..8].try_into().expect("8-byte slice"));
        let lo = u64::from_be_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        Compressed128 {
            perms: (hi >> 48) as u16,
            exponent: ((hi >> 42) & 0x3f) as u8,
            mantissa: ((hi >> 24) & 0x3ffff) as u32,
            base: ((hi & 0xff_ffff) << 16) | (lo >> 48),
        }
    }
}

impl fmt::Debug for Compressed128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Compressed128")
            .field("perms", &format_args!("{:#x}", self.perms))
            .field("base", &format_args!("{:#x}", self.base))
            .field("length", &format_args!("{:#x}", self.length()))
            .field("exponent", &self.exponent)
            .finish()
    }
}

impl fmt::Display for Compressed128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cap128[base={:#x} len={:#x} e={}]", self.base, self.length(), self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(base: u64, len: u64) -> Capability {
        Capability::new(base, len, Perms::LOAD | Perms::STORE).unwrap()
    }

    #[test]
    fn small_regions_are_byte_exact() {
        // "Granularity should accommodate ... odd numbers of bytes".
        for len in [0u64, 1, 13, 24, 96, 4095, (1 << 18) - 1] {
            let c = cap(0x1234, len);
            let z = Compressed128::try_from_cap(&c).unwrap();
            assert_eq!(z.decompress().base(), 0x1234);
            assert_eq!(z.decompress().length(), len);
        }
    }

    #[test]
    fn large_regions_need_alignment() {
        let big = cap(0x3, 1 << 20); // misaligned base for a 1 MB region
        match Compressed128::try_from_cap(&big) {
            Err(CompressError::Unaligned { required }) => assert_eq!(required, 8),
            other => panic!("expected Unaligned, got {other:?}"),
        }
        let ok = cap(0x4000, 1 << 20);
        let z = Compressed128::try_from_cap(&ok).unwrap();
        assert_eq!(z.length(), 1 << 20);
    }

    #[test]
    fn round_len_is_monotone_and_sufficient() {
        for len in [1u64, 100, (1 << 18) + 1, (1 << 25) + 12345] {
            let r = Compressed128::round_len(len);
            assert!(r >= len);
            assert_eq!(r % Compressed128::required_alignment(r), 0);
            // A region at an aligned base with rounded length compresses.
            let align = Compressed128::required_alignment(r);
            let c = cap(align * 7, r);
            assert!(Compressed128::try_from_cap(&c).is_ok(), "len={len} r={r}");
        }
    }

    #[test]
    fn forty_bit_limit() {
        let wide = cap(1 << 40, 16);
        assert_eq!(Compressed128::try_from_cap(&wide).unwrap_err(), CompressError::AddressTooWide);
        let top = cap((1 << 40) - 32, 32);
        assert!(Compressed128::try_from_cap(&top).is_ok());
    }

    #[test]
    fn untagged_is_rejected() {
        let c = cap(0, 16).clear_tag();
        assert_eq!(Compressed128::try_from_cap(&c).unwrap_err(), CompressError::Untagged);
    }

    #[test]
    fn byte_roundtrip() {
        let c = cap(0xaa_bbcc_dd00, 0x1_0000);
        let z = Compressed128::try_from_cap(&c).unwrap();
        let back = Compressed128::from_bytes(&z.to_bytes());
        assert_eq!(z, back);
        assert_eq!(back.decompress().base(), 0xaa_bbcc_dd00);
        assert_eq!(back.decompress().length(), 0x1_0000);
    }

    #[test]
    fn perms_are_truncated_to_16_bits() {
        let c = Capability::new(0, 64, Perms::ALL).unwrap();
        let z = Compressed128::try_from_cap(&c).unwrap();
        let p = z.decompress().perms();
        assert!(p.contains(Perms::LOAD | Perms::STORE | Perms::EXECUTE));
        assert_eq!(p.bits(), 0xffff);
    }

    #[test]
    fn decompressed_is_dominated_by_original() {
        let c = Capability::new(0x100, 0x500, Perms::ALL).unwrap();
        let z = Compressed128::try_from_cap(&c).unwrap();
        assert!(c.dominates(&z.decompress()));
    }
}
