//! Property coverage of the 128-bit compressed capability format
//! against the 256-bit reference representation: every representable
//! region round-trips bit-exactly (struct → 16-byte image → struct →
//! decompressed 256-bit capability), and every unrepresentable one is
//! rejected with an actionable error — `AddressTooWide` beyond the
//! 40-bit space, `Unaligned` with the exact alignment an allocator must
//! pad to.

use cheri_core::compress::CompressError;
use cheri_core::{Capability, Compressed128, Perms};
use proptest::prelude::*;

/// Snaps an arbitrary (base, length) pair onto the compressed format's
/// representable lattice: length rounded up to a representable value,
/// base aligned down to the block size that length requires.
fn representable(base: u64, len: u64) -> (u64, u64) {
    let rlen = Compressed128::round_len(len);
    let align = Compressed128::required_alignment(rlen);
    (base / align * align, rlen)
}

proptest! {
    /// Representable regions survive compress → serialize → parse →
    /// decompress with base, length, and (truncated) perms identical to
    /// the 256-bit reference capability they came from.
    #[test]
    fn representable_regions_roundtrip_exactly(
        base in 0u64..1 << 39,
        len in 0u64..1 << 38,
        perm_bits in any::<u32>(),
    ) {
        let (abase, rlen) = representable(base, len);
        let perms = Perms::from_bits_truncate(perm_bits);
        let reference = Capability::new(abase, rlen, perms).expect("fits in 40 bits");

        let z = Compressed128::try_from_cap(&reference).expect("aligned region is exact");
        let reparsed = Compressed128::from_bytes(&z.to_bytes());
        prop_assert_eq!(z, reparsed, "16-byte image must be lossless");

        let back = reparsed.decompress();
        prop_assert_eq!(back.base(), reference.base());
        prop_assert_eq!(back.length(), reference.length());
        prop_assert!(back.tag());
        // Compression keeps exactly the low 16 permission bits.
        prop_assert_eq!(back.perms().bits(), perms.bits() & 0xffff);
        prop_assert!(reference.dominates(&back), "decompression must not escalate");
    }

    /// The 256-bit reference accepts the full 64-bit space; the
    /// compressed format must refuse anything beyond 40 bits rather
    /// than silently truncate.
    #[test]
    fn regions_beyond_forty_bits_are_rejected(
        base in (1u64 << 40)..1 << 50,
        len in 0u64..1 << 18,
    ) {
        let cap = Capability::new(base, len, Perms::ALL).expect("valid 256-bit region");
        prop_assert_eq!(
            Compressed128::try_from_cap(&cap).unwrap_err(),
            CompressError::AddressTooWide
        );
    }

    /// A region whose *top* crosses the 40-bit boundary is as
    /// unrepresentable as one whose base does.
    #[test]
    fn top_crossing_forty_bits_is_rejected(overhang in 1u64..1 << 18) {
        let base = (1u64 << 40) - (1 << 18);
        let cap = Capability::new(base, (1 << 18) + overhang, Perms::ALL).expect("valid region");
        prop_assert_eq!(
            Compressed128::try_from_cap(&cap).unwrap_err(),
            CompressError::AddressTooWide
        );
    }

    /// Unrepresentable (misaligned) large regions are rejected with the
    /// exact alignment the allocator must pad to — and padding to it
    /// always succeeds.
    #[test]
    fn unaligned_rejection_names_a_sufficient_alignment(
        base in 0u64..1 << 38,
        len in (1u64 << 18) + 1..1 << 30,
    ) {
        let align = Compressed128::required_alignment(len);
        prop_assert!(align >= 2, "lengths above the mantissa need blocks");
        // Force a misaligned base: any odd base misses every align >= 2.
        let bad = Capability::new(base | 1, len, Perms::ALL).expect("valid region");
        match Compressed128::try_from_cap(&bad) {
            Err(CompressError::Unaligned { required }) => {
                prop_assert_eq!(required, align, "hint must match required_alignment");
                // Following the hint makes the region representable.
                let (abase, rlen) = representable(base, len);
                let padded = Capability::new(abase, rlen, Perms::ALL).expect("padded region");
                prop_assert!(Compressed128::try_from_cap(&padded).is_ok());
                prop_assert!(rlen >= len, "padding must cover the request");
                prop_assert!(rlen - len < 2 * align, "padding overhead is below two blocks");
            }
            other => prop_assert!(false, "expected Unaligned, got {other:?}"),
        }
    }

    /// Untagged values never compress, whatever their bounds.
    #[test]
    fn untagged_values_never_compress(base in 0u64..1 << 39, len in 0u64..1 << 38) {
        let (abase, rlen) = representable(base, len);
        let cap = Capability::new(abase, rlen, Perms::ALL).expect("valid region").clear_tag();
        prop_assert_eq!(
            Compressed128::try_from_cap(&cap).unwrap_err(),
            CompressError::Untagged
        );
    }
}

/// The mantissa boundary (2^18) is where byte granularity ends; pin the
/// exact edge lengths on both sides.
#[test]
fn mantissa_boundary_edge_lengths() {
    for (len, align) in [
        ((1u64 << 18) - 1, 1u64),
        (1 << 18, 2),
        ((1 << 18) + 2, 2),
        ((1 << 19) + 4, 4),
        (1 << 30, 1 << 13),
    ] {
        assert_eq!(Compressed128::required_alignment(len), align, "len={len:#x}");
        let base = align * 3;
        let rlen = Compressed128::round_len(len);
        let cap = Capability::new(base, rlen, Perms::LOAD).unwrap();
        let z = Compressed128::try_from_cap(&cap).unwrap();
        let back = Compressed128::from_bytes(&z.to_bytes()).decompress();
        assert_eq!((back.base(), back.length()), (base, rlen), "len={len:#x}");
    }
}

/// Zero-length capabilities are representable and round-trip (they
/// convey no access but remain distinct, tagged values).
#[test]
fn zero_length_roundtrips() {
    let cap = Capability::new(0x0dea_dbee, 0, Perms::LOAD).unwrap();
    let z = Compressed128::try_from_cap(&cap).unwrap();
    let back = Compressed128::from_bytes(&z.to_bytes()).decompress();
    assert_eq!(back.base(), 0x0dea_dbee);
    assert_eq!(back.length(), 0);
}
