//! Property-based tests of the capability model's central invariants:
//! monotonicity (no operation increases privilege) and representation
//! round-trips.

use cheri_core::{CapExcCode, Capability, Compressed128, Perms};
use proptest::prelude::*;

/// An arbitrary valid (non-wrapping) tagged capability.
fn arb_capability() -> impl Strategy<Value = Capability> {
    (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(a, b, p)| {
        let (base, top) = if a <= b { (a, b) } else { (b, a) };
        Capability::new(base, top - base, Perms::from_bits_truncate(p))
            .expect("non-wrapping region")
    })
}

/// One user-mode manipulation step.
#[derive(Debug, Clone)]
enum Step {
    IncBase(u64),
    SetLen(u64),
    AndPerm(u32),
    ClearTag,
    RoundTripMemory,
    ToFromPtr,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<u64>().prop_map(Step::IncBase),
        any::<u64>().prop_map(Step::SetLen),
        any::<u32>().prop_map(Step::AndPerm),
        Just(Step::ClearTag),
        Just(Step::RoundTripMemory),
        Just(Step::ToFromPtr),
    ]
}

proptest! {
    /// Unforgeability (Section 4.2): whatever sequence of user-mode
    /// manipulations is applied, the result never exceeds the authority of
    /// the capability it was derived from.
    #[test]
    fn manipulation_is_monotonic(start in arb_capability(), steps in proptest::collection::vec(arb_step(), 1..24)) {
        let mut cur = start;
        for step in steps {
            let next = match step {
                Step::IncBase(d) => cur.inc_base(d).ok(),
                Step::SetLen(l) => cur.set_len(l).ok(),
                Step::AndPerm(p) => cur.and_perm(Perms::from_bits_truncate(p)).ok(),
                Step::ClearTag => Some(cur.clear_tag()),
                Step::RoundTripMemory => Some(Capability::from_bytes(&cur.to_bytes(), cur.tag())),
                Step::ToFromPtr => Capability::from_ptr(&cur, cur.to_ptr(&cur)).ok(),
            };
            if let Some(n) = next {
                prop_assert!(cur.dominates(&n),
                    "step {step:?} escalated privilege: {cur} -> {n}");
                cur = n;
            }
            prop_assert!(start.dominates(&cur),
                "chain escalated privilege: {start} -> {cur}");
        }
    }

    /// A store of plain data over a capability (modelled by an untagged
    /// reload) always yields an unusable value.
    #[test]
    fn untagged_reload_is_unusable(c in arb_capability(), addr in any::<u64>()) {
        let reloaded = Capability::from_untagged_bytes(&c.to_bytes());
        prop_assert!(!reloaded.tag());
        prop_assert_eq!(
            reloaded.check_data_access(addr, 1, Perms::LOAD).unwrap_err().code(),
            CapExcCode::TagViolation
        );
    }

    /// Memory round-trip is the identity on all fields.
    #[test]
    fn byte_roundtrip_identity(c in arb_capability()) {
        let back = Capability::from_bytes(&c.to_bytes(), c.tag());
        prop_assert_eq!(c, back);
    }

    /// Every access the shrunk capability admits, the original admitted.
    #[test]
    fn derived_access_implies_original_access(
        c in arb_capability(),
        delta in 0u64..1 << 20,
        len in 0u64..1 << 20,
        addr in any::<u64>(),
        size in 1u64..64,
    ) {
        if let Ok(d) = c.inc_base(delta).and_then(|d| d.set_len(len.min(d.length()))) {
            if d.check_data_access(addr, size, Perms::LOAD).is_ok() {
                prop_assert!(c.check_data_access(addr, size, Perms::LOAD).is_ok());
            }
        }
    }

    /// Bounds checks accept exactly the bytes in [base, base+length).
    #[test]
    fn bounds_are_exact(base in 0u64..1 << 40, len in 1u64..1 << 16) {
        let c = Capability::new(base, len, Perms::ALL).unwrap();
        prop_assert!(c.check_data_access(base, 1, Perms::LOAD).is_ok());
        prop_assert!(c.check_data_access(base + len - 1, 1, Perms::LOAD).is_ok());
        prop_assert!(c.check_data_access(base + len, 1, Perms::LOAD).is_err());
        if base > 0 {
            prop_assert!(c.check_data_access(base - 1, 1, Perms::LOAD).is_err());
        }
        // Straddling the top is rejected even though it starts in bounds.
        prop_assert!(c.check_data_access(base + len - 1, 2, Perms::LOAD).is_err());
    }

    /// Compression: whenever compression succeeds it is exact, and the
    /// decompressed capability is dominated by the original.
    #[test]
    fn compression_is_exact_and_monotonic(base in 0u64..1 << 39, len in 0u64..1 << 30) {
        let rounded = Compressed128::round_len(len);
        let align = Compressed128::required_alignment(rounded);
        let abase = base / align * align;
        if u128::from(abase) + u128::from(rounded) <= 1 << 40 {
            let padded = Capability::new(abase, rounded, Perms::LOAD | Perms::STORE).unwrap();
            let z = Compressed128::try_from_cap(&padded).expect("rounded region is representable");
            prop_assert_eq!(z.decompress().base(), abase);
            prop_assert_eq!(z.decompress().length(), rounded);
            prop_assert!(padded.dominates(&z.decompress()));
            // And the 16-byte memory image round-trips.
            prop_assert_eq!(Compressed128::from_bytes(&z.to_bytes()), z);
        }
    }

    /// round_len never pads by more than one part in 2^18 (the mantissa
    /// precision), so CHERI-128 allocation overhead is bounded.
    #[test]
    fn round_len_padding_is_bounded(len in 1u64..1 << 40) {
        let r = Compressed128::round_len(len);
        prop_assert!(r >= len);
        let align = Compressed128::required_alignment(len);
        prop_assert!(r - len < align);
    }
}
