//! Pointer-event traces and the recording heap.
//!
//! The paper "recorded complete instruction traces of Olden benchmarks on
//! our baseline MIPS implementation ... then extracted information
//! relevant to bounds checking: C memory-management functions such as
//! malloc() and free(), and all memory loads and stores". Here the
//! native workload implementations run against a [`TracedHeap`], which
//! plays both roles: it executes the program (objects have real backing
//! storage) and records the event stream the overhead models consume.
//!
//! All data accesses are 64-bit — the Olden workloads are
//! pointer-and-long structures — so an event does not carry a size.

/// A handle to a traced heap object (an abstract pointer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TPtr(u32);

impl TPtr {
    /// The null pointer.
    pub const NULL: TPtr = TPtr(u32::MAX);

    /// Whether this is [`TPtr::NULL`].
    #[must_use]
    pub fn is_null(self) -> bool {
        self == TPtr::NULL
    }

    /// The object index (for model internals).
    #[must_use]
    pub fn obj(self) -> u32 {
        self.0
    }
}

impl Default for TPtr {
    fn default() -> TPtr {
        TPtr::NULL
    }
}

/// One trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `malloc()` of object `obj` (size in [`Trace::objects`]).
    Malloc {
        /// Object index.
        obj: u32,
    },
    /// `free()` of object `obj`.
    Free {
        /// Object index.
        obj: u32,
    },
    /// A 64-bit load or store at `obj + off`.
    Access {
        /// Object index.
        obj: u32,
        /// Byte offset within the object.
        off: u32,
        /// Store (true) or load (false).
        store: bool,
        /// The slot holds a pointer (fat-pointer models inflate it).
        ptr: bool,
        /// For pointer accesses: the pointed-to object (drives
        /// Hardbound's compression decision), or `u32::MAX`.
        target: u32,
    },
    /// `n` pure-ALU instructions of application work.
    Compute {
        /// Instruction count.
        n: u32,
    },
}

/// Per-object metadata recorded alongside the events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjInfo {
    /// Baseline (unprotected) address of the object.
    pub base: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Sorted byte offsets of the slots that hold pointers.
    pub ptr_offs: Vec<u32>,
}

impl ObjInfo {
    /// Number of pointer-holding slots.
    #[must_use]
    pub fn ptr_slots(&self) -> u64 {
        self.ptr_offs.len() as u64
    }
}

/// A recorded run: the event stream plus the object table.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Workload name.
    pub name: String,
    /// Events in program order.
    pub events: Vec<Event>,
    /// Object table, indexed by the `obj` fields of events.
    pub objects: Vec<ObjInfo>,
}

impl Trace {
    /// Number of memory-access events.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.events.iter().filter(|e| matches!(e, Event::Access { .. })).count() as u64
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    Int(i64),
    Ptr(TPtr),
}

struct Object {
    base: u64,
    slots: Vec<Slot>,
    ptr_offs: Vec<u32>,
    freed: bool,
}

/// The recording heap: executes the workload *and* captures its trace.
///
/// # Example
///
/// ```
/// use cheri_limit::TracedHeap;
///
/// let mut h = TracedHeap::new();
/// let a = h.alloc(24);
/// let b = h.alloc(24);
/// h.store_int(a, 0, 7);
/// h.store_ptr(a, 8, b);
/// assert_eq!(h.load_int(a, 0), 7);
/// assert_eq!(h.load_ptr(a, 8), b);
/// let trace = h.finish("demo");
/// assert_eq!(trace.objects.len(), 2);
/// assert_eq!(trace.objects[0].ptr_offs, vec![8]);
/// assert_eq!(trace.accesses(), 4);
/// ```
pub struct TracedHeap {
    events: Vec<Event>,
    objects: Vec<Object>,
    next_addr: u64,
}

impl TracedHeap {
    /// An empty heap; allocation starts at a fixed abstract heap base.
    #[must_use]
    pub fn new() -> TracedHeap {
        TracedHeap { events: Vec::new(), objects: Vec::new(), next_addr: 0x4_0000 }
    }

    fn obj(&self, p: TPtr) -> &Object {
        assert!(!p.is_null(), "dereferenced NULL TPtr");
        let o = &self.objects[p.0 as usize];
        assert!(!o.freed, "use after free of object {}", p.0);
        o
    }

    fn slot_index(o: &Object, off: u64) -> usize {
        assert_eq!(off % 8, 0, "unaligned 64-bit access at offset {off}");
        let idx = (off / 8) as usize;
        assert!(idx < o.slots.len(), "offset {off} out of bounds ({} slots)", o.slots.len());
        idx
    }

    /// Allocates `size` bytes (rounded up to 8), recording a `Malloc`.
    pub fn alloc(&mut self, size: u64) -> TPtr {
        let size = size.div_ceil(8) * 8;
        let id = u32::try_from(self.objects.len()).expect("too many objects");
        self.objects.push(Object {
            base: self.next_addr,
            slots: vec![Slot::Int(0); (size / 8) as usize],
            ptr_offs: Vec::new(),
            freed: false,
        });
        self.next_addr += size;
        self.events.push(Event::Malloc { obj: id });
        TPtr(id)
    }

    /// Frees an object, recording a `Free`.
    ///
    /// # Panics
    ///
    /// Panics on double free or NULL.
    pub fn free(&mut self, p: TPtr) {
        assert!(!p.is_null(), "free(NULL)");
        let o = &mut self.objects[p.0 as usize];
        assert!(!o.freed, "double free of object {}", p.0);
        o.freed = true;
        self.events.push(Event::Free { obj: p.0 });
    }

    /// Loads the integer at `p + off`.
    ///
    /// # Panics
    ///
    /// Panics on NULL, out-of-bounds, misalignment, or loading a pointer
    /// slot as an integer.
    pub fn load_int(&mut self, p: TPtr, off: u64) -> i64 {
        let o = self.obj(p);
        let v = match o.slots[Self::slot_index(o, off)] {
            Slot::Int(v) => v,
            Slot::Ptr(_) => panic!("integer load of pointer slot at {off}"),
        };
        self.events.push(Event::Access {
            obj: p.0,
            off: off as u32,
            store: false,
            ptr: false,
            target: u32::MAX,
        });
        v
    }

    /// Stores an integer at `p + off`.
    pub fn store_int(&mut self, p: TPtr, off: u64, v: i64) {
        let o = self.obj(p);
        let idx = Self::slot_index(o, off);
        self.objects[p.0 as usize].slots[idx] = Slot::Int(v);
        self.events.push(Event::Access {
            obj: p.0,
            off: off as u32,
            store: true,
            ptr: false,
            target: u32::MAX,
        });
    }

    /// Loads the pointer at `p + off` (a never-written slot reads as
    /// NULL, matching zeroed allocation).
    pub fn load_ptr(&mut self, p: TPtr, off: u64) -> TPtr {
        let o = self.obj(p);
        let v = match o.slots[Self::slot_index(o, off)] {
            Slot::Ptr(q) => q,
            Slot::Int(0) => TPtr::NULL,
            Slot::Int(v) => panic!("pointer load of integer slot holding {v}"),
        };
        self.events.push(Event::Access {
            obj: p.0,
            off: off as u32,
            store: false,
            ptr: true,
            target: v.0,
        });
        v
    }

    /// Stores pointer `q` at `p + off`.
    pub fn store_ptr(&mut self, p: TPtr, off: u64, q: TPtr) {
        let o = self.obj(p);
        let idx = Self::slot_index(o, off);
        let obj = &mut self.objects[p.0 as usize];
        obj.slots[idx] = Slot::Ptr(q);
        let off32 = off as u32;
        if let Err(pos) = obj.ptr_offs.binary_search(&off32) {
            obj.ptr_offs.insert(pos, off32);
        }
        self.events.push(Event::Access {
            obj: p.0,
            off: off32,
            store: true,
            ptr: true,
            target: q.0,
        });
    }

    /// Accounts `n` ALU instructions of application work (coalesced with
    /// a preceding `Compute` event).
    pub fn compute(&mut self, n: u32) {
        if let Some(Event::Compute { n: last }) = self.events.last_mut() {
            *last = last.saturating_add(n);
        } else {
            self.events.push(Event::Compute { n });
        }
    }

    /// The baseline address of an object (for hash functions — the
    /// `PtrToInt` of the native workloads).
    #[must_use]
    pub fn addr_of(&self, p: TPtr) -> u64 {
        self.obj(p).base
    }

    /// Finishes recording.
    #[must_use]
    pub fn finish(self, name: &str) -> Trace {
        Trace {
            name: name.to_owned(),
            events: self.events,
            objects: self
                .objects
                .into_iter()
                .map(|o| ObjInfo {
                    base: o.base,
                    size: o.slots.len() as u64 * 8,
                    ptr_offs: o.ptr_offs,
                })
                .collect(),
        }
    }
}

impl Default for TracedHeap {
    fn default() -> TracedHeap {
        TracedHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_addresses() {
        let mut h = TracedHeap::new();
        let a = h.alloc(24);
        let b = h.alloc(100); // rounds to 104
        let (ba, bb) = (h.addr_of(a), h.addr_of(b));
        assert_eq!(bb - ba, 24);
        let t = h.finish("t");
        assert_eq!(t.objects[1].size, 104);
    }

    #[test]
    fn values_roundtrip_and_events_record() {
        let mut h = TracedHeap::new();
        let a = h.alloc(16);
        h.store_int(a, 8, -5);
        assert_eq!(h.load_int(a, 8), -5);
        h.compute(10);
        h.compute(5);
        let t = h.finish("t");
        assert_eq!(t.accesses(), 2);
        // Compute events coalesce.
        assert!(matches!(t.events.last(), Some(Event::Compute { n: 15 })));
    }

    #[test]
    fn ptr_offs_sorted_and_deduped() {
        let mut h = TracedHeap::new();
        let a = h.alloc(32);
        let b = h.alloc(8);
        h.store_ptr(a, 24, b);
        h.store_ptr(a, 8, b);
        h.store_ptr(a, 24, b); // overwrite same slot
        let t = h.finish("t");
        assert_eq!(t.objects[0].ptr_offs, vec![8, 24]);
    }

    #[test]
    fn null_reads_from_fresh_slots() {
        let mut h = TracedHeap::new();
        let a = h.alloc(16);
        assert!(h.load_ptr(a, 0).is_null());
    }

    #[test]
    fn access_events_carry_targets() {
        let mut h = TracedHeap::new();
        let a = h.alloc(8);
        let b = h.alloc(8);
        h.store_ptr(a, 0, b);
        let t = h.finish("t");
        match t.events.last() {
            Some(Event::Access { ptr: true, target, .. }) => assert_eq!(*target, b.obj()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let mut h = TracedHeap::new();
        let a = h.alloc(16);
        h.load_int(a, 16);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    fn use_after_free_panics() {
        let mut h = TracedHeap::new();
        let a = h.alloc(8);
        h.free(a);
        h.load_int(a, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut h = TracedHeap::new();
        let a = h.alloc(8);
        h.free(a);
        h.free(a);
    }
}
