//! Fat-pointer protection models: iMPX compiler-managed fat pointers,
//! software fat pointers, the M-Machine, and the two CHERI variants.

use cheri_core::Compressed128;

use crate::models::{
    baseline, no_pad, relayout_pages, Criteria, Mark, Overheads, ProtModel, Tally,
};
use crate::trace::Trace;

/// iMPX with compiler-managed fat pointers (Section 6.4): "Each 64-bit
/// pointer consumes 320 bits: the original pointer along with 256 bits
/// of metadata", stored consecutively ("greater locality") — but checks
/// remain explicit instructions and the representation breaks the ABI.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpxFatPtr;

impl ProtModel for MpxFatPtr {
    fn name(&self) -> &'static str {
        "MPX (FP)"
    }

    fn criteria(&self) -> Criteria {
        Criteria {
            unprivileged_use: Mark::Yes,
            fine_grained: Mark::Yes,
            unforgeable: Mark::No, // in-band metadata is writable data
            access_control: Mark::No,
            pointer_safety: Mark::Yes,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::NotApplicable,
            incremental_deployment: Mark::No, // pointer size changes the ABI
        }
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // 40-byte pointers: one extra (wide) reference moving 32 more
        // bytes per pointer access; consecutive layout keeps locality.
        let extra_refs = t.ptr_accesses();
        let extra_bytes = 32 * t.ptr_accesses();
        let opt_checks = 2 * t.ptr_loads;
        let pess_checks = 2 * t.accesses;
        Overheads {
            pages: relayout_pages(trace, 32, &no_pad),
            bytes: base.bytes + extra_bytes,
            refs: base.refs + extra_refs,
            instrs_opt: base.instrs_opt + extra_refs + opt_checks,
            instrs_pess: base.instrs_pess + extra_refs + pess_checks,
            syscalls: base.syscalls,
        }
    }
}

/// Pure software fat pointers (the CCured/Cyclone lineage of Section
/// 5.1): a 24-byte `(pointer, base, length)` record moved by ordinary
/// loads and stores, with compare-and-branch check sequences.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoftwareFatPtr;

impl ProtModel for SoftwareFatPtr {
    fn name(&self) -> &'static str {
        "Software FP"
    }

    fn criteria(&self) -> Criteria {
        Criteria {
            unprivileged_use: Mark::Yes,
            fine_grained: Mark::Yes,
            unforgeable: Mark::No,
            access_control: Mark::No,
            pointer_safety: Mark::Yes,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::NotApplicable,
            incremental_deployment: Mark::No,
        }
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // Three GPR-width accesses instead of one per pointer move.
        let extra_refs = 2 * t.ptr_accesses();
        let extra_bytes = 16 * t.ptr_accesses();
        // Checks: two compare+branch pairs (~3 instructions each bound).
        let opt_checks = 3 * t.ptr_loads;
        let pess_checks = 6 * t.accesses;
        Overheads {
            pages: relayout_pages(trace, 16, &no_pad),
            bytes: base.bytes + extra_bytes,
            refs: base.refs + extra_refs,
            instrs_opt: base.instrs_opt + extra_refs + opt_checks,
            instrs_pess: base.instrs_pess + extra_refs + pess_checks,
            syscalls: base.syscalls,
        }
    }
}

/// The M-Machine (Section 6.5): 64-bit guarded pointers — no space or
/// traffic cost per pointer, but "only power-of-two aligned and sized
/// segments are supported", so every allocation pads (and aligns) to a
/// power of two, which is what hurts its page footprint in Figure 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct MMachine;

fn pow2_pad(size: u64) -> (u64, u64) {
    let p = size.max(8).next_power_of_two();
    (p, p)
}

impl ProtModel for MMachine {
    fn name(&self) -> &'static str {
        "M-Machine"
    }

    fn criteria(&self) -> Criteria {
        Criteria {
            unprivileged_use: Mark::Yes, // per the paper's guarded user-mode proposal
            fine_grained: Mark::No,      // power-of-two granularity
            unforgeable: Mark::Yes,
            access_control: Mark::Yes,
            pointer_safety: Mark::Yes,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::Yes,
            incremental_deployment: Mark::No,
        }
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        Overheads {
            pages: relayout_pages(trace, 0, &pow2_pad),
            bytes: base.bytes,
            refs: base.refs,
            instrs_opt: base.instrs_opt + t.mallocs,
            instrs_pess: base.instrs_pess + t.mallocs,
            syscalls: base.syscalls,
        }
    }
}

/// CHERI with the 256-bit research capability format (Figure 1):
/// pointers quadruple in memory but remain single references; bounds are
/// set by `CIncBase`/`CSetLen` at allocation and all checks are implicit.
/// Tag-table traffic is one bit per 256 bits through the 8 KB tag cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cheri256;

fn cheri_criteria() -> Criteria {
    Criteria {
        unprivileged_use: Mark::Yes,
        fine_grained: Mark::Yes,
        unforgeable: Mark::Yes,
        access_control: Mark::Yes,
        pointer_safety: Mark::Yes,
        segment_scalability: Mark::Yes,
        domain_scalability: Mark::Yes,
        incremental_deployment: Mark::Yes,
    }
}

impl ProtModel for Cheri256 {
    fn name(&self) -> &'static str {
        "CHERI"
    }

    fn criteria(&self) -> Criteria {
        cheri_criteria()
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // A capability access is one (wide) reference of 32 bytes.
        let extra_bytes = 24 * t.ptr_accesses();
        let data_bytes = base.bytes + extra_bytes;
        // Tag traffic: 1 bit per 256 data bits, mostly absorbed by the
        // 8 KB tag cache; count the table bytes themselves.
        let tag_bytes = data_bytes / 256;
        Overheads {
            pages: relayout_pages(trace, 24, &cap_align_pad),
            bytes: data_bytes + tag_bytes,
            refs: base.refs,
            instrs_opt: base.instrs_opt + 2 * t.mallocs,
            instrs_pess: base.instrs_pess + 2 * t.mallocs,
            syscalls: base.syscalls,
        }
    }
}

fn cap_align_pad(size: u64) -> (u64, u64) {
    (size.div_ceil(32) * 32, 32)
}

/// The proposed 128-bit production format (Section 7's "128b CHERI"):
/// halves capability traffic and adds only the Low-Fat-style alignment
/// padding of [`Compressed128::round_len`] for very large objects.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cheri128;

fn cap128_pad(size: u64) -> (u64, u64) {
    let rounded = Compressed128::round_len(size.max(1));
    (rounded.div_ceil(16) * 16, Compressed128::required_alignment(rounded).max(16))
}

impl ProtModel for Cheri128 {
    fn name(&self) -> &'static str {
        "128b CHERI"
    }

    fn criteria(&self) -> Criteria {
        cheri_criteria()
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        let extra_bytes = 8 * t.ptr_accesses();
        let data_bytes = base.bytes + extra_bytes;
        let tag_bytes = data_bytes / 128;
        Overheads {
            pages: relayout_pages(trace, 8, &cap128_pad),
            bytes: data_bytes + tag_bytes,
            refs: base.refs,
            instrs_opt: base.instrs_opt + 2 * t.mallocs,
            instrs_pess: base.instrs_pess + 2 * t.mallocs,
            syscalls: base.syscalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TracedHeap};

    /// A binary tree, the canonical Olden shape.
    fn tree_trace(depth: u32) -> Trace {
        let mut h = TracedHeap::new();
        fn build(h: &mut TracedHeap, d: u32) -> crate::trace::TPtr {
            let n = h.alloc(24);
            h.store_int(n, 0, i64::from(d));
            if d > 0 {
                let l = build(h, d - 1);
                let r = build(h, d - 1);
                h.store_ptr(n, 8, l);
                h.store_ptr(n, 16, r);
            }
            n
        }
        fn sum(h: &mut TracedHeap, p: crate::trace::TPtr) -> i64 {
            if p.is_null() {
                return 0;
            }
            h.compute(4);
            let v = h.load_int(p, 0);
            let l = h.load_ptr(p, 8);
            let r = h.load_ptr(p, 16);
            let sl = sum(h, l);
            let sr = sum(h, r);
            v + sl + sr
        }
        let root = build(&mut h, depth);
        let total = sum(&mut h, root);
        assert!(total > 0);
        h.finish("tree")
    }

    #[test]
    fn cheri_refs_equal_baseline() {
        let tr = tree_trace(8);
        let base = baseline(&tr);
        let c = Cheri256.simulate(&tr);
        assert_eq!(c.refs, base.refs, "inline metadata adds no references");
        assert!(c.bytes > base.bytes);
    }

    #[test]
    fn cheri128_strictly_cheaper_than_256() {
        let tr = tree_trace(9);
        let c256 = Cheri256.simulate(&tr);
        let c128 = Cheri128.simulate(&tr);
        assert!(c128.bytes < c256.bytes);
        assert!(c128.pages <= c256.pages);
        assert_eq!(c128.instrs_opt, c256.instrs_opt);
    }

    #[test]
    fn cheri_instruction_overhead_is_allocation_only() {
        let tr = tree_trace(8);
        let t = Tally::new(&tr);
        let base = baseline(&tr);
        let c = Cheri256.simulate(&tr);
        assert_eq!(c.instrs_opt - base.instrs_opt, 2 * t.mallocs);
        assert_eq!(c.instrs_opt, c.instrs_pess, "hardware checks: opt == pess");
    }

    #[test]
    fn softfp_pessimistic_is_most_expensive_instructions() {
        let tr = tree_trace(8);
        let base = baseline(&tr);
        let soft = SoftwareFatPtr.simulate(&tr).percent_over(&base);
        let cheri = Cheri256.simulate(&tr).percent_over(&base);
        assert!(soft.instrs_pess > 10.0 * cheri.instrs_pess.max(0.1));
        assert!(soft.instrs_pess > soft.instrs_opt);
    }

    #[test]
    fn mmachine_pages_exceed_cheri128() {
        // 24-byte nodes pad to 32 under M-Machine (33% waste) while
        // CHERI-128 nodes are 40 bytes -> pow-of-2 padding hurts less
        // here, so craft odd sizes where padding dominates: 136-byte
        // objects pad to 256.
        let mut h = TracedHeap::new();
        let objs: Vec<_> = (0..3000).map(|_| h.alloc(136)).collect();
        for w in objs.windows(2) {
            h.store_ptr(w[0], 8, w[1]);
        }
        let mut p = objs[0];
        for _ in 0..2998 {
            p = h.load_ptr(p, 8);
        }
        let tr = h.finish("odd");
        let base = baseline(&tr);
        let mm = MMachine.simulate(&tr).percent_over(&base);
        let c128 = Cheri128.simulate(&tr).percent_over(&base);
        assert!(
            mm.pages > c128.pages,
            "pow2 padding should dominate: {} vs {}",
            mm.pages,
            c128.pages
        );
        assert!(mm.bytes.abs() < 1.0, "M-Machine adds no traffic");
    }

    #[test]
    fn mpxfp_bytes_exceed_cheri256() {
        // "Without Hardbound's pointer compression, iMPX experiences
        // significant memory overheads, even compared to 256-bit CHERI
        // capabilities."
        let tr = tree_trace(9);
        let base = baseline(&tr);
        let mpxfp = MpxFatPtr.simulate(&tr).percent_over(&base);
        let cheri = Cheri256.simulate(&tr).percent_over(&base);
        assert!(mpxfp.bytes > cheri.bytes);
        assert!(mpxfp.refs > cheri.refs);
    }
}
