//! Table-based protection models: Mondrian, iMPX (look-aside table
//! mode), and Hardbound.

use crate::models::{baseline, Criteria, Mark, Overheads, ProtModel, Tally, SYSCALL_INSTRS};
use crate::trace::Trace;
use crate::PAGE;

/// Mondrian memory protection (Section 6.2), adapted per Section 7:
/// 40-bit virtual address space, vector-table with 14-bit first- and
/// mid-level indices, 64-bit leaf records each covering 16 words.
///
/// Mondrian's defining costs: every allocation and free crosses into the
/// kernel to update the supervisor-owned protection table ("Reintroducing
/// domain switches for Mondrian would significantly impair segmentation
/// scalability"), while steady-state traffic is low because protection
/// is not attached to pointers.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mondrian;

/// Bytes of data covered by one 64-bit Mondrian leaf record (16 nodes of
/// 64 bits).
const MONDRIAN_RECORD_COVERS: u64 = 16 * 8;

impl ProtModel for Mondrian {
    fn name(&self) -> &'static str {
        "Mondrian"
    }

    fn criteria(&self) -> Criteria {
        Criteria {
            unprivileged_use: Mark::No,
            fine_grained: Mark::Partial, // heap yes; stack/globals no
            unforgeable: Mark::No,
            access_control: Mark::Yes,
            pointer_safety: Mark::No,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::No,
            incremental_deployment: Mark::Yes,
        }
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // Table writes: one 64-bit record per 128 bytes of every
        // (de)allocated region, written by the software fill handler.
        let table_writes: u64 =
            trace.objects.iter().map(|o| o.size.div_ceil(MONDRIAN_RECORD_COVERS)).sum::<u64>()
                + t.frees; // clearing on free, one record minimum
                           // PLB miss walks: a 3-level read per table-covered region
                           // entering the PLB; approximated as 4 walks per data page.
        let plb_walk_reads = 3 * 4 * t.data_pages;
        let extra_refs = table_writes + plb_walk_reads;
        let table_bytes = t.alloc_bytes / 16; // 64 bits per 128 bytes
        let syscalls = t.mallocs + t.frees + base.syscalls;
        // Per the paper, "we assume a hardware read of the table but
        // simulate a software table fill based on a minimal table fill
        // algorithm": charge only the fill algorithm's instructions; the
        // domain-switch *rate* (whose kernel-crossing cost is
        // [`SYSCALL_INSTRS`]-scale) is reported separately in `syscalls`.
        let kernel_instrs = (t.mallocs + t.frees) * 12 + 2 * table_writes;
        let _ = SYSCALL_INSTRS; // the crossing cost itself is the syscalls metric
        Overheads {
            pages: t.data_pages + table_bytes.div_ceil(PAGE) + 2,
            bytes: base.bytes + extra_refs * 8,
            refs: base.refs + extra_refs,
            instrs_opt: base.instrs_opt + kernel_instrs,
            instrs_pess: base.instrs_pess + kernel_instrs,
            syscalls,
        }
    }
}

/// Intel MPX, look-aside-table mode (Section 6.4): bounds are loaded and
/// stored explicitly (`bndldx`/`bndstx`) against a hierarchical table
/// whose 256-bit leaf entries shadow every 64-bit pointer location —
/// "The iMPX table contains more than 4 pages for each page of memory
/// containing pointers".
#[derive(Clone, Copy, Debug, Default)]
pub struct MpxTable;

impl MpxTable {
    /// The shared iMPX criteria row (the table and fat-pointer variants
    /// differ only in unforgeability and deployability).
    fn base_criteria() -> Criteria {
        Criteria {
            unprivileged_use: Mark::Yes,
            fine_grained: Mark::Yes,
            unforgeable: Mark::Yes,
            access_control: Mark::No, // "iMPX does not support permission bits"
            pointer_safety: Mark::Yes,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::NotApplicable,
            incremental_deployment: Mark::Yes,
        }
    }
}

impl ProtModel for MpxTable {
    fn name(&self) -> &'static str {
        "MPX"
    }

    fn criteria(&self) -> Criteria {
        Self::base_criteria()
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // Every pointer load/store walks the table: an 8-byte directory
        // read plus a 32-byte leaf access.
        let extra_refs = 2 * t.ptr_accesses();
        let extra_bytes = (8 + 32) * t.ptr_accesses();
        // bndldx/bndstx is one instruction; checks are two (bndcl+bndcu).
        let table_instrs = t.ptr_accesses();
        let opt_checks = 2 * t.ptr_loads;
        let pess_checks = 2 * t.accesses;
        Overheads {
            pages: t.data_pages + 4 * t.ptr_pages + t.data_pages / 512 + 1,
            bytes: base.bytes + extra_bytes,
            refs: base.refs + extra_refs,
            instrs_opt: base.instrs_opt + table_instrs + opt_checks,
            instrs_pess: base.instrs_pess + table_instrs + pess_checks,
            syscalls: base.syscalls,
        }
    }
}

/// Hardbound (Section 6.3): a hardware fat-pointer model with a shadow
/// bounds table and a 2-bit tag per 64-bit word. Per Section 7's
/// adaptation, pointers to regions of up to 1024 bytes (4-byte-aligned
/// length) compress into 8 unused pointer bits and cost nothing; other
/// pointers incur a 128-bit bounds-table access per load/store.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hardbound;

impl ProtModel for Hardbound {
    fn name(&self) -> &'static str {
        "Hardbound"
    }

    fn criteria(&self) -> Criteria {
        Criteria {
            unprivileged_use: Mark::Yes,
            fine_grained: Mark::Yes,
            unforgeable: Mark::Yes, // within its threat model (setbound is forgeable; Table 2 footnote)
            access_control: Mark::No,
            pointer_safety: Mark::Yes,
            segment_scalability: Mark::Yes,
            domain_scalability: Mark::NotApplicable,
            incremental_deployment: Mark::Yes,
        }
    }

    fn simulate(&self, trace: &Trace) -> Overheads {
        let t = Tally::new(trace);
        let base = baseline(trace);
        // 128-bit bounds-table entry per incompressible pointer access.
        let bounds_refs = t.incompressible_ptr_accesses;
        let bounds_bytes = 16 * bounds_refs;
        // 2-bit word tags: one 8-byte tag-line access per 32 data
        // accesses survives the cache.
        let tag_refs = t.accesses / 32;
        let tag_table_bytes = t.alloc_bytes / 32;
        let bounds_table_bytes = 16 * t.ptr_pages * (PAGE / 8) / 8; // sparse shadow regions
        Overheads {
            pages: t.data_pages
                + bounds_table_bytes.div_ceil(PAGE)
                + tag_table_bytes.div_ceil(PAGE)
                + 1,
            bytes: base.bytes + bounds_bytes + tag_refs * 8,
            refs: base.refs + bounds_refs + tag_refs,
            // "CHERI and Hardbound require a single instruction" per
            // allocation; checks are implicit in hardware (opt == pess).
            instrs_opt: base.instrs_opt + t.mallocs,
            instrs_pess: base.instrs_pess + t.mallocs,
            syscalls: base.syscalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::all_models;
    use crate::trace::TracedHeap;

    /// A linked list of small nodes: compressible pointers, dense heap.
    fn list_trace(n: usize) -> Trace {
        let mut h = TracedHeap::new();
        let nodes: Vec<_> = (0..n).map(|_| h.alloc(24)).collect();
        for w in nodes.windows(2) {
            h.store_ptr(w[0], 16, w[1]);
        }
        // Walk it twice.
        for _ in 0..2 {
            let mut p = nodes[0];
            loop {
                let v = h.load_int(p, 0);
                h.store_int(p, 0, v + 1);
                h.compute(3);
                let next = h.load_ptr(p, 16);
                if next.is_null() {
                    break;
                }
                p = next;
            }
        }
        h.finish("list")
    }

    #[test]
    fn mondrian_charges_syscalls_not_traffic() {
        let tr = list_trace(500);
        let base = baseline(&tr);
        let m = Mondrian.simulate(&tr);
        assert!(m.syscalls > base.syscalls + 400, "per-malloc kernel entries");
        let pct = m.percent_over(&base);
        assert!(pct.bytes < 40.0, "Mondrian traffic should be modest: {}", pct.bytes);
        assert!(pct.instrs_opt > 0.0);
        // Optimistic and pessimistic are the same: no per-deref checks.
        assert_eq!(m.instrs_opt, m.instrs_pess);
    }

    #[test]
    fn mpx_has_highest_pages_and_bytes() {
        let tr = list_trace(500);
        let base = baseline(&tr);
        let mpx = MpxTable.simulate(&tr).percent_over(&base);
        for m in all_models() {
            let pct = m.simulate(&tr).percent_over(&base);
            assert!(
                mpx.bytes >= pct.bytes - 1e-9,
                "MPX should have the largest byte overhead; {} beats it",
                m.name()
            );
        }
        assert!(mpx.pages > 100.0, "table shadowing dominates pages: {}", mpx.pages);
    }

    #[test]
    fn mpx_pessimistic_exceeds_optimistic() {
        let tr = list_trace(200);
        let m = MpxTable.simulate(&tr);
        assert!(m.instrs_pess > m.instrs_opt);
    }

    #[test]
    fn hardbound_compresses_small_objects() {
        let tr = list_trace(300);
        let base = baseline(&tr);
        let hb = Hardbound.simulate(&tr).percent_over(&base);
        // All nodes are 24 bytes -> every pointer compresses; traffic
        // overhead reduces to word tags.
        assert!(hb.refs < 5.0, "compressed pointers cost almost nothing: {}", hb.refs);
        assert!(hb.bytes < 10.0);
    }

    #[test]
    fn hardbound_pays_for_large_objects() {
        let mut h = TracedHeap::new();
        let big: Vec<_> = (0..64).map(|_| h.alloc(4096)).collect();
        for w in big.windows(2) {
            h.store_ptr(w[0], 0, w[1]);
        }
        let mut p = big[0];
        for _ in 0..62 {
            p = h.load_ptr(p, 0);
        }
        let tr = h.finish("big");
        let t = Tally::new(&tr);
        assert!(t.incompressible_ptr_accesses > 60);
        let base = baseline(&tr);
        let hb = Hardbound.simulate(&tr).percent_over(&base);
        assert!(hb.refs > 50.0, "incompressible pointers hit the table: {}", hb.refs);
    }
}
