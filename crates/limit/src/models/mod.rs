//! Protection-model overhead simulators (Figure 3) and the functional
//! comparison matrix (Table 2).
//!
//! Every model consumes the same baseline [`Trace`] and computes its
//! *absolute* cost in the paper's four metrics (plus system calls); the
//! study harness normalises against [`baseline`] to produce overhead
//! percentages, exactly as Figure 3 plots "normalized overhead against
//! the baseline".
//!
//! The per-model adaptations follow Section 7's descriptions (40-bit
//! Mondrian tables with 64-bit records covering 16 nodes, Hardbound
//! compression of ≤1024-byte 4-byte-aligned regions with a 2-bit tag per
//! 64-bit word, M-Machine power-of-two padding, 256-bit iMPX bounds-table
//! leaves, ...). Cost constants that the paper leaves unspecified
//! (allocator instruction counts, kernel-entry cost) are named constants
//! below, shared across models so relative comparisons stay fair.

mod fatptr;
mod table;

pub use fatptr::{Cheri128, Cheri256, MMachine, MpxFatPtr, SoftwareFatPtr};
pub use table::{Hardbound, Mondrian, MpxTable};

use std::collections::HashSet;

use crate::trace::{Event, Trace};
use crate::PAGE;

/// Instructions charged for a baseline `malloc()` (size-class lookup,
/// free-list pop, header update — a realistic dlmalloc-style fast path).
pub const MALLOC_INSTRS: u64 = 60;
/// Instructions charged for a baseline `free()`.
pub const FREE_INSTRS: u64 = 30;
/// Instructions charged for one kernel entry/exit (Mondrian's
/// per-allocation protection-table system call).
pub const SYSCALL_INSTRS: u64 = 300;

/// Absolute cost of running a trace under one model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Overheads {
    /// Distinct 4 KB virtual pages touched (data + model metadata) —
    /// "Virtual memory footprint (pages)".
    pub pages: u64,
    /// Bytes moved to/from memory — "Memory I/O (bytes)".
    pub bytes: u64,
    /// Individual loads and stores — "Memory references (count)".
    pub refs: u64,
    /// Total instructions, optimistic checking (bounds checked once per
    /// pointer load).
    pub instrs_opt: u64,
    /// Total instructions, pessimistic checking (bounds checked on every
    /// dereference).
    pub instrs_pess: u64,
    /// System calls issued.
    pub syscalls: u64,
}

impl Overheads {
    /// Percentage overhead of `self` relative to `base`, metric-wise.
    #[must_use]
    pub fn percent_over(&self, base: &Overheads) -> OverheadPct {
        fn pct(m: u64, b: u64) -> f64 {
            if b == 0 {
                0.0
            } else {
                (m as f64 - b as f64) / b as f64 * 100.0
            }
        }
        OverheadPct {
            pages: pct(self.pages, base.pages),
            bytes: pct(self.bytes, base.bytes),
            refs: pct(self.refs, base.refs),
            instrs_opt: pct(self.instrs_opt, base.instrs_opt),
            instrs_pess: pct(self.instrs_pess, base.instrs_pess),
        }
    }
}

/// Figure 3 overheads, as percentages over the baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverheadPct {
    /// Virtual memory footprint overhead (%).
    pub pages: f64,
    /// Memory I/O overhead (%).
    pub bytes: f64,
    /// Memory reference-count overhead (%).
    pub refs: f64,
    /// Instruction overhead, optimistic (%).
    pub instrs_opt: f64,
    /// Instruction overhead, pessimistic (%).
    pub instrs_pess: f64,
}

/// A Table 2 cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mark {
    /// The paper's check mark.
    Yes,
    /// The paper's dash.
    No,
    /// "n/a" (domain scalability for protection-domain-free models).
    NotApplicable,
    /// Qualified check (Mondrian's fine-grained heap-only protection).
    Partial,
}

impl core::fmt::Display for Mark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Mark::Yes => "yes",
            Mark::No => "-",
            Mark::NotApplicable => "n/a",
            Mark::Partial => "yes**",
        };
        f.write_str(s)
    }
}

/// One row of Table 2: the eight protection criteria of Section 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Criteria {
    /// Unprivileged use.
    pub unprivileged_use: Mark,
    /// Fine-grained protection.
    pub fine_grained: Mark,
    /// Unforgeable references.
    pub unforgeable: Mark,
    /// Access control (read/write/execute permissions).
    pub access_control: Mark,
    /// Pointer safety (vs address validity).
    pub pointer_safety: Mark,
    /// Segment scalability.
    pub segment_scalability: Mark,
    /// Domain scalability.
    pub domain_scalability: Mark,
    /// Incremental deployment.
    pub incremental_deployment: Mark,
}

impl Criteria {
    /// The criteria in Table 2 column order, with their headings.
    #[must_use]
    pub fn columns(&self) -> [(&'static str, Mark); 8] {
        [
            ("Unprivileged use", self.unprivileged_use),
            ("Fine-grained", self.fine_grained),
            ("Unforgeable", self.unforgeable),
            ("Access control", self.access_control),
            ("Pointer safety", self.pointer_safety),
            ("Segment scalability", self.segment_scalability),
            ("Domain scalability", self.domain_scalability),
            ("Incremental deployment", self.incremental_deployment),
        ]
    }
}

/// A protection model: a Table 2 row and a Figure 3 overhead simulator.
pub trait ProtModel {
    /// Display name (Figure 3 axis label).
    fn name(&self) -> &'static str;

    /// The Table 2 row.
    fn criteria(&self) -> Criteria;

    /// Absolute cost of running `trace` under this model.
    fn simulate(&self, trace: &Trace) -> Overheads;
}

/// The Figure 3 model set, in the paper's axis order.
#[must_use]
pub fn all_models() -> Vec<Box<dyn ProtModel>> {
    vec![
        Box::new(Mondrian),
        Box::new(MpxTable),
        Box::new(MpxFatPtr),
        Box::new(SoftwareFatPtr),
        Box::new(Hardbound),
        Box::new(MMachine),
        Box::new(Cheri256),
        Box::new(Cheri128),
    ]
}

/// The MMU baseline row of Table 2 (not part of Figure 3 — it is the
/// normalisation baseline).
#[must_use]
pub fn mmu_criteria() -> Criteria {
    Criteria {
        unprivileged_use: Mark::No,
        fine_grained: Mark::No,
        unforgeable: Mark::No,
        access_control: Mark::Yes,
        pointer_safety: Mark::No,
        segment_scalability: Mark::No,
        domain_scalability: Mark::No,
        incremental_deployment: Mark::Yes,
    }
}

/// Quantities every model derives from a trace, computed in one pass.
#[derive(Clone, Debug)]
pub struct Tally {
    /// All load/store events.
    pub accesses: u64,
    /// Pointer loads.
    pub ptr_loads: u64,
    /// Pointer stores.
    pub ptr_stores: u64,
    /// Application ALU instructions.
    pub compute: u64,
    /// `malloc` count.
    pub mallocs: u64,
    /// `free` count.
    pub frees: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Distinct 4 KB pages of baseline data addresses touched.
    pub data_pages: u64,
    /// Distinct pages containing accessed pointer slots.
    pub ptr_pages: u64,
    /// Pointer accesses whose target object exceeds Hardbound's
    /// compressible range (length > 1024 bytes).
    pub incompressible_ptr_accesses: u64,
}

impl Tally {
    /// Tallies a trace.
    #[must_use]
    pub fn new(trace: &Trace) -> Tally {
        let mut t = Tally {
            accesses: 0,
            ptr_loads: 0,
            ptr_stores: 0,
            compute: 0,
            mallocs: 0,
            frees: 0,
            alloc_bytes: trace.objects.iter().map(|o| o.size).sum(),
            data_pages: 0,
            ptr_pages: 0,
            incompressible_ptr_accesses: 0,
        };
        let mut pages = HashSet::new();
        let mut ptr_pages = HashSet::new();
        for e in &trace.events {
            match *e {
                Event::Malloc { .. } => t.mallocs += 1,
                Event::Free { .. } => t.frees += 1,
                Event::Compute { n } => t.compute += u64::from(n),
                Event::Access { obj, off, store, ptr, target } => {
                    t.accesses += 1;
                    let addr = trace.objects[obj as usize].base + u64::from(off);
                    pages.insert(addr / PAGE);
                    if ptr {
                        ptr_pages.insert(addr / PAGE);
                        if store {
                            t.ptr_stores += 1;
                        } else {
                            t.ptr_loads += 1;
                        }
                        if target != u32::MAX && trace.objects[target as usize].size > 1024 {
                            t.incompressible_ptr_accesses += 1;
                        }
                    }
                }
            }
        }
        t.data_pages = pages.len() as u64;
        t.ptr_pages = ptr_pages.len() as u64;
        t
    }

    /// Pointer loads + stores.
    #[must_use]
    pub fn ptr_accesses(&self) -> u64 {
        self.ptr_loads + self.ptr_stores
    }

    /// Baseline instruction count: one per access, application compute,
    /// and allocator work.
    #[must_use]
    pub fn base_instrs(&self) -> u64 {
        self.accesses + self.compute + MALLOC_INSTRS * self.mallocs + FREE_INSTRS * self.frees
    }

    /// Baseline syscalls: one `mmap` per megabyte of heap growth
    /// (Section 4.2's amortised-malloc observation).
    #[must_use]
    pub fn base_syscalls(&self) -> u64 {
        self.alloc_bytes / (1 << 20) + 1
    }
}

/// The unprotected baseline measurement every model normalises against.
#[must_use]
pub fn baseline(trace: &Trace) -> Overheads {
    let t = Tally::new(trace);
    Overheads {
        pages: t.data_pages,
        bytes: t.accesses * 8,
        refs: t.accesses,
        instrs_opt: t.base_instrs(),
        instrs_pess: t.base_instrs(),
        syscalls: t.base_syscalls(),
    }
}

/// Recomputes the set of pages touched when pointer slots are inflated
/// by `extra_per_ptr` bytes and object sizes pass through `pad`, which
/// returns `(padded_size, base_alignment)` — the fat-pointer relayout
/// shared by the iMPX-FP, software-FP, M-Machine, and CHERI models.
#[must_use]
pub fn relayout_pages(trace: &Trace, extra_per_ptr: u64, pad: &dyn Fn(u64) -> (u64, u64)) -> u64 {
    // New object bases under a bump allocator.
    let mut bases = Vec::with_capacity(trace.objects.len());
    let mut next = 0x4_0000u64;
    for o in &trace.objects {
        let inflated = o.size + extra_per_ptr * o.ptr_slots();
        let (size, align) = pad(inflated);
        next = next.div_ceil(align) * align;
        bases.push(next);
        next += size;
    }
    let mut pages = HashSet::new();
    for e in &trace.events {
        if let Event::Access { obj, off, .. } = *e {
            let o = &trace.objects[obj as usize];
            let below = o.ptr_offs.partition_point(|&p| p < off);
            let addr = bases[obj as usize] + u64::from(off) + extra_per_ptr * below as u64;
            pages.insert(addr / PAGE);
        }
    }
    pages.len() as u64
}

/// Identity padding (no change, 8-byte alignment).
#[must_use]
pub fn no_pad(size: u64) -> (u64, u64) {
    (size, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracedHeap;

    fn small_trace() -> Trace {
        let mut h = TracedHeap::new();
        let a = h.alloc(24);
        let b = h.alloc(24);
        h.store_int(a, 0, 1);
        h.store_ptr(a, 8, b);
        let q = h.load_ptr(a, 8);
        h.store_int(q, 0, 2);
        h.compute(100);
        h.free(b);
        h.finish("small")
    }

    #[test]
    fn tally_counts() {
        let t = Tally::new(&small_trace());
        assert_eq!(t.accesses, 4);
        assert_eq!(t.ptr_loads, 1);
        assert_eq!(t.ptr_stores, 1);
        assert_eq!(t.compute, 100);
        assert_eq!(t.mallocs, 2);
        assert_eq!(t.frees, 1);
        assert_eq!(t.alloc_bytes, 48);
        assert_eq!(t.data_pages, 1);
    }

    #[test]
    fn baseline_metrics() {
        let b = baseline(&small_trace());
        assert_eq!(b.refs, 4);
        assert_eq!(b.bytes, 32);
        assert_eq!(b.instrs_opt, b.instrs_pess);
        assert_eq!(b.instrs_opt, 4 + 100 + 2 * MALLOC_INSTRS + FREE_INSTRS);
        assert_eq!(b.syscalls, 1);
    }

    #[test]
    fn percent_over_baseline_is_zero_for_baseline() {
        let tr = small_trace();
        let b = baseline(&tr);
        let p = b.percent_over(&b);
        assert_eq!(p.bytes, 0.0);
        assert_eq!(p.instrs_opt, 0.0);
    }

    #[test]
    fn relayout_identity_matches_baseline_pages() {
        let tr = small_trace();
        let t = Tally::new(&tr);
        assert_eq!(relayout_pages(&tr, 0, &no_pad), t.data_pages);
    }

    #[test]
    fn relayout_inflation_grows_span() {
        // Many 24-byte objects with 2 pointer slots each: inflating
        // pointers to 32 bytes must spread accesses over ~3x the pages.
        let mut h = TracedHeap::new();
        let objs: Vec<_> = (0..2000).map(|_| h.alloc(24)).collect();
        for w in objs.windows(2) {
            h.store_ptr(w[0], 8, w[1]);
            h.store_ptr(w[0], 16, w[1]);
            h.store_int(w[0], 0, 1);
        }
        let tr = h.finish("chain");
        let base = Tally::new(&tr).data_pages;
        let fat = relayout_pages(&tr, 24, &no_pad);
        let ratio = fat as f64 / base as f64;
        assert!(ratio > 2.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn all_models_present_in_paper_order() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Mondrian",
                "MPX",
                "MPX (FP)",
                "Software FP",
                "Hardbound",
                "M-Machine",
                "CHERI",
                "128b CHERI"
            ]
        );
    }

    #[test]
    fn table2_matches_paper() {
        // Spot-check the distinguishing cells of Table 2.
        let models = all_models();
        let by_name = |n: &str| {
            models
                .iter()
                .find(|m| m.name() == n)
                .unwrap_or_else(|| panic!("{n} missing"))
                .criteria()
        };
        // CHERI is the only all-yes row.
        let cheri = by_name("CHERI");
        assert!(cheri.columns().iter().all(|(_, m)| *m == Mark::Yes));
        // Hardbound lacks access control and has n/a domain scalability.
        let hb = by_name("Hardbound");
        assert_eq!(hb.access_control, Mark::No);
        assert_eq!(hb.domain_scalability, Mark::NotApplicable);
        // MPX fat pointers forfeit unforgeability and incremental deployment.
        let mpxfp = by_name("MPX (FP)");
        assert_eq!(mpxfp.unforgeable, Mark::No);
        assert_eq!(mpxfp.incremental_deployment, Mark::No);
        // M-Machine is not fine-grained and not incrementally deployable.
        let mm = by_name("M-Machine");
        assert_eq!(mm.fine_grained, Mark::No);
        assert_eq!(mm.incremental_deployment, Mark::No);
        // Mondrian: privileged, partially fine-grained.
        let mon = by_name("Mondrian");
        assert_eq!(mon.unprivileged_use, Mark::No);
        assert_eq!(mon.fine_grained, Mark::Partial);
        // The MMU row fails almost everything but deploys trivially.
        let mmu = mmu_criteria();
        assert_eq!(mmu.pointer_safety, Mark::No);
        assert_eq!(mmu.incremental_deployment, Mark::Yes);
    }
}
