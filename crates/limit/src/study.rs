//! The limit-study harness: evaluate every model over a set of traces
//! and render Figure 3.

use crate::models::{all_models, baseline, OverheadPct};
use crate::trace::Trace;

/// Results of running the study: per-benchmark and mean overheads per
/// model.
#[derive(Debug)]
pub struct StudyResult {
    /// Benchmark names, in input order.
    pub benchmarks: Vec<String>,
    /// Model names, in Figure 3 axis order.
    pub models: Vec<&'static str>,
    /// `per_bench[m][b]` = model `m` on benchmark `b`.
    pub per_bench: Vec<Vec<OverheadPct>>,
    /// Arithmetic mean across benchmarks, per model (the bar heights of
    /// Figure 3).
    pub mean: Vec<OverheadPct>,
}

impl StudyResult {
    /// The mean overhead row for a model by name.
    #[must_use]
    pub fn mean_for(&self, model: &str) -> Option<OverheadPct> {
        self.models.iter().position(|m| *m == model).map(|i| self.mean[i])
    }

    /// Renders the five Figure 3 panels as text tables.
    #[must_use]
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        type Getter = fn(&OverheadPct) -> f64;
        let metrics: [(&str, Getter); 5] = [
            ("Virtual memory footprint (pages)", |o| o.pages),
            ("Memory I/O (bytes)", |o| o.bytes),
            ("Memory references (count)", |o| o.refs),
            ("Total instructions - optimistic (count)", |o| o.instrs_opt),
            ("Total instructions - pessimistic (count)", |o| o.instrs_pess),
        ];
        for (title, get) in metrics {
            let _ = writeln!(out, "\n== Figure 3: {title} — overhead [%] ==");
            let _ = write!(out, "{:<14}", "model");
            for b in &self.benchmarks {
                let _ = write!(out, "{b:>12}");
            }
            let _ = writeln!(out, "{:>12}", "mean");
            for (mi, model) in self.models.iter().enumerate() {
                let _ = write!(out, "{model:<14}");
                for bi in 0..self.benchmarks.len() {
                    let _ = write!(out, "{:>11.1}%", get(&self.per_bench[mi][bi]));
                }
                let _ = writeln!(out, "{:>11.1}%", get(&self.mean[mi]));
            }
        }
        out
    }
}

/// Runs every Figure 3 model over `traces`.
#[must_use]
pub fn run_study(traces: &[Trace]) -> StudyResult {
    let models = all_models();
    let bases: Vec<_> = traces.iter().map(baseline).collect();
    let mut per_bench = Vec::with_capacity(models.len());
    let mut mean = Vec::with_capacity(models.len());
    for m in &models {
        let rows: Vec<OverheadPct> =
            traces.iter().zip(&bases).map(|(t, b)| m.simulate(t).percent_over(b)).collect();
        let n = rows.len().max(1) as f64;
        let avg = OverheadPct {
            pages: rows.iter().map(|r| r.pages).sum::<f64>() / n,
            bytes: rows.iter().map(|r| r.bytes).sum::<f64>() / n,
            refs: rows.iter().map(|r| r.refs).sum::<f64>() / n,
            instrs_opt: rows.iter().map(|r| r.instrs_opt).sum::<f64>() / n,
            instrs_pess: rows.iter().map(|r| r.instrs_pess).sum::<f64>() / n,
        };
        per_bench.push(rows);
        mean.push(avg);
    }
    StudyResult {
        benchmarks: traces.iter().map(|t| t.name.clone()).collect(),
        models: models.iter().map(|m| m.name()).collect(),
        per_bench,
        mean,
    }
}

/// Renders Table 2 (the functional comparison matrix) as text.
#[must_use]
pub fn render_table2() -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ =
        writeln!(out, "== Table 2: Comparison of address-validity and pointer-validity models ==");
    let headers = [
        "Unpriv use",
        "Fine-grain",
        "Unforge*",
        "Access ctl",
        "Ptr safety",
        "Seg scal",
        "Dom scal",
        "Incr depl",
    ];
    let _ = write!(out, "{:<14}", "mechanism");
    for h in headers {
        let _ = write!(out, "{h:>12}");
    }
    let _ = writeln!(out);
    let mut rows: Vec<(&str, crate::models::Criteria)> =
        vec![("MMU", crate::models::mmu_criteria())];
    // Table 2 lists one iMPX-table row labelled "iMPX" plus the FP
    // variant; reuse the Figure 3 models' criteria.
    for m in all_models() {
        // The Figure 3 set contains Software FP which Table 2 does not
        // list, and both CHERI widths share one row.
        if m.name() == "Software FP" || m.name() == "128b CHERI" {
            continue;
        }
        rows.push((m.name(), m.criteria()));
    }
    for (name, c) in rows {
        let _ = write!(out, "{name:<14}");
        for (_, mark) in c.columns() {
            let _ = write!(out, "{:>12}", mark.to_string());
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "*  unforgeability per the paper's footnote");
    let _ = writeln!(out, "** fine-grained for the heap, but not stack or globals");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracedHeap;

    fn toy_trace(name: &str, n: usize) -> Trace {
        let mut h = TracedHeap::new();
        let objs: Vec<_> = (0..n).map(|_| h.alloc(24)).collect();
        for w in objs.windows(2) {
            h.store_ptr(w[0], 8, w[1]);
        }
        for _ in 0..5 {
            let mut p = objs[0];
            while !p.is_null() {
                let v = h.load_int(p, 0);
                h.store_int(p, 0, v + 1);
                h.compute(2);
                p = h.load_ptr(p, 8);
            }
        }
        h.finish(name)
    }

    #[test]
    fn study_produces_all_models_and_benchmarks() {
        let r = run_study(&[toy_trace("a", 100), toy_trace("b", 200)]);
        assert_eq!(r.models.len(), 8);
        assert_eq!(r.benchmarks, vec!["a", "b"]);
        assert_eq!(r.per_bench.len(), 8);
        assert_eq!(r.per_bench[0].len(), 2);
    }

    #[test]
    fn qualitative_shape_matches_figure_3() {
        let r = run_study(&[toy_trace("list", 2000)]);
        let get = |m: &str| r.mean_for(m).unwrap();
        // Who wins / loses per panel, as in the paper's prose:
        // "the table walk in iMPX requires significantly more memory
        // accesses than any other scheme"
        assert!(get("MPX").bytes > get("CHERI").bytes);
        assert!(get("MPX").bytes > get("Hardbound").bytes);
        // "the proposed 128-bit variant is competitive with most of the
        // other models"
        assert!(get("128b CHERI").bytes < get("MPX (FP)").bytes);
        assert!(get("128b CHERI").bytes < get("Software FP").bytes);
        // "CHERI, Hardbound, and the M-Machine all do well on this
        // [references] metric"
        for good in ["CHERI", "Hardbound", "M-Machine"] {
            for bad in ["MPX", "Software FP"] {
                assert!(get(good).refs < get(bad).refs, "{good} should beat {bad} on references");
            }
        }
        // "CHERI and Hardbound require a single instruction" per alloc:
        // tiny instruction overheads, identical opt/pess.
        assert!(get("CHERI").instrs_opt < 5.0);
        assert!((get("CHERI").instrs_opt - get("CHERI").instrs_pess).abs() < 1e-9);
        // "Explicit bounds loads and checks in iMPX and the software
        // fat-pointer approaches have the most overhead".
        assert!(get("Software FP").instrs_pess > get("Mondrian").instrs_pess);
        assert!(get("MPX").instrs_pess > get("CHERI").instrs_pess);
        // "Mondrian uses the smallest amount of memory traffic".
        for other in ["MPX", "MPX (FP)", "Software FP", "CHERI", "128b CHERI"] {
            assert!(get("Mondrian").bytes <= get(other).bytes, "Mondrian vs {other}");
        }
    }

    #[test]
    fn render_contains_all_panels() {
        let r = run_study(&[toy_trace("list", 50)]);
        let s = r.render();
        assert!(s.contains("Virtual memory footprint"));
        assert!(s.contains("pessimistic"));
        assert!(s.contains("Mondrian"));
        assert!(s.contains("128b CHERI"));
    }

    #[test]
    fn table2_renders_seven_mechanism_rows() {
        let s = render_table2();
        for name in ["MMU", "Mondrian", "Hardbound", "MPX", "MPX (FP)", "M-Machine", "CHERI"] {
            assert!(s.contains(name), "missing {name}:\n{s}");
        }
    }
}
