//! # cheri-limit — the Section 7 limit study
//!
//! "To understand performance tradeoffs, we performed a simulation-based
//! limit study on pointer-intensive benchmarks. The study measured
//! instruction rate, memory traffic overhead, system-call rate, and
//! memory storage overhead (Figure 3)."
//!
//! The paper's methodology: record complete traces of the Olden
//! benchmarks on the unprotected baseline, extract the events relevant
//! to bounds checking (allocation events and all loads/stores), and
//! simulate the extra memory accesses, instructions, pages, and system
//! calls an *ideal* implementation of each protection model would add.
//!
//! This crate provides:
//!
//! * [`trace`] — the pointer-event [`Trace`] format and the
//!   [`TracedHeap`] recorder that native workload implementations
//!   (in `cheri-olden`) run against.
//! * [`models`] — one overhead model per scheme, each implementing
//!   [`ProtModel`]: [`models::Mondrian`], [`models::MpxTable`],
//!   [`models::MpxFatPtr`], [`models::SoftwareFatPtr`],
//!   [`models::Hardbound`], [`models::MMachine`], [`models::Cheri256`],
//!   [`models::Cheri128`] — and the Table 2 criteria matrix.
//! * [`study`] — the harness that evaluates all models over a set of
//!   traces and renders the Figure 3 overhead table.

pub mod models;
pub mod study;
pub mod trace;

pub use models::{all_models, Criteria, Mark, Overheads, ProtModel};
pub use study::{run_study, StudyResult};
pub use trace::{Event, ObjInfo, TPtr, Trace, TracedHeap};

/// Page size used for footprint accounting (4 KB, as in the paper's
/// MMU discussion).
pub const PAGE: u64 = 4096;
