//! Property tests of the assembler: arbitrary label/branch graphs
//! resolve to programs whose control flow lands exactly where the labels
//! were bound.

use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_asm::{reg, Asm};
use proptest::prelude::*;

proptest! {
    /// A chain of N blocks visited in a random permutation via forward
    /// and backward branches accumulates its visit order correctly:
    /// every fixup resolved to the right target.
    #[test]
    fn branch_chains_resolve(order in proptest::sample::subsequence((0usize..12).collect::<Vec<_>>(), 3..12)) {
        let mut a = Asm::new(0x1000);
        let labels: Vec<_> = (0..order.len()).map(|_| a.new_label()).collect();
        let done = a.new_label();
        // Entry: jump to the first block in the order.
        a.li64(reg::V0, 0);
        a.b(labels[0]);
        // Emit blocks in ascending index order; each chains to its
        // successor in `order`, making an arbitrary mix of forward and
        // backward branches.
        let mut position = vec![0usize; order.len()];
        for (pos, &blk) in order.iter().enumerate() {
            position[pos] = blk;
        }
        for pos in 0..order.len() {
            a.bind(labels[pos]).unwrap();
            // v0 = v0 * 13 + block_payload
            a.li64(reg::T0, 13);
            a.dmultu(reg::V0, reg::T0);
            a.mflo(reg::V0);
            a.daddiu(reg::V0, reg::V0, (position[pos] + 1) as i16);
            if pos + 1 < order.len() {
                a.b(labels[pos + 1]);
            } else {
                a.b(done);
            }
        }
        a.bind(done).unwrap();
        a.syscall(0);
        let prog = a.finalize().unwrap();

        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        m.load_code(prog.base, &prog.words).unwrap();
        m.cpu.jump_to(prog.entry);
        for _ in 0..10_000 {
            match m.step().unwrap() {
                StepResult::Continue => {}
                StepResult::Syscall => break,
                other => panic!("{other:?}"),
            }
        }
        let mut expect = 0u64;
        for &p in position.iter().take(order.len()) {
            expect = expect.wrapping_mul(13).wrapping_add(p as u64 + 1);
        }
        prop_assert_eq!(m.cpu.gpr[reg::V0 as usize], expect);
    }

    /// li64 materialises every value exactly (the assembler's most-used
    /// pseudo-instruction).
    #[test]
    fn li64_materialises_any_value(v in any::<i64>()) {
        let mut a = Asm::new(0x1000);
        a.li64(reg::V0, v);
        a.syscall(0);
        let prog = a.finalize().unwrap();
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        m.load_code(prog.base, &prog.words).unwrap();
        m.cpu.jump_to(prog.entry);
        loop {
            match m.step().unwrap() {
                StepResult::Continue => {}
                StepResult::Syscall => break,
                other => panic!("{other:?}"),
            }
        }
        prop_assert_eq!(m.cpu.gpr[reg::V0 as usize] as i64, v);
    }
}
