//! # cheri-asm — a MIPS64 + CHERI macro-assembler
//!
//! The paper compiled its workloads with "an extended LLVM"; this crate is
//! the equivalent code-emission layer for the Rust reproduction: a small,
//! strict assembler over the instruction encodings shared with `beri-sim`
//! ([`beri_sim::decode`]), with:
//!
//! * labels and fixups (branches, jumps);
//! * one emitter method per implemented instruction, named after its
//!   mnemonic;
//! * pseudo-instructions (`li64`, `move_`, `b`, `nop`) and automatic
//!   delay-slot filling on the `*_` branch/jump convenience forms;
//! * a [`Program`] artifact that `cheri-os` can load.
//!
//! ## Example
//!
//! A loop that sums 1..=10, assembled and run on the simulator:
//!
//! ```
//! use beri_sim::{reg, Machine, MachineConfig, StepResult};
//! use cheri_asm::Asm;
//!
//! let mut a = Asm::new(0x1000);
//! let loop_top = a.new_label();
//! a.li64(reg::T0, 10); // counter
//! a.li64(reg::V0, 0); // sum
//! a.bind(loop_top)?;
//! a.daddu(reg::V0, reg::V0, reg::T0);
//! a.daddiu(reg::T0, reg::T0, -1);
//! a.bgtz(reg::T0, loop_top); // delay slot auto-filled with NOP
//! a.syscall(0);
//! let prog = a.finalize()?;
//!
//! let mut m = Machine::new(MachineConfig::default());
//! m.load_code(prog.base, &prog.words)?;
//! m.cpu.jump_to(prog.base);
//! while m.step()? == StepResult::Continue {}
//! assert_eq!(m.cpu.gpr[reg::V0 as usize], 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod asm;
mod error;
mod program;

pub use asm::{Asm, Label};
pub use error::AsmError;
pub use program::Program;

/// Re-exported register names, so assembler users need only this crate.
pub use beri_sim::reg;
