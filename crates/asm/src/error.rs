//! Assembler errors.

use core::fmt;

/// An error detected while assembling or finalising a program.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A label was used but never bound by the time of `finalize`.
    UnboundLabel {
        /// The label's internal id.
        label: usize,
    },
    /// A label was bound twice.
    DoubleBind {
        /// The label's internal id.
        label: usize,
    },
    /// A branch target is outside the signed 18-bit byte range.
    BranchOutOfRange {
        /// Instruction address of the branch.
        at: u64,
        /// Target address.
        target: u64,
    },
    /// A jump target is outside the 256 MB region of the jump.
    JumpOutOfRegion {
        /// Instruction address of the jump.
        at: u64,
        /// Target address.
        target: u64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label L{label} was never bound"),
            AsmError::DoubleBind { label } => write!(f, "label L{label} bound twice"),
            AsmError::BranchOutOfRange { at, target } => {
                write!(f, "branch at {at:#x} cannot reach {target:#x}")
            }
            AsmError::JumpOutOfRegion { at, target } => {
                write!(f, "jump at {at:#x} cannot reach {target:#x} (different 256MB region)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_label() {
        assert_eq!(AsmError::UnboundLabel { label: 3 }.to_string(), "label L3 was never bound");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(AsmError::DoubleBind { label: 0 });
        assert!(e.to_string().contains("twice"));
    }
}
