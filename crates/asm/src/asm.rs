//! The assembler: label management, fixups, and one emitter per
//! instruction.

use beri_sim::decode::encode;
use beri_sim::inst::{AluImmOp, AluOp, BranchCond, CheriInst, Inst, MulDivOp, ShiftOp, Width};
use beri_sim::reg;

use crate::error::AsmError;
use crate::program::Program;

/// A forward- or backward-referenced code location.
///
/// Create with [`Asm::new_label`], place with [`Asm::bind`], and use in
/// any branch/jump emitter. Labels are cheap copyable handles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Clone, Copy, Debug)]
enum FixupKind {
    /// 16-bit PC-relative branch offset (relative to the delay slot).
    Branch,
    /// 26-bit within-region jump index.
    Jump,
}

#[derive(Clone, Copy, Debug)]
struct Fixup {
    word_index: usize,
    label: Label,
    kind: FixupKind,
}

/// The macro-assembler.
///
/// Emitter methods are named after the mnemonic they emit (`daddu`,
/// `ld`, `clc`, ...; Rust keywords get a trailing underscore: `and_`,
/// `or_`, `break_`, `move_`). Control-flow emitters taking a [`Label`]
/// automatically append the mandatory delay-slot `NOP` (capability jumps
/// have no delay slot in this implementation and append nothing).
pub struct Asm {
    base: u64,
    words: Vec<u32>,
    labels: Vec<Option<u64>>,
    fixups: Vec<Fixup>,
    entry: Option<u64>,
}

impl Asm {
    /// Starts assembling at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is misaligned.
    #[must_use]
    pub fn new(base: u64) -> Asm {
        assert_eq!(base % 4, 0, "text base must be word-aligned");
        Asm { base, words: Vec::new(), labels: Vec::new(), fixups: Vec::new(), entry: None }
    }

    /// The address of the next instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> u64 {
        self.base + 4 * self.words.len() as u64
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// [`AsmError::DoubleBind`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::DoubleBind { label: label.0 });
        }
        *slot = Some(self.base + 4 * self.words.len() as u64);
        Ok(())
    }

    /// The address `label` is bound to, or `None` if it is still
    /// unbound. Lets callers (e.g. the compiler's symbol exporter) map
    /// labels back to addresses before finalizing.
    #[must_use]
    pub fn label_addr(&self, label: Label) -> Option<u64> {
        self.labels[label.0]
    }

    /// Marks the current position as the program entry point (defaults to
    /// `base`).
    pub fn set_entry_here(&mut self) {
        self.entry = Some(self.here());
    }

    /// Emits an already-constructed instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.words.push(encode(&inst));
    }

    /// Emits a raw word (e.g. data interleaved in text).
    pub fn emit_word(&mut self, word: u32) {
        self.words.push(word);
    }

    /// Resolves all fixups and produces the program image.
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`], [`AsmError::BranchOutOfRange`], or
    /// [`AsmError::JumpOutOfRegion`].
    pub fn finalize(mut self) -> Result<Program, AsmError> {
        for fix in &self.fixups {
            let target =
                self.labels[fix.label.0].ok_or(AsmError::UnboundLabel { label: fix.label.0 })?;
            let at = self.base + 4 * fix.word_index as u64;
            match fix.kind {
                FixupKind::Branch => {
                    let delay = at + 4;
                    let delta = target.wrapping_sub(delay) as i64;
                    let insts = delta >> 2;
                    if delta % 4 != 0 || insts < i64::from(i16::MIN) || insts > i64::from(i16::MAX)
                    {
                        return Err(AsmError::BranchOutOfRange { at, target });
                    }
                    let w = &mut self.words[fix.word_index];
                    *w = (*w & 0xffff_0000) | ((insts as u16) as u32);
                }
                FixupKind::Jump => {
                    let delay = at + 4;
                    if (target >> 28) != (delay >> 28) || target % 4 != 0 {
                        return Err(AsmError::JumpOutOfRegion { at, target });
                    }
                    let idx = ((target >> 2) & 0x03ff_ffff) as u32;
                    let w = &mut self.words[fix.word_index];
                    *w = (*w & 0xfc00_0000) | idx;
                }
            }
        }
        Ok(Program { base: self.base, words: self.words, entry: self.entry.unwrap_or(self.base) })
    }

    fn branch_to(&mut self, inst: Inst, label: Label) {
        self.fixups.push(Fixup { word_index: self.words.len(), label, kind: FixupKind::Branch });
        self.emit(inst);
        self.nop(); // mandatory delay slot
    }

    fn jump_to(&mut self, inst: Inst, label: Label) {
        self.fixups.push(Fixup { word_index: self.words.len(), label, kind: FixupKind::Jump });
        self.emit(inst);
        self.nop();
    }

    // --- pseudo-instructions ---------------------------------------------

    /// `NOP` (encoded as `SLL $0, $0, 0`).
    pub fn nop(&mut self) {
        self.emit(Inst::Shift { op: ShiftOp::Sll, rd: 0, rt: 0, shamt: 0 });
    }

    /// Register move (`DADDU rd, rs, $0`).
    pub fn move_(&mut self, rd: u8, rs: u8) {
        self.emit(Inst::Alu { op: AluOp::Daddu, rd, rs, rt: 0 });
    }

    /// Loads an arbitrary 64-bit constant using the shortest of the usual
    /// `DADDIU`/`ORI`/`LUI+ORI`/four-part sequences.
    pub fn li64(&mut self, rt: u8, value: i64) {
        let v = value as u64;
        if (-32768..32768).contains(&value) {
            self.emit(Inst::AluImm { op: AluImmOp::Daddiu, rt, rs: 0, imm: value as u16 });
        } else if v <= 0xffff {
            self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs: 0, imm: v as u16 });
        } else if i64::from(value as i32) == value {
            self.emit(Inst::Lui { rt, imm: (v >> 16) as u16 });
            if v & 0xffff != 0 {
                self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: v as u16 });
            }
        } else {
            self.emit(Inst::Lui { rt, imm: (v >> 48) as u16 });
            self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: (v >> 32) as u16 });
            self.emit(Inst::Shift { op: ShiftOp::Dsll, rd: rt, rt, shamt: 16 });
            self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: (v >> 16) as u16 });
            self.emit(Inst::Shift { op: ShiftOp::Dsll, rd: rt, rt, shamt: 16 });
            self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs: rt, imm: v as u16 });
        }
    }

    /// Unconditional branch to `label` (`BEQ $0, $0, label` + delay NOP).
    pub fn b(&mut self, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Eq, rs: 0, rt: 0, offset: 0 }, label);
    }

    // --- ALU ---------------------------------------------------------------

    /// `DADDU rd, rs, rt`.
    pub fn daddu(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Daddu, rd, rs, rt });
    }

    /// `DSUBU rd, rs, rt`.
    pub fn dsubu(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Dsubu, rd, rs, rt });
    }

    /// `ADDU rd, rs, rt` (32-bit, sign-extending).
    pub fn addu(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Addu, rd, rs, rt });
    }

    /// `AND rd, rs, rt`.
    pub fn and_(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::And, rd, rs, rt });
    }

    /// `OR rd, rs, rt`.
    pub fn or_(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Or, rd, rs, rt });
    }

    /// `XOR rd, rs, rt`.
    pub fn xor_(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Xor, rd, rs, rt });
    }

    /// `NOR rd, rs, rt`.
    pub fn nor_(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Nor, rd, rs, rt });
    }

    /// `SLT rd, rs, rt` (signed compare).
    pub fn slt(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Slt, rd, rs, rt });
    }

    /// `SLTU rd, rs, rt` (unsigned compare).
    pub fn sltu(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Sltu, rd, rs, rt });
    }

    /// `MOVZ rd, rs, rt` — `rd = rs` if `rt == 0`.
    pub fn movz(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Movz, rd, rs, rt });
    }

    /// `MOVN rd, rs, rt` — `rd = rs` if `rt != 0`.
    pub fn movn(&mut self, rd: u8, rs: u8, rt: u8) {
        self.emit(Inst::Alu { op: AluOp::Movn, rd, rs, rt });
    }

    /// `DADDIU rt, rs, imm`.
    pub fn daddiu(&mut self, rt: u8, rs: u8, imm: i16) {
        self.emit(Inst::AluImm { op: AluImmOp::Daddiu, rt, rs, imm: imm as u16 });
    }

    /// `ADDIU rt, rs, imm` (32-bit).
    pub fn addiu(&mut self, rt: u8, rs: u8, imm: i16) {
        self.emit(Inst::AluImm { op: AluImmOp::Addiu, rt, rs, imm: imm as u16 });
    }

    /// `ANDI rt, rs, imm` (zero-extended).
    pub fn andi(&mut self, rt: u8, rs: u8, imm: u16) {
        self.emit(Inst::AluImm { op: AluImmOp::Andi, rt, rs, imm });
    }

    /// `ORI rt, rs, imm` (zero-extended).
    pub fn ori(&mut self, rt: u8, rs: u8, imm: u16) {
        self.emit(Inst::AluImm { op: AluImmOp::Ori, rt, rs, imm });
    }

    /// `XORI rt, rs, imm` (zero-extended).
    pub fn xori(&mut self, rt: u8, rs: u8, imm: u16) {
        self.emit(Inst::AluImm { op: AluImmOp::Xori, rt, rs, imm });
    }

    /// `SLTI rt, rs, imm`.
    pub fn slti(&mut self, rt: u8, rs: u8, imm: i16) {
        self.emit(Inst::AluImm { op: AluImmOp::Slti, rt, rs, imm: imm as u16 });
    }

    /// `SLTIU rt, rs, imm`.
    pub fn sltiu(&mut self, rt: u8, rs: u8, imm: i16) {
        self.emit(Inst::AluImm { op: AluImmOp::Sltiu, rt, rs, imm: imm as u16 });
    }

    /// `LUI rt, imm`.
    pub fn lui(&mut self, rt: u8, imm: u16) {
        self.emit(Inst::Lui { rt, imm });
    }

    /// `DSLL rd, rt, shamt` (shamt 0–31).
    pub fn dsll(&mut self, rd: u8, rt: u8, shamt: u8) {
        self.emit(Inst::Shift { op: ShiftOp::Dsll, rd, rt, shamt });
    }

    /// `DSRL rd, rt, shamt`.
    pub fn dsrl(&mut self, rd: u8, rt: u8, shamt: u8) {
        self.emit(Inst::Shift { op: ShiftOp::Dsrl, rd, rt, shamt });
    }

    /// `DSRA rd, rt, shamt`.
    pub fn dsra(&mut self, rd: u8, rt: u8, shamt: u8) {
        self.emit(Inst::Shift { op: ShiftOp::Dsra, rd, rt, shamt });
    }

    /// `DSLL32 rd, rt, shamt` (shift by `shamt + 32`).
    pub fn dsll32(&mut self, rd: u8, rt: u8, shamt: u8) {
        self.emit(Inst::Shift { op: ShiftOp::Dsll32, rd, rt, shamt });
    }

    /// `SLL rd, rt, shamt` (32-bit).
    pub fn sll(&mut self, rd: u8, rt: u8, shamt: u8) {
        self.emit(Inst::Shift { op: ShiftOp::Sll, rd, rt, shamt });
    }

    /// `DSLLV rd, rt, rs` (variable 64-bit shift).
    pub fn dsllv(&mut self, rd: u8, rt: u8, rs: u8) {
        self.emit(Inst::ShiftV { op: ShiftOp::Dsll, rd, rt, rs });
    }

    /// `DSRLV rd, rt, rs`.
    pub fn dsrlv(&mut self, rd: u8, rt: u8, rs: u8) {
        self.emit(Inst::ShiftV { op: ShiftOp::Dsrl, rd, rt, rs });
    }

    /// `DMULTU rs, rt` (HI/LO result).
    pub fn dmultu(&mut self, rs: u8, rt: u8) {
        self.emit(Inst::MulDiv { op: MulDivOp::Dmultu, rs, rt });
    }

    /// `DMULT rs, rt`.
    pub fn dmult(&mut self, rs: u8, rt: u8) {
        self.emit(Inst::MulDiv { op: MulDivOp::Dmult, rs, rt });
    }

    /// `DDIVU rs, rt`.
    pub fn ddivu(&mut self, rs: u8, rt: u8) {
        self.emit(Inst::MulDiv { op: MulDivOp::Ddivu, rs, rt });
    }

    /// `DDIV rs, rt`.
    pub fn ddiv(&mut self, rs: u8, rt: u8) {
        self.emit(Inst::MulDiv { op: MulDivOp::Ddiv, rs, rt });
    }

    /// `MFLO rd`.
    pub fn mflo(&mut self, rd: u8) {
        self.emit(Inst::Mflo { rd });
    }

    /// `MFHI rd`.
    pub fn mfhi(&mut self, rd: u8) {
        self.emit(Inst::Mfhi { rd });
    }

    // --- branches and jumps -------------------------------------------------

    /// `BEQ rs, rt, label` (+ delay NOP).
    pub fn beq(&mut self, rs: u8, rt: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Eq, rs, rt, offset: 0 }, label);
    }

    /// `BNE rs, rt, label` (+ delay NOP).
    pub fn bne(&mut self, rs: u8, rt: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Ne, rs, rt, offset: 0 }, label);
    }

    /// `BLEZ rs, label` (+ delay NOP).
    pub fn blez(&mut self, rs: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Lez, rs, rt: 0, offset: 0 }, label);
    }

    /// `BGTZ rs, label` (+ delay NOP).
    pub fn bgtz(&mut self, rs: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Gtz, rs, rt: 0, offset: 0 }, label);
    }

    /// `BLTZ rs, label` (+ delay NOP).
    pub fn bltz(&mut self, rs: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Ltz, rs, rt: 0, offset: 0 }, label);
    }

    /// `BGEZ rs, label` (+ delay NOP).
    pub fn bgez(&mut self, rs: u8, label: Label) {
        self.branch_to(Inst::Branch { cond: BranchCond::Gez, rs, rt: 0, offset: 0 }, label);
    }

    /// `J label` (+ delay NOP).
    pub fn j(&mut self, label: Label) {
        self.jump_to(Inst::J { target: 0 }, label);
    }

    /// `JAL label` (+ delay NOP).
    pub fn jal(&mut self, label: Label) {
        self.jump_to(Inst::Jal { target: 0 }, label);
    }

    /// `JR rs` (+ delay NOP).
    pub fn jr(&mut self, rs: u8) {
        self.emit(Inst::Jr { rs });
        self.nop();
    }

    /// `JR $ra` (+ delay NOP) — function return.
    pub fn ret(&mut self) {
        self.jr(reg::RA);
    }

    /// `JALR rd, rs` (+ delay NOP).
    pub fn jalr(&mut self, rd: u8, rs: u8) {
        self.emit(Inst::Jalr { rd, rs });
        self.nop();
    }

    /// `SYSCALL code`.
    pub fn syscall(&mut self, code: u32) {
        self.emit(Inst::Syscall { code });
    }

    /// `BREAK code`.
    pub fn break_(&mut self, code: u32) {
        self.emit(Inst::Break { code });
    }

    // --- legacy memory -------------------------------------------------------

    /// `LD rt, imm(base)`.
    pub fn ld(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Double, rt, base, imm, unsigned: false });
    }

    /// `LW rt, imm(base)`.
    pub fn lw(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Word, rt, base, imm, unsigned: false });
    }

    /// `LWU rt, imm(base)`.
    pub fn lwu(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Word, rt, base, imm, unsigned: true });
    }

    /// `LH rt, imm(base)`.
    pub fn lh(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Half, rt, base, imm, unsigned: false });
    }

    /// `LHU rt, imm(base)`.
    pub fn lhu(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Half, rt, base, imm, unsigned: true });
    }

    /// `LB rt, imm(base)`.
    pub fn lb(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Byte, rt, base, imm, unsigned: false });
    }

    /// `LBU rt, imm(base)`.
    pub fn lbu(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Load { width: Width::Byte, rt, base, imm, unsigned: true });
    }

    /// `SD rt, imm(base)`.
    pub fn sd(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Store { width: Width::Double, rt, base, imm });
    }

    /// `SW rt, imm(base)`.
    pub fn sw(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Store { width: Width::Word, rt, base, imm });
    }

    /// `SH rt, imm(base)`.
    pub fn sh(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Store { width: Width::Half, rt, base, imm });
    }

    /// `SB rt, imm(base)`.
    pub fn sb(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::Store { width: Width::Byte, rt, base, imm });
    }

    /// `LLD rt, imm(base)`.
    pub fn lld(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::LoadLinked { width: Width::Double, rt, base, imm });
    }

    /// `SCD rt, imm(base)`.
    pub fn scd(&mut self, rt: u8, base: u8, imm: i16) {
        self.emit(Inst::StoreCond { width: Width::Double, rt, base, imm });
    }

    // --- CHERI (Table 1) ------------------------------------------------------

    /// `CGetBase rd, cb`.
    pub fn cgetbase(&mut self, rd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CGetBase { rd, cb }));
    }

    /// `CGetLen rd, cb`.
    pub fn cgetlen(&mut self, rd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CGetLen { rd, cb }));
    }

    /// `CGetTag rd, cb`.
    pub fn cgettag(&mut self, rd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CGetTag { rd, cb }));
    }

    /// `CGetPerm rd, cb`.
    pub fn cgetperm(&mut self, rd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CGetPerm { rd, cb }));
    }

    /// `CGetPCC rd, cd`.
    pub fn cgetpcc(&mut self, rd: u8, cd: u8) {
        self.emit(Inst::Cheri(CheriInst::CGetPCC { rd, cd }));
    }

    /// `CIncBase cd, cb, rt`.
    pub fn cincbase(&mut self, cd: u8, cb: u8, rt: u8) {
        self.emit(Inst::Cheri(CheriInst::CIncBase { cd, cb, rt }));
    }

    /// `CSetLen cd, cb, rt`.
    pub fn csetlen(&mut self, cd: u8, cb: u8, rt: u8) {
        self.emit(Inst::Cheri(CheriInst::CSetLen { cd, cb, rt }));
    }

    /// `CClearTag cd, cb`.
    pub fn ccleartag(&mut self, cd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CClearTag { cd, cb }));
    }

    /// `CAndPerm cd, cb, rt`.
    pub fn candperm(&mut self, cd: u8, cb: u8, rt: u8) {
        self.emit(Inst::Cheri(CheriInst::CAndPerm { cd, cb, rt }));
    }

    /// `CToPtr rd, cb, ct`.
    pub fn ctoptr(&mut self, rd: u8, cb: u8, ct: u8) {
        self.emit(Inst::Cheri(CheriInst::CToPtr { rd, cb, ct }));
    }

    /// `CFromPtr cd, cb, rt`.
    pub fn cfromptr(&mut self, cd: u8, cb: u8, rt: u8) {
        self.emit(Inst::Cheri(CheriInst::CFromPtr { cd, cb, rt }));
    }

    /// `CBTU cb, label` (+ delay NOP).
    pub fn cbtu(&mut self, cb: u8, label: Label) {
        self.branch_to(Inst::Cheri(CheriInst::CBTU { cb, offset: 0 }), label);
    }

    /// `CBTS cb, label` (+ delay NOP).
    pub fn cbts(&mut self, cb: u8, label: Label) {
        self.branch_to(Inst::Cheri(CheriInst::CBTS { cb, offset: 0 }), label);
    }

    /// `CLC cd, rt, imm32(cb)` — `imm` in 32-byte units.
    pub fn clc(&mut self, cd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLC { cd, cb, rt, imm }));
    }

    /// `CSC cs, rt, imm32(cb)`.
    pub fn csc(&mut self, cs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CSC { cs, cb, rt, imm }));
    }

    /// `CLD rd, rt, imm8(cb)` — `imm` in 8-byte units.
    pub fn cld(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLoad {
            width: Width::Double,
            rd,
            cb,
            rt,
            imm,
            unsigned: false,
        }));
    }

    /// `CLW rd, rt, imm4(cb)`.
    pub fn clw(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLoad {
            width: Width::Word,
            rd,
            cb,
            rt,
            imm,
            unsigned: false,
        }));
    }

    /// `CLWU rd, rt, imm4(cb)`.
    pub fn clwu(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLoad {
            width: Width::Word,
            rd,
            cb,
            rt,
            imm,
            unsigned: true,
        }));
    }

    /// `CLHU rd, rt, imm2(cb)`.
    pub fn clhu(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLoad {
            width: Width::Half,
            rd,
            cb,
            rt,
            imm,
            unsigned: true,
        }));
    }

    /// `CLBU rd, rt, imm1(cb)`.
    pub fn clbu(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLoad {
            width: Width::Byte,
            rd,
            cb,
            rt,
            imm,
            unsigned: true,
        }));
    }

    /// `CSD rs, rt, imm8(cb)`.
    pub fn csd(&mut self, rs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CStore { width: Width::Double, rs, cb, rt, imm }));
    }

    /// `CSW rs, rt, imm4(cb)`.
    pub fn csw(&mut self, rs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CStore { width: Width::Word, rs, cb, rt, imm }));
    }

    /// `CSH rs, rt, imm2(cb)`.
    pub fn csh(&mut self, rs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CStore { width: Width::Half, rs, cb, rt, imm }));
    }

    /// `CSB rs, rt, imm1(cb)`.
    pub fn csb(&mut self, rs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CStore { width: Width::Byte, rs, cb, rt, imm }));
    }

    /// `CLLD rd, rt, imm8(cb)`.
    pub fn clld(&mut self, rd: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CLLD { rd, cb, rt, imm }));
    }

    /// `CSCD rs, rt, imm8(cb)`.
    pub fn cscd(&mut self, rs: u8, rt: u8, imm: i8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CSCD { rs, cb, rt, imm }));
    }

    /// `CJR cb` (no delay slot).
    pub fn cjr(&mut self, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CJR { cb }));
    }

    /// `CJALR cd, cb` (no delay slot).
    pub fn cjalr(&mut self, cd: u8, cb: u8) {
        self.emit(Inst::Cheri(CheriInst::CJALR { cd, cb }));
    }
}

impl core::fmt::Debug for Asm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Asm({} words at {:#x}, {} labels, {} fixups pending)",
            self.words.len(),
            self.base,
            self.labels.len(),
            self.fixups.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beri_sim::{Machine, MachineConfig, StepResult};

    fn run(prog: &Program) -> Machine {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        m.load_code(prog.base, &prog.words).unwrap();
        m.cpu.jump_to(prog.entry);
        loop {
            match m.step().unwrap() {
                StepResult::Continue => {}
                StepResult::Syscall => break,
                other => panic!("program failed: {other:?}\n{}", prog.disassemble()),
            }
        }
        m
    }

    #[test]
    fn li64_all_ranges() {
        for v in [
            0i64,
            1,
            -1,
            32767,
            -32768,
            65535,
            0x12345,
            -0x12345,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0,
            -0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
        ] {
            let mut a = Asm::new(0x1000);
            a.li64(reg::V0, v);
            a.syscall(0);
            let m = run(&a.finalize().unwrap());
            assert_eq!(m.cpu.gpr[reg::V0 as usize] as i64, v, "li64({v:#x})");
        }
    }

    #[test]
    fn backward_branch_loop() {
        let mut a = Asm::new(0x1000);
        let top = a.new_label();
        a.li64(reg::T0, 5);
        a.li64(reg::V0, 0);
        a.bind(top).unwrap();
        a.daddiu(reg::V0, reg::V0, 3);
        a.daddiu(reg::T0, reg::T0, -1);
        a.bgtz(reg::T0, top);
        a.syscall(0);
        let m = run(&a.finalize().unwrap());
        assert_eq!(m.cpu.gpr[reg::V0 as usize], 15);
    }

    #[test]
    fn forward_branch_skips() {
        let mut a = Asm::new(0x1000);
        let done = a.new_label();
        a.li64(reg::V0, 1);
        a.b(done);
        a.li64(reg::V0, 99); // skipped
        a.bind(done).unwrap();
        a.syscall(0);
        let m = run(&a.finalize().unwrap());
        assert_eq!(m.cpu.gpr[reg::V0 as usize], 1);
    }

    #[test]
    fn call_and_return_via_jal() {
        let mut a = Asm::new(0x1000);
        let f = a.new_label();
        let main = a.new_label();
        // function f: v0 = a0 * 2; return
        a.bind(f).unwrap();
        a.daddu(reg::V0, reg::A0, reg::A0);
        a.ret();
        a.bind(main).unwrap();
        a.set_entry_here();
        a.li64(reg::A0, 21);
        a.jal(f);
        a.syscall(0);
        let m = run(&a.finalize().unwrap());
        assert_eq!(m.cpu.gpr[reg::V0 as usize], 42);
    }

    #[test]
    fn recursive_factorial_with_stack() {
        // fact(n): if n <= 1 return 1 else return n * fact(n-1)
        let mut a = Asm::new(0x1000);
        let fact = a.new_label();
        let base_case = a.new_label();
        let main = a.new_label();
        a.bind(fact).unwrap();
        a.blez(reg::A0, base_case);
        a.daddiu(reg::SP, reg::SP, -16);
        a.sd(reg::RA, reg::SP, 0);
        a.sd(reg::A0, reg::SP, 8);
        a.daddiu(reg::A0, reg::A0, -1);
        a.jal(fact);
        a.ld(reg::A0, reg::SP, 8);
        a.ld(reg::RA, reg::SP, 0);
        a.daddiu(reg::SP, reg::SP, 16);
        a.dmultu(reg::V0, reg::A0);
        a.mflo(reg::V0);
        a.ret();
        a.bind(base_case).unwrap();
        a.li64(reg::V0, 1);
        a.ret();
        a.bind(main).unwrap();
        a.set_entry_here();
        a.li64(reg::SP, 0x8_0000);
        a.li64(reg::A0, 6);
        a.jal(fact);
        a.syscall(0);
        let m = run(&a.finalize().unwrap());
        assert_eq!(m.cpu.gpr[reg::V0 as usize], 720);
    }

    #[test]
    fn cheri_bounds_catch_in_assembled_code() {
        let mut a = Asm::new(0x1000);
        a.li64(reg::T0, 0x4000);
        a.li64(reg::T1, 16);
        a.cincbase(1, 0, reg::T0);
        a.csetlen(1, 1, reg::T1);
        a.li64(reg::T2, 16); // offset: first out-of-bounds byte
        a.cld(reg::V0, reg::T2, 0, 1);
        a.syscall(0);
        let prog = a.finalize().unwrap();
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        m.load_code(prog.base, &prog.words).unwrap();
        m.cpu.jump_to(prog.entry);
        let r = loop {
            match m.step().unwrap() {
                StepResult::Continue => {}
                other => break other,
            }
        };
        assert!(matches!(r, StepResult::Trap(_)), "expected a capability trap, got {r:?}");
    }

    #[test]
    fn unbound_label_detected() {
        let mut a = Asm::new(0x1000);
        let l = a.new_label();
        a.b(l);
        assert!(matches!(a.finalize(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn double_bind_detected() {
        let mut a = Asm::new(0x1000);
        let l = a.new_label();
        a.bind(l).unwrap();
        assert_eq!(a.bind(l), Err(AsmError::DoubleBind { label: 0 }));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut a = Asm::new(0x1000);
        let far = a.new_label();
        a.b(far);
        for _ in 0..40000 {
            a.nop();
        }
        a.bind(far).unwrap();
        assert!(matches!(a.finalize(), Err(AsmError::BranchOutOfRange { .. })));
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(0x1000);
        assert_eq!(a.here(), 0x1000);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 0x1008);
    }
}
