//! The assembled artifact.

use beri_sim::decode::decode;
use core::fmt;

/// A finalised program image: a base address, its instruction words, and
/// the entry point.
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    /// Load (and link) address of the first word.
    pub base: u64,
    /// Instruction words in program order.
    pub words: Vec<u32>,
    /// Entry PC (equal to `base` unless an entry label was set).
    pub entry: u64,
}

impl Program {
    /// Size of the text image in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 4
    }

    /// One-line-per-instruction disassembly (round-tripping through the
    /// simulator's decoder), for debugging generated code.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for (i, w) in self.words.iter().enumerate() {
            let addr = self.base + 4 * i as u64;
            let _ = writeln!(out, "{addr:#010x}: {w:08x}  {:?}", decode(*w));
        }
        out
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Program({} words at {:#x}, entry {:#x})",
            self.words.len(),
            self.base,
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_debug() {
        let p = Program { base: 0x1000, words: vec![0, 0, 0], entry: 0x1000 };
        assert_eq!(p.size_bytes(), 12);
        assert!(format!("{p:?}").contains("3 words"));
    }

    #[test]
    fn disassemble_lists_addresses() {
        let p = Program { base: 0x1000, words: vec![0x3402_002a], entry: 0x1000 };
        let d = p.disassemble();
        assert!(d.contains("0x00001000"));
        assert!(d.contains("Ori"));
    }
}
