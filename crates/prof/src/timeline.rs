//! Timeline export in the Chrome trace-event JSON format (the
//! `traceEvents` array form), loadable by Perfetto and `chrome://
//! tracing`. Timestamps are guest cycle counts — deterministic and
//! monotone — rather than host microseconds, so two runs of the same
//! job produce byte-identical timelines.

use cheri_trace::json::JsonWriter;

/// The Chrome trace-event phase of one timeline entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelinePhase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Complete event with a duration (`"X"`).
    Complete,
    /// Instant event (`"i"`).
    Instant,
}

impl TimelinePhase {
    fn ph(self) -> &'static str {
        match self {
            TimelinePhase::Begin => "B",
            TimelinePhase::End => "E",
            TimelinePhase::Complete => "X",
            TimelinePhase::Instant => "i",
        }
    }
}

/// One timeline entry.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Event phase.
    pub phase: TimelinePhase,
    /// Event name (`"phase 2"`, `"syscall 4"`, …).
    pub name: String,
    /// Category (`"phase"`, `"syscall"`, `"domain"`, `"os"`).
    pub cat: &'static str,
    /// Timestamp in guest cycles.
    pub ts: u64,
    /// Duration in guest cycles (complete events only).
    pub dur: u64,
}

/// An append-only timeline; events arrive in execution order, so
/// timestamps are monotone non-decreasing by construction.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Opens a span.
    pub fn begin(&mut self, cat: &'static str, name: String, ts: u64) {
        self.events.push(TimelineEvent { phase: TimelinePhase::Begin, name, cat, ts, dur: 0 });
    }

    /// Closes a span.
    pub fn end(&mut self, cat: &'static str, name: String, ts: u64) {
        self.events.push(TimelineEvent { phase: TimelinePhase::End, name, cat, ts, dur: 0 });
    }

    /// Records a complete event (begin + duration in one entry).
    pub fn complete(&mut self, cat: &'static str, name: String, ts: u64, dur: u64) {
        self.events.push(TimelineEvent { phase: TimelinePhase::Complete, name, cat, ts, dur });
    }

    /// Records an instant event.
    pub fn instant(&mut self, cat: &'static str, name: String, ts: u64) {
        self.events.push(TimelineEvent { phase: TimelinePhase::Instant, name, cat, ts, dur: 0 });
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Drops every event.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Serialises the timeline as a Chrome trace-event document:
    /// `{"traceEvents":[...]}` with integer cycle timestamps.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut items = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                items.push(',');
            }
            let mut w = JsonWriter::object();
            w.str_field("name", &e.name);
            w.str_field("cat", e.cat);
            w.str_field("ph", e.phase.ph());
            w.u64_field("ts", e.ts);
            if e.phase == TimelinePhase::Complete {
                w.u64_field("dur", e.dur);
            }
            w.u64_field("pid", 1);
            w.u64_field("tid", 1);
            items.push_str(&w.close());
        }
        items.push(']');
        let mut doc = JsonWriter::object();
        doc.raw_field("traceEvents", &items);
        doc.str_field("displayTimeUnit", "ns");
        doc.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_trace::json;

    #[test]
    fn timeline_json_parses_and_keeps_order() {
        let mut t = Timeline::default();
        t.instant("os", "exec".into(), 0);
        t.begin("phase", "phase 1".into(), 10);
        t.complete("syscall", "syscall 4".into(), 15, 120);
        t.end("phase", "phase 1".into(), 200);
        let doc = json::parse(&t.to_json()).expect("valid JSON");
        let events = doc.as_obj().unwrap()["traceEvents"].as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let ts: Vec<u64> =
            events.iter().map(|e| e.as_obj().unwrap()["ts"].as_u64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotone");
        assert_eq!(events[2].as_obj().unwrap()["dur"].as_u64(), Some(120));
        assert_eq!(events[1].as_obj().unwrap()["ph"].as_str(), Some("B"));
    }
}
