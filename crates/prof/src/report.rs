//! The finished profile: per-function aggregation of the per-PC
//! histograms, folded-stack output for flamegraph tools, and the
//! timeline — plus deterministic JSON serialisation for
//! `results/prof/`.

use cheri_trace::json::JsonWriter;

use crate::timeline::Timeline;
use crate::PcCounters;

/// One function's aggregated counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncProfile {
    /// Function name (`<unknown>` for unsymbolized addresses).
    pub name: String,
    /// Summed per-PC counters over the function's range.
    pub counters: PcCounters,
}

/// A complete, immutable profile of one run.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Totals over every profiled PC.
    pub total: PcCounters,
    /// Per-function aggregation, sorted by retired count (descending),
    /// then name — a deterministic "hottest first" order.
    pub functions: Vec<FuncProfile>,
    /// Folded call stacks (`root;a;b` → samples), sorted by stack
    /// string. Sample counts sum to `total.retired`.
    pub folded: Vec<(String, u64)>,
    /// The execution timeline (phases, syscalls, domain crossings,
    /// context switches).
    pub timeline: Timeline,
}

impl ProfileReport {
    /// Renders the folded stacks in the standard flamegraph collapsed
    /// format: one `stack count` line per unique stack.
    #[must_use]
    pub fn folded_output(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// The Chrome trace-event / Perfetto timeline document.
    #[must_use]
    pub fn timeline_json(&self) -> String {
        self.timeline.to_json()
    }

    /// Serialises the attribution tables (totals + per-function) as one
    /// compact JSON object. Integer-only, deterministic field order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counters_json = |c: &PcCounters| {
            let mut w = JsonWriter::object();
            w.u64_field("retired", c.retired);
            w.u64_field("l1i_misses", c.l1i_misses);
            w.u64_field("l1d_misses", c.l1d_misses);
            w.u64_field("l2_misses", c.l2_misses);
            w.u64_field("tag_misses", c.tag_misses);
            w.u64_field("tlb_refills", c.tlb_refills);
            w.u64_field("cap_exceptions", c.cap_exceptions);
            w.close()
        };
        let mut funcs = String::from("[");
        for (i, f) in self.functions.iter().enumerate() {
            if i > 0 {
                funcs.push(',');
            }
            let mut w = JsonWriter::object();
            w.str_field("name", &f.name);
            w.raw_field("counters", &counters_json(&f.counters));
            funcs.push_str(&w.close());
        }
        funcs.push(']');
        let mut doc = JsonWriter::object();
        doc.str_field("schema", "cheri-prof/v1");
        doc.raw_field("total", &counters_json(&self.total));
        doc.raw_field("functions", &funcs);
        doc.u64_field("timeline_events", self.timeline.events().len() as u64);
        doc.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_trace::json;

    #[test]
    fn report_json_parses_and_names_survive_escaping() {
        let report = ProfileReport {
            total: PcCounters { retired: 7, ..PcCounters::default() },
            functions: vec![FuncProfile {
                name: "weird\"name".into(),
                counters: PcCounters { retired: 7, l1d_misses: 2, ..PcCounters::default() },
            }],
            folded: vec![("root;weird\"name".into(), 7)],
            timeline: Timeline::default(),
        };
        let doc = json::parse(&report.to_json()).expect("valid JSON");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["total"].as_obj().unwrap()["retired"].as_u64(), Some(7));
        let funcs = obj["functions"].as_arr().unwrap();
        assert_eq!(funcs[0].as_obj().unwrap()["name"].as_str(), Some("weird\"name"));
        assert_eq!(report.folded_output(), "root;weird\"name 7\n");
    }
}
