//! Function symbolization: name → PC-range maps exported by the
//! compiler (`cheri_cc::compile_with_symbols`) so per-PC profiles
//! aggregate to functions and call stacks render as names.

/// One function symbol: `[start, end)` in guest virtual addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolDef {
    /// The function name (`_start` for the entry/trap stub region).
    pub name: String,
    /// First instruction address.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
}

/// The id used for addresses no symbol covers.
pub const UNKNOWN_SYM: u32 = u32::MAX;

/// An ordered, non-overlapping symbol map with binary-search lookup.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    syms: Vec<SymbolDef>,
}

impl SymbolTable {
    /// Builds a table, sorting the definitions by start address.
    /// Zero-length and inverted ranges are dropped.
    #[must_use]
    pub fn new(mut syms: Vec<SymbolDef>) -> SymbolTable {
        syms.retain(|s| s.start < s.end);
        syms.sort_by_key(|s| s.start);
        SymbolTable { syms }
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The symbol id covering `pc`, or [`UNKNOWN_SYM`].
    #[must_use]
    pub fn lookup(&self, pc: u64) -> u32 {
        let i = self.syms.partition_point(|s| s.start <= pc);
        if i == 0 {
            return UNKNOWN_SYM;
        }
        let s = &self.syms[i - 1];
        if pc < s.end {
            (i - 1) as u32
        } else {
            UNKNOWN_SYM
        }
    }

    /// The name of symbol `id` (`<unknown>` for [`UNKNOWN_SYM`] or an
    /// out-of-range id).
    #[must_use]
    pub fn name(&self, id: u32) -> &str {
        self.syms.get(id as usize).map_or("<unknown>", |s| s.name.as_str())
    }

    /// The definitions, in address order.
    #[must_use]
    pub fn defs(&self) -> &[SymbolDef] {
        &self.syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new(vec![
            SymbolDef { name: "main".into(), start: 0x2000, end: 0x2100 },
            SymbolDef { name: "_start".into(), start: 0x1000, end: 0x2000 },
            SymbolDef { name: "leaf".into(), start: 0x2100, end: 0x2140 },
        ])
    }

    #[test]
    fn lookup_covers_ranges_and_gaps() {
        let t = table();
        assert_eq!(t.name(t.lookup(0x1000)), "_start");
        assert_eq!(t.name(t.lookup(0x1ffc)), "_start");
        assert_eq!(t.name(t.lookup(0x2000)), "main");
        assert_eq!(t.name(t.lookup(0x20fc)), "main");
        assert_eq!(t.name(t.lookup(0x2100)), "leaf");
        assert_eq!(t.lookup(0x0ffc), UNKNOWN_SYM);
        assert_eq!(t.lookup(0x2140), UNKNOWN_SYM);
        assert_eq!(t.name(UNKNOWN_SYM), "<unknown>");
    }

    #[test]
    fn degenerate_ranges_are_dropped() {
        let t = SymbolTable::new(vec![SymbolDef { name: "nil".into(), start: 8, end: 8 }]);
        assert!(t.is_empty());
        assert_eq!(t.lookup(8), UNKNOWN_SYM);
    }
}
