//! # cheri-prof — guest-side profiling for the CHERI reproduction
//!
//! The sweep reports say *how much* overhead a pointer strategy pays;
//! this crate says *where*. A [`Profiler`] attached to a
//! `beri_sim::Machine` (via `Machine::set_profiler`) collects:
//!
//! * **per-PC attribution** — exact histograms of retired
//!   instructions, L1I/L1D/L2 misses, tag-cache misses, TLB refills,
//!   and capability exceptions, keyed by guest PC. Cache misses are
//!   attributed by *delta sampling*: the machine hands the profiler the
//!   global miss counters at every retire, and the deltas since the
//!   previous retire are charged to the retiring instruction — so the
//!   per-PC sums equal the global counters by construction;
//! * **synthetic call stacks** — pushes at `jal`/`jalr`/`cjalr`
//!   retires, pops at `jr $ra`/`cjr`, with every retired instruction
//!   counted against the current stack. The result folds into the
//!   standard flamegraph collapsed format ([`ProfileReport::folded_output`]),
//!   and the folded sample counts sum to total retired instructions;
//! * **a timeline** — kernel phases, syscalls, domain crossings, and
//!   context switches as Chrome trace-event / Perfetto JSON
//!   ([`Timeline::to_json`]), timestamped in guest cycles.
//!
//! ## Transparency
//!
//! The profiler is host-side observation only: it never feeds back into
//! architectural state, cycle accounting, or the event stream, and it
//! is *not* a trace sink — attaching it does not disable the simulator's
//! predecoded-block fast path. Sweep reports are byte-identical with
//! profiling on or off (`xsweep --prof` asserts this in-process;
//! `crates/sim/tests/prof_transparency.rs` proves it on random
//! programs).
//!
//! ## Snapshots
//!
//! Profile state is never serialized into `cheri-snap` snapshots. On
//! `Machine::restore` the machine resets its profiler ([`Profiler::reset`])
//! and reseeds the delta-sampling baseline from the restored counters,
//! so attribution stays exact across a restore.

// Library paths must report errors, not abort (workspace convention).
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::collections::{BTreeMap, HashMap};

mod report;
mod symbols;
mod timeline;

pub use report::{FuncProfile, ProfileReport};
pub use symbols::{SymbolDef, SymbolTable, UNKNOWN_SYM};
pub use timeline::{Timeline, TimelineEvent, TimelinePhase};

/// A point-in-time copy of the machine's global miss counters, taken at
/// every retire. The profiler charges the delta since the previous
/// sample to the retiring PC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// `hierarchy.l1i.misses`.
    pub l1i_misses: u64,
    /// `hierarchy.l1d.misses`.
    pub l1d_misses: u64,
    /// `hierarchy.l2.misses`.
    pub l2_misses: u64,
    /// The host-side tag-miss tick (see `TagController::set_miss_probe`)
    /// — monotone for the lifetime of the probe, unaffected by snapshot
    /// restores.
    pub tag_misses: u64,
}

/// Everything attributed to one guest PC (or one function, after
/// aggregation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Instructions retired at this PC.
    pub retired: u64,
    /// L1 instruction-cache misses charged to this PC.
    pub l1i_misses: u64,
    /// L1 data-cache misses charged to this PC.
    pub l1d_misses: u64,
    /// Unified L2 misses charged to this PC.
    pub l2_misses: u64,
    /// Tag-cache misses charged to this PC.
    pub tag_misses: u64,
    /// TLB refill exceptions taken at this PC.
    pub tlb_refills: u64,
    /// Capability exceptions raised at this PC.
    pub cap_exceptions: u64,
}

impl PcCounters {
    fn absorb(&mut self, other: &PcCounters) {
        self.retired += other.retired;
        self.l1i_misses += other.l1i_misses;
        self.l1d_misses += other.l1d_misses;
        self.l2_misses += other.l2_misses;
        self.tag_misses += other.tag_misses;
        self.tlb_refills += other.tlb_refills;
        self.cap_exceptions += other.cap_exceptions;
    }
}

/// The live profiler. Owned by the machine while attached
/// (`Machine::set_profiler`); recovered with `Machine::take_profiler`
/// and finished into a [`ProfileReport`] via [`Profiler::into_report`].
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    pcs: HashMap<u64, PcCounters>,
    last: CounterSample,
    last_pc: Option<u64>,
    total_retired: u64,
    symbols: SymbolTable,
    /// Current synthetic call stack, as symbol ids (callees of callees
    /// of the root frame).
    stack: Vec<u32>,
    /// Retires at the current stack not yet flushed into `folded`.
    pending: u64,
    folded: BTreeMap<Vec<u32>, u64>,
    timeline: Timeline,
    /// Kernel-phase span currently open on the timeline.
    open_phase: Option<u64>,
    /// Domain-crossing spans currently open on the timeline.
    open_domains: Vec<u64>,
}

impl Profiler {
    /// A fresh profiler with no symbol map.
    #[must_use]
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Installs the symbol map used for stack frames and function
    /// aggregation.
    pub fn set_symbols(&mut self, symbols: SymbolTable) {
        self.symbols = symbols;
    }

    /// The installed symbol map.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Seeds the delta-sampling baseline (called by the machine when
    /// the profiler is attached, and again after a snapshot restore).
    pub fn seed(&mut self, now: CounterSample) {
        self.last = now;
    }

    // --- hot path (called by the machine at every retire) ---------------

    /// Records one retired instruction at `pc`, charging the miss-count
    /// deltas since the previous retire to it.
    #[inline]
    pub fn on_retire(&mut self, pc: u64, now: CounterSample) {
        let c = self.pcs.entry(pc).or_default();
        c.retired += 1;
        c.l1i_misses += now.l1i_misses.wrapping_sub(self.last.l1i_misses);
        c.l1d_misses += now.l1d_misses.wrapping_sub(self.last.l1d_misses);
        c.l2_misses += now.l2_misses.wrapping_sub(self.last.l2_misses);
        c.tag_misses += now.tag_misses.wrapping_sub(self.last.tag_misses);
        self.last = now;
        self.last_pc = Some(pc);
        self.total_retired += 1;
        self.pending += 1;
    }

    /// A call-shaped control transfer (`jal`/`jalr`/`cjalr`) retired
    /// with the given target: push a frame.
    pub fn on_call(&mut self, target: u64) {
        self.flush_pending();
        self.stack.push(self.symbols.lookup(target));
    }

    /// A return-shaped control transfer (`jr $ra`/`cjr`) retired: pop a
    /// frame. Returns past the profiling start are ignored.
    pub fn on_return(&mut self) {
        self.flush_pending();
        self.stack.pop();
    }

    /// A TLB refill exception was taken at `pc` (the faulting
    /// instruction; it has not retired).
    pub fn on_tlb_refill(&mut self, pc: u64) {
        self.pcs.entry(pc).or_default().tlb_refills += 1;
    }

    /// A capability exception was raised at `pc`.
    pub fn on_cap_exception(&mut self, pc: u64) {
        self.pcs.entry(pc).or_default().cap_exceptions += 1;
    }

    /// Charges the residual miss deltas (events after the last retire —
    /// e.g. kernel-side tag traffic) to the last retired PC, so the
    /// per-PC sums equal the global counters exactly at report time.
    pub fn sync(&mut self, now: CounterSample) {
        if let Some(pc) = self.last_pc {
            let c = self.pcs.entry(pc).or_default();
            c.l1i_misses += now.l1i_misses.wrapping_sub(self.last.l1i_misses);
            c.l1d_misses += now.l1d_misses.wrapping_sub(self.last.l1d_misses);
            c.l2_misses += now.l2_misses.wrapping_sub(self.last.l2_misses);
            c.tag_misses += now.tag_misses.wrapping_sub(self.last.tag_misses);
        }
        self.last = now;
    }

    fn flush_pending(&mut self) {
        if self.pending > 0 {
            *self.folded.entry(self.stack.clone()).or_insert(0) += self.pending;
            self.pending = 0;
        }
    }

    // --- timeline (called by the kernel) --------------------------------

    /// `SYS_PHASE id` at cycle `ts`: closes the open phase span and
    /// opens the next.
    pub fn on_phase(&mut self, id: u64, ts: u64) {
        if let Some(prev) = self.open_phase.take() {
            self.timeline.end("phase", format!("phase {prev}"), ts);
        }
        self.timeline.begin("phase", format!("phase {id}"), ts);
        self.open_phase = Some(id);
    }

    /// A syscall serviced at cycle `ts` costing `dur` cycles.
    pub fn on_syscall(&mut self, nr: u64, ts: u64, dur: u64) {
        self.timeline.complete("syscall", format!("syscall {nr}"), ts, dur);
    }

    /// A protection-domain call entered domain `id` at cycle `ts`.
    pub fn on_domain_call(&mut self, id: u64, ts: u64) {
        self.timeline.begin("domain", format!("domain {id}"), ts);
        self.open_domains.push(id);
    }

    /// A protection-domain return at cycle `ts`.
    pub fn on_domain_return(&mut self, ts: u64) {
        if let Some(id) = self.open_domains.pop() {
            self.timeline.end("domain", format!("domain {id}"), ts);
        }
    }

    /// An `exec` (address-space context switch) at cycle `ts`.
    pub fn on_exec(&mut self, pid: u64, ts: u64) {
        self.timeline.instant("os", format!("exec pid {pid}"), ts);
    }

    /// The process exited at cycle `ts`: closes every open span so the
    /// timeline is balanced.
    pub fn on_exit(&mut self, ts: u64) {
        while self.open_domains.pop().is_some() {
            self.timeline.end("domain", "domain".into(), ts);
        }
        if let Some(prev) = self.open_phase.take() {
            self.timeline.end("phase", format!("phase {prev}"), ts);
        }
    }

    // --- lifecycle ------------------------------------------------------

    /// Total instructions retired while profiling.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.total_retired
    }

    /// Discards all collected data and reseeds the delta baseline —
    /// called by `Machine::restore`, because profile state is host-side
    /// only and a restored machine starts a fresh observation window.
    pub fn reset(&mut self, seed: CounterSample) {
        self.pcs.clear();
        self.last = seed;
        self.last_pc = None;
        self.total_retired = 0;
        self.stack.clear();
        self.pending = 0;
        self.folded.clear();
        self.timeline.clear();
        self.open_phase = None;
        self.open_domains.clear();
    }

    /// The raw per-PC table, sorted by PC (deterministic).
    #[must_use]
    pub fn pc_table(&self) -> Vec<(u64, PcCounters)> {
        let mut v: Vec<(u64, PcCounters)> = self.pcs.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|(pc, _)| *pc);
        v
    }

    /// Finishes the profile: flushes the pending folded samples,
    /// aggregates PCs to functions, and renders stacks as names.
    #[must_use]
    pub fn into_report(mut self) -> ProfileReport {
        self.flush_pending();
        let mut total = PcCounters::default();
        let mut by_func: BTreeMap<String, PcCounters> = BTreeMap::new();
        for (pc, c) in &self.pcs {
            total.absorb(c);
            by_func
                .entry(self.symbols.name(self.symbols.lookup(*pc)).to_string())
                .or_default()
                .absorb(c);
        }
        let mut functions: Vec<FuncProfile> =
            by_func.into_iter().map(|(name, counters)| FuncProfile { name, counters }).collect();
        functions.sort_by(|a, b| {
            b.counters.retired.cmp(&a.counters.retired).then_with(|| a.name.cmp(&b.name))
        });
        let mut folded: Vec<(String, u64)> = self
            .folded
            .iter()
            .map(|(stack, count)| {
                let mut line = String::from("root");
                for &id in stack {
                    line.push(';');
                    line.push_str(self.symbols.name(id));
                }
                (line, *count)
            })
            .collect();
        // Distinct id stacks can fold to the same name string (recursion
        // through <unknown>): merge, then sort for determinism.
        folded.sort_by(|a, b| a.0.cmp(&b.0));
        folded.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        ProfileReport { total, functions, folded, timeline: self.timeline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(l1d: u64, tag: u64) -> CounterSample {
        CounterSample { l1i_misses: 0, l1d_misses: l1d, l2_misses: 0, tag_misses: tag }
    }

    fn symbols() -> SymbolTable {
        SymbolTable::new(vec![
            SymbolDef { name: "_start".into(), start: 0x1000, end: 0x2000 },
            SymbolDef { name: "main".into(), start: 0x2000, end: 0x3000 },
            SymbolDef { name: "leaf".into(), start: 0x3000, end: 0x3100 },
        ])
    }

    #[test]
    fn delta_sampling_sums_to_global_counters() {
        let mut p = Profiler::new();
        p.seed(sample(5, 2)); // pre-attach traffic is not attributed
        p.on_retire(0x1000, sample(5, 2));
        p.on_retire(0x1004, sample(8, 2)); // +3 L1D
        p.on_retire(0x1004, sample(8, 4)); // +2 tag
        p.sync(sample(9, 4)); // +1 L1D after the last retire
        let table = p.pc_table();
        let l1d: u64 = table.iter().map(|(_, c)| c.l1d_misses).sum();
        let tag: u64 = table.iter().map(|(_, c)| c.tag_misses).sum();
        assert_eq!(l1d, 9 - 5);
        assert_eq!(tag, 4 - 2);
        assert_eq!(p.total_retired(), 3);
        let retired: u64 = table.iter().map(|(_, c)| c.retired).sum();
        assert_eq!(retired, 3);
    }

    #[test]
    fn folded_samples_sum_to_total_retired() {
        let mut p = Profiler::new();
        p.set_symbols(symbols());
        let s = CounterSample::default();
        p.on_retire(0x1000, s); // in root
        p.on_retire(0x1004, s);
        p.on_call(0x2000); // -> main
        p.on_retire(0x2000, s);
        p.on_call(0x3000); // -> leaf
        p.on_retire(0x3000, s);
        p.on_retire(0x3004, s);
        p.on_return(); // <- leaf
        p.on_retire(0x2004, s);
        p.on_return(); // <- main
        p.on_retire(0x1008, s);
        let report = p.into_report();
        let total: u64 = report.folded.iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.total.retired);
        assert_eq!(total, 7);
        let lines = report.folded_output();
        assert!(lines.contains("root;main;leaf 2\n"), "folded output:\n{lines}");
        assert!(lines.contains("root;main 2\n"), "folded output:\n{lines}");
        assert!(lines.contains("root 3\n"), "folded output:\n{lines}");
    }

    #[test]
    fn unbalanced_returns_are_ignored() {
        let mut p = Profiler::new();
        let s = CounterSample::default();
        p.on_retire(0x1000, s);
        p.on_return(); // no matching call: root frame persists
        p.on_retire(0x1004, s);
        let report = p.into_report();
        let total: u64 = report.folded.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn function_aggregation_covers_every_pc() {
        let mut p = Profiler::new();
        p.set_symbols(symbols());
        let s = CounterSample::default();
        p.on_retire(0x2000, s);
        p.on_retire(0x2ffc, s);
        p.on_retire(0x9000, s); // unsymbolized
        p.on_tlb_refill(0x2000);
        p.on_cap_exception(0x9000);
        let report = p.into_report();
        let main = report.functions.iter().find(|f| f.name == "main").expect("main profiled");
        assert_eq!(main.counters.retired, 2);
        assert_eq!(main.counters.tlb_refills, 1);
        let unk = report.functions.iter().find(|f| f.name == "<unknown>").expect("unknown bucket");
        assert_eq!(unk.counters.retired, 1);
        assert_eq!(unk.counters.cap_exceptions, 1);
        let retired: u64 = report.functions.iter().map(|f| f.counters.retired).sum();
        assert_eq!(retired, report.total.retired);
    }

    #[test]
    fn reset_discards_everything_and_reseeds() {
        let mut p = Profiler::new();
        p.on_retire(0x1000, sample(3, 1));
        p.on_phase(1, 100);
        p.reset(sample(10, 7));
        assert_eq!(p.total_retired(), 0);
        assert!(p.pc_table().is_empty());
        p.on_retire(0x1000, sample(11, 7)); // +1 L1D since the reseed
        let table = p.pc_table();
        assert_eq!(table[0].1.l1d_misses, 1);
        let report = p.into_report();
        assert!(report.timeline.events().is_empty());
    }

    #[test]
    fn phase_and_domain_spans_balance() {
        let mut p = Profiler::new();
        p.on_exec(1, 0);
        p.on_phase(1, 10);
        p.on_syscall(3, 12, 120);
        p.on_phase(2, 500);
        p.on_domain_call(0, 600);
        p.on_domain_return(700);
        p.on_exit(900);
        let report = p.into_report();
        let events = report.timeline.events();
        let begins = events.iter().filter(|e| e.phase == TimelinePhase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == TimelinePhase::End).count();
        assert_eq!(begins, ends, "every span must close");
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts), "timeline must be monotone");
    }
}
