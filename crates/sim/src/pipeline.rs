//! The BERI pipeline structure (Figure 2) and the branch predictor.
//!
//! "BERI is single-issue and in-order, with a throughput approaching one
//! instruction per cycle. BERI has a branch predictor and uses limited
//! register renaming for robust forwarding in its 6-stage pipeline."
//!
//! The stage list is used descriptively by the Figure 2 harness; the
//! [`BranchPredictor`] supplies the mispredict penalty charged by the
//! cycle model.

use core::fmt;

/// One of BERI's six pipeline stages, with the capability-coprocessor
/// attach point Figure 2 shows for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stage {
    /// Stage name.
    pub name: &'static str,
    /// What the stage does.
    pub role: &'static str,
    /// How the capability coprocessor couples to this stage (Figure 2
    /// arrows), if at all.
    pub coprocessor_link: Option<&'static str>,
}

/// The six stages of Figure 2, in order, with their CP2 couplings.
pub const STAGES: [Stage; 6] = [
    Stage {
        name: "Instruction Fetch",
        role: "fetch from I-cache at the absolute PC",
        coprocessor_link: Some("offset address: PC validated against PCC"),
    },
    Stage {
        name: "Scheduler",
        role: "hazard scheduling and register renaming",
        coprocessor_link: None,
    },
    Stage {
        name: "Decode",
        role: "decode; feed capability instructions to CP2",
        coprocessor_link: Some("put capability instruction"),
    },
    Stage {
        name: "Execute",
        role: "ALU; branch resolution; capability checks",
        coprocessor_link: Some("exchange operands; get address"),
    },
    Stage {
        name: "Memory Access",
        role: "D-cache access, transformed and limited by CP2",
        coprocessor_link: Some("offset address"),
    },
    Stage {
        name: "Writeback",
        role: "commit results to register files",
        coprocessor_link: Some("commit writeback"),
    },
];

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.role)?;
        if let Some(link) = self.coprocessor_link {
            write!(f, " [CP2: {link}]")?;
        }
        Ok(())
    }
}

/// Penalty in cycles for a mispredicted conditional branch (branch
/// resolves in Execute, stage 4, so 2 fetch slots are squashed in a
/// 6-stage single-issue pipeline with a 1-cycle redirect).
pub const MISPREDICT_PENALTY: u64 = 2;

/// Penalty for an indirect jump (`JR`/`JALR`/`CJR`/`CJALR`): no BTB is
/// modelled, so the target is available at Execute.
pub const INDIRECT_JUMP_PENALTY: u64 = 1;

/// A gshare-free, per-PC 2-bit saturating-counter branch predictor.
///
/// # Example
///
/// ```
/// use beri_sim::pipeline::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(512);
/// // Train a loop branch: after two taken outcomes it predicts taken.
/// bp.update(0x100, true);
/// bp.update(0x100, true);
/// assert!(bp.predict(0x100));
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    counters: Vec<u8>,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` two-bit counters (rounded up to
    /// a power of two), initialised to weakly-not-taken.
    #[must_use]
    pub fn new(entries: usize) -> BranchPredictor {
        let n = entries.next_power_of_two().max(1);
        BranchPredictor { counters: vec![1; n] }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains the predictor with the actual outcome; returns `true` if
    /// the prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let correct = self.predict(pc) == taken;
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        correct
    }

    /// Exports the counter table (run-length encoded) for `cheri-snap`.
    #[must_use]
    pub fn export_state(&self) -> cheri_snap::PredictorState {
        cheri_snap::PredictorState {
            counters: cheri_snap::rle_encode(self.counters.iter().map(|&c| u64::from(c))),
        }
    }

    /// Restores state exported by [`BranchPredictor::export_state`].
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the table size differs or a counter
    /// exceeds the 2-bit range.
    pub fn import_state(
        &mut self,
        s: &cheri_snap::PredictorState,
    ) -> Result<(), cheri_snap::SnapError> {
        if cheri_snap::rle_len(&s.counters) != self.counters.len() as u64 {
            return Err(cheri_snap::SnapError(format!(
                "predictor holds {} counters, snapshot has {}",
                self.counters.len(),
                cheri_snap::rle_len(&s.counters)
            )));
        }
        let mut at = 0usize;
        for &(count, value) in &s.counters {
            if value > 3 {
                return Err(cheri_snap::SnapError(format!(
                    "predictor counter {value} out of 2-bit range"
                )));
            }
            for _ in 0..count {
                self.counters[at] = value as u8;
                at += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_stages_match_figure_2() {
        assert_eq!(STAGES.len(), 6);
        assert_eq!(STAGES[0].name, "Instruction Fetch");
        assert_eq!(STAGES[5].name, "Writeback");
        // CP2 couples to fetch, decode, execute, memory, writeback.
        let links = STAGES.iter().filter(|s| s.coprocessor_link.is_some()).count();
        assert_eq!(links, 5);
    }

    #[test]
    fn predictor_learns_biased_branch() {
        let mut bp = BranchPredictor::new(16);
        let mut wrong = 0;
        for _ in 0..100 {
            if !bp.update(0x40, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "should converge quickly, got {wrong} mispredicts");
    }

    #[test]
    fn predictor_tracks_alternating_poorly() {
        // 2-bit counters famously struggle with strict alternation;
        // just check it neither panics nor diverges.
        let mut bp = BranchPredictor::new(16);
        for i in 0..64 {
            bp.update(0x40, i % 2 == 0);
        }
        let _ = bp.predict(0x40);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut bp = BranchPredictor::new(16);
        bp.update(0x0, true);
        bp.update(0x0, true);
        assert!(bp.predict(0x0));
        assert!(!bp.predict(0x4), "untrained branch starts not-taken");
    }

    #[test]
    fn display_mentions_cp2() {
        assert!(STAGES[3].to_string().contains("CP2"));
    }
}
