//! # beri-sim — the BERI/CHERI processor
//!
//! A software model of the evaluation platform of the ISCA 2014 CHERI
//! paper: BERI (Bluespec Extensible RISC Implementation), a single-issue,
//! in-order, 6-stage 64-bit MIPS IV core, extended with the CHERI
//! capability coprocessor (CP2) and tagged memory.
//!
//! The simulator is *architecturally* faithful (every committed
//! instruction has the documented effect, including capability checks,
//! TLB behaviour, and exceptions) and *cycle-approximate*: a memory
//! hierarchy with the paper's geometry (32-byte lines, 16 KB L1 caches, a
//! 64 KB L2, a TLB covering 1 MB) plus a branch predictor charge the
//! stall cycles that dominate Figures 4 and 5.
//!
//! ## Structure
//!
//! * [`inst`] / [`decode`] — the MIPS IV subset plus the Table 1 CHERI
//!   extensions in the COP2 opcode space.
//! * [`cpu`] — architectural state: GPRs, HI/LO, PC, CP0, the capability
//!   register file.
//! * [`tlb`] — the software-managed TLB with CHERI's capability-load /
//!   capability-store page-permission bits.
//! * [`cache`] — L1I/L1D/L2 cache models and the latency accounting.
//! * [`machine`] — [`Machine`]: fetch/decode/execute loop; returns
//!   [`StepResult`] so a host-level kernel (`cheri-os`) can service
//!   syscalls, TLB refills, and capability violations.
//! * [`pipeline`] — the Figure 2 stage structure, used descriptively by
//!   the Fig. 2 harness and for the branch/forwarding cycle model.
//!
//! ## Example
//!
//! Running a tiny hand-encoded program to completion:
//!
//! ```
//! use beri_sim::{Machine, MachineConfig, StepResult};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! // ori $v0, $zero, 42 ; syscall
//! let prog = [0x3402_002au32, 0x0000_000c];
//! m.load_code(0x1000, &prog).unwrap();
//! m.identity_map_all();
//! m.cpu.pc = 0x1000;
//! loop {
//!     match m.step().unwrap() {
//!         StepResult::Continue => {}
//!         StepResult::Syscall => break,
//!         other => panic!("unexpected {other:?}"),
//!     }
//! }
//! assert_eq!(m.cpu.gpr[2], 42); // $v0
//! ```

mod block;
pub mod cache;
pub mod cpu;
pub mod decode;
pub mod exception;
pub mod inst;
pub mod machine;
pub mod pipeline;
pub mod stats;
pub mod tlb;

pub use cache::{Cache, CacheParams, Hierarchy, HierarchyParams};
pub use cpu::{Cp0, Cpu};
pub use exception::{Exception, TrapKind};
pub use inst::{reg, Inst};
pub use machine::{
    cap_from_state, cap_to_state, CapFormat, FaultInjection, Machine, MachineConfig, StepResult,
};
pub use stats::Stats;
pub use tlb::{Tlb, TlbEntry, TlbFlags};
