//! Architectural exceptions.
//!
//! The simulator delivers exceptions to its embedder (normally the
//! `cheri-os` host-level kernel) rather than vectoring into guest code;
//! CP0 state (`EPC`, `Cause`, `BadVAddr`, capability cause) is still
//! updated as the hardware would, so a guest-resident handler could be
//! added without changing the model.

use cheri_core::CapCause;
use core::fmt;

/// What kind of trap occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrapKind {
    /// TLB refill: no entry matched the virtual address. The software
    /// refill handler (kernel) must install a mapping and retry.
    TlbRefill {
        /// Faulting virtual address.
        vaddr: u64,
        /// Whether the access was a store.
        write: bool,
    },
    /// A matching TLB entry was found but is invalid.
    TlbInvalid {
        /// Faulting virtual address.
        vaddr: u64,
        /// Whether the access was a store.
        write: bool,
    },
    /// Store to a page whose dirty bit is clear.
    TlbModified {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Misaligned or otherwise malformed address.
    AddressError {
        /// Faulting virtual address.
        vaddr: u64,
        /// Whether the access was a store.
        write: bool,
    },
    /// `SYSCALL` executed; the code field distinguishes services.
    Syscall {
        /// The 20-bit code field of the instruction.
        code: u32,
    },
    /// `BREAK` executed.
    Break {
        /// The 20-bit code field.
        code: u32,
    },
    /// Trapping integer overflow (`ADD`, `ADDI`, `SUB`, `DADD`, ...).
    IntegerOverflow,
    /// Unimplemented or unallocated encoding.
    ReservedInstruction {
        /// The raw instruction word.
        word: u32,
    },
    /// A CHERI capability violation (CP2 exception).
    CapViolation(CapCause),
    /// COP2 instruction executed while the capability coprocessor is
    /// disabled (pure-BERI configuration).
    CoprocessorUnusable,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::TlbRefill { vaddr, write } => {
                write!(f, "tlb refill at {vaddr:#x} ({})", rw(*write))
            }
            TrapKind::TlbInvalid { vaddr, write } => {
                write!(f, "tlb invalid at {vaddr:#x} ({})", rw(*write))
            }
            TrapKind::TlbModified { vaddr } => write!(f, "tlb modified at {vaddr:#x}"),
            TrapKind::AddressError { vaddr, write } => {
                write!(f, "address error at {vaddr:#x} ({})", rw(*write))
            }
            TrapKind::Syscall { code } => write!(f, "syscall {code}"),
            TrapKind::Break { code } => write!(f, "break {code}"),
            TrapKind::IntegerOverflow => write!(f, "integer overflow"),
            TrapKind::ReservedInstruction { word } => {
                write!(f, "reserved instruction {word:#010x}")
            }
            TrapKind::CapViolation(cause) => write!(f, "capability violation: {cause}"),
            TrapKind::CoprocessorUnusable => write!(f, "coprocessor 2 unusable"),
        }
    }
}

fn rw(write: bool) -> &'static str {
    if write {
        "store"
    } else {
        "load"
    }
}

/// A delivered exception: the kind plus the PC of the faulting
/// instruction (the value written to `EPC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exception {
    /// What happened.
    pub kind: TrapKind,
    /// PC of the faulting instruction.
    pub pc: u64,
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at pc {:#x}", self.kind, self.pc)
    }
}

impl std::error::Error for Exception {}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::{CapCause, CapExcCode};

    #[test]
    fn display_formats() {
        let e = Exception { kind: TrapKind::TlbRefill { vaddr: 0x4000, write: true }, pc: 0x1000 };
        let s = e.to_string();
        assert!(s.contains("0x4000"));
        assert!(s.contains("store"));
        assert!(s.contains("0x1000"));
    }

    #[test]
    fn cap_violation_carries_cause() {
        let k = TrapKind::CapViolation(CapCause::new(CapExcCode::LengthViolation, 4));
        assert!(k.to_string().contains("bounds"));
        assert!(k.to_string().contains("C4"));
    }
}
