//! Architectural CPU state: GPRs, HI/LO, the PC pair (for delay slots),
//! CP0, and the CP2 capability register file.

use cheri_core::{CapCause, CapRegFile};

/// CP0 register numbers implemented by BERI-sim.
pub mod cp0reg {
    /// TLB index for `TLBWI`/`TLBR`.
    pub const INDEX: u8 = 0;
    /// EntryLo0 (even page).
    pub const ENTRYLO0: u8 = 2;
    /// EntryLo1 (odd page).
    pub const ENTRYLO1: u8 = 3;
    /// Faulting virtual address.
    pub const BADVADDR: u8 = 8;
    /// Free-running counter.
    pub const COUNT: u8 = 9;
    /// EntryHi (VPN2).
    pub const ENTRYHI: u8 = 10;
    /// Status register.
    pub const STATUS: u8 = 12;
    /// Cause register.
    pub const CAUSE: u8 = 13;
    /// Exception PC.
    pub const EPC: u8 = 14;
    /// CHERI: packed capability cause ([`cheri_core::CapCause::packed`]).
    pub const CAPCAUSE: u8 = 27;
}

/// Coprocessor 0: system control state.
#[derive(Clone, Debug, Default)]
pub struct Cp0 {
    /// TLB index register.
    pub index: u64,
    /// EntryLo0.
    pub entrylo0: u64,
    /// EntryLo1.
    pub entrylo1: u64,
    /// BadVAddr.
    pub badvaddr: u64,
    /// Count (incremented once per retired instruction).
    pub count: u64,
    /// EntryHi.
    pub entryhi: u64,
    /// Status.
    pub status: u64,
    /// Cause.
    pub cause: u64,
    /// EPC.
    pub epc: u64,
    /// Packed CHERI capability cause.
    pub capcause: u64,
}

impl Cp0 {
    /// Reads a CP0 register by number; unimplemented registers read 0.
    #[must_use]
    pub fn read(&self, rd: u8) -> u64 {
        match rd {
            cp0reg::INDEX => self.index,
            cp0reg::ENTRYLO0 => self.entrylo0,
            cp0reg::ENTRYLO1 => self.entrylo1,
            cp0reg::BADVADDR => self.badvaddr,
            cp0reg::COUNT => self.count,
            cp0reg::ENTRYHI => self.entryhi,
            cp0reg::STATUS => self.status,
            cp0reg::CAUSE => self.cause,
            cp0reg::EPC => self.epc,
            cp0reg::CAPCAUSE => self.capcause,
            _ => 0,
        }
    }

    /// Writes a CP0 register by number; writes to read-only or
    /// unimplemented registers are ignored (as on the real part).
    pub fn write(&mut self, rd: u8, value: u64) {
        match rd {
            cp0reg::INDEX => self.index = value,
            cp0reg::ENTRYLO0 => self.entrylo0 = value,
            cp0reg::ENTRYLO1 => self.entrylo1 = value,
            cp0reg::COUNT => self.count = value,
            cp0reg::ENTRYHI => self.entryhi = value,
            cp0reg::STATUS => self.status = value,
            cp0reg::EPC => self.epc = value,
            _ => {}
        }
    }

    /// Records exception state: EPC, Cause (exception code in bits 6:2,
    /// BD in bit 31), BadVAddr for address-related faults.
    pub fn raise(&mut self, epc: u64, in_delay_slot: bool, exc_code: u64, badvaddr: Option<u64>) {
        self.epc = epc;
        self.cause = (exc_code & 0x1f) << 2 | if in_delay_slot { 1 << 31 } else { 0 };
        if let Some(v) = badvaddr {
            self.badvaddr = v;
        }
    }

    /// Records a capability cause (CP2 exception register).
    pub fn raise_cap(&mut self, cause: CapCause) {
        self.capcause = u64::from(cause.packed());
    }
}

/// The architectural register state of one hardware thread.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// General-purpose registers; `gpr[0]` reads as zero (writes to it
    /// are discarded by [`Cpu::set_gpr`]).
    pub gpr: [u64; 32],
    /// Multiply/divide HI.
    pub hi: u64,
    /// Multiply/divide LO.
    pub lo: u64,
    /// PC of the instruction to execute next.
    pub pc: u64,
    /// PC after that (differs from `pc + 4` when a branch is pending; this
    /// is how MIPS delay slots are modelled).
    pub next_pc: u64,
    /// Coprocessor 0.
    pub cp0: Cp0,
    /// Coprocessor 2: the CHERI capability register file.
    pub caps: CapRegFile,
    /// Load-linked reservation (physical address), if armed.
    pub ll_reservation: Option<u64>,
}

impl Cpu {
    /// A reset CPU: zero registers, almighty capability file, PC at 0.
    #[must_use]
    pub fn new() -> Cpu {
        Cpu {
            gpr: [0; 32],
            hi: 0,
            lo: 0,
            pc: 0,
            next_pc: 4,
            cp0: Cp0::default(),
            caps: CapRegFile::new(),
            ll_reservation: None,
        }
    }

    /// Writes a GPR, discarding writes to `$zero`.
    #[inline]
    pub fn set_gpr(&mut self, r: u8, value: u64) {
        if r != 0 {
            self.gpr[usize::from(r)] = value;
        }
    }

    /// Reads a GPR.
    #[inline]
    #[must_use]
    pub fn get_gpr(&self, r: u8) -> u64 {
        self.gpr[usize::from(r)]
    }

    /// Places execution at `pc` with no pending branch.
    pub fn jump_to(&mut self, pc: u64) {
        self.pc = pc;
        self.next_pc = pc.wrapping_add(4);
    }

    /// True if the instruction at `pc` sits in a branch delay slot.
    #[must_use]
    pub fn in_delay_slot(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(4)
    }
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_core::CapExcCode;

    #[test]
    fn zero_register_is_hardwired() {
        let mut c = Cpu::new();
        c.set_gpr(0, 42);
        assert_eq!(c.get_gpr(0), 0);
        c.set_gpr(1, 42);
        assert_eq!(c.get_gpr(1), 42);
    }

    #[test]
    fn cp0_roundtrip_and_readonly() {
        let mut cp0 = Cp0::default();
        cp0.write(cp0reg::STATUS, 0xff);
        assert_eq!(cp0.read(cp0reg::STATUS), 0xff);
        // BadVAddr is read-only.
        cp0.write(cp0reg::BADVADDR, 0x1234);
        assert_eq!(cp0.read(cp0reg::BADVADDR), 0);
        // Unimplemented registers read zero.
        assert_eq!(cp0.read(31), 0);
    }

    #[test]
    fn raise_packs_cause() {
        let mut cp0 = Cp0::default();
        cp0.raise(0x1000, true, 2, Some(0xbad));
        assert_eq!(cp0.epc, 0x1000);
        assert_eq!(cp0.badvaddr, 0xbad);
        assert_eq!(cp0.cause & (1 << 31), 1 << 31);
        assert_eq!((cp0.cause >> 2) & 0x1f, 2);
        cp0.raise_cap(CapCause::new(CapExcCode::TagViolation, 5));
        assert_eq!(cp0.capcause & 0xff, 5);
    }

    #[test]
    fn delay_slot_detection() {
        let mut c = Cpu::new();
        c.jump_to(0x100);
        assert!(!c.in_delay_slot());
        c.next_pc = 0x200; // pending branch
        assert!(c.in_delay_slot());
    }

    #[test]
    fn reset_capability_file_is_almighty() {
        let c = Cpu::new();
        assert!(c.caps.pcc().tag());
        assert_eq!(c.caps.c0().base(), 0);
    }
}
