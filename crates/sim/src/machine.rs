//! The machine: CPU + TLB + cache hierarchy + tagged memory, and the
//! fetch/decode/execute loop.
//!
//! [`Machine::step`] executes exactly one instruction and reports what
//! happened via [`StepResult`]. Exceptions (TLB refills, capability
//! violations, syscalls) are *delivered to the embedder* — normally the
//! `cheri-os` host-level kernel — with CP0/CP2 state updated as the
//! hardware would; the faulting instruction is not retired, so fixing the
//! cause (e.g. installing a TLB entry) and calling `step` again retries
//! it.

use std::cell::Cell;
use std::rc::Rc;

use cheri_core::{CapCause, CapExcCode, Capability, Compressed128, Perms};
use cheri_mem::{MemError, TaggedMem};
use cheri_prof::{CounterSample, Profiler};
use cheri_trace::{emit, names, SharedSink, Snapshot, TraceEvent};

use crate::block::{
    pinst_flags, Block, BlockCache, PInst, F_CAP, F_STORE, F_TERMINAL, F_TLBW, F_UNCOND_JUMP,
    MAX_BLOCK_INSTS,
};
use crate::cache::{Hierarchy, HierarchyParams};
use crate::cpu::Cpu;
use crate::decode::decode;
use crate::exception::{Exception, TrapKind};
use crate::inst::{reg, AluImmOp, AluOp, BranchCond, CheriInst, Inst, MulDivOp, ShiftOp, Width};
use crate::pipeline::{BranchPredictor, INDIRECT_JUMP_PENALTY, MISPREDICT_PENALTY};
use crate::stats::Stats;
use crate::tlb::{Tlb, TlbFlags, PAGE_SHIFT};

/// Which in-memory capability format the machine implements.
///
/// Section 4.1: "An implementation intended for widespread deployment
/// would likely use a denser representation — for example, 128-bits".
/// The register file is architectural (full precision) in both modes;
/// the format governs what `CLC`/`CSC` move through memory and the tag
/// granule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CapFormat {
    /// The 256-bit research format of Figure 1 (32-byte granule).
    #[default]
    C256,
    /// The compressed 128-bit production format (16-byte granule);
    /// capabilities must be representable (the capability-aware
    /// allocator guarantees this) or `CSC` raises an alignment fault.
    C128,
}

impl CapFormat {
    /// In-memory capability size in bytes (= tag granule).
    #[must_use]
    pub const fn size(self) -> u64 {
        match self {
            CapFormat::C256 => 32,
            CapFormat::C128 => 16,
        }
    }
}

/// Configuration of a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Physical memory size in bytes.
    pub mem_bytes: usize,
    /// Number of paired TLB entries (128 ⇒ 1 MB coverage, Figure 5).
    pub tlb_entries: usize,
    /// Cache geometry and latencies.
    pub hierarchy: HierarchyParams,
    /// Whether the capability coprocessor is fitted (false ⇒ pure BERI;
    /// COP2 raises Coprocessor Unusable).
    pub cheri_enabled: bool,
    /// Tag-cache capacity in bytes (Section 4.2 default: 8 KB).
    pub tag_cache_bytes: usize,
    /// In-memory capability format (256-bit research / 128-bit
    /// production).
    pub cap_format: CapFormat,
    /// Branch-history-table entries.
    pub bht_entries: usize,
    /// Extra cycles for a multiply.
    pub mul_penalty: u64,
    /// Extra cycles for a divide.
    pub div_penalty: u64,
    /// Enables the predecoded basic-block fast path in
    /// [`Machine::run`] (see the `block` module). Architecturally
    /// transparent — every counter and all architectural state are
    /// bit-identical either way — so this is an escape hatch, not a
    /// model knob. Defaults to on unless the `CHERI_SIM_NO_BLOCK_CACHE`
    /// environment variable is set.
    pub block_cache: bool,
    /// Verification-only fault injection: deliberately miswires one
    /// semantic rule so the lockstep spec fuzzer can demonstrate it
    /// catches the bug. Always `None` in production configurations and
    /// never recorded in snapshots.
    pub fault: Option<FaultInjection>,
}

/// Deliberate, named semantic bugs for verifying the verifier. Each
/// variant breaks exactly one architectural rule; a differential run
/// against `cheri-spec` must flag it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultInjection {
    /// A one-byte store skips tag invalidation, leaving the covering
    /// capability tag intact — the overlapping-store rule of
    /// Section 4.2 silently broken.
    KeepTagOnByteStore,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_bytes: 64 << 20,
            tlb_entries: crate::tlb::DEFAULT_ENTRIES,
            hierarchy: HierarchyParams::default(),
            cheri_enabled: true,
            tag_cache_bytes: cheri_mem::DEFAULT_TAG_CACHE_BYTES,
            cap_format: CapFormat::default(),
            bht_entries: 512,
            mul_penalty: 3,
            div_penalty: 16,
            block_cache: std::env::var_os("CHERI_SIM_NO_BLOCK_CACHE").is_none(),
            fault: None,
        }
    }
}

/// What one [`Machine::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StepResult {
    /// An ordinary instruction retired.
    Continue,
    /// `SYSCALL` executed; service it (arguments are in the GPRs) and
    /// call [`Machine::advance_past_trap`] to resume after it.
    Syscall,
    /// `BREAK` executed with the given code.
    Break(u32),
    /// An exception was raised; the faulting instruction did not retire.
    /// Retrying [`Machine::step`] re-executes it (correct for TLB
    /// refills once the kernel installs a mapping).
    Trap(Exception),
}

#[derive(Clone, Copy, Debug)]
enum Outcome {
    Next,
    /// A conditional branch or branch-likely: `(target, taken)`.
    Branch {
        target: u64,
        taken: bool,
        predicted: bool,
    },
    /// An unconditional jump with a delay slot.
    Jump {
        target: u64,
        indirect: bool,
    },
    /// A capability jump: no delay slot; installs a new PCC.
    CapJump {
        target: u64,
        pcc: Capability,
    },
    Trap {
        kind: TrapKind,
        badvaddr: Option<u64>,
    },
    Syscall,
    Break(u32),
}

/// The simulated machine.
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Tagged physical memory.
    pub mem: TaggedMem,
    /// Cache hierarchy (timing model).
    pub hierarchy: Hierarchy,
    /// Branch predictor (timing model).
    pub predictor: BranchPredictor,
    /// Execution statistics.
    pub stats: Stats,
    tlb: Tlb,
    cfg: MachineConfig,
    bare: bool,
    // One-entry micro-TLBs so the common translation path is O(1);
    // invalidated on any TLB mutation. (page_number, frame_number, flags)
    utlb_fetch: Option<(u64, u64, TlbFlags)>,
    utlb_load: Option<(u64, u64, TlbFlags)>,
    utlb_store: Option<(u64, u64, TlbFlags)>,
    // Predecoded basic blocks (the `run` fast path); invalidated by
    // store-generation counters, never consulted by `step`.
    blocks: BlockCache,
    // Optional trace sink; the same handle is cloned into the cache
    // hierarchy and the tag controller by set_trace_sink.
    sink: Option<SharedSink>,
    // Optional profiler. Unlike a sink, a profiler does NOT disable the
    // predecoded fast path: both execution paths call the same retire
    // hook, and the profiler never feeds back into architectural state.
    prof: Option<Box<Profiler>>,
    // Host-side tag-miss tick shared with the tag controller while a
    // profiler is attached (see `TagController::set_miss_probe`).
    tag_tick: Rc<Cell<u64>>,
}

impl Machine {
    /// Builds a machine in "bare" mode (virtual = physical, no TLB
    /// faults) — convenient for tests, examples, and micro-benchmarks.
    /// The `cheri-os` kernel switches to translated mode via
    /// [`Machine::enable_translation`].
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Machine {
        Machine {
            cpu: Cpu::new(),
            mem: TaggedMem::with_config(cfg.mem_bytes, cfg.tag_cache_bytes, cfg.cap_format.size()),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            predictor: BranchPredictor::new(cfg.bht_entries),
            stats: Stats::default(),
            tlb: Tlb::new(cfg.tlb_entries),
            cfg: cfg.clone(),
            bare: true,
            utlb_fetch: None,
            utlb_load: None,
            utlb_store: None,
            blocks: BlockCache::new(cfg.mem_bytes),
            sink: None,
            prof: None,
            tag_tick: Rc::new(Cell::new(0)),
        }
    }

    /// Attaches a trace sink (or detaches, with `None`), wiring the same
    /// shared handle through the cache hierarchy and the tag controller
    /// so the whole machine feeds one event stream. Instrumentation is
    /// observational only: attaching any sink never changes
    /// architectural state or cycle accounting.
    pub fn set_trace_sink(&mut self, sink: Option<SharedSink>) {
        // A disabled sink (NullSink) is stored as `None`, so "tracing
        // off" runs the exact un-instrumented code path.
        let sink = cheri_trace::active(sink);
        self.hierarchy.set_trace_sink(sink.clone());
        self.mem.set_trace_sink(sink.clone());
        self.sink = sink;
    }

    /// The currently attached trace sink handle, if any (the kernel
    /// clones this so OS-level events join the same stream).
    #[must_use]
    pub fn trace_sink(&self) -> Option<SharedSink> {
        self.sink.clone()
    }

    /// Attaches a profiler (or detaches, with `None`). The profiler is
    /// observational only — it never changes architectural state, cycle
    /// accounting, or the trace stream — and, unlike a trace sink, it
    /// does not disable the predecoded-block fast path: both execution
    /// paths drive the same per-retire hook.
    ///
    /// On attach the delta-sampling baseline is seeded from the current
    /// global counters, so only events from this point on are
    /// attributed.
    pub fn set_profiler(&mut self, prof: Option<Box<Profiler>>) {
        match prof {
            Some(mut p) => {
                self.mem.set_tag_miss_probe(Some(self.tag_tick.clone()));
                p.seed(self.prof_sample());
                self.prof = Some(p);
            }
            None => {
                self.mem.set_tag_miss_probe(None);
                self.prof = None;
            }
        }
    }

    /// The attached profiler, if any.
    #[must_use]
    pub fn profiler(&self) -> Option<&Profiler> {
        self.prof.as_deref()
    }

    /// Mutable access to the attached profiler (the kernel uses this to
    /// record timeline spans).
    pub fn profiler_mut(&mut self) -> Option<&mut Profiler> {
        self.prof.as_deref_mut()
    }

    /// Charges any residual miss deltas (events since the last retire)
    /// to the last retired PC, so per-PC sums equal the global counters
    /// exactly. Call before reading attribution mid-run.
    pub fn sync_profiler(&mut self) {
        let now = self.prof_sample();
        if let Some(p) = self.prof.as_mut() {
            p.sync(now);
        }
    }

    /// Detaches and returns the profiler, after a final
    /// [`Machine::sync_profiler`] so its attribution is complete.
    pub fn take_profiler(&mut self) -> Option<Box<Profiler>> {
        self.sync_profiler();
        self.mem.set_tag_miss_probe(None);
        self.prof.take()
    }

    /// The current global miss counters, in the profiler's sample form.
    #[inline]
    fn prof_sample(&self) -> CounterSample {
        CounterSample {
            l1i_misses: self.hierarchy.l1i.misses,
            l1d_misses: self.hierarchy.l1d.misses,
            l2_misses: self.hierarchy.l2.misses,
            tag_misses: self.tag_tick.get(),
        }
    }

    /// The shared per-retire profiling hook: attributes miss deltas to
    /// the retiring `pc` and maintains the synthetic call stack at
    /// call/return-shaped control transfers. Caller checks
    /// `self.prof.is_some()` first so the disabled cost is one branch.
    fn prof_retire(&mut self, pc: u64, inst: &Inst, outcome: &Outcome) {
        let now = self.prof_sample();
        let Some(p) = self.prof.as_mut() else { return };
        p.on_retire(pc, now);
        match (inst, outcome) {
            (Inst::Jal { .. } | Inst::Jalr { .. }, Outcome::Jump { target, .. }) => {
                p.on_call(*target);
            }
            (Inst::Jr { rs }, _) if *rs == reg::RA => p.on_return(),
            (Inst::Cheri(CheriInst::CJALR { .. }), Outcome::CapJump { target, .. }) => {
                p.on_call(*target);
            }
            (Inst::Cheri(CheriInst::CJR { .. }), _) => p.on_return(),
            _ => {}
        }
    }

    /// The configuration this machine was built with.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Keeps virtual = physical (the reset state). Provided for symmetry
    /// and self-documenting call sites in examples.
    pub fn identity_map_all(&mut self) {
        self.bare = true;
    }

    /// Switches to TLB-translated mode; subsequent accesses fault until
    /// mappings are installed.
    pub fn enable_translation(&mut self) {
        self.bare = false;
        self.invalidate_utlb();
    }

    /// Whether translation is active.
    #[must_use]
    pub fn translation_enabled(&self) -> bool {
        !self.bare
    }

    fn invalidate_utlb(&mut self) {
        self.utlb_fetch = None;
        self.utlb_load = None;
        self.utlb_store = None;
    }

    /// Installs a 4 KB mapping (kernel TLB-refill path).
    pub fn tlb_install(&mut self, vaddr: u64, paddr: u64, flags: TlbFlags) {
        self.tlb.install(vaddr, paddr, flags);
        self.invalidate_utlb();
    }

    /// Flushes the TLB (context switch / `execve`).
    pub fn tlb_flush(&mut self) {
        self.tlb.flush();
        self.invalidate_utlb();
    }

    /// Invalidates the page containing `vaddr` (revocation by unmapping).
    pub fn tlb_invalidate_page(&mut self, vaddr: u64) {
        self.tlb.invalidate_page(vaddr);
        self.invalidate_utlb();
    }

    /// Read-only view of the TLB.
    #[must_use]
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Adds kernel-side cycles (e.g. the software TLB-refill handler) to
    /// the cycle count.
    pub fn charge_cycles(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
    }

    /// Copies a code/data image into *physical* memory (also usable as
    /// virtual in bare mode).
    ///
    /// # Errors
    ///
    /// [`MemError`] if the image does not fit.
    pub fn load_code(&mut self, paddr: u64, words: &[u32]) -> Result<(), MemError> {
        for (i, w) in words.iter().enumerate() {
            let addr = paddr + 4 * i as u64;
            self.mem.write_u32(addr, *w)?;
            self.blocks.note_store(addr);
        }
        Ok(())
    }

    /// Drops every predecoded block. Required after writing *code*
    /// through the public [`Machine::mem`] field directly (the machine
    /// cannot observe such writes); stores executed by the guest and
    /// [`Machine::load_code`] invalidate automatically.
    pub fn invalidate_block_cache(&mut self) {
        self.blocks.invalidate_all();
    }

    fn translate(
        &mut self,
        vaddr: u64,
        write: bool,
        fetch: bool,
    ) -> Result<(u64, TlbFlags), TrapKind> {
        if self.bare {
            return Ok((vaddr, TlbFlags::rw()));
        }
        let page = vaddr >> PAGE_SHIFT;
        let slot = if fetch {
            &self.utlb_fetch
        } else if write {
            &self.utlb_store
        } else {
            &self.utlb_load
        };
        if let Some((p, f, fl)) = slot {
            if *p == page {
                return Ok(((f << PAGE_SHIFT) | (vaddr & 0xfff), *fl));
            }
        }
        let t = self.tlb.translate(vaddr, write)?;
        let entry = (page, t.paddr >> PAGE_SHIFT, t.flags);
        if fetch {
            self.utlb_fetch = Some(entry);
        } else if write {
            self.utlb_store = Some(entry);
        } else {
            self.utlb_load = Some(entry);
        }
        Ok((t.paddr, t.flags))
    }

    fn trap(&mut self, kind: TrapKind, badvaddr: Option<u64>) -> StepResult {
        let in_ds = self.cpu.in_delay_slot();
        let epc = if in_ds { self.cpu.pc.wrapping_sub(4) } else { self.cpu.pc };
        let code = match kind {
            TrapKind::TlbRefill { write, .. } | TrapKind::TlbInvalid { write, .. } => {
                if write {
                    3
                } else {
                    2
                }
            }
            TrapKind::TlbModified { .. } => 1,
            TrapKind::AddressError { write, .. } => {
                if write {
                    5
                } else {
                    4
                }
            }
            TrapKind::Syscall { .. } => 8,
            TrapKind::Break { .. } => 9,
            TrapKind::ReservedInstruction { .. } => 10,
            TrapKind::CoprocessorUnusable => 11,
            TrapKind::IntegerOverflow => 12,
            TrapKind::CapViolation(_) => 18, // C2E, the CP2 exception code
        };
        self.cpu.cp0.raise(epc, in_ds, code, badvaddr);
        // Syscalls take the exception vector but are the service path,
        // not an error path: they are counted by `Stats::syscalls` only.
        if !matches!(kind, TrapKind::Syscall { .. }) {
            self.stats.exceptions += 1;
        }
        match kind {
            TrapKind::TlbRefill { .. } => {
                self.stats.tlb_refills += 1;
                if let Some(p) = self.prof.as_mut() {
                    p.on_tlb_refill(epc);
                }
            }
            TrapKind::CapViolation(cause) => {
                self.stats.cap_violations += 1;
                self.cpu.cp0.raise_cap(cause);
                emit(&self.sink, || TraceEvent::CapException {
                    code: cause.code().code(),
                    reg: cause.reg(),
                    pc: epc,
                });
                if let Some(p) = self.prof.as_mut() {
                    p.on_cap_exception(epc);
                }
            }
            _ => {}
        }
        StepResult::Trap(Exception { kind, pc: self.cpu.pc })
    }

    /// Resumes past a `SYSCALL`/`BREAK` (or an instruction the kernel
    /// chooses to skip): execution continues at the next architectural
    /// PC, honouring any pending branch.
    pub fn advance_past_trap(&mut self) {
        let next = self.cpu.next_pc;
        self.cpu.jump_to(next);
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] only for *simulator-level* faults (an access
    /// to nonexistent physical memory in bare mode, or a kernel mapping
    /// pointing outside DRAM). All architectural failures are reported
    /// as [`StepResult::Trap`].
    #[allow(clippy::too_many_lines, clippy::missing_panics_doc)]
    pub fn step(&mut self) -> Result<StepResult, MemError> {
        let pc = self.cpu.pc;

        // Instruction fetch: PCC check (Execute-stage validation per
        // Section 4.4), translation, I-cache, memory.
        if let Err(c) = self.cpu.caps.pcc().check_execute(pc) {
            return Ok(self.trap(
                TrapKind::CapViolation(c.with_reg(cheri_core::exception::PCC_FAULT_REG)),
                Some(pc),
            ));
        }
        let (ppc, _) = match self.translate(pc, false, true) {
            Ok(t) => t,
            Err(kind) => return Ok(self.trap(kind, Some(pc))),
        };
        self.stats.cycles += self.hierarchy.fetch(ppc);
        let word = self.mem.read_u32(ppc)?;
        let inst = decode(word);

        let outcome = self.execute(&inst)?;

        // Retire.
        match outcome {
            Outcome::Trap { kind, badvaddr } => return Ok(self.trap(kind, badvaddr)),
            Outcome::Syscall => {
                self.stats.syscalls += 1;
                let _ = self.trap(TrapKind::Syscall { code: 0 }, None);
                // Keep PC at the syscall; the kernel resumes via
                // advance_past_trap(). Reported as its own variant for
                // ergonomic dispatch.
                return Ok(StepResult::Syscall);
            }
            Outcome::Break(code) => {
                let _ = self.trap(TrapKind::Break { code }, None);
                return Ok(StepResult::Break(code));
            }
            _ => {}
        }

        self.stats.instructions += 1;
        self.stats.cycles += 1;
        self.cpu.cp0.count = self.cpu.cp0.count.wrapping_add(1);
        let cap_inst = matches!(inst, Inst::Cheri(_));
        if cap_inst {
            self.stats.cap_instructions += 1;
        }
        emit(&self.sink, || TraceEvent::Retire { pc, cap: cap_inst });
        if self.prof.is_some() {
            self.prof_retire(pc, &inst, &outcome);
        }

        let fallthrough = self.cpu.next_pc;
        match outcome {
            Outcome::Next => {
                self.cpu.pc = fallthrough;
                self.cpu.next_pc = fallthrough.wrapping_add(4);
            }
            Outcome::Branch { target, taken, predicted } => {
                self.stats.branches += 1;
                if predicted != taken {
                    self.stats.mispredicts += 1;
                    self.stats.cycles += MISPREDICT_PENALTY;
                }
                self.cpu.pc = fallthrough;
                self.cpu.next_pc = if taken { target } else { fallthrough.wrapping_add(4) };
            }
            Outcome::Jump { target, indirect } => {
                if indirect {
                    self.stats.cycles += INDIRECT_JUMP_PENALTY;
                }
                self.cpu.pc = fallthrough;
                self.cpu.next_pc = target;
            }
            Outcome::CapJump { target, pcc } => {
                // Capability jumps have no delay slot in this
                // implementation: PCC changes atomically with PC.
                self.stats.cycles += INDIRECT_JUMP_PENALTY;
                self.cpu.caps.set_pcc(pcc);
                self.cpu.jump_to(target);
            }
            Outcome::Trap { .. } | Outcome::Syscall | Outcome::Break(_) => unreachable!(),
        }
        Ok(StepResult::Continue)
    }

    /// Runs until a syscall, break, trap, or `max_steps` instructions.
    ///
    /// When the block cache is enabled and no trace sink is attached,
    /// this takes the predecoded fast path (see the `block` module);
    /// otherwise it is a plain [`Machine::step`] loop. Both paths
    /// produce bit-identical architectural state and statistics.
    ///
    /// # Errors
    ///
    /// Propagates simulator-level [`MemError`]s from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<StepResult, MemError> {
        // The slow path is the traced reference implementation, so any
        // attached sink (which must observe per-instruction events)
        // disables the fast path for the duration.
        if self.cfg.block_cache && self.sink.is_none() {
            return self.run_predecoded(max_steps);
        }
        for _ in 0..max_steps {
            match self.step()? {
                StepResult::Continue => {}
                other => return Ok(other),
            }
        }
        Ok(StepResult::Continue)
    }

    /// The fast `run` loop: per *block* entry it performs the PCC check
    /// and translation that `step` performs per instruction (valid
    /// because a block never leaves its page, PCC cannot change inside
    /// a block — capability jumps and `ERET` end one — and nothing else
    /// runs between the check and the block body), then executes the
    /// predecoded instructions.
    fn run_predecoded(&mut self, max_steps: u64) -> Result<StepResult, MemError> {
        let mut remaining = max_steps;
        while remaining > 0 {
            let pc = self.cpu.pc;
            if let Err(c) = self.cpu.caps.pcc().check_execute(pc) {
                return Ok(self.trap(
                    TrapKind::CapViolation(c.with_reg(cheri_core::exception::PCC_FAULT_REG)),
                    Some(pc),
                ));
            }
            let (ppc, _) = match self.translate(pc, false, true) {
                Ok(t) => t,
                Err(kind) => return Ok(self.trap(kind, Some(pc))),
            };
            let block = match self.blocks.take_valid(ppc) {
                Some(b) => b,
                None => match self.build_block(ppc) {
                    Some(b) => b,
                    None => {
                        // The first word is not readable memory: one
                        // slow step reproduces the exact fetch-charge-
                        // then-`MemError` behaviour.
                        match self.step()? {
                            StepResult::Continue => {
                                remaining -= 1;
                                continue;
                            }
                            other => return Ok(other),
                        }
                    }
                },
            };
            // PCC bounds are one contiguous interval, so if the first
            // and last instruction of the block pass, all do; otherwise
            // run only the covered prefix (at least the first, which
            // was checked above) so the faulting instruction re-enters
            // through the per-instruction check.
            let len = block.insts.len();
            let last = pc.wrapping_add(4 * (len as u64 - 1));
            let covered = if self.cpu.caps.pcc().check_execute(last).is_ok() {
                len
            } else {
                let mut n = 1;
                while n < len
                    && self.cpu.caps.pcc().check_execute(pc.wrapping_add(4 * n as u64)).is_ok()
                {
                    n += 1;
                }
                n
            };
            let limit = remaining.min(covered as u64);
            let outcome = self.run_block(&block, limit);
            // Give the block back (if it went stale, `take_valid`
            // rejects it next entry and it is rebuilt).
            self.blocks.insert(block);
            let (used, exit) = outcome?;
            if let Some(result) = exit {
                return Ok(result);
            }
            debug_assert!(used >= 1, "run_block must make progress");
            remaining -= used.max(1);
        }
        Ok(StepResult::Continue)
    }

    /// Executes up to `limit` instructions of the validated block at
    /// physical `ppc`, batching retire counters and same-line fetch
    /// hits; flushes them at every exit so [`Stats`] is exact whenever
    /// control returns to the caller. Returns how many instructions
    /// retired, plus a [`StepResult`] if the block ended in one.
    #[allow(clippy::too_many_lines)]
    fn run_block(
        &mut self,
        block: &Block,
        limit: u64,
    ) -> Result<(u64, Option<StepResult>), MemError> {
        let ppc = block.ppc;
        let insts = &block.insts;
        let page = (ppc >> PAGE_SHIFT) as usize;
        let len = insts.len();
        let start_pc = self.cpu.pc;
        let line_mask = !(self.cfg.hierarchy.l1.line as u64 - 1);
        // Same-line fetch-hit batching: after `fetch(addr)` fills a
        // line, further fetches to that line are guaranteed hits (only
        // fetches touch L1I), so they are recorded in one batched
        // counter/LRU update at flush time — cycle-free, like any L1I
        // hit.
        let mut cur_line = u64::MAX;
        let mut pending_hits: u64 = 0;
        let mut retired: u64 = 0;
        let mut cap_retired: u64 = 0;
        let mut i: usize = 0;

        macro_rules! flush {
            () => {
                if pending_hits > 0 {
                    self.hierarchy.fetch_hits(cur_line, pending_hits);
                }
                self.stats.instructions += retired;
                self.stats.cycles += retired; // base CPI 1 per retire
                self.stats.cap_instructions += cap_retired;
            };
        }

        loop {
            if retired >= limit || i >= len {
                flush!();
                return Ok((retired, None));
            }
            let pi = insts[i];
            let ipaddr = ppc + 4 * i as u64;
            let iline = ipaddr & line_mask;
            if iline == cur_line {
                pending_hits += 1;
            } else {
                if pending_hits > 0 {
                    self.hierarchy.fetch_hits(cur_line, pending_hits);
                    pending_hits = 0;
                }
                self.stats.cycles += self.hierarchy.fetch(ipaddr);
                cur_line = iline;
            }

            let outcome = match self.execute(&pi.inst) {
                Ok(o) => o,
                Err(e) => {
                    flush!();
                    return Err(e);
                }
            };
            let fallthrough = self.cpu.next_pc;
            let mut pcc_changed = false;
            match outcome {
                Outcome::Next => {
                    self.cpu.pc = fallthrough;
                    self.cpu.next_pc = fallthrough.wrapping_add(4);
                }
                Outcome::Branch { target, taken, predicted } => {
                    self.stats.branches += 1;
                    if predicted != taken {
                        self.stats.mispredicts += 1;
                        self.stats.cycles += MISPREDICT_PENALTY;
                    }
                    self.cpu.pc = fallthrough;
                    self.cpu.next_pc = if taken { target } else { fallthrough.wrapping_add(4) };
                }
                Outcome::Jump { target, indirect } => {
                    if indirect {
                        self.stats.cycles += INDIRECT_JUMP_PENALTY;
                    }
                    self.cpu.pc = fallthrough;
                    self.cpu.next_pc = target;
                }
                Outcome::CapJump { target, pcc } => {
                    self.stats.cycles += INDIRECT_JUMP_PENALTY;
                    self.cpu.caps.set_pcc(pcc);
                    self.cpu.jump_to(target);
                    pcc_changed = true;
                }
                Outcome::Trap { kind, badvaddr } => {
                    flush!();
                    return Ok((retired, Some(self.trap(kind, badvaddr))));
                }
                Outcome::Syscall => {
                    flush!();
                    self.stats.syscalls += 1;
                    let _ = self.trap(TrapKind::Syscall { code: 0 }, None);
                    return Ok((retired, Some(StepResult::Syscall)));
                }
                Outcome::Break(code) => {
                    flush!();
                    let _ = self.trap(TrapKind::Break { code }, None);
                    return Ok((retired, Some(StepResult::Break(code))));
                }
            }

            // Retire (batched; `cp0.count` stays per-instruction exact
            // because `MFC0` can read it mid-block).
            retired += 1;
            self.cpu.cp0.count = self.cpu.cp0.count.wrapping_add(1);
            if pi.flags & F_CAP != 0 {
                cap_retired += 1;
            }
            if self.prof.is_some() {
                self.prof_retire(start_pc.wrapping_add(4 * i as u64), &pi.inst, &outcome);
            }
            i += 1;
            // Exit when control leaves the straight line (taken branch,
            // jump landing, delay-slot entry resolving), when the PCC
            // changed (its bounds validated this block), after a TLB
            // write (the per-entry translation is no longer valid), or
            // when a store dirtied this page (the remaining predecoded
            // slice may be stale — self-modifying code takes effect at
            // the next instruction, exactly like the slow path's
            // per-instruction fetch).
            if pcc_changed
                || pi.flags & F_TLBW != 0
                || self.cpu.pc != start_pc.wrapping_add(4 * i as u64)
                || (pi.flags & F_STORE != 0 && self.blocks.page_gen(page) != block.gen)
            {
                flush!();
                return Ok((retired, None));
            }
        }
    }

    /// Decodes the straight-line run starting at physical `ppc`. Stops
    /// at terminal instructions, after an unconditional jump's delay
    /// slot, at the page boundary, at [`MAX_BLOCK_INSTS`], or at
    /// unreadable memory. Returns `None` if not even the first word is
    /// readable. The caller inserts the block into the cache after
    /// running it; the page is marked as code *here* so that stores
    /// during the block's first execution already bump its generation.
    fn build_block(&mut self, ppc: u64) -> Option<Block> {
        let words_to_page_end = (((ppc | ((1 << PAGE_SHIFT) - 1)) + 1 - ppc) / 4) as usize;
        let max_words = words_to_page_end.min(MAX_BLOCK_INSTS);
        let mut insts: Vec<PInst> = Vec::with_capacity(max_words.min(16));
        while insts.len() < max_words {
            let addr = ppc + 4 * insts.len() as u64;
            let Ok(word) = self.mem.read_u32(addr) else { break };
            let inst = decode(word);
            let flags = pinst_flags(&inst);
            insts.push(PInst { inst, flags });
            if flags & F_TERMINAL != 0 {
                break;
            }
            if flags & F_UNCOND_JUMP != 0 {
                // Include the delay slot, then stop: the instruction
                // after it is the jump target's problem.
                if insts.len() < max_words {
                    if let Ok(w) = self.mem.read_u32(ppc + 4 * insts.len() as u64) {
                        let slot_inst = decode(w);
                        let slot_flags = pinst_flags(&slot_inst);
                        insts.push(PInst { inst: slot_inst, flags: slot_flags });
                    }
                }
                break;
            }
        }
        if insts.is_empty() {
            return None;
        }
        let page = (ppc >> PAGE_SHIFT) as usize;
        self.blocks.mark_code_page(page);
        let gen = self.blocks.page_gen(page);
        Some(Block { ppc, gen, insts: insts.into_boxed_slice() })
    }

    // --- data-access helpers ---------------------------------------------

    /// A legacy (MIPS) data access: implicitly offset and bounded by C0.
    fn legacy_access(
        &mut self,
        base: u8,
        imm: i16,
        width: Width,
        write: bool,
    ) -> Result<u64, Outcome> {
        let addr = self.cpu.get_gpr(base).wrapping_add(imm as i64 as u64);
        let c0 = *self.cpu.caps.c0();
        let vaddr = c0.base().wrapping_add(addr);
        self.checked_access(vaddr, width.bytes(), write, &c0, 0)
    }

    /// A capability-relative data access via `cb`.
    fn cap_access(
        &mut self,
        cb: u8,
        rt: u8,
        imm: i8,
        width: Width,
        write: bool,
    ) -> Result<u64, Outcome> {
        let cap = *self.cpu.caps.get(cb);
        let offset =
            self.cpu.get_gpr(rt).wrapping_add((i64::from(imm) * width.bytes() as i64) as u64);
        let vaddr = cap.base().wrapping_add(offset);
        self.checked_access(vaddr, width.bytes(), write, &cap, cb)
    }

    /// Shared tail: alignment, capability check, translation, cache
    /// timing. Returns the physical address.
    fn checked_access(
        &mut self,
        vaddr: u64,
        size: u64,
        write: bool,
        cap: &Capability,
        cap_reg: u8,
    ) -> Result<u64, Outcome> {
        // `size` is a power of two (`Width::bytes`), so the alignment
        // check is a mask, not a division.
        if vaddr & (size - 1) != 0 {
            return Err(Outcome::Trap {
                kind: TrapKind::AddressError { vaddr, write },
                badvaddr: Some(vaddr),
            });
        }
        let perm = if write { Perms::STORE } else { Perms::LOAD };
        if let Err(c) = cap.check_data_access(vaddr, size, perm) {
            return Err(Outcome::Trap {
                kind: TrapKind::CapViolation(c.with_reg(cap_reg)),
                badvaddr: Some(vaddr),
            });
        }
        let (paddr, _) = self
            .translate(vaddr, write, false)
            .map_err(|kind| Outcome::Trap { kind, badvaddr: Some(vaddr) })?;
        let penalty = self.hierarchy.data(paddr, size, write);
        self.stats.cycles += penalty;
        if write {
            self.stats.stores += 1;
            self.stats.bytes_stored += size;
            self.cpu.ll_reservation = None;
        } else {
            self.stats.loads += 1;
            self.stats.bytes_loaded += size;
        }
        emit(&self.sink, || TraceEvent::DataAccess { write, bytes: size, cycles: penalty });
        Ok(paddr)
    }

    fn load_value(&mut self, paddr: u64, width: Width, unsigned: bool) -> Result<u64, MemError> {
        Ok(match (width, unsigned) {
            (Width::Byte, false) => self.mem.read_u8(paddr)? as i8 as i64 as u64,
            (Width::Byte, true) => u64::from(self.mem.read_u8(paddr)?),
            (Width::Half, false) => self.mem.read_u16(paddr)? as i16 as i64 as u64,
            (Width::Half, true) => u64::from(self.mem.read_u16(paddr)?),
            (Width::Word, false) => self.mem.read_u32(paddr)? as i32 as i64 as u64,
            (Width::Word, true) => u64::from(self.mem.read_u32(paddr)?),
            (Width::Double, _) => self.mem.read_u64(paddr)?,
        })
    }

    fn store_value(&mut self, paddr: u64, width: Width, value: u64) -> Result<(), MemError> {
        match width {
            Width::Byte if self.cfg.fault == Some(FaultInjection::KeepTagOnByteStore) => {
                // Injected bug: patch the byte inside its granule and
                // write the granule back with its tag preserved.
                let granule = self.mem.granule();
                let base = paddr & !(granule - 1);
                let mut buf = vec![0u8; granule as usize];
                let tag = self.mem.read_tagged(base, &mut buf)?;
                buf[(paddr - base) as usize] = value as u8;
                self.mem.write_tagged(base, &buf, tag)
            }
            Width::Byte => self.mem.write_u8(paddr, value as u8),
            Width::Half => self.mem.write_u16(paddr, value as u16),
            Width::Word => self.mem.write_u32(paddr, value as u32),
            Width::Double => self.mem.write_u64(paddr, value),
        }?;
        self.blocks.note_store(paddr);
        Ok(())
    }

    // --- execute -----------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, inst: &Inst) -> Result<Outcome, MemError> {
        let pc = self.cpu.pc;
        let branch_target =
            |offset: i16| pc.wrapping_add(4).wrapping_add((i64::from(offset) << 2) as u64);

        Ok(match *inst {
            Inst::Alu { op, rd, rs, rt } => {
                let a = self.cpu.get_gpr(rs);
                let b = self.cpu.get_gpr(rt);
                let v = match op {
                    AluOp::Addu => sext32((a as u32).wrapping_add(b as u32)),
                    AluOp::Subu => sext32((a as u32).wrapping_sub(b as u32)),
                    AluOp::Add => match (a as u32 as i32).checked_add(b as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluOp::Sub => match (a as u32 as i32).checked_sub(b as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluOp::Daddu => a.wrapping_add(b),
                    AluOp::Dsubu => a.wrapping_sub(b),
                    AluOp::Dadd => match (a as i64).checked_add(b as i64) {
                        Some(v) => v as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluOp::Dsub => match (a as i64).checked_sub(b as i64) {
                        Some(v) => v as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nor => !(a | b),
                    AluOp::Slt => u64::from((a as i64) < (b as i64)),
                    AluOp::Sltu => u64::from(a < b),
                    AluOp::Movz => {
                        if b == 0 {
                            a
                        } else {
                            self.cpu.get_gpr(rd)
                        }
                    }
                    AluOp::Movn => {
                        if b != 0 {
                            a
                        } else {
                            self.cpu.get_gpr(rd)
                        }
                    }
                };
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            Inst::AluImm { op, rt, rs, imm } => {
                let a = self.cpu.get_gpr(rs);
                let se = imm as i16 as i64 as u64;
                let ze = u64::from(imm);
                let v = match op {
                    AluImmOp::Addiu => sext32((a as u32).wrapping_add(se as u32)),
                    AluImmOp::Daddiu => a.wrapping_add(se),
                    AluImmOp::Addi => match (a as u32 as i32).checked_add(se as u32 as i32) {
                        Some(v) => v as i64 as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluImmOp::Daddi => match (a as i64).checked_add(se as i64) {
                        Some(v) => v as u64,
                        None => {
                            return Ok(Outcome::Trap {
                                kind: TrapKind::IntegerOverflow,
                                badvaddr: None,
                            })
                        }
                    },
                    AluImmOp::Slti => u64::from((a as i64) < (se as i64)),
                    AluImmOp::Sltiu => u64::from(a < se),
                    AluImmOp::Andi => a & ze,
                    AluImmOp::Ori => a | ze,
                    AluImmOp::Xori => a ^ ze,
                };
                self.cpu.set_gpr(rt, v);
                Outcome::Next
            }
            Inst::Lui { rt, imm } => {
                self.cpu.set_gpr(rt, sext32(u32::from(imm) << 16));
                Outcome::Next
            }
            Inst::Shift { op, rd, rt, shamt } => {
                let v = shift(op, self.cpu.get_gpr(rt), u32::from(shamt));
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            Inst::ShiftV { op, rd, rt, rs } => {
                let mask = match op {
                    ShiftOp::Sll | ShiftOp::Srl | ShiftOp::Sra => 31,
                    _ => 63,
                };
                let v = shift(op, self.cpu.get_gpr(rt), (self.cpu.get_gpr(rs) as u32) & mask);
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            Inst::MulDiv { op, rs, rt } => {
                let a = self.cpu.get_gpr(rs);
                let b = self.cpu.get_gpr(rt);
                let (hi, lo, cyc) = muldiv(op, a, b, self.cfg.mul_penalty, self.cfg.div_penalty);
                self.cpu.hi = hi;
                self.cpu.lo = lo;
                self.stats.cycles += cyc;
                Outcome::Next
            }
            Inst::Mfhi { rd } => {
                let hi = self.cpu.hi;
                self.cpu.set_gpr(rd, hi);
                Outcome::Next
            }
            Inst::Mflo { rd } => {
                let lo = self.cpu.lo;
                self.cpu.set_gpr(rd, lo);
                Outcome::Next
            }
            Inst::Mthi { rs } => {
                self.cpu.hi = self.cpu.get_gpr(rs);
                Outcome::Next
            }
            Inst::Mtlo { rs } => {
                self.cpu.lo = self.cpu.get_gpr(rs);
                Outcome::Next
            }
            Inst::Branch { cond, rs, rt, offset } => {
                let a = self.cpu.get_gpr(rs) as i64;
                let b = self.cpu.get_gpr(rt) as i64;
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lez => a <= 0,
                    BranchCond::Gtz => a > 0,
                    BranchCond::Ltz => a < 0,
                    BranchCond::Gez => a >= 0,
                };
                let predicted = self.predictor.predict(pc);
                self.predictor.update(pc, taken);
                Outcome::Branch { target: branch_target(offset), taken, predicted }
            }
            Inst::BranchLink { cond, rs, offset } => {
                let a = self.cpu.get_gpr(rs) as i64;
                let taken = match cond {
                    BranchCond::Ltz => a < 0,
                    BranchCond::Gez => a >= 0,
                    _ => unreachable!("decoder only produces Ltz/Gez links"),
                };
                self.cpu.set_gpr(reg::RA, pc.wrapping_add(8));
                let predicted = self.predictor.predict(pc);
                self.predictor.update(pc, taken);
                Outcome::Branch { target: branch_target(offset), taken, predicted }
            }
            Inst::J { target } => Outcome::Jump {
                target: (pc.wrapping_add(4) & !0x0fff_ffff) | (u64::from(target) << 2),
                indirect: false,
            },
            Inst::Jal { target } => {
                self.cpu.set_gpr(reg::RA, pc.wrapping_add(8));
                Outcome::Jump {
                    target: (pc.wrapping_add(4) & !0x0fff_ffff) | (u64::from(target) << 2),
                    indirect: false,
                }
            }
            Inst::Jr { rs } => Outcome::Jump { target: self.cpu.get_gpr(rs), indirect: true },
            Inst::Jalr { rd, rs } => {
                let target = self.cpu.get_gpr(rs);
                self.cpu.set_gpr(rd, pc.wrapping_add(8));
                Outcome::Jump { target, indirect: true }
            }
            Inst::Load { width, rt, base, imm, unsigned } => {
                match self.legacy_access(base, imm, width, false) {
                    Ok(paddr) => {
                        let v = self.load_value(paddr, width, unsigned)?;
                        self.cpu.set_gpr(rt, v);
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            Inst::Store { width, rt, base, imm } => {
                match self.legacy_access(base, imm, width, true) {
                    Ok(paddr) => {
                        let v = self.cpu.get_gpr(rt);
                        self.store_value(paddr, width, v)?;
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            Inst::LoadLinked { width, rt, base, imm } => {
                match self.legacy_access(base, imm, width, false) {
                    Ok(paddr) => {
                        let v = self.load_value(paddr, width, false)?;
                        self.cpu.set_gpr(rt, v);
                        self.cpu.ll_reservation = Some(paddr);
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            Inst::StoreCond { width, rt, base, imm } => {
                let reserved = self.cpu.ll_reservation;
                match self.legacy_access(base, imm, width, true) {
                    Ok(paddr) => {
                        if reserved == Some(paddr) {
                            let v = self.cpu.get_gpr(rt);
                            self.store_value(paddr, width, v)?;
                            self.cpu.set_gpr(rt, 1);
                        } else {
                            self.cpu.set_gpr(rt, 0);
                        }
                        self.cpu.ll_reservation = None;
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            Inst::Syscall { .. } => Outcome::Syscall,
            Inst::Break { code } => Outcome::Break(code),
            Inst::Mfc0 { rt, rd } => {
                let v = self.cpu.cp0.read(rd);
                self.cpu.set_gpr(rt, v);
                Outcome::Next
            }
            Inst::Mtc0 { rt, rd } => {
                let v = self.cpu.get_gpr(rt);
                self.cpu.cp0.write(rd, v);
                Outcome::Next
            }
            Inst::Tlbwi | Inst::Tlbwr => {
                let entry = self.entry_from_cp0();
                if matches!(inst, Inst::Tlbwi) {
                    let idx = (self.cpu.cp0.index as usize) % self.tlb.len();
                    self.tlb.write_indexed(idx, entry);
                } else {
                    self.tlb.write_random(entry);
                }
                self.invalidate_utlb();
                Outcome::Next
            }
            Inst::Tlbp => {
                let vaddr = self.cpu.cp0.entryhi;
                self.cpu.cp0.index = match self.tlb.probe(vaddr) {
                    Some(i) => i as u64,
                    None => 1 << 31, // P bit: not found
                };
                Outcome::Next
            }
            Inst::Tlbr => {
                let idx = (self.cpu.cp0.index as usize) % self.tlb.len();
                let e = self.tlb.read_indexed(idx);
                self.cpu.cp0.entryhi = e.vpn2 << (PAGE_SHIFT + 1);
                self.cpu.cp0.entrylo0 = lo_from_flags(e.pfn0, e.flags0);
                self.cpu.cp0.entrylo1 = lo_from_flags(e.pfn1, e.flags1);
                Outcome::Next
            }
            Inst::Eret => {
                let epc = self.cpu.cp0.epc;
                self.cpu.jump_to(epc);
                // ERET has no delay slot; model as a no-delay jump by
                // treating it like a capability jump with unchanged PCC.
                let pcc = *self.cpu.caps.pcc();
                Outcome::CapJump { target: epc, pcc }
            }
            Inst::Cheri(c) => {
                if !self.cfg.cheri_enabled {
                    return Ok(Outcome::Trap {
                        kind: TrapKind::CoprocessorUnusable,
                        badvaddr: None,
                    });
                }
                self.execute_cheri(&c)?
            }
            Inst::Reserved { word } => {
                Outcome::Trap { kind: TrapKind::ReservedInstruction { word }, badvaddr: None }
            }
        })
    }

    fn entry_from_cp0(&self) -> crate::tlb::TlbEntry {
        crate::tlb::TlbEntry {
            vpn2: self.cpu.cp0.entryhi >> (PAGE_SHIFT + 1),
            pfn0: (self.cpu.cp0.entrylo0 >> 6) & 0xf_ffff_ffff,
            flags0: flags_from_lo(self.cpu.cp0.entrylo0),
            pfn1: (self.cpu.cp0.entrylo1 >> 6) & 0xf_ffff_ffff,
            flags1: flags_from_lo(self.cpu.cp0.entrylo1),
            present: true,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn execute_cheri(&mut self, c: &CheriInst) -> Result<Outcome, MemError> {
        let pc = self.cpu.pc;
        let branch_target =
            |offset: i16| pc.wrapping_add(4).wrapping_add((i64::from(offset) << 2) as u64);
        let cap_trap = |cause: CapCause, reg: u8| Outcome::Trap {
            kind: TrapKind::CapViolation(cause.with_reg(reg)),
            badvaddr: None,
        };

        Ok(match *c {
            CheriInst::CGetBase { rd, cb } => {
                let v = self.cpu.caps.get(cb).base();
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            CheriInst::CGetLen { rd, cb } => {
                let v = self.cpu.caps.get(cb).length();
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            CheriInst::CGetTag { rd, cb } => {
                let v = u64::from(self.cpu.caps.get(cb).tag());
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            CheriInst::CGetPerm { rd, cb } => {
                let v = u64::from(self.cpu.caps.get(cb).perms().bits());
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            CheriInst::CGetPCC { rd, cd } => {
                self.cpu.set_gpr(rd, pc);
                let pcc = *self.cpu.caps.pcc();
                self.cpu.caps.set(cd, pcc);
                Outcome::Next
            }
            CheriInst::CIncBase { cd, cb, rt } => {
                let delta = self.cpu.get_gpr(rt);
                match self.cpu.caps.get(cb).inc_base(delta) {
                    Ok(ncap) => {
                        self.cpu.caps.set(cd, ncap);
                        Outcome::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            CheriInst::CSetLen { cd, cb, rt } => {
                let len = self.cpu.get_gpr(rt);
                match self.cpu.caps.get(cb).set_len(len) {
                    Ok(ncap) => {
                        self.cpu.caps.set(cd, ncap);
                        Outcome::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            CheriInst::CClearTag { cd, cb } => {
                let ncap = self.cpu.caps.get(cb).clear_tag();
                self.cpu.caps.set(cd, ncap);
                Outcome::Next
            }
            CheriInst::CAndPerm { cd, cb, rt } => {
                let mask = Perms::from_bits_truncate(self.cpu.get_gpr(rt) as u32);
                match self.cpu.caps.get(cb).and_perm(mask) {
                    Ok(ncap) => {
                        self.cpu.caps.set(cd, ncap);
                        Outcome::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            CheriInst::CToPtr { rd, cb, ct } => {
                let v = self.cpu.caps.get(cb).to_ptr(self.cpu.caps.get(ct));
                self.cpu.set_gpr(rd, v);
                Outcome::Next
            }
            CheriInst::CFromPtr { cd, cb, rt } => {
                let ptr = self.cpu.get_gpr(rt);
                match Capability::from_ptr(self.cpu.caps.get(cb), ptr) {
                    Ok(ncap) => {
                        self.cpu.caps.set(cd, ncap);
                        Outcome::Next
                    }
                    Err(e) => cap_trap(e, cb),
                }
            }
            CheriInst::CBTU { cb, offset } | CheriInst::CBTS { cb, offset } => {
                let tag = self.cpu.caps.get(cb).tag();
                let taken = match c {
                    CheriInst::CBTU { .. } => !tag,
                    _ => tag,
                };
                let predicted = self.predictor.predict(pc);
                self.predictor.update(pc, taken);
                Outcome::Branch { target: branch_target(offset), taken, predicted }
            }
            CheriInst::CLC { cd, cb, rt, imm } => {
                let csize = self.cfg.cap_format.size();
                let cap = *self.cpu.caps.get(cb);
                let offset =
                    self.cpu.get_gpr(rt).wrapping_add((i64::from(imm) * csize as i64) as u64);
                let vaddr = cap.base().wrapping_add(offset);
                if let Err(e) = cap.check_cap_access_g(vaddr, false, csize) {
                    return Ok(cap_trap(e, cb));
                }
                let (paddr, flags) = match self.translate(vaddr, false, false) {
                    Ok(t) => t,
                    Err(kind) => return Ok(Outcome::Trap { kind, badvaddr: Some(vaddr) }),
                };
                let penalty = self.hierarchy.data(paddr, csize, false);
                self.stats.cycles += penalty;
                self.stats.loads += 1;
                self.stats.bytes_loaded += csize;
                self.stats.cap_loads += 1;
                emit(&self.sink, || TraceEvent::DataAccess {
                    write: false,
                    bytes: csize,
                    cycles: penalty,
                });
                let before = self.mem.tag_stats().misses;
                let mut loaded = self.load_cap_formatted(paddr)?;
                self.charge_tag_misses(before);
                // A page without the capability-load permission strips
                // tags on load (Section 6.1's sharing-without-capabilities).
                if !self.bare && !flags.cap_load {
                    loaded = loaded.clear_tag();
                }
                self.cpu.caps.set(cd, loaded);
                Outcome::Next
            }
            CheriInst::CSC { cs, cb, rt, imm } => {
                let csize = self.cfg.cap_format.size();
                let cap = *self.cpu.caps.get(cb);
                let offset =
                    self.cpu.get_gpr(rt).wrapping_add((i64::from(imm) * csize as i64) as u64);
                let vaddr = cap.base().wrapping_add(offset);
                if let Err(e) = cap.check_cap_access_g(vaddr, true, csize) {
                    return Ok(cap_trap(e, cb));
                }
                let stored = *self.cpu.caps.get(cs);
                let (paddr, flags) = match self.translate(vaddr, true, false) {
                    Ok(t) => t,
                    Err(kind) => return Ok(Outcome::Trap { kind, badvaddr: Some(vaddr) }),
                };
                if !self.bare && stored.tag() && !flags.cap_store {
                    return Ok(cap_trap(CapCause::new(CapExcCode::TlbProhibitStoreCap, cs), cs));
                }
                if self.cfg.cap_format == CapFormat::C128
                    && stored.tag()
                    && Compressed128::try_from_cap(&stored).is_err()
                {
                    // The 128-bit format cannot represent this region
                    // (Low-Fat alignment rules, Section 4.1).
                    return Ok(cap_trap(CapCause::new(CapExcCode::AlignmentViolation, cs), cs));
                }
                let penalty = self.hierarchy.data(paddr, csize, true);
                self.stats.cycles += penalty;
                self.stats.stores += 1;
                self.stats.bytes_stored += csize;
                self.stats.cap_stores += 1;
                emit(&self.sink, || TraceEvent::DataAccess {
                    write: true,
                    bytes: csize,
                    cycles: penalty,
                });
                let before = self.mem.tag_stats().misses;
                self.store_cap_formatted(paddr, &stored)?;
                self.charge_tag_misses(before);
                self.cpu.ll_reservation = None;
                Outcome::Next
            }
            CheriInst::CLoad { width, rd, cb, rt, imm, unsigned } => {
                match self.cap_access(cb, rt, imm, width, false) {
                    Ok(paddr) => {
                        let v = self.load_value(paddr, width, unsigned)?;
                        self.cpu.set_gpr(rd, v);
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            CheriInst::CStore { width, rs, cb, rt, imm } => {
                match self.cap_access(cb, rt, imm, width, true) {
                    Ok(paddr) => {
                        let v = self.cpu.get_gpr(rs);
                        self.store_value(paddr, width, v)?;
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            CheriInst::CLLD { rd, cb, rt, imm } => {
                match self.cap_access(cb, rt, imm, Width::Double, false) {
                    Ok(paddr) => {
                        let v = self.load_value(paddr, Width::Double, false)?;
                        self.cpu.set_gpr(rd, v);
                        self.cpu.ll_reservation = Some(paddr);
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            CheriInst::CSCD { rs, cb, rt, imm } => {
                let reserved = self.cpu.ll_reservation;
                match self.cap_access(cb, rt, imm, Width::Double, true) {
                    Ok(paddr) => {
                        if reserved == Some(paddr) {
                            let v = self.cpu.get_gpr(rs);
                            self.store_value(paddr, Width::Double, v)?;
                            self.cpu.set_gpr(rs, 1);
                        } else {
                            self.cpu.set_gpr(rs, 0);
                        }
                        self.cpu.ll_reservation = None;
                        Outcome::Next
                    }
                    Err(o) => o,
                }
            }
            CheriInst::CJR { cb } => {
                let cap = *self.cpu.caps.get(cb);
                if let Err(e) = cap.check_execute(cap.base()) {
                    return Ok(cap_trap(e, cb));
                }
                Outcome::CapJump { target: cap.base(), pcc: cap }
            }
            CheriInst::CJALR { cd, cb } => {
                let cap = *self.cpu.caps.get(cb);
                if let Err(e) = cap.check_execute(cap.base()) {
                    return Ok(cap_trap(e, cb));
                }
                // Link capability: the current PCC advanced to the return
                // point (pc + 4; capability jumps have no delay slot here).
                let pcc = *self.cpu.caps.pcc();
                let ret = pc.wrapping_add(4);
                match pcc.inc_base(ret.wrapping_sub(pcc.base())) {
                    Ok(link) => self.cpu.caps.set(cd, link),
                    Err(e) => return Ok(cap_trap(e, cb)),
                }
                Outcome::CapJump { target: cap.base(), pcc: cap }
            }
        })
    }

    /// Reads an in-memory capability in the configured format.
    fn load_cap_formatted(&mut self, paddr: u64) -> Result<Capability, MemError> {
        match self.cfg.cap_format {
            CapFormat::C256 => self.mem.read_cap(paddr),
            CapFormat::C128 => {
                let mut buf = [0u8; 16];
                let tag = self.mem.read_tagged(paddr, &mut buf)?;
                let decoded = Compressed128::from_bytes(&buf).decompress();
                Ok(if tag { decoded } else { decoded.clear_tag() })
            }
        }
    }

    /// Writes a register capability in the configured format. In the
    /// 128-bit format an untagged register stores as a zeroed granule:
    /// the format cannot carry arbitrary data bits (representability was
    /// checked for tagged values before calling this).
    fn store_cap_formatted(&mut self, paddr: u64, cap: &Capability) -> Result<(), MemError> {
        match self.cfg.cap_format {
            CapFormat::C256 => self.mem.write_cap(paddr, cap),
            CapFormat::C128 => {
                let bytes = match Compressed128::try_from_cap(cap) {
                    Ok(z) => z.to_bytes(),
                    Err(_) => [0u8; 16], // untagged (e.g. NULL): no bits to preserve
                };
                self.mem.write_tagged(paddr, &bytes, cap.tag())
            }
        }?;
        self.blocks.note_store(paddr);
        Ok(())
    }

    fn charge_tag_misses(&mut self, misses_before: u64) {
        let delta = self.mem.tag_stats().misses - misses_before;
        self.stats.cycles += delta * self.cfg.hierarchy.dram_latency;
    }

    /// Exports every legacy counter — [`Stats`], the per-cache hit/miss
    /// fields, DRAM traffic, and the tag-controller statistics — into
    /// one [`Snapshot`] under the canonical `cheri_trace::names`. The
    /// legacy structs stay authoritative (their public accessors are
    /// unchanged); this is the common export used for run-to-run diffs
    /// and for cross-checking an event-driven `AggregateSink`.
    #[must_use]
    pub fn metrics(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let s = &self.stats;
        snap.set_counter(names::INSTRUCTIONS, s.instructions);
        snap.set_counter("sim.cycles", s.cycles);
        snap.set_counter(names::CAP_INSTRUCTIONS, s.cap_instructions);
        snap.set_counter("sim.branches", s.branches);
        snap.set_counter("sim.mispredicts", s.mispredicts);
        snap.set_counter("sim.exceptions", s.exceptions);
        snap.set_counter(names::LOADS, s.loads);
        snap.set_counter(names::STORES, s.stores);
        snap.set_counter("mem.bytes_loaded", s.bytes_loaded);
        snap.set_counter("mem.bytes_stored", s.bytes_stored);
        snap.set_counter("mem.cap_loads", s.cap_loads);
        snap.set_counter("mem.cap_stores", s.cap_stores);
        snap.set_counter(names::SYSCALLS, s.syscalls);
        snap.set_counter(names::TLB_REFILLS, s.tlb_refills);
        snap.set_counter(names::CAP_EXCEPTIONS, s.cap_violations);
        let h = &self.hierarchy;
        snap.set_counter(names::L1I_HITS, h.l1i.hits);
        snap.set_counter(names::L1I_MISSES, h.l1i.misses);
        snap.set_counter(names::L1I_WRITEBACKS, h.l1i.writebacks);
        snap.set_counter(names::L1D_HITS, h.l1d.hits);
        snap.set_counter(names::L1D_MISSES, h.l1d.misses);
        snap.set_counter(names::L1D_WRITEBACKS, h.l1d.writebacks);
        snap.set_counter(names::L2_HITS, h.l2.hits);
        snap.set_counter(names::L2_MISSES, h.l2.misses);
        snap.set_counter(names::L2_WRITEBACKS, h.l2.writebacks);
        snap.set_counter("dram.accesses", h.dram_accesses);
        snap.set_counter("dram.bytes", h.dram_bytes);
        let t = self.mem.tag_stats();
        snap.set_counter(names::TAG_TABLE_READS, t.lookups);
        snap.set_counter(names::TAG_TABLE_WRITES, t.updates);
        snap.set_counter(names::TAG_CACHE_HITS, t.hits);
        snap.set_counter(names::TAG_CACHE_MISSES, t.misses);
        snap.set_counter(names::TAG_CACHE_WRITEBACKS, t.writebacks);
        snap
    }

    /// The identity half of a snapshot: everything needed to verify (or
    /// rebuild) a compatible machine. The `block_cache` flag and trace
    /// sinks are deliberately *not* recorded — both are architecturally
    /// transparent, so a snapshot taken with the block cache on restores
    /// bit-identically onto a machine running with it off (the
    /// transparency tests rely on this).
    fn export_config(&self) -> cheri_snap::ConfigState {
        let h = &self.cfg.hierarchy;
        cheri_snap::ConfigState {
            mem_bytes: self.cfg.mem_bytes as u64,
            tlb_entries: self.cfg.tlb_entries as u64,
            l1: [h.l1.size as u64, h.l1.line as u64, h.l1.ways as u64],
            l2: [h.l2.size as u64, h.l2.line as u64, h.l2.ways as u64],
            l2_latency: h.l2_latency,
            dram_latency: h.dram_latency,
            cheri_enabled: self.cfg.cheri_enabled,
            tag_cache_bytes: self.cfg.tag_cache_bytes as u64,
            cap_size: self.cfg.cap_format.size(),
            bht_entries: self.cfg.bht_entries as u64,
            mul_penalty: self.cfg.mul_penalty,
            div_penalty: self.cfg.div_penalty,
        }
    }

    /// Reconstructs a [`MachineConfig`] from a snapshot's identity
    /// section. `block_cache` is a caller decision (it is not part of
    /// the snapshot).
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the recorded capability size names
    /// no known format.
    pub fn config_from_state(
        s: &cheri_snap::ConfigState,
        block_cache: bool,
    ) -> Result<MachineConfig, cheri_snap::SnapError> {
        let cap_format = match s.cap_size {
            32 => CapFormat::C256,
            16 => CapFormat::C128,
            other => {
                return Err(cheri_snap::SnapError(format!(
                    "unknown capability size {other} (expected 16 or 32)"
                )))
            }
        };
        Ok(MachineConfig {
            mem_bytes: s.mem_bytes as usize,
            tlb_entries: s.tlb_entries as usize,
            hierarchy: HierarchyParams {
                l1: crate::cache::CacheParams {
                    size: s.l1[0] as usize,
                    line: s.l1[1] as usize,
                    ways: s.l1[2] as usize,
                },
                l2: crate::cache::CacheParams {
                    size: s.l2[0] as usize,
                    line: s.l2[1] as usize,
                    ways: s.l2[2] as usize,
                },
                l2_latency: s.l2_latency,
                dram_latency: s.dram_latency,
            },
            cheri_enabled: s.cheri_enabled,
            tag_cache_bytes: s.tag_cache_bytes as usize,
            cap_format,
            bht_entries: s.bht_entries as usize,
            mul_penalty: s.mul_penalty,
            div_penalty: s.div_penalty,
            block_cache,
            fault: None,
        })
    }

    fn export_cpu(&self) -> cheri_snap::CpuState {
        let cp0 = &self.cpu.cp0;
        let mut caps = Vec::with_capacity(33);
        for i in 0..32u8 {
            caps.push(cap_to_state(self.cpu.caps.get(i)));
        }
        caps.push(cap_to_state(self.cpu.caps.pcc()));
        cheri_snap::CpuState {
            gpr: self.cpu.gpr,
            hi: self.cpu.hi,
            lo: self.cpu.lo,
            pc: self.cpu.pc,
            next_pc: self.cpu.next_pc,
            cp0: [
                cp0.index,
                cp0.entrylo0,
                cp0.entrylo1,
                cp0.badvaddr,
                cp0.count,
                cp0.entryhi,
                cp0.status,
                cp0.cause,
                cp0.epc,
                cp0.capcause,
            ],
            caps,
            ll_reservation: self.cpu.ll_reservation,
        }
    }

    fn import_cpu(&mut self, s: &cheri_snap::CpuState) -> Result<(), cheri_snap::SnapError> {
        if s.caps.len() != 33 {
            return Err(cheri_snap::SnapError(format!(
                "expected 33 capability registers (c0..c31 + PCC), snapshot has {}",
                s.caps.len()
            )));
        }
        self.cpu.gpr = s.gpr;
        self.cpu.gpr[0] = 0;
        self.cpu.hi = s.hi;
        self.cpu.lo = s.lo;
        self.cpu.pc = s.pc;
        self.cpu.next_pc = s.next_pc;
        let cp0 = &mut self.cpu.cp0;
        cp0.index = s.cp0[0];
        cp0.entrylo0 = s.cp0[1];
        cp0.entrylo1 = s.cp0[2];
        cp0.badvaddr = s.cp0[3];
        cp0.count = s.cp0[4];
        cp0.entryhi = s.cp0[5];
        cp0.status = s.cp0[6];
        cp0.cause = s.cp0[7];
        cp0.epc = s.cp0[8];
        cp0.capcause = s.cp0[9];
        for i in 0..32u8 {
            self.cpu.caps.set(i, cap_from_state(&s.caps[usize::from(i)]));
        }
        self.cpu.caps.set_pcc(cap_from_state(&s.caps[32]));
        self.cpu.ll_reservation = s.ll_reservation;
        Ok(())
    }

    /// Captures the complete machine state as a deterministic
    /// [`cheri_snap::MachineState`]: architectural state (CPU, CP0, CP2,
    /// TLB, tagged memory) *and* the timing model's microarchitectural
    /// state (caches, tag cache, branch predictor, statistics), so a
    /// restored run is bit-identical — same results, same cycle counts —
    /// to one that never stopped. Reconstructible acceleration state
    /// (micro-TLBs, the predecoded block cache) and harness attachments
    /// (trace sinks) are excluded; they regenerate on demand and never
    /// affect either results or timing.
    #[must_use]
    pub fn snapshot(&self) -> cheri_snap::MachineState {
        cheri_snap::MachineState {
            config: self.export_config(),
            cpu: self.export_cpu(),
            tlb: self.tlb.export_state(),
            hierarchy: self.hierarchy.export_state(),
            predictor: self.predictor.export_state(),
            stats: self.stats.to_array(),
            bare: self.bare,
            mem: self.mem.export_state(),
        }
    }

    /// Restores state captured by [`Machine::snapshot`] onto this
    /// machine. The machine must have a compatible identity (same memory
    /// size, cache geometry, capability format, …); the `block_cache`
    /// setting may differ, since it is architecturally transparent.
    /// Micro-TLBs and the predecoded block cache are invalidated — they
    /// cache derivations of the state that was just replaced.
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] naming the first mismatch; on error the
    /// machine may be partially restored and must not be resumed.
    pub fn restore(&mut self, s: &cheri_snap::MachineState) -> Result<(), cheri_snap::SnapError> {
        let mine = self.export_config();
        if mine != s.config {
            return Err(cheri_snap::SnapError(format!(
                "machine identity mismatch: running {mine:?}, snapshot {:?}",
                s.config
            )));
        }
        self.import_cpu(&s.cpu)?;
        self.tlb.import_state(&s.tlb)?;
        self.hierarchy.import_state(&s.hierarchy)?;
        self.predictor.import_state(&s.predictor)?;
        self.stats = Stats::from_array(s.stats);
        self.bare = s.bare;
        self.mem.import_state(&s.mem)?;
        self.invalidate_utlb();
        self.blocks.invalidate_all();
        // Profile state is host-side only and never serialized: a
        // restored machine starts a fresh observation window, with the
        // delta baseline reseeded from the restored counters (the tag
        // tick is host-monotone and deliberately not reset).
        if self.prof.is_some() {
            let seed = self.prof_sample();
            if let Some(p) = self.prof.as_mut() {
                p.reset(seed);
            }
        }
        Ok(())
    }

    /// Builds a fresh machine from a snapshot: reconstructs the
    /// configuration (with the caller's `block_cache` choice) and
    /// restores the state. This is what `snapreplay` uses to resurrect
    /// a machine with no help from the harness that took the snapshot.
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the identity section is malformed or
    /// the state fails to restore.
    pub fn from_state(
        s: &cheri_snap::MachineState,
        block_cache: bool,
    ) -> Result<Machine, cheri_snap::SnapError> {
        let cfg = Machine::config_from_state(&s.config, block_cache)?;
        let mut m = Machine::new(cfg);
        m.restore(s)?;
        Ok(m)
    }
}

/// Converts a capability to its snapshot image: the tag plus the four
/// big-endian words of the 256-bit memory representation (Figure 1).
/// Shared with `cheri-os`, which snapshots saved contexts and domain
/// capabilities in the same format.
#[must_use]
pub fn cap_to_state(cap: &Capability) -> cheri_snap::CapState {
    let bytes = cap.to_bytes();
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_be_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte slice"));
    }
    cheri_snap::CapState { tag: cap.tag(), words }
}

/// Inverse of [`cap_to_state`].
#[must_use]
pub fn cap_from_state(s: &cheri_snap::CapState) -> Capability {
    let mut bytes = [0u8; 32];
    for (i, w) in s.words.iter().enumerate() {
        bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_be_bytes());
    }
    Capability::from_bytes(&bytes, s.tag)
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &format_args!("{:#x}", self.cpu.pc))
            .field("instructions", &self.stats.instructions)
            .field("bare", &self.bare)
            .finish()
    }
}

#[inline]
fn sext32(v: u32) -> u64 {
    v as i32 as i64 as u64
}

fn shift(op: ShiftOp, v: u64, s: u32) -> u64 {
    match op {
        ShiftOp::Sll => sext32((v as u32) << s),
        ShiftOp::Srl => sext32((v as u32) >> s),
        ShiftOp::Sra => sext32((((v as u32) as i32) >> s) as u32),
        ShiftOp::Dsll => v << s,
        ShiftOp::Dsrl => v >> s,
        ShiftOp::Dsra => ((v as i64) >> s) as u64,
        ShiftOp::Dsll32 => v << (s + 32),
        ShiftOp::Dsrl32 => v >> (s + 32),
        ShiftOp::Dsra32 => ((v as i64) >> (s + 32)) as u64,
    }
}

fn muldiv(op: MulDivOp, a: u64, b: u64, mul_penalty: u64, div_penalty: u64) -> (u64, u64, u64) {
    match op {
        MulDivOp::Mult => {
            let p = i64::from(a as u32 as i32) * i64::from(b as u32 as i32);
            (sext32((p >> 32) as u32), sext32(p as u32), mul_penalty)
        }
        MulDivOp::Multu => {
            let p = u64::from(a as u32) * u64::from(b as u32);
            (sext32((p >> 32) as u32), sext32(p as u32), mul_penalty)
        }
        MulDivOp::Dmult => {
            let p = i128::from(a as i64) * i128::from(b as i64);
            ((p >> 64) as u64, p as u64, mul_penalty)
        }
        MulDivOp::Dmultu => {
            let p = u128::from(a) * u128::from(b);
            ((p >> 64) as u64, p as u64, mul_penalty)
        }
        MulDivOp::Div => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            if y == 0 {
                (0, 0, div_penalty)
            } else {
                (sext32(x.wrapping_rem(y) as u32), sext32(x.wrapping_div(y) as u32), div_penalty)
            }
        }
        MulDivOp::Divu => {
            let (x, y) = (a as u32, b as u32);
            if y == 0 {
                (0, 0, div_penalty)
            } else {
                (sext32(x % y), sext32(x / y), div_penalty)
            }
        }
        MulDivOp::Ddiv => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                (0, 0, div_penalty)
            } else {
                (x.wrapping_rem(y) as u64, x.wrapping_div(y) as u64, div_penalty)
            }
        }
        MulDivOp::Ddivu => {
            if b == 0 {
                (0, 0, div_penalty)
            } else {
                (a % b, a / b, div_penalty)
            }
        }
    }
}

fn flags_from_lo(lo: u64) -> TlbFlags {
    TlbFlags {
        valid: lo & 0b10 != 0,
        dirty: lo & 0b100 != 0,
        cap_load: lo & (1 << 62) != 0,
        cap_store: lo & (1 << 63) != 0,
    }
}

fn lo_from_flags(pfn: u64, f: TlbFlags) -> u64 {
    (pfn << 6)
        | if f.valid { 0b10 } else { 0 }
        | if f.dirty { 0b100 } else { 0 }
        | if f.cap_load { 1 << 62 } else { 0 }
        | if f.cap_store { 1 << 63 } else { 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::encode;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
        m.cpu.jump_to(0x1000);
        m
    }

    fn load(m: &mut Machine, insts: &[Inst]) {
        let words: Vec<u32> = insts.iter().map(encode).collect();
        m.load_code(0x1000, &words).unwrap();
    }

    fn step_n(m: &mut Machine, n: usize) {
        for _ in 0..n {
            assert_eq!(m.step().unwrap(), StepResult::Continue);
        }
    }

    #[test]
    fn ori_lui_build_constant() {
        let mut m = machine();
        load(
            &mut m,
            &[
                Inst::Lui { rt: 8, imm: 0x1234 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 8, imm: 0x5678 },
            ],
        );
        step_n(&mut m, 2);
        assert_eq!(m.cpu.gpr[8], 0x1234_5678);
    }

    #[test]
    fn lui_sign_extends() {
        let mut m = machine();
        load(&mut m, &[Inst::Lui { rt: 8, imm: 0x8000 }]);
        step_n(&mut m, 1);
        assert_eq!(m.cpu.gpr[8], 0xffff_ffff_8000_0000);
    }

    #[test]
    fn addu_wraps_32_and_sign_extends() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x7fff_ffff);
        m.cpu.set_gpr(9, 1);
        load(&mut m, &[Inst::Alu { op: AluOp::Addu, rd: 10, rs: 8, rt: 9 }]);
        step_n(&mut m, 1);
        assert_eq!(m.cpu.gpr[10], 0xffff_ffff_8000_0000);
    }

    #[test]
    fn add_overflow_traps() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x7fff_ffff);
        m.cpu.set_gpr(9, 1);
        load(&mut m, &[Inst::Alu { op: AluOp::Add, rd: 10, rs: 8, rt: 9 }]);
        match m.step().unwrap() {
            StepResult::Trap(e) => assert_eq!(e.kind, TrapKind::IntegerOverflow),
            other => panic!("expected trap, got {other:?}"),
        }
        // Destination unmodified.
        assert_eq!(m.cpu.gpr[10], 0);
    }

    #[test]
    fn branch_with_delay_slot() {
        let mut m = machine();
        // beq $0,$0,+2 ; ori $8,$0,1 (delay slot) ; ori $9,$0,2 (skipped) ;
        // ori $10,$0,3 (target)
        load(
            &mut m,
            &[
                Inst::Branch { cond: BranchCond::Eq, rs: 0, rt: 0, offset: 2 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 2 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 3 },
            ],
        );
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[8], 1, "delay slot must execute");
        assert_eq!(m.cpu.gpr[9], 0, "fall-through must be skipped");
        assert_eq!(m.cpu.gpr[10], 3, "target must execute");
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let mut m = machine();
        m.cpu.set_gpr(8, 5);
        load(
            &mut m,
            &[
                Inst::Branch { cond: BranchCond::Eq, rs: 8, rt: 0, offset: 4 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 2 },
            ],
        );
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[9], 1);
        assert_eq!(m.cpu.gpr[10], 2);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let mut m = machine();
        // 0x1000: jal 0x1010 ; nop ; ori $9,$0,7 ; (0x100c unreachable)
        // 0x1010: ori $8,$0,5 ; jr $ra ; nop
        load(
            &mut m,
            &[
                Inst::Jal { target: 0x1010 >> 2 },
                Inst::Shift { op: ShiftOp::Sll, rd: 0, rt: 0, shamt: 0 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 7 },
                Inst::Break { code: 9 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 5 },
                Inst::Jr { rs: reg::RA },
                Inst::Shift { op: ShiftOp::Sll, rd: 0, rt: 0, shamt: 0 },
            ],
        );
        step_n(&mut m, 6);
        assert_eq!(m.cpu.gpr[8], 5);
        assert_eq!(m.cpu.gpr[9], 7);
        assert_eq!(m.cpu.gpr[reg::RA as usize], 0x1008);
    }

    #[test]
    fn load_store_roundtrip_with_sign_extension() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x2000);
        m.cpu.set_gpr(9, 0xffff_ffff_ffff_ff80); // -128
        load(
            &mut m,
            &[
                Inst::Store { width: Width::Byte, rt: 9, base: 8, imm: 0 },
                Inst::Load { width: Width::Byte, rt: 10, base: 8, imm: 0, unsigned: false },
                Inst::Load { width: Width::Byte, rt: 11, base: 8, imm: 0, unsigned: true },
            ],
        );
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[10] as i64, -128);
        assert_eq!(m.cpu.gpr[11], 0x80);
        assert_eq!(m.stats.loads, 2);
        assert_eq!(m.stats.stores, 1);
    }

    #[test]
    fn misaligned_access_is_address_error() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x2001);
        load(
            &mut m,
            &[Inst::Load { width: Width::Double, rt: 9, base: 8, imm: 0, unsigned: false }],
        );
        match m.step().unwrap() {
            StepResult::Trap(e) => {
                assert_eq!(e.kind, TrapKind::AddressError { vaddr: 0x2001, write: false });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn legacy_access_bounded_by_c0() {
        let mut m = machine();
        let small = Capability::new(0, 0x2000, Perms::ALL).unwrap();
        m.cpu.caps.set_c0(small);
        m.cpu.set_gpr(8, 0x2000);
        load(
            &mut m,
            &[Inst::Load { width: Width::Double, rt: 9, base: 8, imm: 0, unsigned: false }],
        );
        match m.step().unwrap() {
            StepResult::Trap(e) => match e.kind {
                TrapKind::CapViolation(c) => {
                    assert_eq!(c.code(), CapExcCode::LengthViolation);
                    assert_eq!(c.reg(), 0);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn c0_offsets_legacy_addresses() {
        // Sandbox: C0.base=0x4000; a load at "address 0" touches 0x4000.
        let mut m = machine();
        let sandbox = Capability::new(0x4000, 0x1000, Perms::ALL).unwrap();
        m.cpu.caps.set_c0(sandbox);
        m.mem.write_u64(0x4000, 0xabcd).unwrap();
        load(
            &mut m,
            &[Inst::Load { width: Width::Double, rt: 9, base: 0, imm: 0, unsigned: false }],
        );
        step_n(&mut m, 1);
        assert_eq!(m.cpu.gpr[9], 0xabcd);
    }

    #[test]
    fn syscall_reports_and_resumes() {
        let mut m = machine();
        load(
            &mut m,
            &[Inst::Syscall { code: 0 }, Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 1 }],
        );
        assert_eq!(m.step().unwrap(), StepResult::Syscall);
        // PC still at the syscall until the kernel resumes.
        assert_eq!(m.cpu.pc, 0x1000);
        m.advance_past_trap();
        step_n(&mut m, 1);
        assert_eq!(m.cpu.gpr[8], 1);
    }

    #[test]
    fn cheri_disabled_raises_cp_unusable() {
        let mut m = Machine::new(MachineConfig {
            mem_bytes: 1 << 20,
            cheri_enabled: false,
            ..MachineConfig::default()
        });
        m.cpu.jump_to(0x1000);
        load(&mut m, &[Inst::Cheri(CheriInst::CGetBase { rd: 8, cb: 0 })]);
        match m.step().unwrap() {
            StepResult::Trap(e) => assert_eq!(e.kind, TrapKind::CoprocessorUnusable),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cincbase_csetlen_bound_loads() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x3000); // base delta
        m.cpu.set_gpr(9, 64); // length
        load(
            &mut m,
            &[
                Inst::Cheri(CheriInst::CIncBase { cd: 1, cb: 0, rt: 8 }),
                Inst::Cheri(CheriInst::CSetLen { cd: 1, cb: 1, rt: 9 }),
                // CLD $10, $0, 0($c1) — loads from 0x3000
                Inst::Cheri(CheriInst::CLoad {
                    width: Width::Double,
                    rd: 10,
                    cb: 1,
                    rt: 0,
                    imm: 0,
                    unsigned: false,
                }),
                // CLD $11, $0, 8($c1) i.e. imm=8 scaled => offset 64: out of bounds
                Inst::Cheri(CheriInst::CLoad {
                    width: Width::Double,
                    rd: 11,
                    cb: 1,
                    rt: 0,
                    imm: 8,
                    unsigned: false,
                }),
            ],
        );
        m.mem.write_u64(0x3000, 777).unwrap();
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[10], 777);
        match m.step().unwrap() {
            StepResult::Trap(e) => match e.kind {
                TrapKind::CapViolation(cause) => {
                    assert_eq!(cause.code(), CapExcCode::LengthViolation);
                    assert_eq!(cause.reg(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        assert_eq!(m.stats.cap_violations, 1);
    }

    #[test]
    fn clc_csc_move_capabilities_with_tags() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x3000);
        m.cpu.set_gpr(9, 0x100);
        load(
            &mut m,
            &[
                Inst::Cheri(CheriInst::CIncBase { cd: 1, cb: 0, rt: 8 }),
                Inst::Cheri(CheriInst::CSetLen { cd: 1, cb: 1, rt: 9 }),
                // store C1 at offset 0 of C0 region address 0x2000 via C2
                Inst::Cheri(CheriInst::CSC { cs: 1, cb: 0, rt: 10, imm: 0 }),
                Inst::Cheri(CheriInst::CLC { cd: 3, cb: 0, rt: 10, imm: 0 }),
                Inst::Cheri(CheriInst::CGetTag { rd: 11, cb: 3 }),
                Inst::Cheri(CheriInst::CGetBase { rd: 12, cb: 3 }),
            ],
        );
        m.cpu.set_gpr(10, 0x2000);
        step_n(&mut m, 6);
        assert_eq!(m.cpu.gpr[11], 1, "tag must survive CSC/CLC");
        assert_eq!(m.cpu.gpr[12], 0x3000);
        assert_eq!(m.stats.cap_loads, 1);
        assert_eq!(m.stats.cap_stores, 1);
    }

    #[test]
    fn data_store_over_capability_clears_tag_end_to_end() {
        let mut m = machine();
        m.cpu.set_gpr(10, 0x2000);
        load(
            &mut m,
            &[
                Inst::Cheri(CheriInst::CSC { cs: 0, cb: 0, rt: 10, imm: 0 }),
                Inst::Store { width: Width::Double, rt: 9, base: 10, imm: 8 },
                Inst::Cheri(CheriInst::CLC { cd: 3, cb: 0, rt: 10, imm: 0 }),
                Inst::Cheri(CheriInst::CGetTag { rd: 11, cb: 3 }),
            ],
        );
        step_n(&mut m, 4);
        assert_eq!(m.cpu.gpr[11], 0, "data store must clear the tag");
    }

    #[test]
    fn cbtu_cbts_branch_on_tag() {
        let mut m = machine();
        load(
            &mut m,
            &[
                // C0 is tagged: CBTS taken, delay slot runs, skip one, land.
                Inst::Cheri(CheriInst::CBTS { cb: 0, offset: 2 }),
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 1 },
            ],
        );
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[8], 1);
        assert_eq!(m.cpu.gpr[9], 0);
        assert_eq!(m.cpu.gpr[10], 1);
    }

    #[test]
    fn cjalr_links_and_cjr_returns() {
        let mut m = machine();
        // Build a capability for the callee at 0x1040 and call through it.
        m.cpu.set_gpr(8, 0x1040);
        load(
            &mut m,
            &[
                Inst::Cheri(CheriInst::CIncBase { cd: 1, cb: 0, rt: 8 }), // 0x1000
                Inst::Cheri(CheriInst::CJALR { cd: 2, cb: 1 }),           // 0x1004
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 9 }, // 0x1008 return lands here
            ],
        );
        // callee at 0x1040: ori $10,$0,7 ; cjr $c2
        m.load_code(
            0x1040,
            &[
                encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 7 }),
                encode(&Inst::Cheri(CheriInst::CJR { cb: 2 })),
            ],
        )
        .unwrap();
        step_n(&mut m, 5);
        assert_eq!(m.cpu.gpr[10], 7, "callee ran");
        assert_eq!(m.cpu.gpr[9], 9, "returned to linked address");
    }

    #[test]
    fn pcc_bounds_instruction_fetch() {
        let mut m = machine();
        // Constrain PCC to [0x1000, 0x1008): the third fetch faults.
        let pcc = Capability::new(0x1000, 8, Perms::EXECUTE | Perms::LOAD).unwrap();
        m.cpu.caps.set_pcc(pcc);
        load(
            &mut m,
            &[
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 8, imm: 2 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 8, imm: 4 },
            ],
        );
        step_n(&mut m, 2);
        match m.step().unwrap() {
            StepResult::Trap(e) => match e.kind {
                TrapKind::CapViolation(c) => {
                    assert_eq!(c.code(), CapExcCode::LengthViolation);
                    assert_eq!(c.reg(), cheri_core::exception::PCC_FAULT_REG);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ll_sc_succeeds_and_fails() {
        let mut m = machine();
        m.cpu.set_gpr(8, 0x2000);
        m.cpu.set_gpr(9, 41);
        load(
            &mut m,
            &[
                Inst::LoadLinked { width: Width::Double, rt: 10, base: 8, imm: 0 },
                Inst::StoreCond { width: Width::Double, rt: 9, base: 8, imm: 0 },
                // Second SC without LL fails.
                Inst::StoreCond { width: Width::Double, rt: 11, base: 8, imm: 0 },
            ],
        );
        step_n(&mut m, 3);
        assert_eq!(m.cpu.gpr[9], 1, "first SC succeeds");
        assert_eq!(m.cpu.gpr[11], 0, "second SC fails");
        assert_eq!(m.mem.read_u64(0x2000).unwrap(), 41);
    }

    #[test]
    fn muldiv_results() {
        let mut m = machine();
        m.cpu.set_gpr(8, 7);
        m.cpu.set_gpr(9, 3);
        load(
            &mut m,
            &[
                Inst::MulDiv { op: MulDivOp::Dmultu, rs: 8, rt: 9 },
                Inst::Mflo { rd: 10 },
                Inst::MulDiv { op: MulDivOp::Ddivu, rs: 8, rt: 9 },
                Inst::Mflo { rd: 11 },
                Inst::Mfhi { rd: 12 },
            ],
        );
        step_n(&mut m, 5);
        assert_eq!(m.cpu.gpr[10], 21);
        assert_eq!(m.cpu.gpr[11], 2);
        assert_eq!(m.cpu.gpr[12], 1);
    }

    #[test]
    fn translation_mode_faults_then_retries() {
        let mut m = machine();
        m.enable_translation();
        // A fetch immediately misses the TLB.
        match m.step().unwrap() {
            StepResult::Trap(e) => {
                assert!(matches!(e.kind, TrapKind::TlbRefill { vaddr: 0x1000, .. }));
            }
            other => panic!("{other:?}"),
        }
        // Kernel installs the mapping and the retry succeeds.
        m.tlb_install(0x1000, 0x1000, TlbFlags::rw());
        load(&mut m, &[Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 3 }]);
        assert_eq!(m.step().unwrap(), StepResult::Continue);
        assert_eq!(m.cpu.gpr[8], 3);
        assert_eq!(m.stats.tlb_refills, 1);
    }

    #[test]
    fn cap_store_to_no_capstore_page_traps_and_load_strips() {
        let mut m = machine();
        m.enable_translation();
        m.tlb_install(0x1000, 0x1000, TlbFlags::rw()); // code page
        m.tlb_install(0x2000, 0x2000, TlbFlags::rw_no_caps()); // data page
        m.cpu.set_gpr(10, 0x2000);
        load(&mut m, &[Inst::Cheri(CheriInst::CSC { cs: 0, cb: 0, rt: 10, imm: 0 })]);
        match m.step().unwrap() {
            StepResult::Trap(e) => match e.kind {
                TrapKind::CapViolation(c) => {
                    assert_eq!(c.code(), CapExcCode::TlbProhibitStoreCap);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Write the bytes of a valid capability there as data, then CLC:
        // the loaded value must arrive untagged.
        let img = Capability::max().to_bytes();
        m.mem.write_bytes(0x2000, &img).unwrap();
        m.cpu.jump_to(0x1100);
        m.tlb_install(0x1000, 0x1000, TlbFlags::rw());
        m.load_code(
            0x1100,
            &[
                encode(&Inst::Cheri(CheriInst::CLC { cd: 3, cb: 0, rt: 10, imm: 0 })),
                encode(&Inst::Cheri(CheriInst::CGetTag { rd: 11, cb: 3 })),
            ],
        )
        .unwrap();
        step_n(&mut m, 2);
        assert_eq!(m.cpu.gpr[11], 0, "tag must be stripped on cap-load from no-cap page");
    }

    #[test]
    fn stats_count_instructions_and_cycles() {
        let mut m = machine();
        load(
            &mut m,
            &[
                Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 1 },
                Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 0, imm: 2 },
            ],
        );
        step_n(&mut m, 2);
        assert_eq!(m.stats.instructions, 2);
        assert!(m.stats.cycles >= 2, "at least base CPI");
        assert!(m.stats.cycles > 2, "cold I-cache must cost something");
    }
}
