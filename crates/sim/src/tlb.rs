//! The software-managed TLB.
//!
//! BERI follows the MIPS R4000 model: a fully-associative array of
//! paired-page entries, refilled by software on miss. The configuration
//! used in the paper's Figure 5 covers 1 MB (128 entries × 2 × 4 KB
//! pages): "visible 'steps' as the 16KB L1 cache, 64KB L2 cache, and TLB
//! covering 1MB overflow".
//!
//! CHERI extends each page mapping with two permission bits (Section 6.1):
//! *capability load* and *capability store*, letting the OS build shared
//! memory "that cannot act as a channel for passing capabilities".

use crate::exception::TrapKind;

/// Page size in bytes (4 KB, the MIPS minimum — the paper's granularity
/// comparison point for MMU-based protection).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Default number of paired entries: 128 pairs × 2 × 4 KB = 1 MB coverage.
pub const DEFAULT_ENTRIES: usize = 128;

/// Per-page flags held in `EntryLo`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbFlags {
    /// Valid: the mapping may be used.
    pub valid: bool,
    /// Dirty (writable): stores are allowed.
    pub dirty: bool,
    /// CHERI: capability loads (`CLC`) permitted from this page.
    pub cap_load: bool,
    /// CHERI: capability stores (`CSC`) permitted to this page.
    pub cap_store: bool,
}

impl TlbFlags {
    /// Flags for a normal read-write page with capability traffic allowed
    /// (what the OS installs for ordinary anonymous memory).
    #[must_use]
    pub const fn rw() -> TlbFlags {
        TlbFlags { valid: true, dirty: true, cap_load: true, cap_store: true }
    }

    /// Flags for a read-write page that may not carry capabilities — the
    /// Section 6.1 shared-memory configuration.
    #[must_use]
    pub const fn rw_no_caps() -> TlbFlags {
        TlbFlags { valid: true, dirty: true, cap_load: false, cap_store: false }
    }
}

/// One TLB entry mapping an aligned *pair* of virtual pages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page-pair number (`vaddr >> 13`).
    pub vpn2: u64,
    /// Physical frame number of the even page.
    pub pfn0: u64,
    /// Flags of the even page.
    pub flags0: TlbFlags,
    /// Physical frame number of the odd page.
    pub pfn1: u64,
    /// Flags of the odd page.
    pub flags1: TlbFlags,
    /// Whether this entry participates in matching at all.
    pub present: bool,
}

/// The result of a successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub paddr: u64,
    /// Flags of the containing page (for capability-permission checks).
    pub flags: TlbFlags,
}

/// The translation lookaside buffer.
///
/// # Example
///
/// ```
/// use beri_sim::tlb::{Tlb, TlbFlags, PAGE_SIZE};
///
/// let mut tlb = Tlb::new(128);
/// tlb.install(0x4000, 0x8000, TlbFlags::rw());
/// let t = tlb.translate(0x4010, false).unwrap();
/// assert_eq!(t.paddr, 0x8010);
/// assert!(tlb.translate(0x4000 + 2 * PAGE_SIZE, false).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    next_random: usize,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `entries` paired entries.
    #[must_use]
    pub fn new(entries: usize) -> Tlb {
        Tlb { entries: vec![TlbEntry::default(); entries], next_random: 0, misses: 0 }
    }

    /// Number of paired entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the TLB has no entries (a zero-entry configuration used in
    /// tests).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of address space the TLB can map at once.
    #[must_use]
    pub fn coverage_bytes(&self) -> u64 {
        self.entries.len() as u64 * 2 * PAGE_SIZE
    }

    /// Number of refill misses taken so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Translates `vaddr`; on success returns the physical address and
    /// page flags.
    ///
    /// # Errors
    ///
    /// * [`TrapKind::TlbRefill`] if no entry matches (counted in
    ///   [`Tlb::misses`]).
    /// * [`TrapKind::TlbInvalid`] if the matching page is invalid.
    /// * [`TrapKind::TlbModified`] for stores to clean pages.
    pub fn translate(&mut self, vaddr: u64, write: bool) -> Result<Translation, TrapKind> {
        let vpn2 = vaddr >> (PAGE_SHIFT + 1);
        let odd = (vaddr >> PAGE_SHIFT) & 1 == 1;
        for e in &self.entries {
            if e.present && e.vpn2 == vpn2 {
                let (pfn, flags) = if odd { (e.pfn1, e.flags1) } else { (e.pfn0, e.flags0) };
                if !flags.valid {
                    return Err(TrapKind::TlbInvalid { vaddr, write });
                }
                if write && !flags.dirty {
                    return Err(TrapKind::TlbModified { vaddr });
                }
                let paddr = (pfn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1));
                return Ok(Translation { paddr, flags });
            }
        }
        self.misses += 1;
        Err(TrapKind::TlbRefill { vaddr, write })
    }

    /// Writes an entry at a "random" slot (round-robin here, which is
    /// deterministic for reproducibility) — the `TLBWR` path used by the
    /// refill handler.
    pub fn write_random(&mut self, entry: TlbEntry) {
        // Evict any other entry mapping the same vpn2 first so the TLB
        // never holds duplicate mappings (a machine-check on real MIPS).
        for e in &mut self.entries {
            if e.present && e.vpn2 == entry.vpn2 {
                *e = TlbEntry::default();
            }
        }
        let slot = self.next_random;
        self.entries[slot] = entry;
        self.next_random = (self.next_random + 1) % self.entries.len();
    }

    /// Writes the entry at an explicit index (`TLBWI`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (kernel bug).
    pub fn write_indexed(&mut self, index: usize, entry: TlbEntry) {
        self.entries[index] = entry;
    }

    /// Reads the entry at `index` (`TLBR`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn read_indexed(&self, index: usize) -> TlbEntry {
        self.entries[index]
    }

    /// Probes for the entry matching `vaddr` (`TLBP`), returning its
    /// index.
    #[must_use]
    pub fn probe(&self, vaddr: u64) -> Option<usize> {
        let vpn2 = vaddr >> (PAGE_SHIFT + 1);
        self.entries.iter().position(|e| e.present && e.vpn2 == vpn2)
    }

    /// Convenience used by the host kernel: installs a single-page
    /// mapping `vaddr -> paddr` (its pair-partner page is left invalid
    /// unless already mapped by the same entry).
    ///
    /// # Panics
    ///
    /// Panics if `vaddr`/`paddr` are not page-aligned.
    pub fn install(&mut self, vaddr: u64, paddr: u64, flags: TlbFlags) {
        assert_eq!(vaddr % PAGE_SIZE, 0, "vaddr must be page-aligned");
        assert_eq!(paddr % PAGE_SIZE, 0, "paddr must be page-aligned");
        let vpn2 = vaddr >> (PAGE_SHIFT + 1);
        let odd = (vaddr >> PAGE_SHIFT) & 1 == 1;
        // Merge with an existing entry for the pair if present.
        let existing = self.entries.iter().position(|e| e.present && e.vpn2 == vpn2);
        let mut entry = existing
            .map_or(TlbEntry { vpn2, present: true, ..TlbEntry::default() }, |i| self.entries[i]);
        if odd {
            entry.pfn1 = paddr >> PAGE_SHIFT;
            entry.flags1 = flags;
        } else {
            entry.pfn0 = paddr >> PAGE_SHIFT;
            entry.flags0 = flags;
        }
        match existing {
            Some(i) => self.entries[i] = entry,
            None => self.write_random(entry),
        }
    }

    /// Invalidates every entry (context switch / `execve`).
    pub fn flush(&mut self) {
        for e in &mut self.entries {
            *e = TlbEntry::default();
        }
    }

    /// Exports the full TLB state (entries, replacement cursor, miss
    /// count) for `cheri-snap`.
    #[must_use]
    pub fn export_state(&self) -> cheri_snap::TlbState {
        let pack = |f: TlbFlags| {
            u64::from(f.valid)
                | (u64::from(f.dirty) << 1)
                | (u64::from(f.cap_load) << 2)
                | (u64::from(f.cap_store) << 3)
        };
        cheri_snap::TlbState {
            entries: self
                .entries
                .iter()
                .map(|e| cheri_snap::TlbEntryState {
                    vpn2: e.vpn2,
                    pfn0: e.pfn0,
                    flags0: pack(e.flags0),
                    pfn1: e.pfn1,
                    flags1: pack(e.flags1),
                    present: e.present,
                })
                .collect(),
            next_random: self.next_random as u64,
            misses: self.misses,
        }
    }

    /// Restores state exported by [`Tlb::export_state`].
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the snapshot's entry count differs
    /// from this TLB's geometry.
    pub fn import_state(&mut self, s: &cheri_snap::TlbState) -> Result<(), cheri_snap::SnapError> {
        if s.entries.len() != self.entries.len() {
            return Err(cheri_snap::SnapError(format!(
                "TLB holds {} entries, snapshot has {}",
                self.entries.len(),
                s.entries.len()
            )));
        }
        let unpack = |bits: u64| TlbFlags {
            valid: bits & 1 != 0,
            dirty: bits & 2 != 0,
            cap_load: bits & 4 != 0,
            cap_store: bits & 8 != 0,
        };
        for (e, se) in self.entries.iter_mut().zip(&s.entries) {
            *e = TlbEntry {
                vpn2: se.vpn2,
                pfn0: se.pfn0,
                flags0: unpack(se.flags0),
                pfn1: se.pfn1,
                flags1: unpack(se.flags1),
                present: se.present,
            };
        }
        self.next_random = (s.next_random as usize) % self.entries.len().max(1);
        self.misses = s.misses;
        Ok(())
    }

    /// Invalidates any entry mapping the page containing `vaddr`
    /// (revocation via unmapping, Section 6.1).
    pub fn invalidate_page(&mut self, vaddr: u64) {
        let vpn2 = vaddr >> (PAGE_SHIFT + 1);
        let odd = (vaddr >> PAGE_SHIFT) & 1 == 1;
        for e in &mut self.entries {
            if e.present && e.vpn2 == vpn2 {
                if odd {
                    e.flags1.valid = false;
                } else {
                    e.flags0.valid = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_install_then_hit() {
        let mut tlb = Tlb::new(4);
        assert!(matches!(
            tlb.translate(0x1000, false),
            Err(TrapKind::TlbRefill { vaddr: 0x1000, write: false })
        ));
        assert_eq!(tlb.misses(), 1);
        tlb.install(0x1000, 0xa000, TlbFlags::rw());
        let t = tlb.translate(0x1ff8, false).unwrap();
        assert_eq!(t.paddr, 0xaff8);
    }

    #[test]
    fn paired_pages_share_one_entry() {
        let mut tlb = Tlb::new(2);
        tlb.install(0x2000, 0xa000, TlbFlags::rw()); // even page of pair 1
        tlb.install(0x3000, 0xb000, TlbFlags::rw()); // odd page, same pair
        assert_eq!(tlb.translate(0x2004, false).unwrap().paddr, 0xa004);
        assert_eq!(tlb.translate(0x3004, false).unwrap().paddr, 0xb004);
        // Both used one entry: the other slot is still free.
        assert_eq!(tlb.probe(0x2000), tlb.probe(0x3000));
    }

    #[test]
    fn clean_page_faults_on_store() {
        let mut tlb = Tlb::new(2);
        let ro = TlbFlags { valid: true, dirty: false, cap_load: true, cap_store: false };
        tlb.install(0x1000, 0x8000, ro);
        assert!(tlb.translate(0x1000, false).is_ok());
        assert!(matches!(
            tlb.translate(0x1000, true),
            Err(TrapKind::TlbModified { vaddr: 0x1000 })
        ));
    }

    #[test]
    fn invalid_page_faults() {
        let mut tlb = Tlb::new(2);
        let inv = TlbFlags { valid: false, ..TlbFlags::rw() };
        tlb.install(0x1000, 0x8000, inv);
        assert!(matches!(tlb.translate(0x1000, false), Err(TrapKind::TlbInvalid { .. })));
    }

    #[test]
    fn capability_permission_bits_surface() {
        let mut tlb = Tlb::new(2);
        tlb.install(0x1000, 0x8000, TlbFlags::rw_no_caps());
        let t = tlb.translate(0x1000, true).unwrap();
        assert!(!t.flags.cap_store);
        assert!(!t.flags.cap_load);
    }

    #[test]
    fn coverage_is_1mb_at_default_geometry() {
        let tlb = Tlb::new(DEFAULT_ENTRIES);
        assert_eq!(tlb.coverage_bytes(), 1 << 20);
    }

    #[test]
    fn replacement_evicts_round_robin() {
        let mut tlb = Tlb::new(2);
        tlb.install(0x0000, 0x8000, TlbFlags::rw());
        tlb.install(0x2000, 0x9000, TlbFlags::rw());
        tlb.install(0x4000, 0xa000, TlbFlags::rw()); // evicts the first
        assert!(tlb.translate(0x0000, false).is_err());
        assert!(tlb.translate(0x2000, false).is_ok());
        assert!(tlb.translate(0x4000, false).is_ok());
    }

    #[test]
    fn no_duplicate_entries_for_same_pair() {
        let mut tlb = Tlb::new(4);
        tlb.install(0x1000, 0x8000, TlbFlags::rw());
        // Re-install same page at a different frame; must supersede.
        let e = TlbEntry {
            vpn2: 0x1000 >> 13,
            pfn0: 0x9000 >> 12,
            flags0: TlbFlags::rw(),
            pfn1: 0x9000 >> 12,
            flags1: TlbFlags::rw(),
            present: true,
        };
        tlb.write_random(e);
        let matches: usize = (0..tlb.len())
            .filter(|&i| tlb.read_indexed(i).present && tlb.read_indexed(i).vpn2 == 0x1000 >> 13)
            .count();
        assert_eq!(matches, 1);
    }

    #[test]
    fn flush_and_invalidate() {
        let mut tlb = Tlb::new(4);
        tlb.install(0x1000, 0x8000, TlbFlags::rw());
        tlb.invalidate_page(0x1000);
        assert!(matches!(tlb.translate(0x1000, false), Err(TrapKind::TlbInvalid { .. })));
        tlb.flush();
        assert!(matches!(tlb.translate(0x1000, false), Err(TrapKind::TlbRefill { .. })));
    }
}
