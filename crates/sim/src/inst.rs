//! The decoded instruction set: the 64-bit MIPS IV subset BERI executes,
//! plus the CHERI capability extensions of Table 1.

use cheri_core::CapInstrKind;
use core::fmt;

/// MIPS ABI register numbers (n64 calling convention), used by the
/// assembler and the OS.
pub mod reg {
    /// Hard-wired zero.
    pub const ZERO: u8 = 0;
    /// Assembler temporary.
    pub const AT: u8 = 1;
    /// Function result registers.
    pub const V0: u8 = 2;
    /// Second function result register.
    pub const V1: u8 = 3;
    /// Argument registers `$a0`–`$a7` (n64).
    pub const A0: u8 = 4;
    /// `$a1`.
    pub const A1: u8 = 5;
    /// `$a2`.
    pub const A2: u8 = 6;
    /// `$a3`.
    pub const A3: u8 = 7;
    /// `$a4`.
    pub const A4: u8 = 8;
    /// `$a5`.
    pub const A5: u8 = 9;
    /// `$a6`.
    pub const A6: u8 = 10;
    /// `$a7`.
    pub const A7: u8 = 11;
    /// Caller-saved temporaries `$t0`–`$t3` (n64 numbering: r12–r15).
    pub const T0: u8 = 12;
    /// `$t1`.
    pub const T1: u8 = 13;
    /// `$t2`.
    pub const T2: u8 = 14;
    /// `$t3`.
    pub const T3: u8 = 15;
    /// Callee-saved `$s0`–`$s7`.
    pub const S0: u8 = 16;
    /// `$s1`.
    pub const S1: u8 = 17;
    /// `$s2`.
    pub const S2: u8 = 18;
    /// `$s3`.
    pub const S3: u8 = 19;
    /// `$s4`.
    pub const S4: u8 = 20;
    /// `$s5`.
    pub const S5: u8 = 21;
    /// `$s6`.
    pub const S6: u8 = 22;
    /// `$s7`.
    pub const S7: u8 = 23;
    /// Caller-saved `$t8`, `$t9`.
    pub const T8: u8 = 24;
    /// `$t9`.
    pub const T9: u8 = 25;
    /// Kernel scratch registers.
    pub const K0: u8 = 26;
    /// Second kernel scratch register.
    pub const K1: u8 = 27;
    /// Global pointer.
    pub const GP: u8 = 28;
    /// Stack pointer.
    pub const SP: u8 = 29;
    /// Frame pointer.
    pub const FP: u8 = 30;
    /// Return address.
    pub const RA: u8 = 31;
}

/// Width of a scalar memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
    /// 64-bit.
    Double,
}

impl Width {
    /// Access size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
            Width::Double => 8,
        }
    }
}

/// Three-register ALU operations (`SPECIAL` encodings).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// 32-bit add with overflow trap.
    Add,
    /// 32-bit add, no trap.
    Addu,
    /// 32-bit subtract with overflow trap.
    Sub,
    /// 32-bit subtract, no trap.
    Subu,
    /// 64-bit add with overflow trap.
    Dadd,
    /// 64-bit add, no trap.
    Daddu,
    /// 64-bit subtract with overflow trap.
    Dsub,
    /// 64-bit subtract, no trap.
    Dsubu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise nor.
    Nor,
    /// Set on less than (signed).
    Slt,
    /// Set on less than (unsigned).
    Sltu,
    /// Conditional move if zero.
    Movz,
    /// Conditional move if not zero.
    Movn,
}

/// Shift operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// 32-bit logical left.
    Sll,
    /// 32-bit logical right.
    Srl,
    /// 32-bit arithmetic right.
    Sra,
    /// 64-bit logical left.
    Dsll,
    /// 64-bit logical right.
    Dsrl,
    /// 64-bit arithmetic right.
    Dsra,
    /// 64-bit logical left by `shamt + 32`.
    Dsll32,
    /// 64-bit logical right by `shamt + 32`.
    Dsrl32,
    /// 64-bit arithmetic right by `shamt + 32`.
    Dsra32,
}

/// HI/LO multiply–divide unit operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// 32-bit signed multiply.
    Mult,
    /// 32-bit unsigned multiply.
    Multu,
    /// 32-bit signed divide.
    Div,
    /// 32-bit unsigned divide.
    Divu,
    /// 64-bit signed multiply.
    Dmult,
    /// 64-bit unsigned multiply.
    Dmultu,
    /// 64-bit signed divide.
    Ddiv,
    /// 64-bit unsigned divide.
    Ddivu,
}

/// Branch comparison conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs == rt`.
    Eq,
    /// `rs != rt`.
    Ne,
    /// `rs <= 0` (signed).
    Lez,
    /// `rs > 0` (signed).
    Gtz,
    /// `rs < 0` (signed).
    Ltz,
    /// `rs >= 0` (signed).
    Gez,
}

/// A decoded instruction.
///
/// Field conventions follow the MIPS manuals: `rs`/`rt`/`rd` are GPR
/// numbers, `cd`/`cb` are capability register numbers, `imm` is the raw
/// 16-bit immediate (sign- or zero-extension happens at execute per
/// instruction), and branch offsets are in instructions (to be shifted
/// left by 2 and applied to the delay-slot PC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Inst {
    /// Three-register ALU operation: `rd = rs op rt`.
    Alu { op: AluOp, rd: u8, rs: u8, rt: u8 },
    /// Immediate ALU operation: `rt = rs op imm`.
    AluImm { op: AluImmOp, rt: u8, rs: u8, imm: u16 },
    /// Load upper immediate: `rt = sign_extend(imm << 16)`.
    Lui { rt: u8, imm: u16 },
    /// Constant-shift: `rd = rt shift shamt`.
    Shift { op: ShiftOp, rd: u8, rt: u8, shamt: u8 },
    /// Variable-shift: `rd = rt shift (rs & mask)`.
    ShiftV { op: ShiftOp, rd: u8, rt: u8, rs: u8 },
    /// Multiply/divide into HI/LO.
    MulDiv { op: MulDivOp, rs: u8, rt: u8 },
    /// Move from HI.
    Mfhi { rd: u8 },
    /// Move from LO.
    Mflo { rd: u8 },
    /// Move to HI.
    Mthi { rs: u8 },
    /// Move to LO.
    Mtlo { rs: u8 },
    /// Conditional branch with 16-bit offset (delay slot executes).
    Branch { cond: BranchCond, rs: u8, rt: u8, offset: i16 },
    /// Branch-and-link (`BLTZAL`/`BGEZAL`): link to `$ra`.
    BranchLink { cond: BranchCond, rs: u8, offset: i16 },
    /// Absolute-region jump.
    J { target: u32 },
    /// Jump and link.
    Jal { target: u32 },
    /// Jump register.
    Jr { rs: u8 },
    /// Jump and link register.
    Jalr { rd: u8, rs: u8 },
    /// Scalar load: `rt = mem[rs + imm]` (sign-extending unless
    /// `unsigned`).
    Load { width: Width, rt: u8, base: u8, imm: i16, unsigned: bool },
    /// Scalar store: `mem[rs + imm] = rt`.
    Store { width: Width, rt: u8, base: u8, imm: i16 },
    /// Load linked (word or double).
    LoadLinked { width: Width, rt: u8, base: u8, imm: i16 },
    /// Store conditional (word or double); `rt` receives success flag.
    StoreCond { width: Width, rt: u8, base: u8, imm: i16 },
    /// System call.
    Syscall { code: u32 },
    /// Breakpoint.
    Break { code: u32 },
    /// Move from CP0 register `sel`-less: `rt = cp0[rd]`.
    Mfc0 { rt: u8, rd: u8 },
    /// Move to CP0: `cp0[rd] = rt`.
    Mtc0 { rt: u8, rd: u8 },
    /// TLB write indexed.
    Tlbwi,
    /// TLB write random.
    Tlbwr,
    /// TLB probe.
    Tlbp,
    /// TLB read indexed.
    Tlbr,
    /// Exception return.
    Eret,
    /// A CHERI coprocessor-2 instruction.
    Cheri(CheriInst),
    /// An encoding BERI does not implement (raises Reserved Instruction).
    Reserved { word: u32 },
}

/// Immediate ALU operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// 32-bit add immediate with overflow trap (sign-extended).
    Addi,
    /// 32-bit add immediate (sign-extended), no trap.
    Addiu,
    /// 64-bit add immediate with overflow trap.
    Daddi,
    /// 64-bit add immediate, no trap.
    Daddiu,
    /// Set on less than immediate (signed, sign-extended).
    Slti,
    /// Set on less than immediate (unsigned compare, sign-extended imm).
    Sltiu,
    /// And with zero-extended immediate.
    Andi,
    /// Or with zero-extended immediate.
    Ori,
    /// Xor with zero-extended immediate.
    Xori,
}

/// A decoded CHERI (COP2) instruction. See [`crate::decode`] for the
/// encoding this simulator and the `cheri-asm` assembler share.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheriInst {
    /// `CGetBase rd, cb`.
    CGetBase { rd: u8, cb: u8 },
    /// `CGetLen rd, cb`.
    CGetLen { rd: u8, cb: u8 },
    /// `CGetTag rd, cb`.
    CGetTag { rd: u8, cb: u8 },
    /// `CGetPerm rd, cb`.
    CGetPerm { rd: u8, cb: u8 },
    /// `CGetPCC rd, cd`: PC to GPR `rd`, PCC to capability register `cd`.
    CGetPCC { rd: u8, cd: u8 },
    /// `CIncBase cd, cb, rt`.
    CIncBase { cd: u8, cb: u8, rt: u8 },
    /// `CSetLen cd, cb, rt`.
    CSetLen { cd: u8, cb: u8, rt: u8 },
    /// `CClearTag cd, cb`.
    CClearTag { cd: u8, cb: u8 },
    /// `CAndPerm cd, cb, rt`.
    CAndPerm { cd: u8, cb: u8, rt: u8 },
    /// `CToPtr rd, cb, ct`.
    CToPtr { rd: u8, cb: u8, ct: u8 },
    /// `CFromPtr cd, cb, rt`.
    CFromPtr { cd: u8, cb: u8, rt: u8 },
    /// `CBTU cb, offset` — branch if tag unset.
    CBTU { cb: u8, offset: i16 },
    /// `CBTS cb, offset` — branch if tag set.
    CBTS { cb: u8, offset: i16 },
    /// `CLC cd, rt, imm(cb)` — load capability; `imm` scaled by 32.
    CLC { cd: u8, cb: u8, rt: u8, imm: i8 },
    /// `CSC cs, rt, imm(cb)` — store capability; `imm` scaled by 32.
    CSC { cs: u8, cb: u8, rt: u8, imm: i8 },
    /// `CL[BHWD][U] rd, rt, imm(cb)` — load via capability; `imm` scaled
    /// by the access width.
    CLoad { width: Width, rd: u8, cb: u8, rt: u8, imm: i8, unsigned: bool },
    /// `CS[BHWD] rs, rt, imm(cb)` — store via capability.
    CStore { width: Width, rs: u8, cb: u8, rt: u8, imm: i8 },
    /// `CLLD rd, rt, imm(cb)` — load linked double via capability.
    CLLD { rd: u8, cb: u8, rt: u8, imm: i8 },
    /// `CSCD rs, rt, imm(cb)` — store conditional double via capability;
    /// `rs` also receives the success flag.
    CSCD { rs: u8, cb: u8, rt: u8, imm: i8 },
    /// `CJR cb` — jump to `cb.base`, installing `cb` as `PCC`.
    CJR { cb: u8 },
    /// `CJALR cd, cb` — jump via `cb`, saving the return `PCC`+offset in
    /// `cd`.
    CJALR { cd: u8, cb: u8 },
}

impl CheriInst {
    /// The Table 1 catalogue entry this instruction realises.
    #[must_use]
    pub fn kind(&self) -> CapInstrKind {
        match self {
            CheriInst::CGetBase { .. } => CapInstrKind::CGetBase,
            CheriInst::CGetLen { .. } => CapInstrKind::CGetLen,
            CheriInst::CGetTag { .. } => CapInstrKind::CGetTag,
            CheriInst::CGetPerm { .. } => CapInstrKind::CGetPerm,
            CheriInst::CGetPCC { .. } => CapInstrKind::CGetPCC,
            CheriInst::CIncBase { .. } => CapInstrKind::CIncBase,
            CheriInst::CSetLen { .. } => CapInstrKind::CSetLen,
            CheriInst::CClearTag { .. } => CapInstrKind::CClearTag,
            CheriInst::CAndPerm { .. } => CapInstrKind::CAndPerm,
            CheriInst::CToPtr { .. } => CapInstrKind::CToPtr,
            CheriInst::CFromPtr { .. } => CapInstrKind::CFromPtr,
            CheriInst::CBTU { .. } => CapInstrKind::CBTU,
            CheriInst::CBTS { .. } => CapInstrKind::CBTS,
            CheriInst::CLC { .. } => CapInstrKind::CLC,
            CheriInst::CSC { .. } => CapInstrKind::CSC,
            CheriInst::CLoad { width, unsigned, .. } => match (width, unsigned) {
                (Width::Byte, false) => CapInstrKind::CLB,
                (Width::Byte, true) => CapInstrKind::CLBU,
                (Width::Half, false) => CapInstrKind::CLH,
                (Width::Half, true) => CapInstrKind::CLHU,
                (Width::Word, false) => CapInstrKind::CLW,
                (Width::Word, true) => CapInstrKind::CLWU,
                (Width::Double, _) => CapInstrKind::CLD,
            },
            CheriInst::CStore { width, .. } => match width {
                Width::Byte => CapInstrKind::CSB,
                Width::Half => CapInstrKind::CSH,
                Width::Word => CapInstrKind::CSW,
                Width::Double => CapInstrKind::CSD,
            },
            CheriInst::CLLD { .. } => CapInstrKind::CLLD,
            CheriInst::CSCD { .. } => CapInstrKind::CSCD,
            CheriInst::CJR { .. } => CapInstrKind::CJR,
            CheriInst::CJALR { .. } => CapInstrKind::CJALR,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Cheri(c) => write!(f, "{}", c.kind().mnemonic()),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
        assert_eq!(Width::Double.bytes(), 8);
    }

    #[test]
    fn cheri_inst_maps_to_table1_kind() {
        let i =
            CheriInst::CLoad { width: Width::Word, rd: 1, cb: 2, rt: 0, imm: 0, unsigned: true };
        assert_eq!(i.kind(), CapInstrKind::CLWU);
        let s = CheriInst::CStore { width: Width::Byte, rs: 1, cb: 2, rt: 0, imm: 0 };
        assert_eq!(s.kind(), CapInstrKind::CSB);
        assert_eq!(CheriInst::CJR { cb: 3 }.kind(), CapInstrKind::CJR);
    }

    #[test]
    fn display_uses_mnemonics() {
        let i = Inst::Cheri(CheriInst::CIncBase { cd: 1, cb: 2, rt: 3 });
        assert_eq!(i.to_string(), "CIncBase");
    }

    #[test]
    fn abi_register_numbers() {
        assert_eq!(reg::ZERO, 0);
        assert_eq!(reg::SP, 29);
        assert_eq!(reg::RA, 31);
        assert_eq!(reg::A7, 11);
    }
}
