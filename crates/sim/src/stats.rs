//! Execution statistics.
//!
//! Everything the benchmark harnesses need: retired instructions, cycle
//! counts from the latency model, memory-reference counts and byte
//! volumes (the Figure 3 metrics), and capability-specific event counts.

use core::fmt;

/// Counters accumulated by [`crate::Machine`] while executing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Retired instructions.
    pub instructions: u64,
    /// Cycles charged (base CPI 1 plus memory/branch/muldiv penalties).
    pub cycles: u64,
    /// Scalar + capability loads.
    pub loads: u64,
    /// Scalar + capability stores.
    pub stores: u64,
    /// Bytes read by loads.
    pub bytes_loaded: u64,
    /// Bytes written by stores.
    pub bytes_stored: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted.
    pub mispredicts: u64,
    /// CHERI (COP2) instructions retired.
    pub cap_instructions: u64,
    /// Capability register loads (`CLC`).
    pub cap_loads: u64,
    /// Capability register stores (`CSC`).
    pub cap_stores: u64,
    /// `SYSCALL`s delivered.
    pub syscalls: u64,
    /// Exceptions delivered (all kinds, including TLB refills).
    pub exceptions: u64,
    /// TLB refill exceptions.
    pub tlb_refills: u64,
    /// Capability violations delivered.
    pub cap_violations: u64,
}

impl Stats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total memory references (the Figure 3 "Memory references (count)"
    /// metric).
    #[must_use]
    pub fn memory_references(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total bytes moved by the program (the Figure 3 "Memory I/O
    /// (bytes)" metric at the reference level).
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }

    /// The fixed field order used by `cheri-snap` serialization. Keep in
    /// sync with [`Stats::from_array`] and the struct declaration.
    #[must_use]
    pub fn to_array(&self) -> [u64; 15] {
        [
            self.instructions,
            self.cycles,
            self.loads,
            self.stores,
            self.bytes_loaded,
            self.bytes_stored,
            self.branches,
            self.mispredicts,
            self.cap_instructions,
            self.cap_loads,
            self.cap_stores,
            self.syscalls,
            self.exceptions,
            self.tlb_refills,
            self.cap_violations,
        ]
    }

    /// Inverse of [`Stats::to_array`].
    #[must_use]
    pub fn from_array(a: [u64; 15]) -> Stats {
        Stats {
            instructions: a[0],
            cycles: a[1],
            loads: a[2],
            stores: a[3],
            bytes_loaded: a[4],
            bytes_stored: a[5],
            branches: a[6],
            mispredicts: a[7],
            cap_instructions: a[8],
            cap_loads: a[9],
            cap_stores: a[10],
            syscalls: a[11],
            exceptions: a[12],
            tlb_refills: a[13],
            cap_violations: a[14],
        }
    }

    /// Difference of two snapshots (`self - earlier`), for phase
    /// decomposition (Figure 4 splits allocation from computation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    #[must_use]
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            bytes_loaded: self.bytes_loaded - earlier.bytes_loaded,
            bytes_stored: self.bytes_stored - earlier.bytes_stored,
            branches: self.branches - earlier.branches,
            mispredicts: self.mispredicts - earlier.mispredicts,
            cap_instructions: self.cap_instructions - earlier.cap_instructions,
            cap_loads: self.cap_loads - earlier.cap_loads,
            cap_stores: self.cap_stores - earlier.cap_stores,
            syscalls: self.syscalls - earlier.syscalls,
            exceptions: self.exceptions - earlier.exceptions,
            tlb_refills: self.tlb_refills - earlier.tlb_refills,
            cap_violations: self.cap_violations - earlier.cap_violations,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions: {:>12}  cycles: {:>12}  ipc: {:.3}",
            self.instructions,
            self.cycles,
            self.ipc()
        )?;
        writeln!(
            f,
            "loads: {:>12}  stores: {:>12}  bytes: {:>12}",
            self.loads,
            self.stores,
            self.memory_bytes()
        )?;
        write!(
            f,
            "branches: {:>9} (mispred {})  cap-instrs: {}  tlb-refills: {}",
            self.branches, self.mispredicts, self.cap_instructions, self.tlb_refills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Stats::default().ipc(), 0.0);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = Stats { instructions: 10, cycles: 20, loads: 3, ..Stats::default() };
        let b = Stats { instructions: 25, cycles: 60, loads: 7, ..Stats::default() };
        let d = b.since(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.cycles, 40);
        assert_eq!(d.loads, 4);
    }

    #[test]
    fn display_is_informative() {
        let s = Stats { instructions: 5, cycles: 10, ..Stats::default() };
        let out = s.to_string();
        assert!(out.contains("ipc: 0.500"));
    }
}
