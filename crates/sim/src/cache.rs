//! The cache hierarchy and its latency model.
//!
//! Geometry defaults follow the FPGA platform of the paper (Section 8 /
//! Figure 5): 32-byte lines ("Unsafe nodes are 24-bytes, which fit more
//! efficiently in our 32-byte cache lines"), a 16 KB L1 data cache, a
//! 16 KB L1 instruction cache, and a 64 KB L2. Caches are physically
//! indexed, write-back, write-allocate, with LRU replacement.
//!
//! The hierarchy charges *penalty cycles* on top of the 1-instruction
//! base CPI and counts DRAM traffic, which together drive the Figure 4
//! execution-time decomposition and the Figure 5 heap-size steps.

use cheri_trace::{emit, CacheLevel, SharedSink, TraceEvent};

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheParams {
    /// The paper's L1 geometry: 16 KB, 32-byte lines, 4-way.
    #[must_use]
    pub const fn l1() -> CacheParams {
        CacheParams { size: 16 * 1024, line: 32, ways: 4 }
    }

    /// The paper's L2 geometry: 64 KB, 32-byte lines, 8-way.
    #[must_use]
    pub const fn l2() -> CacheParams {
        CacheParams { size: 64 * 1024, line: 32, ways: 8 }
    }

    /// Number of sets.
    #[must_use]
    pub const fn sets(&self) -> usize {
        self.size / (self.line * self.ways)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Outcome of a single-cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Hit.
    Hit,
    /// Miss; payload reports whether a dirty victim was evicted.
    Miss {
        /// A dirty line was written back to the next level.
        writeback: bool,
    },
}

/// One set-associative write-back cache.
#[derive(Clone, Debug)]
pub struct Cache {
    params: CacheParams,
    lines: Vec<Line>,
    tick: u64,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    // Precomputed index arithmetic: line size is always a power of two
    // (asserted in `new`), and when the set count is too, indexing is a
    // mask/shift instead of a division. The set count itself is cached
    // so `locate` does not re-derive it (a division) per access.
    line_shift: u32,
    set_shift: Option<u32>,
    sets: usize,
    // Most-recently-touched line. Only accesses through this cache can
    // evict from it, so an access to the same line as the previous one
    // is a guaranteed hit and skips the set scan; the bookkeeping it
    // performs (tick, LRU stamp, dirty, hit count) is identical to the
    // scan path's. `u64::MAX` = none.
    mru_block: u64,
    mru_index: usize,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or
    /// non-power-of-two line size).
    #[must_use]
    pub fn new(params: CacheParams) -> Cache {
        assert!(params.ways > 0 && params.sets() > 0, "degenerate cache geometry");
        assert!(params.line.is_power_of_two(), "line size must be a power of two");
        Cache {
            params,
            lines: vec![Line::default(); params.sets() * params.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            line_shift: params.line.trailing_zeros(),
            set_shift: if params.sets().is_power_of_two() {
                Some(params.sets().trailing_zeros())
            } else {
                None
            },
            sets: params.sets(),
            mru_block: u64::MAX,
            mru_index: 0,
        }
    }

    /// `(first way index, tag)` for the set containing `paddr`.
    #[inline]
    fn locate(&self, paddr: u64) -> (usize, u64) {
        let block = paddr >> self.line_shift;
        let sets = self.sets as u64;
        let (set, tag) = match self.set_shift {
            Some(s) => (block & (sets - 1), block >> s),
            None => (block % sets, block / sets),
        };
        (set as usize * self.params.ways, tag)
    }

    /// The cache geometry.
    #[must_use]
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Looks up (and on miss, fills) the line containing `paddr`,
    /// marking it dirty on writes.
    pub fn access(&mut self, paddr: u64, write: bool) -> Lookup {
        self.tick += 1;
        if paddr >> self.line_shift == self.mru_block {
            let l = &mut self.lines[self.mru_index];
            l.lru = self.tick;
            if write {
                l.dirty = true;
            }
            self.hits += 1;
            return Lookup::Hit;
        }
        let (base, tag) = self.locate(paddr);
        let ways = &mut self.lines[base..base + self.params.ways];

        if let Some(w) = ways.iter().position(|l| l.valid && l.tag == tag) {
            let l = &mut ways[w];
            l.lru = self.tick;
            if write {
                l.dirty = true;
            }
            self.hits += 1;
            self.mru_block = paddr >> self.line_shift;
            self.mru_index = base + w;
            return Lookup::Hit;
        }

        // Miss: fill over the LRU way.
        self.misses += 1;
        let (w, victim) = ways
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.writebacks += 1;
        }
        *victim = Line { valid: true, dirty: write, tag, lru: self.tick };
        self.mru_block = paddr >> self.line_shift;
        self.mru_index = base + w;
        Lookup::Miss { writeback }
    }

    /// Records `n` consecutive read hits on the (resident) line
    /// containing `paddr` in one batched update. Equivalent to `n`
    /// [`Cache::access`] read calls that all hit: each such call would
    /// advance the tick, refresh the line's LRU stamp to it, and count
    /// a hit — so only the final LRU stamp is observable. Falls back to
    /// per-access bookkeeping if the line is not resident (the callers'
    /// invariant violated), keeping counters exact either way.
    pub fn record_hits(&mut self, paddr: u64, n: u64) {
        let (base, tag) = self.locate(paddr);
        let ways = &mut self.lines[base..base + self.params.ways];
        if let Some(w) = ways.iter().position(|l| l.valid && l.tag == tag) {
            self.tick += n;
            ways[w].lru = self.tick;
            self.hits += n;
            self.mru_block = paddr >> self.line_shift;
            self.mru_index = base + w;
        } else {
            debug_assert!(false, "record_hits on a non-resident line");
            for _ in 0..n {
                self.access(paddr, false);
            }
        }
    }

    /// Invalidates everything (used on address-space teardown between
    /// benchmark runs).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.mru_block = u64::MAX;
    }

    /// Exports the complete cache state for `cheri-snap`. The MRU
    /// cursor is included: it is architecturally transparent, but
    /// restoring it makes a restored cache bit-identical to the
    /// original (which the snapshot equality tests assert).
    #[must_use]
    pub fn export_state(&self) -> cheri_snap::CacheState {
        cheri_snap::CacheState {
            lines: self
                .lines
                .iter()
                .map(|l| cheri_snap::CacheLineState {
                    valid: l.valid,
                    dirty: l.dirty,
                    tag: l.tag,
                    lru: l.lru,
                })
                .collect(),
            tick: self.tick,
            hits: self.hits,
            misses: self.misses,
            writebacks: self.writebacks,
            mru_block: self.mru_block,
            mru_index: self.mru_index as u64,
        }
    }

    /// Restores state exported by [`Cache::export_state`].
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if the line count does not match this
    /// cache's geometry.
    pub fn import_state(
        &mut self,
        s: &cheri_snap::CacheState,
    ) -> Result<(), cheri_snap::SnapError> {
        if s.lines.len() != self.lines.len() {
            return Err(cheri_snap::SnapError(format!(
                "cache holds {} lines, snapshot has {}",
                self.lines.len(),
                s.lines.len()
            )));
        }
        if (s.mru_index as usize) >= self.lines.len() && s.mru_block != u64::MAX {
            return Err(cheri_snap::SnapError(format!("MRU index {} out of range", s.mru_index)));
        }
        for (l, sl) in self.lines.iter_mut().zip(&s.lines) {
            *l = Line { valid: sl.valid, dirty: sl.dirty, tag: sl.tag, lru: sl.lru };
        }
        self.tick = s.tick;
        self.hits = s.hits;
        self.misses = s.misses;
        self.writebacks = s.writebacks;
        self.mru_block = s.mru_block;
        self.mru_index = (s.mru_index as usize).min(self.lines.len().saturating_sub(1));
        Ok(())
    }
}

/// Latency parameters (penalty cycles beyond the base CPI).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyParams {
    /// L1 geometries (instruction and data are identical).
    pub l1: CacheParams,
    /// L2 geometry.
    pub l2: CacheParams,
    /// Extra cycles for an L1 miss that hits in L2.
    pub l2_latency: u64,
    /// Extra cycles for an access that goes to DRAM.
    pub dram_latency: u64,
}

impl Default for HierarchyParams {
    /// Latencies are calibrated to the paper's platform: a 100 MHz FPGA
    /// soft core, where an on-chip L2 is ~2 cycles and DRAM only ~6 core
    /// cycles away (60 ns at 100 MHz), unlike a multi-GHz part. These
    /// values reproduce the magnitude of the Figure 4/5 overheads.
    fn default() -> HierarchyParams {
        HierarchyParams {
            l1: CacheParams::l1(),
            l2: CacheParams::l2(),
            l2_latency: 2,
            dram_latency: 6,
        }
    }
}

/// The full hierarchy: split L1 I/D over a unified L2 over DRAM.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    params: HierarchyParams,
    // log2 of the L1 line size (line sizes are asserted powers of two).
    line_shift: u32,
    /// Bytes moved between L2 and DRAM (line fills + writebacks) — the
    /// "Memory I/O (bytes)" quantity of Figure 3.
    pub dram_bytes: u64,
    /// Individual DRAM transactions.
    pub dram_accesses: u64,
    // Trace sink shared with the rest of the machine; events mirror the
    // per-cache hit/miss counters exactly.
    sink: Option<SharedSink>,
}

impl Hierarchy {
    /// Builds the hierarchy.
    #[must_use]
    pub fn new(params: HierarchyParams) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(params.l1),
            l1d: Cache::new(params.l1),
            l2: Cache::new(params.l2),
            params,
            line_shift: params.l1.line.trailing_zeros(),
            dram_bytes: 0,
            dram_accesses: 0,
            sink: None,
        }
    }

    /// Attaches (or with `None`, detaches) a trace sink. One
    /// `CacheAccess` event is emitted per [`Cache::access`] call —
    /// including the L2 probe behind an L1 miss and the L2 update
    /// absorbing a dirty L1 victim — so aggregated event counts equal
    /// the per-cache hit/miss/writeback counters exactly.
    pub fn set_trace_sink(&mut self, sink: Option<SharedSink>) {
        self.sink = sink;
    }

    /// The latency/geometry parameters.
    #[must_use]
    pub fn params(&self) -> HierarchyParams {
        self.params
    }

    fn through_l2(&mut self, paddr: u64, write_into_l2: bool) -> u64 {
        let lookup = self.l2.access(paddr, write_into_l2);
        self.emit_access(CacheLevel::L2, write_into_l2, lookup);
        match lookup {
            Lookup::Hit => self.params.l2_latency,
            Lookup::Miss { writeback } => {
                self.dram_accesses += 1;
                self.dram_bytes += self.params.l2.line as u64;
                if writeback {
                    self.dram_accesses += 1;
                    self.dram_bytes += self.params.l2.line as u64;
                }
                self.params.dram_latency
            }
        }
    }

    fn emit_access(&mut self, level: CacheLevel, write: bool, lookup: Lookup) {
        emit(&self.sink, || match lookup {
            Lookup::Hit => TraceEvent::CacheAccess { level, write, hit: true, writeback: false },
            Lookup::Miss { writeback } => {
                TraceEvent::CacheAccess { level, write, hit: false, writeback }
            }
        });
    }

    /// One instruction fetch at physical address `paddr`; returns penalty
    /// cycles.
    pub fn fetch(&mut self, paddr: u64) -> u64 {
        let lookup = self.l1i.access(paddr, false);
        self.emit_access(CacheLevel::L1I, false, lookup);
        match lookup {
            Lookup::Hit => 0,
            Lookup::Miss { .. } => self.through_l2(paddr, false),
        }
    }

    /// `n` instruction fetches that are all guaranteed L1I hits (the
    /// line containing `paddr` was fetched and nothing else touches
    /// L1I), batched: zero penalty cycles, one counter/LRU update, and
    /// the same per-access trace events as [`Hierarchy::fetch`] would
    /// emit.
    pub fn fetch_hits(&mut self, paddr: u64, n: u64) {
        self.l1i.record_hits(paddr, n);
        if self.sink.is_some() {
            for _ in 0..n {
                self.emit_access(CacheLevel::L1I, false, Lookup::Hit);
            }
        }
    }

    /// One data access of `size` bytes at `paddr`; returns penalty
    /// cycles. Accesses crossing a line boundary touch both lines (as the
    /// hardware would take two cache cycles).
    pub fn data(&mut self, paddr: u64, size: u64, write: bool) -> u64 {
        let first = paddr >> self.line_shift;
        let last = if size == 0 { first } else { (paddr + size - 1) >> self.line_shift };
        if first == last {
            // The overwhelmingly common case: the access fits one line.
            return self.data_line(first << self.line_shift, write);
        }
        let mut penalty = 0;
        for blk in first..=last {
            penalty += self.data_line(blk << self.line_shift, write);
        }
        penalty
    }

    /// One line-sized data access; shared tail of [`Hierarchy::data`].
    fn data_line(&mut self, addr: u64, write: bool) -> u64 {
        let lookup = self.l1d.access(addr, write);
        self.emit_access(CacheLevel::L1D, write, lookup);
        match lookup {
            Lookup::Hit => 0,
            Lookup::Miss { writeback } => {
                let penalty = self.through_l2(addr, false);
                if writeback {
                    // Dirty L1 victim lands in L2.
                    let victim = self.l2.access(addr, true);
                    self.emit_access(CacheLevel::L2, true, victim);
                }
                penalty
            }
        }
    }

    /// Flushes all levels.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }

    /// Exports all three caches and the DRAM counters for `cheri-snap`.
    #[must_use]
    pub fn export_state(&self) -> cheri_snap::HierarchyState {
        cheri_snap::HierarchyState {
            l1i: self.l1i.export_state(),
            l1d: self.l1d.export_state(),
            l2: self.l2.export_state(),
            dram_bytes: self.dram_bytes,
            dram_accesses: self.dram_accesses,
        }
    }

    /// Restores state exported by [`Hierarchy::export_state`].
    ///
    /// # Errors
    ///
    /// [`cheri_snap::SnapError`] if any cache's geometry differs.
    pub fn import_state(
        &mut self,
        s: &cheri_snap::HierarchyState,
    ) -> Result<(), cheri_snap::SnapError> {
        self.l1i.import_state(&s.l1i)?;
        self.l1d.import_state(&s.l1d)?;
        self.l2.import_state(&s.l2)?;
        self.dram_bytes = s.dram_bytes;
        self.dram_accesses = s.dram_accesses;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_defaults_match_paper() {
        let p = HierarchyParams::default();
        assert_eq!(p.l1.size, 16 * 1024);
        assert_eq!(p.l2.size, 64 * 1024);
        assert_eq!(p.l1.line, 32);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(CacheParams::l1());
        assert!(matches!(c.access(0x100, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0x100, false), Lookup::Hit);
        assert_eq!(c.access(0x11f, false), Lookup::Hit); // same 32-byte line
        assert!(matches!(c.access(0x120, false), Lookup::Miss { .. }));
    }

    #[test]
    fn lru_within_set() {
        // 2-way tiny cache: 2 sets of 2 ways, line 32 => size 128.
        let mut c = Cache::new(CacheParams { size: 128, line: 32, ways: 2 });
        let stride = 64; // same set (2 sets * 32-byte lines)
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // refresh line 0
        c.access(2 * stride, false); // evicts `stride`, not 0
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert!(matches!(c.access(stride, false), Lookup::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(CacheParams { size: 64, line: 32, ways: 1 });
        c.access(0, true);
        // Same set (direct-mapped, 2 sets): stride = 64.
        match c.access(64, false) {
            Lookup::Miss { writeback } => assert!(writeback),
            Lookup::Hit => panic!("expected miss"),
        }
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn working_set_fits_l1_no_dram_traffic_after_warmup() {
        let mut h = Hierarchy::new(HierarchyParams::default());
        // 8 KB working set < 16 KB L1.
        for _ in 0..3 {
            for addr in (0..8192u64).step_by(32) {
                h.data(addr, 8, false);
            }
        }
        let bytes_after_warm = h.dram_bytes;
        for addr in (0..8192u64).step_by(32) {
            h.data(addr, 8, false);
        }
        assert_eq!(h.dram_bytes, bytes_after_warm, "steady state should be DRAM-silent");
    }

    #[test]
    fn working_set_over_l2_streams_from_dram() {
        let mut h = Hierarchy::new(HierarchyParams::default());
        // 256 KB > 64 KB L2: every revisit misses all levels.
        for _ in 0..2 {
            for addr in (0..256 * 1024u64).step_by(32) {
                h.data(addr, 8, false);
            }
        }
        // Second pass alone is 8192 lines of 32 bytes.
        assert!(h.dram_bytes >= 2 * 8192 * 32);
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut h = Hierarchy::new(HierarchyParams::default());
        let p_dram = h.data(0x1000, 8, false);
        let p_l1 = h.data(0x1000, 8, false);
        assert_eq!(p_l1, 0);
        assert_eq!(p_dram, h.params().dram_latency);
        // Evict from L1 but not L2, then re-access: L2 latency.
        let mut h2 = Hierarchy::new(HierarchyParams::default());
        h2.data(0, 8, false);
        // Touch 16 KB + of distinct lines mapping over all L1 sets.
        for addr in (32..64 * 1024u64).step_by(32) {
            h2.data(addr, 8, false);
        }
        let p = h2.data(0, 8, false);
        assert_eq!(p, h2.params().l2_latency);
    }

    #[test]
    fn fetch_uses_icache_separately() {
        let mut h = Hierarchy::new(HierarchyParams::default());
        assert!(h.fetch(0x1000) > 0);
        assert_eq!(h.fetch(0x1000), 0);
        // A data access to the same line does not hit in L1I but does in L2.
        assert_eq!(h.data(0x1000, 4, false), h.params().l2_latency);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = Hierarchy::new(HierarchyParams::default());
        let p = h.data(28, 8, false); // crosses 0..32 and 32..64
        assert_eq!(p, 2 * h.params().dram_latency);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_way_cache_rejected() {
        let _ = Cache::new(CacheParams { size: 64, line: 32, ways: 0 });
    }
}
