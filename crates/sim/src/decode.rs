//! Instruction encoding and decoding.
//!
//! This module is the single source of truth for binary encodings: the
//! `cheri-asm` assembler calls [`encode`] and the simulator calls
//! [`decode`], so the two cannot disagree.
//!
//! MIPS IV encodings follow the MIPS64 manuals. The CHERI extensions live
//! in the COP2 primary-opcode space (0x12), as in the paper ("CHERI
//! capability extensions are implemented as a MIPS coprocessor, CP2"),
//! with a 5-bit sub-opcode in bits 25:21:
//!
//! ```text
//! inspect      | 0x12 | sub | rd | cb | 0…          sub = 0..4
//! manipulate   | 0x12 | sub | cd | cb | rt | 0…     sub = 5..10
//! tag branch   | 0x12 | sub | cb | offset16 |       sub = 11, 12
//! cap ld/st    | 0x12 | sub | r  | cb | rt | imm6 | sub = 13..27
//! cap jump     | 0x12 | sub | cd | cb | 0…          sub = 28, 29
//! ```
//!
//! `imm6` is a signed 6-bit immediate scaled by the access width
//! (32 bytes for `CLC`/`CSC`), mirroring CHERI-MIPS's scaled offsets.

use crate::inst::{AluImmOp, AluOp, BranchCond, CheriInst, Inst, MulDivOp, ShiftOp, Width};

const OP_SPECIAL: u32 = 0x00;
const OP_REGIMM: u32 = 0x01;
const OP_COP0: u32 = 0x10;
const OP_COP2: u32 = 0x12;

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Decodes one 32-bit instruction word.
///
/// Unknown encodings decode to [`Inst::Reserved`], which raises a
/// Reserved Instruction exception at execution, as on the real machine.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn decode(word: u32) -> Inst {
    let op = bits(word, 31, 26);
    let rs = bits(word, 25, 21) as u8;
    let rt = bits(word, 20, 16) as u8;
    let rd = bits(word, 15, 11) as u8;
    let shamt = bits(word, 10, 6) as u8;
    let funct = bits(word, 5, 0);
    let imm = bits(word, 15, 0) as u16;
    let simm = imm as i16;

    match op {
        OP_SPECIAL => match funct {
            0x00 => Inst::Shift { op: ShiftOp::Sll, rd, rt, shamt },
            0x02 => Inst::Shift { op: ShiftOp::Srl, rd, rt, shamt },
            0x03 => Inst::Shift { op: ShiftOp::Sra, rd, rt, shamt },
            0x04 => Inst::ShiftV { op: ShiftOp::Sll, rd, rt, rs },
            0x06 => Inst::ShiftV { op: ShiftOp::Srl, rd, rt, rs },
            0x07 => Inst::ShiftV { op: ShiftOp::Sra, rd, rt, rs },
            0x08 => Inst::Jr { rs },
            0x09 => Inst::Jalr { rd, rs },
            0x0a => Inst::Alu { op: AluOp::Movz, rd, rs, rt },
            0x0b => Inst::Alu { op: AluOp::Movn, rd, rs, rt },
            0x0c => Inst::Syscall { code: bits(word, 25, 6) },
            0x0d => Inst::Break { code: bits(word, 25, 6) },
            0x10 => Inst::Mfhi { rd },
            0x11 => Inst::Mthi { rs },
            0x12 => Inst::Mflo { rd },
            0x13 => Inst::Mtlo { rs },
            0x14 => Inst::ShiftV { op: ShiftOp::Dsll, rd, rt, rs },
            0x16 => Inst::ShiftV { op: ShiftOp::Dsrl, rd, rt, rs },
            0x17 => Inst::ShiftV { op: ShiftOp::Dsra, rd, rt, rs },
            0x18 => Inst::MulDiv { op: MulDivOp::Mult, rs, rt },
            0x19 => Inst::MulDiv { op: MulDivOp::Multu, rs, rt },
            0x1a => Inst::MulDiv { op: MulDivOp::Div, rs, rt },
            0x1b => Inst::MulDiv { op: MulDivOp::Divu, rs, rt },
            0x1c => Inst::MulDiv { op: MulDivOp::Dmult, rs, rt },
            0x1d => Inst::MulDiv { op: MulDivOp::Dmultu, rs, rt },
            0x1e => Inst::MulDiv { op: MulDivOp::Ddiv, rs, rt },
            0x1f => Inst::MulDiv { op: MulDivOp::Ddivu, rs, rt },
            0x20 => Inst::Alu { op: AluOp::Add, rd, rs, rt },
            0x21 => Inst::Alu { op: AluOp::Addu, rd, rs, rt },
            0x22 => Inst::Alu { op: AluOp::Sub, rd, rs, rt },
            0x23 => Inst::Alu { op: AluOp::Subu, rd, rs, rt },
            0x24 => Inst::Alu { op: AluOp::And, rd, rs, rt },
            0x25 => Inst::Alu { op: AluOp::Or, rd, rs, rt },
            0x26 => Inst::Alu { op: AluOp::Xor, rd, rs, rt },
            0x27 => Inst::Alu { op: AluOp::Nor, rd, rs, rt },
            0x2a => Inst::Alu { op: AluOp::Slt, rd, rs, rt },
            0x2b => Inst::Alu { op: AluOp::Sltu, rd, rs, rt },
            0x2c => Inst::Alu { op: AluOp::Dadd, rd, rs, rt },
            0x2d => Inst::Alu { op: AluOp::Daddu, rd, rs, rt },
            0x2e => Inst::Alu { op: AluOp::Dsub, rd, rs, rt },
            0x2f => Inst::Alu { op: AluOp::Dsubu, rd, rs, rt },
            0x38 => Inst::Shift { op: ShiftOp::Dsll, rd, rt, shamt },
            0x3a => Inst::Shift { op: ShiftOp::Dsrl, rd, rt, shamt },
            0x3b => Inst::Shift { op: ShiftOp::Dsra, rd, rt, shamt },
            0x3c => Inst::Shift { op: ShiftOp::Dsll32, rd, rt, shamt },
            0x3e => Inst::Shift { op: ShiftOp::Dsrl32, rd, rt, shamt },
            0x3f => Inst::Shift { op: ShiftOp::Dsra32, rd, rt, shamt },
            _ => Inst::Reserved { word },
        },
        OP_REGIMM => match rt {
            0x00 => Inst::Branch { cond: BranchCond::Ltz, rs, rt: 0, offset: simm },
            0x01 => Inst::Branch { cond: BranchCond::Gez, rs, rt: 0, offset: simm },
            0x10 => Inst::BranchLink { cond: BranchCond::Ltz, rs, offset: simm },
            0x11 => Inst::BranchLink { cond: BranchCond::Gez, rs, offset: simm },
            _ => Inst::Reserved { word },
        },
        0x02 => Inst::J { target: bits(word, 25, 0) },
        0x03 => Inst::Jal { target: bits(word, 25, 0) },
        0x04 => Inst::Branch { cond: BranchCond::Eq, rs, rt, offset: simm },
        0x05 => Inst::Branch { cond: BranchCond::Ne, rs, rt, offset: simm },
        0x06 => Inst::Branch { cond: BranchCond::Lez, rs, rt: 0, offset: simm },
        0x07 => Inst::Branch { cond: BranchCond::Gtz, rs, rt: 0, offset: simm },
        0x08 => Inst::AluImm { op: AluImmOp::Addi, rt, rs, imm },
        0x09 => Inst::AluImm { op: AluImmOp::Addiu, rt, rs, imm },
        0x0a => Inst::AluImm { op: AluImmOp::Slti, rt, rs, imm },
        0x0b => Inst::AluImm { op: AluImmOp::Sltiu, rt, rs, imm },
        0x0c => Inst::AluImm { op: AluImmOp::Andi, rt, rs, imm },
        0x0d => Inst::AluImm { op: AluImmOp::Ori, rt, rs, imm },
        0x0e => Inst::AluImm { op: AluImmOp::Xori, rt, rs, imm },
        0x0f => Inst::Lui { rt, imm },
        OP_COP0 => {
            if bits(word, 25, 25) == 1 {
                match funct {
                    0x01 => Inst::Tlbr,
                    0x02 => Inst::Tlbwi,
                    0x06 => Inst::Tlbwr,
                    0x08 => Inst::Tlbp,
                    0x18 => Inst::Eret,
                    _ => Inst::Reserved { word },
                }
            } else {
                match rs {
                    0x00 | 0x01 => Inst::Mfc0 { rt, rd },
                    0x04 | 0x05 => Inst::Mtc0 { rt, rd },
                    _ => Inst::Reserved { word },
                }
            }
        }
        OP_COP2 => decode_cheri(word),
        0x18 => Inst::AluImm { op: AluImmOp::Daddi, rt, rs, imm },
        0x19 => Inst::AluImm { op: AluImmOp::Daddiu, rt, rs, imm },
        0x20 => Inst::Load { width: Width::Byte, rt, base: rs, imm: simm, unsigned: false },
        0x21 => Inst::Load { width: Width::Half, rt, base: rs, imm: simm, unsigned: false },
        0x23 => Inst::Load { width: Width::Word, rt, base: rs, imm: simm, unsigned: false },
        0x24 => Inst::Load { width: Width::Byte, rt, base: rs, imm: simm, unsigned: true },
        0x25 => Inst::Load { width: Width::Half, rt, base: rs, imm: simm, unsigned: true },
        0x27 => Inst::Load { width: Width::Word, rt, base: rs, imm: simm, unsigned: true },
        0x28 => Inst::Store { width: Width::Byte, rt, base: rs, imm: simm },
        0x29 => Inst::Store { width: Width::Half, rt, base: rs, imm: simm },
        0x2b => Inst::Store { width: Width::Word, rt, base: rs, imm: simm },
        0x30 => Inst::LoadLinked { width: Width::Word, rt, base: rs, imm: simm },
        0x34 => Inst::LoadLinked { width: Width::Double, rt, base: rs, imm: simm },
        0x37 => Inst::Load { width: Width::Double, rt, base: rs, imm: simm, unsigned: false },
        0x38 => Inst::StoreCond { width: Width::Word, rt, base: rs, imm: simm },
        0x3c => Inst::StoreCond { width: Width::Double, rt, base: rs, imm: simm },
        0x3f => Inst::Store { width: Width::Double, rt, base: rs, imm: simm },
        _ => Inst::Reserved { word },
    }
}

fn decode_cheri(word: u32) -> Inst {
    let sub = bits(word, 25, 21);
    let r1 = bits(word, 20, 16) as u8;
    let r2 = bits(word, 15, 11) as u8;
    let r3 = bits(word, 10, 6) as u8;
    let imm6 = {
        let raw = bits(word, 5, 0) as i8;
        if raw >= 32 {
            raw - 64
        } else {
            raw
        }
    };
    let offset = bits(word, 15, 0) as u16 as i16;

    let c = match sub {
        0 => CheriInst::CGetBase { rd: r1, cb: r2 },
        1 => CheriInst::CGetLen { rd: r1, cb: r2 },
        2 => CheriInst::CGetTag { rd: r1, cb: r2 },
        3 => CheriInst::CGetPerm { rd: r1, cb: r2 },
        4 => CheriInst::CGetPCC { rd: r1, cd: r2 },
        5 => CheriInst::CIncBase { cd: r1, cb: r2, rt: r3 },
        6 => CheriInst::CSetLen { cd: r1, cb: r2, rt: r3 },
        7 => CheriInst::CClearTag { cd: r1, cb: r2 },
        8 => CheriInst::CAndPerm { cd: r1, cb: r2, rt: r3 },
        9 => CheriInst::CToPtr { rd: r1, cb: r2, ct: r3 },
        10 => CheriInst::CFromPtr { cd: r1, cb: r2, rt: r3 },
        11 => CheriInst::CBTU { cb: r1, offset },
        12 => CheriInst::CBTS { cb: r1, offset },
        13 => CheriInst::CLC { cd: r1, cb: r2, rt: r3, imm: imm6 },
        14 => CheriInst::CSC { cs: r1, cb: r2, rt: r3, imm: imm6 },
        15 => CheriInst::CLoad {
            width: Width::Byte,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: false,
        },
        16 => CheriInst::CLoad {
            width: Width::Byte,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: true,
        },
        17 => CheriInst::CLoad {
            width: Width::Half,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: false,
        },
        18 => CheriInst::CLoad {
            width: Width::Half,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: true,
        },
        19 => CheriInst::CLoad {
            width: Width::Word,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: false,
        },
        20 => CheriInst::CLoad {
            width: Width::Word,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: true,
        },
        21 => CheriInst::CLoad {
            width: Width::Double,
            rd: r1,
            cb: r2,
            rt: r3,
            imm: imm6,
            unsigned: false,
        },
        22 => CheriInst::CStore { width: Width::Byte, rs: r1, cb: r2, rt: r3, imm: imm6 },
        23 => CheriInst::CStore { width: Width::Half, rs: r1, cb: r2, rt: r3, imm: imm6 },
        24 => CheriInst::CStore { width: Width::Word, rs: r1, cb: r2, rt: r3, imm: imm6 },
        25 => CheriInst::CStore { width: Width::Double, rs: r1, cb: r2, rt: r3, imm: imm6 },
        26 => CheriInst::CLLD { rd: r1, cb: r2, rt: r3, imm: imm6 },
        27 => CheriInst::CSCD { rs: r1, cb: r2, rt: r3, imm: imm6 },
        28 => CheriInst::CJR { cb: r1 },
        29 => CheriInst::CJALR { cd: r1, cb: r2 },
        _ => return Inst::Reserved { word },
    };
    Inst::Cheri(c)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Panics
///
/// Panics if a field is out of range for its encoding (e.g. a register
/// number ≥ 32, or a capability-load immediate outside the signed 6-bit
/// range) or if asked to encode [`Inst::Reserved`]. The assembler
/// validates fields before constructing `Inst` values, so a panic here is
/// an assembler bug.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn encode(inst: &Inst) -> u32 {
    fn r(v: u8) -> u32 {
        assert!(v < 32, "register field out of range: {v}");
        u32::from(v)
    }
    fn sp(funct: u32, rs: u8, rt: u8, rd: u8, shamt: u8) -> u32 {
        (r(rs) << 21) | (r(rt) << 16) | (r(rd) << 11) | (r(shamt) << 6) | funct
    }
    fn i(op: u32, rs: u8, rt: u8, imm: u16) -> u32 {
        (op << 26) | (r(rs) << 21) | (r(rt) << 16) | u32::from(imm)
    }

    match *inst {
        Inst::Alu { op, rd, rs, rt } => {
            let funct = match op {
                AluOp::Add => 0x20,
                AluOp::Addu => 0x21,
                AluOp::Sub => 0x22,
                AluOp::Subu => 0x23,
                AluOp::And => 0x24,
                AluOp::Or => 0x25,
                AluOp::Xor => 0x26,
                AluOp::Nor => 0x27,
                AluOp::Slt => 0x2a,
                AluOp::Sltu => 0x2b,
                AluOp::Dadd => 0x2c,
                AluOp::Daddu => 0x2d,
                AluOp::Dsub => 0x2e,
                AluOp::Dsubu => 0x2f,
                AluOp::Movz => 0x0a,
                AluOp::Movn => 0x0b,
            };
            sp(funct, rs, rt, rd, 0)
        }
        Inst::AluImm { op, rt, rs, imm } => {
            let opc = match op {
                AluImmOp::Addi => 0x08,
                AluImmOp::Addiu => 0x09,
                AluImmOp::Slti => 0x0a,
                AluImmOp::Sltiu => 0x0b,
                AluImmOp::Andi => 0x0c,
                AluImmOp::Ori => 0x0d,
                AluImmOp::Xori => 0x0e,
                AluImmOp::Daddi => 0x18,
                AluImmOp::Daddiu => 0x19,
            };
            i(opc, rs, rt, imm)
        }
        Inst::Lui { rt, imm } => i(0x0f, 0, rt, imm),
        Inst::Shift { op, rd, rt, shamt } => {
            let funct = match op {
                ShiftOp::Sll => 0x00,
                ShiftOp::Srl => 0x02,
                ShiftOp::Sra => 0x03,
                ShiftOp::Dsll => 0x38,
                ShiftOp::Dsrl => 0x3a,
                ShiftOp::Dsra => 0x3b,
                ShiftOp::Dsll32 => 0x3c,
                ShiftOp::Dsrl32 => 0x3e,
                ShiftOp::Dsra32 => 0x3f,
            };
            sp(funct, 0, rt, rd, shamt)
        }
        Inst::ShiftV { op, rd, rt, rs } => {
            let funct = match op {
                ShiftOp::Sll => 0x04,
                ShiftOp::Srl => 0x06,
                ShiftOp::Sra => 0x07,
                ShiftOp::Dsll => 0x14,
                ShiftOp::Dsrl => 0x16,
                ShiftOp::Dsra => 0x17,
                _ => panic!("no variable form for {op:?}"),
            };
            sp(funct, rs, rt, rd, 0)
        }
        Inst::MulDiv { op, rs, rt } => {
            let funct = match op {
                MulDivOp::Mult => 0x18,
                MulDivOp::Multu => 0x19,
                MulDivOp::Div => 0x1a,
                MulDivOp::Divu => 0x1b,
                MulDivOp::Dmult => 0x1c,
                MulDivOp::Dmultu => 0x1d,
                MulDivOp::Ddiv => 0x1e,
                MulDivOp::Ddivu => 0x1f,
            };
            sp(funct, rs, rt, 0, 0)
        }
        Inst::Mfhi { rd } => sp(0x10, 0, 0, rd, 0),
        Inst::Mthi { rs } => sp(0x11, rs, 0, 0, 0),
        Inst::Mflo { rd } => sp(0x12, 0, 0, rd, 0),
        Inst::Mtlo { rs } => sp(0x13, rs, 0, 0, 0),
        Inst::Branch { cond, rs, rt, offset } => match cond {
            BranchCond::Eq => i(0x04, rs, rt, offset as u16),
            BranchCond::Ne => i(0x05, rs, rt, offset as u16),
            BranchCond::Lez => i(0x06, rs, 0, offset as u16),
            BranchCond::Gtz => i(0x07, rs, 0, offset as u16),
            BranchCond::Ltz => i(OP_REGIMM, rs, 0x00, offset as u16),
            BranchCond::Gez => i(OP_REGIMM, rs, 0x01, offset as u16),
        },
        Inst::BranchLink { cond, rs, offset } => match cond {
            BranchCond::Ltz => i(OP_REGIMM, rs, 0x10, offset as u16),
            BranchCond::Gez => i(OP_REGIMM, rs, 0x11, offset as u16),
            _ => panic!("no link form for {cond:?}"),
        },
        Inst::J { target } => {
            assert!(target < (1 << 26), "jump target out of range");
            (0x02 << 26) | target
        }
        Inst::Jal { target } => {
            assert!(target < (1 << 26), "jump target out of range");
            (0x03 << 26) | target
        }
        Inst::Jr { rs } => sp(0x08, rs, 0, 0, 0),
        Inst::Jalr { rd, rs } => sp(0x09, rs, 0, rd, 0),
        Inst::Load { width, rt, base, imm, unsigned } => {
            let opc = match (width, unsigned) {
                (Width::Byte, false) => 0x20,
                (Width::Half, false) => 0x21,
                (Width::Word, false) => 0x23,
                (Width::Byte, true) => 0x24,
                (Width::Half, true) => 0x25,
                (Width::Word, true) => 0x27,
                (Width::Double, _) => 0x37,
            };
            i(opc, base, rt, imm as u16)
        }
        Inst::Store { width, rt, base, imm } => {
            let opc = match width {
                Width::Byte => 0x28,
                Width::Half => 0x29,
                Width::Word => 0x2b,
                Width::Double => 0x3f,
            };
            i(opc, base, rt, imm as u16)
        }
        Inst::LoadLinked { width, rt, base, imm } => {
            let opc = if width == Width::Double { 0x34 } else { 0x30 };
            i(opc, base, rt, imm as u16)
        }
        Inst::StoreCond { width, rt, base, imm } => {
            let opc = if width == Width::Double { 0x3c } else { 0x38 };
            i(opc, base, rt, imm as u16)
        }
        Inst::Syscall { code } => {
            assert!(code < (1 << 20), "syscall code out of range");
            (code << 6) | 0x0c
        }
        Inst::Break { code } => {
            assert!(code < (1 << 20), "break code out of range");
            (code << 6) | 0x0d
        }
        Inst::Mfc0 { rt, rd } => (OP_COP0 << 26) | (0x01 << 21) | (r(rt) << 16) | (r(rd) << 11),
        Inst::Mtc0 { rt, rd } => (OP_COP0 << 26) | (0x05 << 21) | (r(rt) << 16) | (r(rd) << 11),
        Inst::Tlbr => (OP_COP0 << 26) | (1 << 25) | 0x01,
        Inst::Tlbwi => (OP_COP0 << 26) | (1 << 25) | 0x02,
        Inst::Tlbwr => (OP_COP0 << 26) | (1 << 25) | 0x06,
        Inst::Tlbp => (OP_COP0 << 26) | (1 << 25) | 0x08,
        Inst::Eret => (OP_COP0 << 26) | (1 << 25) | 0x18,
        Inst::Cheri(c) => encode_cheri(&c),
        Inst::Reserved { word } => panic!("cannot encode reserved word {word:#x}"),
    }
}

fn encode_cheri(c: &CheriInst) -> u32 {
    fn r(v: u8) -> u32 {
        assert!(v < 32, "register field out of range: {v}");
        u32::from(v)
    }
    fn imm6(v: i8) -> u32 {
        assert!((-32..32).contains(&v), "cap immediate out of 6-bit range: {v}");
        (v as u32) & 0x3f
    }
    fn f(sub: u32, r1: u8, r2: u8, r3: u8, im: u32) -> u32 {
        (OP_COP2 << 26) | (sub << 21) | (r(r1) << 16) | (r(r2) << 11) | (r(r3) << 6) | im
    }
    fn br(sub: u32, cb: u8, offset: i16) -> u32 {
        (OP_COP2 << 26) | (sub << 21) | (r(cb) << 16) | u32::from(offset as u16)
    }

    match *c {
        CheriInst::CGetBase { rd, cb } => f(0, rd, cb, 0, 0),
        CheriInst::CGetLen { rd, cb } => f(1, rd, cb, 0, 0),
        CheriInst::CGetTag { rd, cb } => f(2, rd, cb, 0, 0),
        CheriInst::CGetPerm { rd, cb } => f(3, rd, cb, 0, 0),
        CheriInst::CGetPCC { rd, cd } => f(4, rd, cd, 0, 0),
        CheriInst::CIncBase { cd, cb, rt } => f(5, cd, cb, rt, 0),
        CheriInst::CSetLen { cd, cb, rt } => f(6, cd, cb, rt, 0),
        CheriInst::CClearTag { cd, cb } => f(7, cd, cb, 0, 0),
        CheriInst::CAndPerm { cd, cb, rt } => f(8, cd, cb, rt, 0),
        CheriInst::CToPtr { rd, cb, ct } => f(9, rd, cb, ct, 0),
        CheriInst::CFromPtr { cd, cb, rt } => f(10, cd, cb, rt, 0),
        CheriInst::CBTU { cb, offset } => br(11, cb, offset),
        CheriInst::CBTS { cb, offset } => br(12, cb, offset),
        CheriInst::CLC { cd, cb, rt, imm } => f(13, cd, cb, rt, imm6(imm)),
        CheriInst::CSC { cs, cb, rt, imm } => f(14, cs, cb, rt, imm6(imm)),
        CheriInst::CLoad { width, rd, cb, rt, imm, unsigned } => {
            let sub = match (width, unsigned) {
                (Width::Byte, false) => 15,
                (Width::Byte, true) => 16,
                (Width::Half, false) => 17,
                (Width::Half, true) => 18,
                (Width::Word, false) => 19,
                (Width::Word, true) => 20,
                (Width::Double, _) => 21,
            };
            f(sub, rd, cb, rt, imm6(imm))
        }
        CheriInst::CStore { width, rs, cb, rt, imm } => {
            let sub = match width {
                Width::Byte => 22,
                Width::Half => 23,
                Width::Word => 24,
                Width::Double => 25,
            };
            f(sub, rs, cb, rt, imm6(imm))
        }
        CheriInst::CLLD { rd, cb, rt, imm } => f(26, rd, cb, rt, imm6(imm)),
        CheriInst::CSCD { rs, cb, rt, imm } => f(27, rs, cb, rt, imm6(imm)),
        CheriInst::CJR { cb } => f(28, cb, 0, 0, 0),
        CheriInst::CJALR { cd, cb } => f(29, cd, cb, 0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::reg;

    fn roundtrip(i: Inst) {
        let w = encode(&i);
        assert_eq!(decode(w), i, "word {w:#010x}");
    }

    #[test]
    fn alu_roundtrip() {
        for op in [
            AluOp::Add,
            AluOp::Addu,
            AluOp::Sub,
            AluOp::Subu,
            AluOp::Dadd,
            AluOp::Daddu,
            AluOp::Dsub,
            AluOp::Dsubu,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Nor,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Movz,
            AluOp::Movn,
        ] {
            roundtrip(Inst::Alu { op, rd: 3, rs: 4, rt: 5 });
        }
    }

    #[test]
    fn imm_roundtrip() {
        for op in [
            AluImmOp::Addi,
            AluImmOp::Addiu,
            AluImmOp::Daddi,
            AluImmOp::Daddiu,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Andi,
            AluImmOp::Ori,
            AluImmOp::Xori,
        ] {
            roundtrip(Inst::AluImm { op, rt: 2, rs: 29, imm: 0x8001 });
        }
        roundtrip(Inst::Lui { rt: 8, imm: 0xffff });
    }

    #[test]
    fn shift_roundtrip() {
        for op in [
            ShiftOp::Sll,
            ShiftOp::Srl,
            ShiftOp::Sra,
            ShiftOp::Dsll,
            ShiftOp::Dsrl,
            ShiftOp::Dsra,
            ShiftOp::Dsll32,
            ShiftOp::Dsrl32,
            ShiftOp::Dsra32,
        ] {
            roundtrip(Inst::Shift { op, rd: 1, rt: 2, shamt: 31 });
        }
        for op in
            [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra, ShiftOp::Dsll, ShiftOp::Dsrl, ShiftOp::Dsra]
        {
            roundtrip(Inst::ShiftV { op, rd: 1, rt: 2, rs: 3 });
        }
    }

    #[test]
    fn muldiv_and_hilo_roundtrip() {
        for op in [
            MulDivOp::Mult,
            MulDivOp::Multu,
            MulDivOp::Div,
            MulDivOp::Divu,
            MulDivOp::Dmult,
            MulDivOp::Dmultu,
            MulDivOp::Ddiv,
            MulDivOp::Ddivu,
        ] {
            roundtrip(Inst::MulDiv { op, rs: 4, rt: 5 });
        }
        roundtrip(Inst::Mfhi { rd: 9 });
        roundtrip(Inst::Mflo { rd: 9 });
        roundtrip(Inst::Mthi { rs: 9 });
        roundtrip(Inst::Mtlo { rs: 9 });
    }

    #[test]
    fn branch_jump_roundtrip() {
        for cond in [BranchCond::Eq, BranchCond::Ne] {
            roundtrip(Inst::Branch { cond, rs: 1, rt: 2, offset: -4 });
        }
        for cond in [BranchCond::Lez, BranchCond::Gtz, BranchCond::Ltz, BranchCond::Gez] {
            roundtrip(Inst::Branch { cond, rs: 1, rt: 0, offset: 100 });
        }
        roundtrip(Inst::BranchLink { cond: BranchCond::Gez, rs: 0, offset: 2 });
        roundtrip(Inst::J { target: 0x123456 });
        roundtrip(Inst::Jal { target: 0x3ff_ffff });
        roundtrip(Inst::Jr { rs: reg::RA });
        roundtrip(Inst::Jalr { rd: reg::RA, rs: reg::T9 });
    }

    #[test]
    fn memory_roundtrip() {
        for width in [Width::Byte, Width::Half, Width::Word, Width::Double] {
            roundtrip(Inst::Load { width, rt: 7, base: 29, imm: -8, unsigned: false });
            roundtrip(Inst::Store { width, rt: 7, base: 29, imm: 8 });
        }
        for width in [Width::Byte, Width::Half, Width::Word] {
            roundtrip(Inst::Load { width, rt: 7, base: 29, imm: 4, unsigned: true });
        }
        for width in [Width::Word, Width::Double] {
            roundtrip(Inst::LoadLinked { width, rt: 3, base: 4, imm: 0 });
            roundtrip(Inst::StoreCond { width, rt: 3, base: 4, imm: 0 });
        }
    }

    #[test]
    fn system_roundtrip() {
        roundtrip(Inst::Syscall { code: 0 });
        roundtrip(Inst::Syscall { code: 77 });
        roundtrip(Inst::Break { code: 1 });
        roundtrip(Inst::Mfc0 { rt: 1, rd: 12 });
        roundtrip(Inst::Mtc0 { rt: 1, rd: 12 });
        roundtrip(Inst::Tlbwi);
        roundtrip(Inst::Tlbwr);
        roundtrip(Inst::Tlbp);
        roundtrip(Inst::Tlbr);
        roundtrip(Inst::Eret);
    }

    #[test]
    fn cheri_roundtrip_all_table1() {
        use crate::inst::CheriInst as C;
        let cases = [
            C::CGetBase { rd: 1, cb: 2 },
            C::CGetLen { rd: 1, cb: 2 },
            C::CGetTag { rd: 1, cb: 2 },
            C::CGetPerm { rd: 1, cb: 2 },
            C::CGetPCC { rd: 1, cd: 2 },
            C::CIncBase { cd: 1, cb: 2, rt: 3 },
            C::CSetLen { cd: 1, cb: 2, rt: 3 },
            C::CClearTag { cd: 1, cb: 2 },
            C::CAndPerm { cd: 1, cb: 2, rt: 3 },
            C::CToPtr { rd: 1, cb: 2, ct: 0 },
            C::CFromPtr { cd: 1, cb: 0, rt: 3 },
            C::CBTU { cb: 4, offset: -2 },
            C::CBTS { cb: 4, offset: 7 },
            C::CLC { cd: 5, cb: 6, rt: 0, imm: -1 },
            C::CSC { cs: 5, cb: 6, rt: 0, imm: 3 },
            C::CLLD { rd: 5, cb: 6, rt: 0, imm: 0 },
            C::CSCD { rs: 5, cb: 6, rt: 0, imm: 0 },
            C::CJR { cb: 17 },
            C::CJALR { cd: 17, cb: 18 },
        ];
        for c in cases {
            roundtrip(Inst::Cheri(c));
        }
        for width in [Width::Byte, Width::Half, Width::Word, Width::Double] {
            roundtrip(Inst::Cheri(C::CLoad {
                width,
                rd: 9,
                cb: 10,
                rt: 11,
                imm: -32,
                unsigned: false,
            }));
            roundtrip(Inst::Cheri(C::CStore { width, rs: 9, cb: 10, rt: 11, imm: 31 }));
        }
        for width in [Width::Byte, Width::Half, Width::Word] {
            roundtrip(Inst::Cheri(C::CLoad {
                width,
                rd: 9,
                cb: 10,
                rt: 11,
                imm: 5,
                unsigned: true,
            }));
        }
    }

    #[test]
    fn unknown_words_are_reserved() {
        // COP3 (0x13) is unimplemented on BERI.
        assert!(matches!(decode(0x13 << 26), Inst::Reserved { .. }));
        // SPECIAL funct 0x01 is unallocated.
        assert!(matches!(decode(0x0000_0001), Inst::Reserved { .. }));
        // COP2 sub 31 is unallocated.
        assert!(matches!(decode((0x12 << 26) | (31 << 21)), Inst::Reserved { .. }));
    }

    #[test]
    fn nop_is_sll_zero() {
        assert_eq!(decode(0), Inst::Shift { op: ShiftOp::Sll, rd: 0, rt: 0, shamt: 0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_validates_registers() {
        let _ = encode(&Inst::Jr { rs: 32 });
    }

    #[test]
    #[should_panic(expected = "6-bit")]
    fn encode_validates_cap_imm() {
        let _ = encode(&Inst::Cheri(CheriInst::CLC { cd: 1, cb: 2, rt: 0, imm: 32 }));
    }
}
