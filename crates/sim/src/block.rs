//! The predecoded basic-block cache behind [`Machine::run`]'s fast
//! path.
//!
//! `Machine::step` re-fetches and re-decodes the same instruction word
//! on every dynamic execution. For the sweep profiles that wall-clock
//! is dominated by decode and per-instruction bookkeeping, not by the
//! architectural model. The block cache removes that redundancy while
//! staying *architecturally transparent*: every counter in
//! [`crate::stats::Stats`], every cache/TLB/tag statistic, and all
//! architectural state evolve bit-identically to the slow path (the
//! xsweep baseline gate and the differential tests in
//! `tests/block_cache_diff.rs` enforce this).
//!
//! Blocks are keyed by **physical** PC, so TLB rewrites and context
//! switches never require invalidation — a remap changes which block a
//! virtual PC reaches, not the block's contents. What does invalidate:
//!
//! * **Stores.** Every machine-mediated store bumps a per-physical-page
//!   generation counter ([`BlockCache::note_store`]); a block whose
//!   recorded generation no longer matches its page is stale and is
//!   rebuilt on next entry (and the generation is re-checked between
//!   instructions inside a running block, so a store into the *current*
//!   block takes effect at the very next instruction — exactly like the
//!   slow path's per-instruction fetch).
//! * **Direct `mem` writes.** Embedders that write text through the
//!   public `mem` field (the `cheri-os` `exec`/`load_image` loaders)
//!   must call `Machine::invalidate_block_cache`.
//!
//! [`Machine::run`]: crate::machine::Machine::run
//! [`Machine::step`]: crate::machine::Machine::step

use crate::inst::{CheriInst, Inst};
use crate::tlb::PAGE_SHIFT;

/// Longest predecoded run; also bounded by the containing 4 KB page
/// (blocks never span pages, so one page-generation check covers a
/// whole block).
pub(crate) const MAX_BLOCK_INSTS: usize = 64;

/// Direct-mapped block-slot count (power of two).
const SLOT_COUNT: usize = 4096;

/// Instruction flags: retires as a capability instruction
/// (`Stats::cap_instructions`).
pub(crate) const F_CAP: u8 = 1 << 0;
/// Writes the TLB (`TLBWI`/`TLBWR`): the fast path must re-translate
/// before the next instruction.
pub(crate) const F_TLBW: u8 = 1 << 1;
/// Never falls through in a way worth predecoding past (`SYSCALL`,
/// `BREAK`, `ERET`, reserved words, capability jumps): ends the block
/// at build time.
pub(crate) const F_TERMINAL: u8 = 1 << 2;
/// Unconditional jump with a delay slot: the block ends after the slot.
pub(crate) const F_UNCOND_JUMP: u8 = 1 << 3;
/// May store to memory: the only instructions that can bump a page
/// generation mid-block, so only they need the staleness re-check.
pub(crate) const F_STORE: u8 = 1 << 4;

/// One predecoded instruction: the decoded form plus retire/termination
/// flags computed once at build time.
#[derive(Clone, Copy)]
pub(crate) struct PInst {
    pub inst: Inst,
    pub flags: u8,
}

/// Classifies `inst` for the block builder and the block runner.
pub(crate) fn pinst_flags(inst: &Inst) -> u8 {
    let mut f = 0;
    match *inst {
        Inst::Cheri(c) => {
            f |= F_CAP;
            if matches!(c, CheriInst::CJR { .. } | CheriInst::CJALR { .. }) {
                f |= F_TERMINAL;
            }
            if matches!(
                c,
                CheriInst::CSC { .. } | CheriInst::CStore { .. } | CheriInst::CSCD { .. }
            ) {
                f |= F_STORE;
            }
        }
        Inst::Syscall { .. } | Inst::Break { .. } | Inst::Eret | Inst::Reserved { .. } => {
            f |= F_TERMINAL;
        }
        Inst::Tlbwi | Inst::Tlbwr => f |= F_TLBW,
        Inst::J { .. } | Inst::Jal { .. } | Inst::Jr { .. } | Inst::Jalr { .. } => {
            f |= F_UNCOND_JUMP;
        }
        Inst::Store { .. } | Inst::StoreCond { .. } => f |= F_STORE,
        _ => {}
    }
    f
}

/// A predecoded straight-line run starting at physical `ppc`, valid
/// while its page's generation still equals `gen`.
pub(crate) struct Block {
    pub ppc: u64,
    pub gen: u32,
    pub insts: Box<[PInst]>,
}

/// Direct-mapped cache of predecoded blocks plus the per-physical-page
/// store-generation counters that invalidate them.
pub(crate) struct BlockCache {
    slots: Vec<Option<Block>>,
    page_gens: Vec<u32>,
    /// Pages a block was ever built in; stores elsewhere skip the
    /// generation bump so data-page traffic causes no rebuild churn.
    code_pages: Vec<bool>,
}

impl BlockCache {
    pub(crate) fn new(mem_bytes: usize) -> BlockCache {
        let pages = (mem_bytes >> PAGE_SHIFT) + 1;
        BlockCache {
            slots: Vec::new(), // allocated lazily on first insert
            page_gens: vec![0; pages],
            code_pages: vec![false; pages],
        }
    }

    #[inline]
    fn slot_index(ppc: u64) -> usize {
        ((ppc >> 2) as usize) & (SLOT_COUNT - 1)
    }

    #[inline]
    pub(crate) fn page_gen(&self, page: usize) -> u32 {
        self.page_gens[page]
    }

    /// Removes and returns the still-valid block at `ppc`, if one is
    /// cached. The caller runs it as an owned local (so the borrow
    /// checker knows `execute` cannot alias it) and gives it back via
    /// [`BlockCache::insert`].
    #[inline]
    pub(crate) fn take_valid(&mut self, ppc: u64) -> Option<Block> {
        let slot = self.slots.get_mut(Self::slot_index(ppc))?;
        let b = slot.as_ref()?;
        if b.ppc == ppc && b.gen == self.page_gens[(ppc >> PAGE_SHIFT) as usize] {
            slot.take()
        } else {
            None
        }
    }

    /// Marks `page` as containing predecoded code so stores into it
    /// bump its generation. Done at *build* time so stores during a
    /// block's first execution are already observed.
    #[inline]
    pub(crate) fn mark_code_page(&mut self, page: usize) {
        self.code_pages[page] = true;
    }

    pub(crate) fn insert(&mut self, block: Block) {
        if self.slots.is_empty() {
            self.slots.resize_with(SLOT_COUNT, || None);
        }
        self.code_pages[(block.ppc >> PAGE_SHIFT) as usize] = true;
        let idx = Self::slot_index(block.ppc);
        self.slots[idx] = Some(block);
    }

    /// Records a machine-mediated store to physical `paddr` (stores
    /// never cross a page: they are size-aligned and at most one
    /// capability granule wide).
    #[inline]
    pub(crate) fn note_store(&mut self, paddr: u64) {
        let page = (paddr >> PAGE_SHIFT) as usize;
        if self.code_pages[page] {
            self.page_gens[page] = self.page_gens[page].wrapping_add(1);
        }
    }

    /// Drops every cached block (for embedders that wrote text through
    /// `Machine::mem` directly).
    pub(crate) fn invalidate_all(&mut self) {
        self.slots.clear();
        for p in &mut self.code_pages {
            *p = false;
        }
    }
}
