//! Machine-level snapshot round-trips: interrupting a run at an
//! arbitrary instruction, snapshotting, serializing through JSON,
//! restoring onto a *fresh* machine, and finishing there must be
//! bit-identical — same architectural state, same statistics, same
//! cache/tag/predictor contents — to a run that never stopped. The
//! block cache must be transparent to all of it: a snapshot taken with
//! the fast path on restores onto a machine running with it off, and
//! the final states still agree.

use beri_sim::decode::encode;
use beri_sim::inst::{AluImmOp, AluOp, BranchCond, Inst, MulDivOp, Width};
use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_snap::MachineState;

const CODE_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x8000;

/// A small program with varied traffic: a store/load loop over the data
/// window, multiply pressure, and a conditional branch, ending in a
/// syscall. Roughly 8 × 16 = 128 dynamic instructions.
fn program() -> Vec<u32> {
    vec![
        // $8 = loop counter, $9 = cursor, $10 = accumulator.
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 0, imm: 16 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 9, rs: 7, imm: 0 }),
        // loop:
        encode(&Inst::Store { width: Width::Double, rt: 8, base: 9, imm: 0 }),
        encode(&Inst::Load { width: Width::Double, rt: 11, base: 9, imm: 0, unsigned: false }),
        encode(&Inst::Alu { op: AluOp::Daddu, rd: 10, rs: 10, rt: 11 }),
        encode(&Inst::MulDiv { op: MulDivOp::Dmultu, rs: 10, rt: 8 }),
        encode(&Inst::Mflo { rd: 12 }),
        encode(&Inst::AluImm { op: AluImmOp::Daddiu, rt: 9, rs: 9, imm: 8 }),
        encode(&Inst::AluImm { op: AluImmOp::Daddiu, rt: 8, rs: 8, imm: -1i16 as u16 }),
        encode(&Inst::Branch { cond: BranchCond::Ne, rs: 8, rt: 0, offset: -8 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 13, rs: 12, imm: 0 }), // delay slot
        encode(&Inst::Syscall { code: 0 }),
    ]
}

fn machine_with(block_cache: bool) -> Machine {
    let mut m =
        Machine::new(MachineConfig { mem_bytes: 1 << 20, block_cache, ..MachineConfig::default() });
    m.load_code(CODE_BASE, &program()).unwrap();
    m.cpu.set_gpr(7, DATA_BASE);
    m.cpu.jump_to(CODE_BASE);
    m
}

/// Runs to the terminating syscall; returns the retired-instruction
/// count on entry to the syscall.
fn run_to_end(m: &mut Machine) -> u64 {
    loop {
        match m.run(10_000).unwrap() {
            StepResult::Continue => {}
            StepResult::Syscall => return m.stats.instructions,
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// The core property: snapshot at instruction `k` (through a JSON
/// round-trip), restore onto a fresh machine with its own block-cache
/// setting, finish, and compare against the uninterrupted run.
fn check_roundtrip(bc_src: bool, bc_dst: bool, k: u64) {
    let mut straight = machine_with(bc_src);
    run_to_end(&mut straight);
    let want = straight.snapshot();

    let mut first = machine_with(bc_src);
    assert_eq!(first.run(k).unwrap(), StepResult::Continue, "k must stop mid-program");
    assert_eq!(first.stats.instructions, k, "run(k) must stop exactly at k");
    let json = first.snapshot().to_json();
    let snap = MachineState::from_json(&json).unwrap();

    let mut second = machine_with(bc_dst);
    second.restore(&snap).unwrap();
    run_to_end(&mut second);
    let got = second.snapshot();

    assert_eq!(
        want.state_hash(),
        got.state_hash(),
        "final state diverged (src bc={bc_src}, dst bc={bc_dst}, k={k})"
    );
    assert_eq!(want, got, "hash collision or PartialEq disagreement");
}

#[test]
fn roundtrip_block_cache_on_to_on() {
    for k in [1, 7, 40, 100] {
        check_roundtrip(true, true, k);
    }
}

#[test]
fn roundtrip_block_cache_on_to_off() {
    for k in [1, 7, 40, 100] {
        check_roundtrip(true, false, k);
    }
}

#[test]
fn roundtrip_block_cache_off_to_on() {
    for k in [7, 40] {
        check_roundtrip(false, true, k);
    }
}

#[test]
fn snapshot_is_deterministic_and_json_stable() {
    let mut m = machine_with(true);
    m.run(25).unwrap();
    let a = m.snapshot();
    let b = m.snapshot();
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    let reparsed = MachineState::from_json(&a.to_json()).unwrap();
    assert_eq!(reparsed.to_json(), a.to_json(), "serialization must be canonical");
}

#[test]
fn restore_rejects_mismatched_geometry() {
    let mut m = machine_with(true);
    m.run(25).unwrap();
    let snap = m.snapshot();
    let mut other = Machine::new(MachineConfig {
        mem_bytes: 2 << 20, // different DRAM size
        ..MachineConfig::default()
    });
    let err = other.restore(&snap).unwrap_err();
    assert!(err.0.contains("identity mismatch"), "{err}");
}

#[test]
fn from_state_rebuilds_equivalent_machine() {
    let mut m = machine_with(true);
    m.run(40).unwrap();
    let snap = m.snapshot();
    let mut rebuilt = Machine::from_state(&snap, false).unwrap();
    assert_eq!(rebuilt.snapshot().state_hash(), snap.state_hash());
    run_to_end(&mut m);
    run_to_end(&mut rebuilt);
    assert_eq!(m.snapshot().state_hash(), rebuilt.snapshot().state_hash());
}
