//! Property tests of the simulator: the decoder totality, encode/decode
//! idempotence, and differential checks of ALU semantics against
//! host-computed references.

use beri_sim::decode::{decode, encode};
use beri_sim::inst::{AluOp, Inst, MulDivOp, ShiftOp};
use beri_sim::{Machine, MachineConfig, StepResult};
use proptest::prelude::*;

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig { mem_bytes: 1 << 20, ..MachineConfig::default() });
    m.cpu.jump_to(0x1000);
    m
}

/// Executes a single instruction with `a` in $8 and `b` in $9, returning
/// the result left in $10.
fn exec1(inst: Inst, a: u64, b: u64) -> u64 {
    let mut m = machine();
    m.cpu.set_gpr(8, a);
    m.cpu.set_gpr(9, b);
    m.load_code(0x1000, &[encode(&inst)]).unwrap();
    assert_eq!(m.step().unwrap(), StepResult::Continue);
    m.cpu.gpr[10]
}

proptest! {
    /// The decoder never panics, on any 32-bit word.
    #[test]
    fn decode_is_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// Whatever `decode` produces (other than Reserved), `encode` maps
    /// back to an instruction with identical semantics — i.e. the pair
    /// is idempotent after one round.
    #[test]
    fn decode_encode_idempotent(word in any::<u32>()) {
        let first = decode(word);
        if !matches!(first, Inst::Reserved { .. }) {
            let again = decode(encode(&first));
            prop_assert_eq!(first, again);
        }
    }

    /// 64-bit three-register ALU ops match host semantics.
    #[test]
    fn alu64_matches_host(a in any::<u64>(), b in any::<u64>()) {
        let cases: [(AluOp, u64); 7] = [
            (AluOp::Daddu, a.wrapping_add(b)),
            (AluOp::Dsubu, a.wrapping_sub(b)),
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
            (AluOp::Slt, u64::from((a as i64) < (b as i64))),
            (AluOp::Sltu, u64::from(a < b)),
        ];
        for (op, expect) in cases {
            let got = exec1(Inst::Alu { op, rd: 10, rs: 8, rt: 9 }, a, b);
            prop_assert_eq!(got, expect, "{:?}", op);
        }
    }

    /// 32-bit ops truncate and sign-extend like MIPS64.
    #[test]
    fn alu32_sign_extension(a in any::<u64>(), b in any::<u64>()) {
        let addu = exec1(Inst::Alu { op: AluOp::Addu, rd: 10, rs: 8, rt: 9 }, a, b);
        let expect = (a as u32).wrapping_add(b as u32) as i32 as i64 as u64;
        prop_assert_eq!(addu, expect);
    }

    /// Constant shifts match host semantics (including the +32 forms).
    #[test]
    fn shifts_match_host(a in any::<u64>(), sh in 0u8..32) {
        let cases: [(ShiftOp, u64); 5] = [
            (ShiftOp::Dsll, a << sh),
            (ShiftOp::Dsrl, a >> sh),
            (ShiftOp::Dsra, ((a as i64) >> sh) as u64),
            (ShiftOp::Dsll32, a << (sh + 32)),
            (ShiftOp::Dsrl32, a >> (sh + 32)),
        ];
        for (op, expect) in cases {
            let got = exec1(Inst::Shift { op, rd: 10, rt: 8, shamt: sh }, a, 0);
            prop_assert_eq!(got, expect, "{:?} by {}", op, sh);
        }
        // 32-bit SLL sign-extends its 32-bit result.
        let sll = exec1(Inst::Shift { op: ShiftOp::Sll, rd: 10, rt: 8, shamt: sh }, a, 0);
        prop_assert_eq!(sll, ((a as u32) << sh) as i32 as i64 as u64);
    }

    /// Multiply/divide HI/LO results match 128-bit host arithmetic.
    #[test]
    fn muldiv_matches_host(a in any::<u64>(), b in any::<u64>()) {
        let mut m = machine();
        m.cpu.set_gpr(8, a);
        m.cpu.set_gpr(9, b);
        m.load_code(0x1000, &[
            encode(&Inst::MulDiv { op: MulDivOp::Dmultu, rs: 8, rt: 9 }),
            encode(&Inst::Mflo { rd: 10 }),
            encode(&Inst::Mfhi { rd: 11 }),
        ]).unwrap();
        for _ in 0..3 {
            assert_eq!(m.step().unwrap(), StepResult::Continue);
        }
        let p = u128::from(a) * u128::from(b);
        prop_assert_eq!(m.cpu.gpr[10], p as u64);
        prop_assert_eq!(m.cpu.gpr[11], (p >> 64) as u64);

        if b != 0 {
            let mut m = machine();
            m.cpu.set_gpr(8, a);
            m.cpu.set_gpr(9, b);
            m.load_code(0x1000, &[
                encode(&Inst::MulDiv { op: MulDivOp::Ddivu, rs: 8, rt: 9 }),
                encode(&Inst::Mflo { rd: 10 }),
                encode(&Inst::Mfhi { rd: 11 }),
            ]).unwrap();
            for _ in 0..3 {
                assert_eq!(m.step().unwrap(), StepResult::Continue);
            }
            prop_assert_eq!(m.cpu.gpr[10], a / b);
            prop_assert_eq!(m.cpu.gpr[11], a % b);
        }
    }

    /// Memory round-trips through the full legacy path (C0 check, cache,
    /// tagged memory) for every width and any aligned offset.
    #[test]
    fn legacy_memory_roundtrip(v in any::<u64>(), slot in 0u64..64) {
        use beri_sim::inst::Width;
        for (width, mask) in [
            (Width::Byte, 0xffu64),
            (Width::Half, 0xffff),
            (Width::Word, 0xffff_ffff),
            (Width::Double, u64::MAX),
        ] {
            let addr = 0x2000 + slot * 8;
            let mut m = machine();
            m.cpu.set_gpr(8, addr);
            m.cpu.set_gpr(9, v);
            m.load_code(0x1000, &[
                encode(&Inst::Store { width, rt: 9, base: 8, imm: 0 }),
                encode(&Inst::Load { width, rt: 10, base: 8, imm: 0, unsigned: true }),
            ]).unwrap();
            assert_eq!(m.step().unwrap(), StepResult::Continue);
            assert_eq!(m.step().unwrap(), StepResult::Continue);
            prop_assert_eq!(m.cpu.gpr[10], v & mask, "{:?}", width);
        }
    }

    /// The cycle model never undercounts: cycles >= retired instructions.
    #[test]
    fn cycles_dominate_instructions(ops in proptest::collection::vec(any::<u64>(), 1..50)) {
        let mut m = machine();
        let words: Vec<u32> = ops
            .iter()
            .map(|v| encode(&Inst::AluImm {
                op: beri_sim::inst::AluImmOp::Ori,
                rt: 8,
                rs: 8,
                imm: *v as u16,
            }))
            .collect();
        m.load_code(0x1000, &words).unwrap();
        for _ in 0..words.len() {
            assert_eq!(m.step().unwrap(), StepResult::Continue);
        }
        prop_assert!(m.stats.cycles >= m.stats.instructions);
        prop_assert_eq!(m.stats.instructions, words.len() as u64);
    }
}
