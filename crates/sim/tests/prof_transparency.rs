//! Differential tests of the guest profiler: a machine with a
//! [`Profiler`] attached and one without must agree on *all*
//! architectural state and *all* statistics — in both the
//! per-instruction interpreter and the predecoded block-cache fast
//! path. Profiling is observational; the only thing it may change is
//! host time.
//!
//! The same runs also check the profiler's accounting invariants: the
//! per-PC retired counts sum to the machine's instruction counter, the
//! per-PC miss attributions sum to the global cache-stat counters, and
//! the folded stack samples sum to total retired instructions.

use beri_sim::decode::encode;
use beri_sim::inst::{AluImmOp, AluOp, BranchCond, Inst, ShiftOp, Width};
use beri_sim::{Machine, MachineConfig, StepResult};
use cheri_prof::Profiler;
use proptest::prelude::*;

const CODE_BASE: u64 = 0x1000;
const DATA_BASE: u64 = 0x8000;

/// Builds a machine running `words` with `$7 = DATA_BASE` and
/// `$8..$16` seeded from `seed`, optionally with a profiler attached
/// from instruction zero.
fn machine(words: &[u32], seed: u64, block_cache: bool, profiled: bool) -> Machine {
    let mut m =
        Machine::new(MachineConfig { mem_bytes: 1 << 20, block_cache, ..MachineConfig::default() });
    m.load_code(CODE_BASE, words).unwrap();
    m.cpu.set_gpr(7, DATA_BASE);
    for r in 8..16u8 {
        m.cpu.set_gpr(r, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(r as u32));
    }
    m.cpu.jump_to(CODE_BASE);
    if profiled {
        m.set_profiler(Some(Box::new(Profiler::new())));
    }
    m
}

/// Asserts every architectural register, counter, and statistic agrees
/// between the profiled and plain machines.
fn assert_same(profiled: &Machine, plain: &Machine, what: &str) {
    assert_eq!(profiled.stats, plain.stats, "{what}: stats diverged");
    assert_eq!(profiled.cpu.gpr, plain.cpu.gpr, "{what}: gpr diverged");
    assert_eq!(profiled.cpu.pc, plain.cpu.pc, "{what}: pc diverged");
    assert_eq!(profiled.cpu.next_pc, plain.cpu.next_pc, "{what}: next_pc diverged");
    assert_eq!(
        profiled.hierarchy.l1d.misses, plain.hierarchy.l1d.misses,
        "{what}: l1d misses diverged"
    );
    assert_eq!(mem_checksum(profiled), mem_checksum(plain), "{what}: memory diverged");
}

/// FNV-style checksum over the code page and the data window.
fn mem_checksum(m: &Machine) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for addr in (CODE_BASE..CODE_BASE + 0x1000).chain(DATA_BASE..DATA_BASE + 0x800).step_by(8) {
        h = (h ^ m.mem.read_u64(addr).unwrap()).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs both machines through the same chunk schedule (boundaries land
/// mid-block, exercising the fast path's resume) and compares after
/// every chunk.
fn run_lockstep(profiled: &mut Machine, plain: &mut Machine, chunk: u64, what: &str) {
    for i in 0..4096 {
        let rp = profiled.run(chunk).unwrap();
        let rq = plain.run(chunk).unwrap();
        assert_eq!(rp, rq, "{what}: chunk {i} results diverged");
        profiled.sync_profiler();
        assert_same(profiled, plain, what);
        if rp != StepResult::Continue {
            return;
        }
    }
}

/// Asserts the profiler's accounting invariants against the machine's
/// own global counters, then the folded-stack invariant on the
/// finished report.
fn assert_profile_accounts(m: &mut Machine) {
    m.sync_profiler();
    let p = m.profiler().expect("profiler attached");
    let table = p.pc_table();
    let sum =
        |f: fn(&cheri_prof::PcCounters) -> u64| -> u64 { table.iter().map(|(_, c)| f(c)).sum() };
    assert_eq!(sum(|c| c.retired), m.stats.instructions, "retired attribution");
    assert_eq!(sum(|c| c.l1i_misses), m.hierarchy.l1i.misses, "l1i attribution");
    assert_eq!(sum(|c| c.l1d_misses), m.hierarchy.l1d.misses, "l1d attribution");
    assert_eq!(sum(|c| c.l2_misses), m.hierarchy.l2.misses, "l2 attribution");
    assert_eq!(sum(|c| c.tlb_refills), m.stats.tlb_refills, "tlb attribution");

    let report = m.take_profiler().expect("profiler attached").into_report();
    let folded: u64 = report.folded.iter().map(|(_, n)| n).sum();
    assert_eq!(folded, report.total.retired, "folded samples must sum to total retired");
    assert_eq!(report.total.retired, m.stats.instructions, "report totals");
}

/// The random-program vocabulary: ALU and memory traffic plus short
/// branches — enough to stress the delta-sampling attribution across
/// cache misses and block boundaries.
fn inst_strategy() -> impl Strategy<Value = Inst> {
    let r = 8u8..16;
    let slot = 0i16..64;
    prop_oneof![
        (any::<u8>(), r.clone(), r.clone(), r.clone()).prop_map(|(op, rd, rs, rt)| {
            let op =
                [AluOp::Daddu, AluOp::Dsubu, AluOp::And, AluOp::Or, AluOp::Xor][op as usize % 5];
            Inst::Alu { op, rd, rs, rt }
        }),
        (any::<u8>(), r.clone(), r.clone(), any::<u16>()).prop_map(|(op, rt, rs, imm)| {
            let op =
                [AluImmOp::Daddiu, AluImmOp::Ori, AluImmOp::Andi, AluImmOp::Xori][op as usize % 4];
            Inst::AluImm { op, rt, rs, imm }
        }),
        (any::<u8>(), r.clone(), r.clone(), 0u8..32).prop_map(|(op, rd, rt, shamt)| {
            let op = [ShiftOp::Dsll, ShiftOp::Dsrl, ShiftOp::Dsra][op as usize % 3];
            Inst::Shift { op, rd, rt, shamt }
        }),
        (any::<u8>(), r.clone(), slot.clone()).prop_map(|(w, rt, s)| {
            let width = [Width::Byte, Width::Half, Width::Word, Width::Double][w as usize % 4];
            Inst::Load { width, rt, base: 7, imm: s * 8, unsigned: w % 2 == 0 }
        }),
        (any::<u8>(), r.clone(), slot).prop_map(|(w, rt, s)| {
            let width = [Width::Byte, Width::Half, Width::Word, Width::Double][w as usize % 4];
            Inst::Store { width, rt, base: 7, imm: s * 8 }
        }),
        Just(Inst::Branch { cond: BranchCond::Eq, rs: 0, rt: 0, offset: 2 }),
        (r.clone(), r).prop_map(|(rs, rt)| Inst::Branch {
            cond: BranchCond::Ne,
            rs: 0,
            rt: if rs == rt { 0 } else { rt },
            offset: 3
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random programs, profiler on vs off, in both execution modes:
    /// identical architectural results after every chunk, and the
    /// profile accounts for every counted event.
    #[test]
    fn random_programs_are_unchanged_by_profiling(
        insts in proptest::collection::vec(inst_strategy(), 4..100),
        seed in any::<u64>(),
        chunk in 1u64..97,
        block_cache in any::<bool>(),
    ) {
        let mut words: Vec<u32> = insts.iter().map(encode).collect();
        for _ in 0..4 {
            words.push(encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 8, imm: 0 }));
        }
        words.push(encode(&Inst::Syscall { code: 0 }));
        let mut profiled = machine(&words, seed, block_cache, true);
        let mut plain = machine(&words, seed, block_cache, false);
        run_lockstep(&mut profiled, &mut plain, chunk, "random program");
        assert_profile_accounts(&mut profiled);
    }
}

/// Restoring a snapshot resets the profile: the profile is host-side
/// observation state, never serialized, and a restored machine starts
/// a fresh observation window whose attribution covers exactly the
/// post-restore instructions.
#[test]
fn restore_resets_the_profile() {
    let mut words = Vec::new();
    for _ in 0..40 {
        words.push(encode(&Inst::AluImm { op: AluImmOp::Daddiu, rt: 8, rs: 8, imm: 1 }));
    }
    words.push(encode(&Inst::Syscall { code: 0 }));
    let mut m = machine(&words, 3, true, true);

    assert_eq!(m.run(10).unwrap(), StepResult::Continue);
    let snap = m.snapshot();
    let at_snap = m.stats.instructions;
    assert_eq!(m.run(10).unwrap(), StepResult::Continue);
    m.sync_profiler();
    assert_eq!(m.profiler().unwrap().total_retired(), m.stats.instructions);

    m.restore(&snap).unwrap();
    assert_eq!(m.stats.instructions, at_snap, "stats restore with the snapshot");
    assert_eq!(m.profiler().unwrap().total_retired(), 0, "restore must reset the profile");

    assert_eq!(m.run(10_000).unwrap(), StepResult::Syscall);
    m.sync_profiler();
    let p = m.profiler().unwrap();
    assert_eq!(
        p.total_retired(),
        m.stats.instructions - at_snap,
        "the new window covers exactly the post-restore instructions"
    );
    let misses: u64 = p.pc_table().iter().map(|(_, c)| c.l1d_misses + c.l1i_misses).sum();
    let _ = misses; // reseeded baseline: no panic and no double counting is the assertion
}
