//! Differential tests of the predecoded block cache: a machine running
//! the fast path (`block_cache: true`) and one running the
//! per-instruction interpreter must agree on *all* architectural state
//! and *all* statistics after every run chunk — including across
//! self-modifying code, mid-block TLB rewrites, traps, and stores into
//! the executing page.

use beri_sim::cpu::cp0reg;
use beri_sim::decode::encode;
use beri_sim::inst::{AluImmOp, AluOp, BranchCond, Inst, MulDivOp, ShiftOp, Width};
use beri_sim::tlb::TlbFlags;
use beri_sim::{Machine, MachineConfig, StepResult};
use proptest::prelude::*;

const CODE_BASE: u64 = 0x1000;
/// Scratch region inside the *code page* (0x1000..0x2000): stores here
/// bump the page generation without overwriting instructions.
const CODE_PAGE_SCRATCH: i16 = 0x800;
const DATA_BASE: u64 = 0x8000;

/// Builds the fast-path/slow-path machine pair with identical initial
/// state: `words` at `CODE_BASE`, `$7 = DATA_BASE`, `$6 = CODE_BASE`,
/// and `$8..$16` seeded from `seed` so ALU traffic has varied inputs.
fn machine_pair(words: &[u32], seed: u64) -> (Machine, Machine) {
    let build = |block_cache: bool| {
        let mut m = Machine::new(MachineConfig {
            mem_bytes: 1 << 20,
            block_cache,
            ..MachineConfig::default()
        });
        m.load_code(CODE_BASE, words).unwrap();
        m.cpu.set_gpr(7, DATA_BASE);
        m.cpu.set_gpr(6, CODE_BASE);
        for r in 8..16u8 {
            m.cpu.set_gpr(r, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(r as u32));
        }
        m.cpu.jump_to(CODE_BASE);
        m
    };
    (build(true), build(false))
}

/// Asserts every architectural register, counter, and statistic agrees.
fn assert_same(fast: &Machine, slow: &Machine, what: &str) {
    assert_eq!(fast.stats, slow.stats, "{what}: stats diverged");
    assert_eq!(fast.cpu.gpr, slow.cpu.gpr, "{what}: gpr diverged");
    assert_eq!(fast.cpu.hi, slow.cpu.hi, "{what}: hi diverged");
    assert_eq!(fast.cpu.lo, slow.cpu.lo, "{what}: lo diverged");
    assert_eq!(fast.cpu.pc, slow.cpu.pc, "{what}: pc diverged");
    assert_eq!(fast.cpu.next_pc, slow.cpu.next_pc, "{what}: next_pc diverged");
    for rd in [cp0reg::COUNT, cp0reg::EPC, cp0reg::CAUSE, cp0reg::BADVADDR, cp0reg::ENTRYHI] {
        assert_eq!(fast.cpu.cp0.read(rd), slow.cpu.cp0.read(rd), "{what}: cp0[{rd}] diverged");
    }
    assert_eq!(
        fast.hierarchy.l1d.hits + fast.hierarchy.l1i.hits + fast.hierarchy.l2.hits,
        slow.hierarchy.l1d.hits + slow.hierarchy.l1i.hits + slow.hierarchy.l2.hits,
        "{what}: cache hits diverged"
    );
    assert_eq!(mem_checksum(fast), mem_checksum(slow), "{what}: memory diverged");
}

/// FNV-style checksum over the code page and the data window (the only
/// memory the generated programs can touch).
fn mem_checksum(m: &Machine) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for addr in (CODE_BASE..CODE_BASE + 0x1000).chain(DATA_BASE..DATA_BASE + 0x800).step_by(8) {
        h = (h ^ m.mem.read_u64(addr).unwrap()).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs both machines through the same chunk schedule (chunk boundaries
/// land mid-block, which is exactly the resume path under test) and
/// compares after every chunk. Stops when both report the same
/// non-`Continue` result.
fn run_lockstep(fast: &mut Machine, slow: &mut Machine, chunks: &[u64], what: &str) {
    for (i, &chunk) in chunks.iter().enumerate() {
        let rf = fast.run(chunk).unwrap();
        let rs = slow.run(chunk).unwrap();
        assert_eq!(rf, rs, "{what}: chunk {i} results diverged");
        assert_same(fast, slow, what);
        if rf != StepResult::Continue {
            return;
        }
    }
}

/// One generated instruction for the random programs: ALU and memory
/// traffic, short always/never-taken branches, and stores into the
/// executing code page.
fn inst_strategy() -> impl Strategy<Value = Inst> {
    let r = 8u8..16;
    let slot = 0i16..64;
    prop_oneof![
        (any::<u8>(), r.clone(), r.clone(), r.clone()).prop_map(|(op, rd, rs, rt)| {
            let op = [
                AluOp::Daddu,
                AluOp::Dsubu,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Slt,
                AluOp::Sltu,
            ][op as usize % 7];
            Inst::Alu { op, rd, rs, rt }
        }),
        (any::<u8>(), r.clone(), r.clone(), any::<u16>()).prop_map(|(op, rt, rs, imm)| {
            let op =
                [AluImmOp::Daddiu, AluImmOp::Ori, AluImmOp::Andi, AluImmOp::Xori][op as usize % 4];
            Inst::AluImm { op, rt, rs, imm }
        }),
        (any::<u8>(), r.clone(), r.clone(), 0u8..32).prop_map(|(op, rd, rt, shamt)| {
            let op = [ShiftOp::Dsll, ShiftOp::Dsrl, ShiftOp::Dsra][op as usize % 3];
            Inst::Shift { op, rd, rt, shamt }
        }),
        (r.clone(), r.clone()).prop_map(|(rs, rt)| Inst::MulDiv { op: MulDivOp::Dmultu, rs, rt }),
        r.clone().prop_map(|rd| Inst::Mflo { rd }),
        // Aligned loads/stores in the data window via $7.
        (any::<u8>(), r.clone(), slot.clone()).prop_map(|(w, rt, s)| {
            let width = [Width::Byte, Width::Half, Width::Word, Width::Double][w as usize % 4];
            Inst::Load { width, rt, base: 7, imm: s * 8, unsigned: w % 2 == 0 }
        }),
        (any::<u8>(), r.clone(), slot.clone()).prop_map(|(w, rt, s)| {
            let width = [Width::Byte, Width::Half, Width::Word, Width::Double][w as usize % 4];
            Inst::Store { width, rt, base: 7, imm: s * 8 }
        }),
        // Stores into the page being executed (generation-bump stress:
        // the fast path must notice and stay bit-identical).
        (r.clone(), slot).prop_map(|(rt, s)| Inst::Store {
            width: Width::Double,
            rt,
            base: 6,
            imm: CODE_PAGE_SCRATCH + s * 8,
        }),
        // Always-taken and never-taken short branches (delay slots and
        // block-exit paths).
        Just(Inst::Branch { cond: BranchCond::Eq, rs: 0, rt: 0, offset: 2 }),
        (r.clone(), r).prop_map(|(rs, rt)| Inst::Branch {
            cond: BranchCond::Ne,
            rs: 0,
            rt: if rs == rt { 0 } else { rt },
            offset: 3
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs: identical stats, registers, and memory after
    /// every chunk, at awkward chunk sizes.
    #[test]
    fn random_programs_match(
        insts in proptest::collection::vec(inst_strategy(), 4..120),
        seed in any::<u64>(),
        chunk in 1u64..97,
    ) {
        let mut words: Vec<u32> = insts.iter().map(encode).collect();
        // Padding so forward branches stay inside the program, then stop.
        for _ in 0..4 {
            words.push(encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 8, rs: 8, imm: 0 }));
        }
        words.push(encode(&Inst::Syscall { code: 0 }));
        let (mut fast, mut slow) = machine_pair(&words, seed);
        let chunks: Vec<u64> = std::iter::repeat_n(chunk, 4096).collect();
        run_lockstep(&mut fast, &mut slow, &chunks, "random program");
    }
}

/// A store that overwrites a *later instruction of the same block*
/// before it executes: the fast path must observe it (the slow path
/// refetches every instruction, so it does by construction).
#[test]
fn self_modifying_store_in_same_block() {
    // $9 holds the replacement word; the SW lands on the instruction
    // two slots ahead, inside the same predecoded block.
    let patched = encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 0x77 });
    let words = vec![
        encode(&Inst::Store { width: Width::Word, rt: 9, base: 6, imm: 3 * 4 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 11, rs: 0, imm: 1 }),
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 12, rs: 0, imm: 2 }),
        // Slot 3: initially "ori $10, $0, 0x11"; overwritten above.
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 10, rs: 0, imm: 0x11 }),
        encode(&Inst::Syscall { code: 0 }),
    ];
    let (mut fast, mut slow) = machine_pair(&words, 1);
    fast.cpu.set_gpr(9, u64::from(patched));
    slow.cpu.set_gpr(9, u64::from(patched));
    run_lockstep(&mut fast, &mut slow, &[100], "self-modifying block");
    // Both executed the *patched* instruction.
    assert_eq!(fast.cpu.gpr[10], 0x77);
    // And a second run of the same addresses re-validates the rebuilt
    // block (the store already happened, so the patched word persists).
    fast.cpu.jump_to(CODE_BASE);
    slow.cpu.jump_to(CODE_BASE);
    run_lockstep(&mut fast, &mut slow, &[100], "self-modifying block rerun");
    assert_eq!(fast.cpu.gpr[10], 0x77);
}

/// A TLB rewrite in the middle of a predecoded block: the load after
/// `TLBWI` must go through the *new* mapping in both paths.
#[test]
fn mid_block_tlb_rewrite() {
    const VA_DATA: u64 = 0x6000;
    const PA_OLD: u64 = 0x20000;
    const PA_NEW: u64 = 0x30000;
    // Straight-line, single-block program: load old mapping, remap via
    // MTC0/TLBP/TLBWI, load again.
    let words = vec![
        encode(&Inst::Load { width: Width::Double, rt: 10, base: 9, imm: 0, unsigned: false }),
        encode(&Inst::Mtc0 { rt: 11, rd: cp0reg::ENTRYHI }),
        encode(&Inst::Tlbp),
        encode(&Inst::Mtc0 { rt: 12, rd: cp0reg::ENTRYLO0 }),
        encode(&Inst::Mtc0 { rt: 13, rd: cp0reg::ENTRYLO1 }),
        encode(&Inst::Tlbwi),
        encode(&Inst::Load { width: Width::Double, rt: 14, base: 9, imm: 0, unsigned: false }),
        encode(&Inst::Syscall { code: 0 }),
    ];
    let build = |block_cache: bool| {
        let mut m = Machine::new(MachineConfig {
            mem_bytes: 1 << 20,
            block_cache,
            ..MachineConfig::default()
        });
        m.load_code(CODE_BASE, &words).unwrap();
        m.mem.write_u64(PA_OLD, 0x01d0_0000_0000_0001u64).unwrap();
        m.mem.write_u64(PA_NEW, 0x04e3_0000_0000_0002u64).unwrap();
        m.invalidate_block_cache(); // direct mem writes above
        m.enable_translation();
        let rw = TlbFlags { valid: true, dirty: true, cap_load: true, cap_store: true };
        m.tlb_install(CODE_BASE, CODE_BASE, rw); // identity-map the code
        m.tlb_install(VA_DATA, PA_OLD, rw);
        // Guest-visible operands for the remap sequence: EntryHi selects
        // the VA_DATA pair; EntryLo0/1 point both pages at PA_NEW.
        m.cpu.set_gpr(9, VA_DATA);
        m.cpu.set_gpr(11, VA_DATA & !0x1fff);
        let lo = |pa: u64| (pa >> 12 << 6) | 0b110; // pfn | dirty | valid
        m.cpu.set_gpr(12, lo(PA_NEW));
        m.cpu.set_gpr(13, lo(PA_NEW + 0x1000));
        m.cpu.jump_to(CODE_BASE);
        m
    };
    let mut fast = build(true);
    let mut slow = build(false);
    run_lockstep(&mut fast, &mut slow, &[100], "mid-block TLB rewrite");
    assert_eq!(fast.cpu.gpr[10], 0x01d0_0000_0000_0001u64, "first load saw the old mapping");
    assert_eq!(fast.cpu.gpr[14], 0x04e3_0000_0000_0002u64, "second load saw the new mapping");
}

/// Traps must be bit-identical too: a misaligned store mid-block
/// faults, and both paths take the exception at the same instruction
/// with the same CP0 state.
#[test]
fn misaligned_store_trap_matches() {
    let words = vec![
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 11, rs: 0, imm: 5 }),
        encode(&Inst::Store { width: Width::Double, rt: 11, base: 7, imm: 3 }), // misaligned
        encode(&Inst::AluImm { op: AluImmOp::Ori, rt: 12, rs: 0, imm: 6 }),
        encode(&Inst::Syscall { code: 0 }),
    ];
    let (mut fast, mut slow) = machine_pair(&words, 7);
    // The trap vectors into exception-handler space; just run a bounded
    // number of steps and insist on identical state throughout.
    run_lockstep(&mut fast, &mut slow, &[2, 1, 1, 5, 20], "misaligned store trap");
    assert!(fast.stats.exceptions >= 1, "the store must have trapped");
}
