//! Prometheus text exposition: rendering a [`TelemSnapshot`] and
//! parsing one back with the format invariants checked.
//!
//! [`render_exposition`] emits the version-0.0.4 text format: a
//! `# TYPE` line per family, families in name order within each kind
//! (counters, then gauges, then histograms), histogram families as
//! cumulative `_bucket{le="..."}` lines ending in `le="+Inf"` plus
//! `_sum` and `_count`. Everything is integer-valued and ordering is
//! fully determined by the snapshot, so two scrapes of an unchanged
//! registry are byte-identical — the golden test's contract.
//!
//! [`parse_exposition`] is a *validating* parser: it rejects bad metric
//! names, samples with no preceding `# TYPE`, non-monotone cumulative
//! bucket counts, and `+Inf` buckets that disagree with `_count`. It is
//! what the metrics tests and the `servemon` dashboard both consume, so
//! a malformed exposition fails loudly in CI rather than rendering as
//! nonsense.

use crate::registry::TelemSnapshot;
use cheri_trace::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a snapshot as Prometheus text exposition (see module docs).
#[must_use]
pub fn render_exposition(snap: &TelemSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.counters() {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in snap.gauges() {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in snap.histograms() {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, c) in hist.nonzero_buckets() {
            cum += c;
            // Bucket i covers [lo, hi); its inclusive upper bound is
            // hi - 1. The final log2 bucket (i = 64) has no finite
            // upper bound and folds into +Inf below.
            if i < 64 {
                let le = Histogram::bucket_range(i).1 - 1;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out
}

/// One parsed histogram family: cumulative `(le, count)` buckets in
/// exposition order, plus `_sum` and `_count`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PromHist {
    /// Cumulative buckets; the last is always `("+Inf", count)`.
    pub buckets: Vec<(String, u64)>,
    /// Value of the `_sum` sample.
    pub sum: u64,
    /// Value of the `_count` sample.
    pub count: u64,
}

/// A parsed and validated exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Exposition {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, PromHist>,
}

impl Exposition {
    /// Value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram family `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&PromHist> {
        self.hists.get(name)
    }

    /// All counters in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges in name order.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histogram families in name order.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, PromHist> {
        &self.hists
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(line_no: usize, s: &str) -> Result<u64, String> {
    s.parse::<u64>().map_err(|_| format!("line {line_no}: non-u64 sample value `{s}`"))
}

/// Parses and validates a text exposition (see module docs).
///
/// # Errors
///
/// Describes the first violation found, with its line number.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Counter,
        Gauge,
        Histogram,
    }
    let mut types: BTreeMap<String, Kind> = BTreeMap::new();
    let mut exp = Exposition::default();

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("TYPE") {
                return Err(format!("line {line_no}: only `# TYPE` comments are allowed"));
            }
            let name = parts.next().ok_or(format!("line {line_no}: TYPE without a name"))?;
            if !valid_name(name) {
                return Err(format!("line {line_no}: bad metric name `{name}`"));
            }
            let kind = match parts.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                other => {
                    return Err(format!("line {line_no}: bad metric kind {other:?}"));
                }
            };
            if types.insert(name.to_string(), kind).is_some() {
                return Err(format!("line {line_no}: duplicate TYPE for `{name}`"));
            }
            if kind == Kind::Histogram {
                exp.hists.insert(name.to_string(), PromHist::default());
            }
            continue;
        }

        let (sample, value) =
            line.rsplit_once(' ').ok_or(format!("line {line_no}: sample line without a value"))?;
        let value = parse_value(line_no, value)?;
        let (name, labels) = match sample.split_once('{') {
            Some((n, rest)) => {
                let labels =
                    rest.strip_suffix('}').ok_or(format!("line {line_no}: unclosed label set"))?;
                (n, Some(labels))
            }
            None => (sample, None),
        };
        if !valid_name(name) {
            return Err(format!("line {line_no}: bad metric name `{name}`"));
        }

        // Histogram samples reference their family by suffix.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf).map(|base| (base, *suf)))
            .filter(|(base, _)| matches!(types.get(*base), Some(Kind::Histogram)));
        if let Some((base, suffix)) = family {
            let hist = exp.hists.get_mut(base).expect("typed histogram has an entry");
            match suffix {
                "_bucket" => {
                    let labels = labels.ok_or(format!("line {line_no}: _bucket without labels"))?;
                    let le = labels
                        .strip_prefix("le=\"")
                        .and_then(|l| l.strip_suffix('"'))
                        .ok_or(format!("line {line_no}: _bucket without an le label"))?;
                    if le != "+Inf" && le.parse::<u64>().is_err() {
                        return Err(format!("line {line_no}: bad le value `{le}`"));
                    }
                    if let Some((_, prev)) = hist.buckets.last() {
                        if value < *prev {
                            return Err(format!(
                                "line {line_no}: cumulative bucket count regressed \
                                 ({prev} -> {value}) in `{base}`"
                            ));
                        }
                    }
                    hist.buckets.push((le.to_string(), value));
                }
                "_sum" => hist.sum = value,
                _ => hist.count = value,
            }
            continue;
        }

        if labels.is_some() {
            return Err(format!("line {line_no}: unexpected labels on `{name}`"));
        }
        match types.get(name) {
            Some(Kind::Counter) => {
                exp.counters.insert(name.to_string(), value);
            }
            Some(Kind::Gauge) => {
                exp.gauges.insert(name.to_string(), value);
            }
            Some(Kind::Histogram) => {
                return Err(format!("line {line_no}: bare sample for histogram family `{name}`"));
            }
            None => {
                return Err(format!("line {line_no}: sample `{name}` with no preceding TYPE"));
            }
        }
    }

    for (name, hist) in &exp.hists {
        match hist.buckets.last() {
            Some((le, cum)) if le == "+Inf" => {
                if *cum != hist.count {
                    return Err(format!(
                        "histogram `{name}`: +Inf bucket {cum} != _count {}",
                        hist.count
                    ));
                }
            }
            Some(_) => {
                return Err(format!("histogram `{name}`: last bucket is not +Inf"));
            }
            None => return Err(format!("histogram `{name}`: no _bucket samples")),
        }
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TelemRegistry;

    fn sample_registry() -> TelemRegistry {
        let reg = TelemRegistry::new(true);
        reg.batch(|b| {
            b.add("serve_jobs_total", 4);
            b.add("serve_cache_hits_total", 1);
            b.set_gauge("serve_queue_depth", 2);
            for v in [3, 900, 901, 70_000] {
                b.record("serve_job_latency_us", v);
            }
        });
        reg
    }

    #[test]
    fn render_parse_roundtrip_preserves_every_value() {
        let snap = sample_registry().snapshot();
        let text = render_exposition(&snap);
        let exp = parse_exposition(&text).unwrap();
        assert_eq!(exp.counter("serve_jobs_total"), Some(4));
        assert_eq!(exp.counter("serve_cache_hits_total"), Some(1));
        assert_eq!(exp.gauge("serve_queue_depth"), Some(2));
        let h = exp.histogram("serve_job_latency_us").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 3 + 900 + 901 + 70_000);
        assert_eq!(h.buckets.last().unwrap(), &("+Inf".to_string(), 4));
        // Cumulative and monotone: 3 → [2,4) le=3; 900/901 → [512,1024)
        // le=1023; 70000 → [65536,131072) le=131071.
        assert_eq!(
            h.buckets,
            vec![
                ("3".to_string(), 1),
                ("1023".to_string(), 3),
                ("131071".to_string(), 4),
                ("+Inf".to_string(), 4),
            ]
        );
    }

    #[test]
    fn rendering_is_deterministic_across_scrapes() {
        let reg = sample_registry();
        let a = render_exposition(&reg.snapshot());
        let b = render_exposition(&reg.snapshot());
        assert_eq!(a, b, "idle scrapes must be byte-identical");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        let cases: &[(&str, &str)] = &[
            ("x 1\n", "no preceding TYPE"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
            ("# TYPE x counter\nx one\n", "non-u64"),
            ("# TYPE x widget\nx 1\n", "bad metric kind"),
            ("# HELP x something\n", "only `# TYPE`"),
            ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
            ("# TYPE x counter\nx{le=\"1\"} 1\n", "unexpected labels"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                 h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
                "regressed",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
                "+Inf bucket 4 != _count 5",
            ),
            ("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "not +Inf"),
            ("# TYPE h histogram\nh_sum 0\nh_count 0\n", "no _bucket"),
        ];
        for (text, want) in cases {
            let err = parse_exposition(text).unwrap_err();
            assert!(err.contains(want), "for {text:?}: got `{err}`, want `{want}`");
        }
    }

    #[test]
    fn empty_exposition_parses_to_empty() {
        assert_eq!(parse_exposition("").unwrap(), Exposition::default());
    }
}
