//! The telemetry registry: named u64 counters, gauges, and log2-bucket
//! streaming histograms behind one short critical section.
//!
//! Every mutation takes one uncontended mutex for a few map operations —
//! nanoseconds, at per-request rate, which is what "lock-cheap" means
//! here (contrast the guest-side tracing fast path, which runs per
//! retired instruction and therefore cannot afford even this). The
//! payoff for the single lock is *consistency*: [`TelemRegistry::batch`]
//! updates several metrics in one critical section and
//! [`TelemRegistry::snapshot`] reads everything in one, so invariants
//! like "the latency histogram has exactly as many observations as the
//! jobs counter" hold in every scrape, not just at quiescence.
//!
//! Histograms use the guest-side log2 bucketing (via
//! [`cheri_trace::Histogram::bucket_of`]: bucket 0 holds zeros, bucket
//! *k* the range `[2^(k-1), 2^k)`) plus an exact running maximum, from
//! which [`HistSnapshot`] derives nearest-rank percentiles: the
//! `ceil(p·N/100)` rank is resolved to its bucket exactly, the reported
//! upper bound is tightened by the exact max, and the percentile tests
//! pin both against a fully sorted reference.

use cheri_trace::json::{self, Json, JsonWriter};
use cheri_trace::{Histogram, Snapshot, SnapshotDiff};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One log2-bucket streaming histogram with exact count, saturating
/// sum, and exact maximum. This is both the accumulation state inside
/// the registry and the per-histogram payload of a [`TelemSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

impl HistSnapshot {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c != 0).map(|(i, &c)| (i, c))
    }

    /// The half-open `[lo, hi)` bucket range containing the
    /// `ceil(pct·N/100)` nearest-rank observation (`pct` in 1..=100).
    /// Returns `(0, 0)` for an empty histogram.
    #[must_use]
    pub fn quantile_bounds(&self, pct: u64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = (pct * self.count).div_ceil(100).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.nonzero_buckets() {
            cum += c;
            if cum >= rank {
                return Histogram::bucket_range(i);
            }
        }
        Histogram::bucket_range(64)
    }

    /// Inclusive upper bound on the `ceil(pct·N/100)` nearest-rank
    /// observation: the bucket's top, tightened by the exact maximum
    /// when the rank falls in the histogram's final nonzero bucket.
    /// `quantile_upper(100)` is the exact max.
    #[must_use]
    pub fn quantile_upper(&self, pct: u64) -> u64 {
        let (lo, hi) = self.quantile_bounds(pct);
        if hi == 0 {
            return 0;
        }
        if self.max >= lo && self.max < hi {
            self.max
        } else {
            hi.saturating_sub(1)
        }
    }

    fn to_json_raw(&self) -> String {
        let mut w = JsonWriter::object();
        w.u64_field("count", self.count);
        w.u64_field("sum", self.sum);
        w.u64_field("max", self.max);
        let buckets: Vec<String> =
            self.nonzero_buckets().map(|(i, c)| format!("[{i},{c}]")).collect();
        w.raw_field("buckets", &format!("[{}]", buckets.join(",")));
        w.close()
    }

    fn from_json(v: &Json) -> Result<HistSnapshot, String> {
        let obj = v.as_obj().ok_or("histogram must be an object")?;
        let mut h = HistSnapshot {
            buckets: [0; 65],
            count: obj.get("count").and_then(Json::as_u64).ok_or("missing count")?,
            sum: obj.get("sum").and_then(Json::as_u64).ok_or("missing sum")?,
            max: obj.get("max").and_then(Json::as_u64).ok_or("missing max")?,
        };
        let mut total = 0u64;
        for pair in obj.get("buckets").and_then(Json::as_arr).ok_or("missing buckets")? {
            let pair = pair.as_arr().ok_or("bucket must be [index,count]")?;
            let [i, c] = pair else { return Err("bucket must be a pair".into()) };
            let i = i.as_u64().ok_or("bad bucket index")? as usize;
            let c = c.as_u64().ok_or("bad bucket count")?;
            *h.buckets.get_mut(i).ok_or("bucket index out of range")? = c;
            total += c;
        }
        if total != h.count {
            return Err(format!("bucket total {total} != count {}", h.count));
        }
        Ok(h)
    }
}

/// A consistent, name-ordered copy of the registry at one moment: every
/// counter, gauge, and histogram, read under a single lock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistSnapshot>,
}

impl TelemSnapshot {
    /// Value of counter `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name` (0 if absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any observation was ever recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.get(name)
    }

    /// All counters in name order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges in name order.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms in name order.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, HistSnapshot> {
        &self.hists
    }

    /// Converts counters and gauges into a guest-side metrics
    /// [`Snapshot`], so the trace crate's diff machinery (saturating
    /// deltas, regression warnings, rendered tables) applies to service
    /// telemetry unchanged.
    #[must_use]
    pub fn to_metrics(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (k, v) in &self.counters {
            snap.set_counter(k, *v);
        }
        for (k, v) in &self.gauges {
            snap.set_counter(k, *v);
        }
        snap
    }

    /// Per-counter deltas from `self` to `other` (union of counter and
    /// gauge names), with the trace crate's saturation-and-warn
    /// behaviour on regressed counters.
    #[must_use]
    pub fn diff(&self, other: &TelemSnapshot) -> SnapshotDiff {
        self.to_metrics().diff(&other.to_metrics())
    }

    /// Serialises as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = JsonWriter::object();
        for (k, v) in &self.counters {
            counters.u64_field(k, *v);
        }
        let mut gauges = JsonWriter::object();
        for (k, v) in &self.gauges {
            gauges.u64_field(k, *v);
        }
        let mut hists = JsonWriter::object();
        for (k, h) in &self.hists {
            hists.raw_field(k, &h.to_json_raw());
        }
        let mut w = JsonWriter::object();
        w.raw_field("counters", &counters.close());
        w.raw_field("gauges", &gauges.close());
        w.raw_field("histograms", &hists.close());
        w.close()
    }

    /// Parses the output of [`TelemSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformation found.
    pub fn from_json(text: &str) -> Result<TelemSnapshot, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("telem snapshot must be an object")?;
        let mut snap = TelemSnapshot::default();
        if let Some(counters) = obj.get("counters") {
            for (k, v) in counters.as_obj().ok_or("counters must be an object")? {
                snap.counters.insert(k.clone(), v.as_u64().ok_or("counter must be a u64")?);
            }
        }
        if let Some(gauges) = obj.get("gauges") {
            for (k, v) in gauges.as_obj().ok_or("gauges must be an object")? {
                snap.gauges.insert(k.clone(), v.as_u64().ok_or("gauge must be a u64")?);
            }
        }
        if let Some(hists) = obj.get("histograms") {
            for (k, v) in hists.as_obj().ok_or("histograms must be an object")? {
                snap.hists.insert(k.clone(), HistSnapshot::from_json(v)?);
            }
        }
        Ok(snap)
    }
}

#[derive(Default)]
struct Data {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, HistSnapshot>,
}

/// A batch of updates applied under one registry lock — the tool for
/// the "histogram count equals its counter in every scrape" invariant.
pub struct TelemBatch<'a> {
    data: &'a mut Data,
}

impl TelemBatch<'_> {
    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.data.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets gauge `name` to an absolute value.
    pub fn set_gauge(&mut self, name: &'static str, value: u64) {
        self.data.gauges.insert(name, value);
    }

    /// Raises gauge `name` to `value` if it is higher — a running
    /// maximum (e.g. the exact max observation of a histogram, which
    /// the bucketed exposition cannot carry).
    pub fn gauge_max(&mut self, name: &'static str, value: u64) {
        let g = self.data.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    }

    /// Records one observation into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.data.hists.entry(name).or_default().record(value);
    }
}

/// The registry: all service metrics behind one mutex, with no-op
/// operation when constructed disabled (the detached half of the
/// telemetry-overhead A/B).
pub struct TelemRegistry {
    data: Mutex<Data>,
    enabled: bool,
}

impl TelemRegistry {
    /// A fresh registry; `enabled = false` turns every operation into a
    /// no-op and every snapshot into the empty snapshot.
    #[must_use]
    pub fn new(enabled: bool) -> TelemRegistry {
        TelemRegistry { data: Mutex::new(Data::default()), enabled }
    }

    /// Whether this registry records anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Applies several updates in one critical section, so no scrape
    /// can observe a state between them.
    pub fn batch(&self, f: impl FnOnce(&mut TelemBatch)) {
        if !self.enabled {
            return;
        }
        if let Ok(mut data) = self.data.lock() {
            f(&mut TelemBatch { data: &mut data });
        }
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.batch(|b| b.add(name, delta));
    }

    /// Sets gauge `name` to an absolute value.
    pub fn set_gauge(&self, name: &'static str, value: u64) {
        self.batch(|b| b.set_gauge(name, value));
    }

    /// Records one observation into histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        self.batch(|b| b.record(name, value));
    }

    /// Current value of counter `name` (0 if never touched or the
    /// registry is disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.data.lock().map_or(0, |d| d.counters.get(name).copied().unwrap_or(0))
    }

    /// A consistent snapshot of every metric, read under one lock.
    #[must_use]
    pub fn snapshot(&self) -> TelemSnapshot {
        let Ok(data) = self.data.lock() else { return TelemSnapshot::default() };
        TelemSnapshot {
            counters: data.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            gauges: data.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            hists: data.hists.iter().map(|(&k, v)| (k.to_string(), v.clone())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference the quantile derivation is pinned against: fully
    /// sorted values, `ceil(p·N/100)` nearest-rank.
    fn sorted_nearest_rank(sorted: &[u64], pct: u64) -> u64 {
        let rank = (pct * sorted.len() as u64).div_ceil(100).clamp(1, sorted.len() as u64);
        sorted[rank as usize - 1]
    }

    #[test]
    fn quantiles_bracket_the_sorted_reference() {
        // A deliberately lumpy distribution spanning many buckets.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..1000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(match i % 4 {
                0 => x % 100,
                1 => x % 10_000,
                2 => x % 1_000_000,
                _ => x % 50,
            });
        }
        let mut h = HistSnapshot::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for pct in [1, 10, 50, 90, 95, 99, 100] {
            let truth = sorted_nearest_rank(&sorted, pct);
            let (lo, hi) = h.quantile_bounds(pct);
            assert!(truth >= lo && truth < hi, "p{pct}: {truth} not in [{lo},{hi})");
            assert!(h.quantile_upper(pct) >= truth, "p{pct}: upper bound below truth");
            assert!(h.quantile_upper(pct) < hi, "p{pct}: upper bound outside bucket");
        }
        assert_eq!(h.quantile_upper(100), *sorted.last().unwrap(), "p100 is the exact max");
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_on_tiny_histograms() {
        let mut h = HistSnapshot::default();
        assert_eq!(h.quantile_bounds(50), (0, 0), "empty histogram");
        assert_eq!(h.quantile_upper(50), 0);
        h.record(7);
        // One observation: every percentile is its bucket, upper is
        // exactly 7 (the max tightens the [4,8) bucket).
        for pct in [1, 50, 100] {
            assert_eq!(h.quantile_bounds(pct), (4, 8));
            assert_eq!(h.quantile_upper(pct), 7);
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let reg = TelemRegistry::new(true);
        reg.add("jobs_total", 3);
        reg.set_gauge("queue_depth", 2);
        for v in [0, 1, 30, 30, 31, 120, 1 << 20] {
            reg.record("latency_us", v);
        }
        let snap = reg.snapshot();
        let back = TelemSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("jobs_total"), 3);
        assert_eq!(back.gauge("queue_depth"), 2);
        assert_eq!(back.histogram("latency_us").unwrap().count(), 7);
        assert_eq!(back.histogram("latency_us").unwrap().max(), 1 << 20);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = TelemRegistry::new(false);
        reg.add("jobs_total", 1);
        reg.record("latency_us", 10);
        reg.set_gauge("queue_depth", 5);
        assert_eq!(reg.counter("jobs_total"), 0);
        assert_eq!(reg.snapshot(), TelemSnapshot::default());
    }

    #[test]
    fn batch_is_atomic_with_respect_to_snapshots() {
        // A writer hammers (counter, histogram) pairs in one batch; a
        // reader snapshots concurrently and must never see them differ.
        let reg = std::sync::Arc::new(TelemRegistry::new(true));
        let writer = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    reg.batch(|b| {
                        b.add("jobs_total", 1);
                        b.record("latency_us", i % 1000);
                    });
                }
            })
        };
        for _ in 0..200 {
            let snap = reg.snapshot();
            let hist = snap.histogram("latency_us").map_or(0, HistSnapshot::count);
            assert_eq!(snap.counter("jobs_total"), hist, "scrape saw a torn update");
        }
        writer.join().unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("jobs_total"), 5_000);
        assert_eq!(snap.histogram("latency_us").unwrap().count(), 5_000);
    }

    #[test]
    fn diff_reuses_the_metrics_machinery() {
        let reg = TelemRegistry::new(true);
        reg.add("jobs_total", 2);
        let a = reg.snapshot();
        reg.add("jobs_total", 3);
        reg.set_gauge("queue_depth", 1);
        let b = reg.snapshot();
        let d = a.diff(&b);
        let jobs = d.entries().iter().find(|e| e.0 == "jobs_total").unwrap();
        assert_eq!((jobs.1, jobs.2, jobs.3), (2, 5, 3));
        assert!(d.warnings().is_empty());
    }
}
