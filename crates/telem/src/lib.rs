//! `cheri-telem`: service-side telemetry for the CHERI reproduction.
//!
//! The guest side of the workspace is fully observable — per-event
//! traces (`cheri-trace`), per-PC profiles (`cheri-prof`) — but the
//! *host service* (`cheri-serve`) was a black box: a stuck worker or a
//! cold-cache stampede was invisible until the run ended. This crate is
//! the host-side counterpart, built on the same principles:
//!
//! * **u64-only, deterministic.** The [`TelemRegistry`] holds counters,
//!   gauges, and log2-bucket streaming histograms — all `u64`, snapshot
//!   in name order, diffable exactly like the guest-side
//!   `MetricsRegistry` (the snapshot converts losslessly into one).
//! * **Hard invariants, not best-effort logging.** Correlated updates
//!   (a histogram observation and the counter that should count it) go
//!   through one [`TelemRegistry::batch`] critical section, so every
//!   scrape sees `histogram _count == counter` *exactly* — the
//!   consistency contract the metrics tests assert against a live
//!   server. Span streams ([`SpanLog`]) must balance begin/end per
//!   request id; [`SpanLog::check_balance`] is the machine check.
//! * **Cheap enough to leave on.** One short uncontended mutex per
//!   update, at *service* rate (per request/phase, not per retired
//!   instruction). The registry can also be constructed disabled, which
//!   turns every operation into a no-op — the A/B the telemetry
//!   overhead benchmark compares.
//!
//! Spans reuse the shape PR 5 introduced for guest span events
//! (`SpanBegin`/`SpanEnd` with a kind, an id, and a timestamp): here the
//! kind is a [`SpanPhase`], the id is a (request, job) pair, and the
//! timestamp is host microseconds since the log was created. The log
//! exports as a Chrome trace-event / Perfetto timeline with one lane
//! (`tid`) per request id.
//!
//! [`prom`] renders a registry snapshot as a Prometheus text exposition
//! (stable ordering, `# TYPE` lines, `_bucket`/`_sum`/`_count`
//! triplets) and parses one back with the format invariants checked —
//! the parser is what the golden tests and the `servemon` dashboard
//! both consume.

pub mod prom;
pub mod registry;
pub mod span;

pub use prom::{parse_exposition, render_exposition, Exposition, PromHist};
pub use registry::{HistSnapshot, TelemBatch, TelemRegistry, TelemSnapshot};
pub use span::{SpanEvent, SpanLog, SpanPhase};
