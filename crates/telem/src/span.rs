//! Per-request span events: balanced begin/end pairs per phase, with a
//! Chrome-trace / Perfetto export.
//!
//! This reuses the guest-side span shape from the trace crate
//! (`SpanBegin`/`SpanEnd`: a kind, an id, a timestamp) for the host
//! service: the kind is a [`SpanPhase`], the id is a (request, job)
//! pair, and the timestamp is microseconds since the [`SpanLog`] was
//! created, taken from a monotonic clock. "Balanced" is a hard
//! invariant, not a hope: [`SpanLog::check_balance`] verifies that for
//! every (request, job, phase) key the stream never ends a span that
//! is not open and closes every span it opens — the roundtrip tests
//! run it against a live server's log.
//!
//! The export ([`SpanLog::to_chrome_json`]) is the Chrome trace-event
//! format (`{"traceEvents":[...]}` with `ph: "B"/"E"`), loadable in
//! `chrome://tracing` and Perfetto, with one timeline lane (`tid`) per
//! request id so concurrent requests render side by side.

use cheri_trace::json::JsonWriter;
use std::sync::Mutex;
use std::time::Instant;

/// The phase of request handling a span brackets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// The whole request, connection-accept to response-written.
    Request,
    /// Waiting in the worker pool's queue for a free worker.
    Queue,
    /// Cold boot: module start + warmup phases (cache/pool miss).
    Boot,
    /// Restoring a prewarmed snapshot (pool hit).
    Restore,
    /// The measured simulation itself.
    Simulate,
    /// Rendering the report/record JSON.
    Serialize,
}

impl SpanPhase {
    /// Stable lowercase name, used in the Chrome export and tests.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanPhase::Request => "request",
            SpanPhase::Queue => "queue",
            SpanPhase::Boot => "boot",
            SpanPhase::Restore => "restore",
            SpanPhase::Simulate => "simulate",
            SpanPhase::Serialize => "serialize",
        }
    }
}

/// One begin or end event. `req` is the server-assigned request id,
/// `job` the index of the sweep job within the request (0 for
/// single-job requests), `t_us` microseconds since the log's epoch,
/// and `tag` an optional annotation on end events (the cache origin:
/// `cached`/`warm`/`cold`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub begin: bool,
    pub phase: SpanPhase,
    pub req: u64,
    pub job: u64,
    pub t_us: u64,
    pub tag: Option<&'static str>,
}

/// An append-only, thread-shared log of span events.
pub struct SpanLog {
    events: Mutex<Vec<SpanEvent>>,
    epoch: Instant,
    enabled: bool,
}

impl SpanLog {
    /// A fresh log; `enabled = false` makes every record a no-op and
    /// every export empty.
    #[must_use]
    pub fn new(enabled: bool) -> SpanLog {
        SpanLog { events: Mutex::new(Vec::new()), epoch: Instant::now(), enabled }
    }

    /// Whether this log records anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn push(&self, begin: bool, phase: SpanPhase, req: u64, job: u64, tag: Option<&'static str>) {
        if !self.enabled {
            return;
        }
        let t_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Ok(mut events) = self.events.lock() {
            events.push(SpanEvent { begin, phase, req, job, t_us, tag });
        }
    }

    /// Opens a span.
    pub fn begin(&self, phase: SpanPhase, req: u64, job: u64) {
        self.push(true, phase, req, job, None);
    }

    /// Closes a span.
    pub fn end(&self, phase: SpanPhase, req: u64, job: u64) {
        self.push(false, phase, req, job, None);
    }

    /// Closes a span with an annotation (e.g. the cache origin).
    pub fn end_tagged(&self, phase: SpanPhase, req: u64, job: u64, tag: &'static str) {
        self.push(false, phase, req, job, Some(tag));
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().map_or(0, |e| e.len())
    }

    /// Whether no events have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().map_or_else(|_| Vec::new(), |e| e.clone())
    }

    /// Verifies the balance invariant: replayed in record order, no
    /// (request, job, phase) key ever closes a span it has not opened,
    /// and every opened span is closed by the end of the log.
    ///
    /// # Errors
    ///
    /// Describes the first unbalanced key found.
    pub fn check_balance(&self) -> Result<(), String> {
        check_balance(&self.events())
    }

    /// The `traceEvents` array alone (as a raw JSON array), for callers
    /// embedding the timeline in a larger document — one `B`/`E` record
    /// per event, `tid` = request id (one lane per request), `ts` in
    /// microseconds, the job index and any tag carried in `args`.
    #[must_use]
    pub fn to_chrome_events_json(&self) -> String {
        let rows: Vec<String> = self
            .events()
            .iter()
            .map(|e| {
                let mut w = JsonWriter::object();
                w.str_field("name", e.phase.as_str());
                w.str_field("cat", "serve");
                w.str_field("ph", if e.begin { "B" } else { "E" });
                w.u64_field("pid", 1);
                w.u64_field("tid", e.req);
                w.u64_field("ts", e.t_us);
                let mut args = JsonWriter::object();
                args.u64_field("job", e.job);
                if let Some(tag) = e.tag {
                    args.str_field("origin", tag);
                }
                w.raw_field("args", &args.close());
                w.close()
            })
            .collect();
        format!("[{}]", rows.join(","))
    }

    /// Exports as a complete Chrome trace-event JSON document (loadable
    /// in `chrome://tracing` / Perfetto). See [`to_chrome_events_json`]
    /// for the per-event shape.
    ///
    /// [`to_chrome_events_json`]: SpanLog::to_chrome_events_json
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.raw_field("traceEvents", &self.to_chrome_events_json());
        w.str_field("displayTimeUnit", "ms");
        w.close()
    }
}

/// [`SpanLog::check_balance`] over any event slice (used directly by
/// tests that reconstruct logs from dumped timelines).
///
/// # Errors
///
/// Describes the first unbalanced key found.
pub fn check_balance(events: &[SpanEvent]) -> Result<(), String> {
    let mut depth: std::collections::BTreeMap<(u64, u64, SpanPhase), u64> =
        std::collections::BTreeMap::new();
    for e in events {
        let d = depth.entry((e.req, e.job, e.phase)).or_insert(0);
        if e.begin {
            *d += 1;
        } else if *d == 0 {
            return Err(format!(
                "end without begin: req={} job={} phase={}",
                e.req,
                e.job,
                e.phase.as_str()
            ));
        } else {
            *d -= 1;
        }
    }
    for ((req, job, phase), d) in depth {
        if d != 0 {
            return Err(format!(
                "{d} unclosed span(s): req={req} job={job} phase={}",
                phase.as_str()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_trace::json;

    #[test]
    fn balanced_log_passes_and_unbalanced_fails() {
        let log = SpanLog::new(true);
        log.begin(SpanPhase::Request, 1, 0);
        log.begin(SpanPhase::Queue, 1, 0);
        log.end(SpanPhase::Queue, 1, 0);
        log.begin(SpanPhase::Simulate, 1, 0);
        log.end_tagged(SpanPhase::Simulate, 1, 0, "warm");
        log.end_tagged(SpanPhase::Request, 1, 0, "warm");
        log.check_balance().unwrap();

        log.begin(SpanPhase::Boot, 2, 0);
        let err = log.check_balance().unwrap_err();
        assert!(err.contains("unclosed") && err.contains("boot"), "{err}");

        let orphan = vec![SpanEvent {
            begin: false,
            phase: SpanPhase::Queue,
            req: 3,
            job: 0,
            t_us: 0,
            tag: None,
        }];
        let err = check_balance(&orphan).unwrap_err();
        assert!(err.contains("end without begin"), "{err}");
    }

    #[test]
    fn same_phase_on_different_jobs_is_tracked_separately() {
        // A parallel sweep: two jobs of one request interleave their
        // simulate spans. Balance is per (req, job, phase), so this is
        // legal; the same interleaving on a single job key is not.
        let log = SpanLog::new(true);
        log.begin(SpanPhase::Simulate, 1, 0);
        log.begin(SpanPhase::Simulate, 1, 1);
        log.end(SpanPhase::Simulate, 1, 0);
        log.end(SpanPhase::Simulate, 1, 1);
        log.check_balance().unwrap();
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_lane_per_request() {
        let log = SpanLog::new(true);
        log.begin(SpanPhase::Request, 7, 0);
        log.begin(SpanPhase::Simulate, 7, 0);
        log.end_tagged(SpanPhase::Simulate, 7, 0, "cold");
        log.end(SpanPhase::Request, 7, 0);
        log.begin(SpanPhase::Request, 8, 0);
        log.end_tagged(SpanPhase::Request, 8, 0, "cached");

        let parsed = json::parse(&log.to_chrome_json()).unwrap();
        let events = parsed.as_obj().unwrap()["traceEvents"].as_arr().unwrap();
        assert_eq!(events.len(), 6);
        for e in events {
            let obj = e.as_obj().unwrap();
            let ph = obj["ph"].as_str().unwrap();
            assert!(ph == "B" || ph == "E");
            assert!(obj["tid"].as_u64() == Some(7) || obj["tid"].as_u64() == Some(8));
            assert!(obj.contains_key("ts") && obj.contains_key("args"));
        }
        let origin =
            events[2].as_obj().unwrap()["args"].as_obj().unwrap()["origin"].as_str().unwrap();
        assert_eq!(origin, "cold");
        // Timestamps never run backwards within the log.
        let ts: Vec<u64> =
            events.iter().map(|e| e.as_obj().unwrap()["ts"].as_u64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = SpanLog::new(false);
        log.begin(SpanPhase::Request, 1, 0);
        log.end(SpanPhase::Request, 1, 0);
        assert!(log.is_empty());
        log.check_balance().unwrap();
        let parsed = json::parse(&log.to_chrome_json()).unwrap();
        assert_eq!(parsed.as_obj().unwrap()["traceEvents"].as_arr().unwrap().len(), 0);
    }
}
