//! Differential property testing of the compiler: randomly generated
//! well-typed programs must produce *identical results* under all four
//! pointer strategies — the cross-mode validity property the Figure 4
//! methodology rests on.

use cheri_cc::ir::build::*;
use cheri_cc::ir::{CmpOp, Expr, FuncDef, Module, Stmt, StructDef, Ty};
use cheri_cc::strategy::{CapPtr, LegacyPtr, PtrStrategy, SoftFatPtr};
use cheri_os::{boot, KernelConfig};
use proptest::prelude::*;

/// One generated statement over a fixed frame: int locals 2 and 3,
/// pointer locals 0 and 1 (struct `cell { v0: i64, v1: i64, next: ptr }`).
/// The generator only emits dereferences guarded by allocation order, so
/// every generated program is memory-safe by construction — all four
/// binaries must agree.
#[derive(Clone, Debug)]
enum Op {
    SetConst { local: usize, v: i16 },
    Arith { dst: usize, a: usize, b: usize, kind: u8 },
    AllocInto { p: usize },
    StoreField { p: usize, field: usize, src: usize },
    LoadField { dst: usize, p: usize, field: usize },
    LinkPtrs,                  // p1.next = p0
    FollowLink { dst: usize }, // p<dst> = p1.next
    IfPositive { cond: usize, then_local: usize, v: i16 },
    LoopAccumulate { times: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (2usize..4, any::<i16>()).prop_map(|(local, v)| Op::SetConst { local, v }),
        (2usize..4, 2usize..4, 2usize..4, 0u8..5).prop_map(|(dst, a, b, kind)| Op::Arith {
            dst,
            a,
            b,
            kind
        }),
        (0usize..2).prop_map(|p| Op::AllocInto { p }),
        (0usize..2, 0usize..2, 2usize..4).prop_map(|(p, field, src)| Op::StoreField {
            p,
            field,
            src
        }),
        (2usize..4, 0usize..2, 0usize..2).prop_map(|(dst, p, field)| Op::LoadField {
            dst,
            p,
            field
        }),
        Just(Op::LinkPtrs),
        (0usize..2).prop_map(|dst| Op::FollowLink { dst }),
        (2usize..4, 2usize..4, any::<i16>()).prop_map(|(cond, then_local, v)| Op::IfPositive {
            cond,
            then_local,
            v
        }),
        (1u8..6).prop_map(|times| Op::LoopAccumulate { times }),
    ]
}

/// Lowers the op sequence to a well-typed module, tracking which pointer
/// locals are definitely initialised (dereferences of possibly-null
/// pointers are dropped).
fn lower(ops: &[Op]) -> Module {
    let cell = 0usize;
    let mut init = [false; 2];
    let mut linked = false;
    let mut body = vec![
        Stmt::Let(0, Expr::Null(cell)),
        Stmt::Let(1, Expr::Null(cell)),
        Stmt::Let(2, c(1)),
        Stmt::Let(3, c(2)),
        Stmt::Let(4, c(0)),
    ];
    for op in ops {
        match *op {
            Op::SetConst { local, v } => body.push(Stmt::Let(local, c(i64::from(v)))),
            Op::Arith { dst, a, b, kind } => {
                let e = match kind {
                    0 => add(l(a), l(b)),
                    1 => sub(l(a), l(b)),
                    2 => mul(l(a), band(l(b), c(0xff))),
                    3 => bxor(l(a), l(b)),
                    _ => cmp(CmpOp::Lt, l(a), l(b)),
                };
                body.push(Stmt::Let(dst, e));
            }
            Op::AllocInto { p } => {
                body.push(Stmt::Let(p, alloc(cell, c(1))));
                init[p] = true;
                if p == 1 {
                    linked = false;
                }
            }
            Op::StoreField { p, field, src } => {
                if init[p] {
                    body.push(Stmt::Store { ptr: l(p), strukt: cell, field, value: l(src) });
                }
            }
            Op::LoadField { dst, p, field } => {
                if init[p] {
                    body.push(Stmt::Let(dst, load(l(p), cell, field)));
                }
            }
            Op::LinkPtrs => {
                if init[0] && init[1] {
                    body.push(Stmt::StorePtr { ptr: l(1), strukt: cell, field: 2, value: l(0) });
                    linked = true;
                }
            }
            Op::FollowLink { dst } => {
                if init[1] && linked {
                    body.push(Stmt::Let(dst, loadp(l(1), cell, 2)));
                    init[dst] = true;
                }
            }
            Op::IfPositive { cond, then_local, v } => {
                body.push(Stmt::If {
                    cond: cmp(CmpOp::Gt, l(cond), c(0)),
                    then: vec![Stmt::Let(then_local, c(i64::from(v)))],
                    els: vec![Stmt::Let(then_local, c(-i64::from(v)))],
                });
            }
            Op::LoopAccumulate { times } => {
                body.push(Stmt::Let(4, c(0)));
                body.push(Stmt::While {
                    cond: cmp(CmpOp::Lt, l(4), c(i64::from(times))),
                    body: vec![Stmt::Let(2, add(l(2), l(3))), Stmt::Let(4, add(l(4), c(1)))],
                });
            }
        }
    }
    // Result folds in both int locals plus whatever is in the heap.
    let mut result = add(l(2), mul(l(3), c(3)));
    if init[0] {
        result = add(result, load(l(0), cell, 0));
    }
    body.push(Stmt::Return(Some(band(result, c(0xfff_ffff)))));
    Module {
        structs: vec![StructDef { name: "cell", fields: vec![Ty::I64, Ty::I64, Ty::ptr(cell)] }],
        funcs: vec![FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(cell), Ty::ptr(cell), Ty::I64, Ty::I64, Ty::I64],
            body,
        }],
        entry: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_compute_identical_results(ops in proptest::collection::vec(arb_op(), 1..25)) {
        let module = lower(&ops);
        let strategies: [&dyn PtrStrategy; 4] =
            [&LegacyPtr, &SoftFatPtr::checked(), &SoftFatPtr::eliding(), &CapPtr::c256()];
        let mut results = Vec::new();
        for s in strategies {
            let program = cheri_cc::compile(&module, s, Default::default())
                .unwrap_or_else(|e| panic!("[{}] compile: {e}\n{module:#?}", s.name()));
            let mut kernel = boot(KernelConfig::default());
            let out = kernel.exec_and_run(&program).expect("run");
            let v = out.exit_value().unwrap_or_else(|| {
                panic!("[{}] abnormal exit {:?}\n{module:#?}", s.name(), out.exit)
            });
            results.push((s.name(), v));
        }
        for w in results.windows(2) {
            prop_assert_eq!(w[0].1, w[1].1, "{} vs {}: {:#?}", w[0].0, w[1].0, ops);
        }
    }
}
