//! Compiler errors.

use core::fmt;

/// An error detected while checking or compiling a module.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A type error; the message names the function and construct.
    Type {
        /// Function in which the error occurred.
        func: &'static str,
        /// What went wrong.
        message: String,
    },
    /// `Call`/`Alloc` appeared somewhere other than the top level of a
    /// `Let`, `Expr`, or `Return` statement.
    CallPosition {
        /// Offending function.
        func: &'static str,
    },
    /// An expression needs more scratch registers than the strategy
    /// provides.
    DepthExceeded {
        /// Offending function.
        func: &'static str,
        /// Which pool overflowed.
        pool: &'static str,
        /// Registers required.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// A function has more arguments than the calling convention can
    /// register-allocate.
    TooManyArgs {
        /// Offending function.
        func: &'static str,
    },
    /// The entry function must take no parameters and return `I64`.
    BadEntry,
    /// A function with a return type does not end in a `Return`.
    MissingReturn {
        /// Offending function.
        func: &'static str,
    },
    /// Struct or frame offsets exceeded encodable ranges.
    OffsetTooLarge {
        /// Offending function (or struct context).
        func: &'static str,
        /// The offset that did not fit.
        offset: u64,
    },
    /// The assembler rejected the generated program (an internal error).
    Asm(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type { func, message } => write!(f, "type error in {func}: {message}"),
            CompileError::CallPosition { func } => {
                write!(f, "call/alloc in non-top-level position in {func}")
            }
            CompileError::DepthExceeded { func, pool, needed, available } => write!(
                f,
                "expression in {func} needs {needed} {pool} scratch registers ({available} available)"
            ),
            CompileError::TooManyArgs { func } => {
                write!(f, "{func} has more arguments than the calling convention supports")
            }
            CompileError::BadEntry => {
                write!(f, "entry function must take no parameters and return I64")
            }
            CompileError::MissingReturn { func } => {
                write!(f, "{func} has a return type but does not end with a return")
            }
            CompileError::OffsetTooLarge { func, offset } => {
                write!(f, "offset {offset:#x} in {func} exceeds the encodable range")
            }
            CompileError::Asm(e) => write!(f, "assembler rejected generated code: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<cheri_asm::AsmError> for CompileError {
    fn from(e: cheri_asm::AsmError) -> CompileError {
        CompileError::Asm(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::DepthExceeded {
            func: "bisort",
            pool: "pointer",
            needed: 5,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("bisort"));
        assert!(s.contains('5'));
    }
}
