//! # cheri-cc — a strategy-parameterised compiler for pointer workloads
//!
//! The ISCA 2014 paper compiles each Olden benchmark three ways:
//! conventional MIPS code, MIPS with CCured-style software bounds checks,
//! and CHERI code where pointers are capabilities (Section 8). This crate
//! reproduces that methodology with a small typed IR ([`ir`]) and a code
//! generator ([`compile`]) parameterised over a *pointer strategy*
//! ([`strategy::PtrStrategy`]):
//!
//! * [`strategy::LegacyPtr`] — pointers are bare 64-bit integers; no
//!   checks (the unsafe MIPS baseline).
//! * [`strategy::SoftFatPtr`] — pointers are `(address, base, length)`
//!   triples kept in three GPRs and 24 bytes of memory; every dereference
//!   is preceded by an explicit check sequence, with optional
//!   straight-line elision (the CCured stand-in).
//! * [`strategy::CapPtr`] — pointers are CHERI capabilities in capability
//!   registers and 32 bytes of tagged memory; bounds and permissions are
//!   enforced by the hardware on every access, and allocation adds the
//!   `CFromPtr`/`CSetLen` bounds-setting instructions.
//!
//! The same IR program therefore produces the paper's three binaries, and
//! structure sizes match the paper's observation that unsafe `bisort`
//! nodes are 24 bytes while CHERI nodes are 96 bytes:
//!
//! ```
//! use cheri_cc::ir::Ty;
//! use cheri_cc::layout::StructLayout;
//! use cheri_cc::strategy::{CapPtr, LegacyPtr, SoftFatPtr};
//!
//! let node = [Ty::I64, Ty::ptr(0), Ty::ptr(0)]; // value, left, right
//! assert_eq!(StructLayout::compute(&node, &LegacyPtr).size, 24);
//! assert_eq!(StructLayout::compute(&node, &CapPtr::c256()).size, 96);
//! assert_eq!(StructLayout::compute(&node, &SoftFatPtr::checked()).size, 56);
//! ```
//!
//! Programs compile against the `cheri-os` syscall ABI and process
//! layout, and run on `beri-sim` via `cheri-os::Kernel`.

pub mod check;
pub mod codegen;
pub mod error;
pub mod ir;
pub mod layout;
pub mod strategy;

pub use codegen::{compile, compile_with_symbols, FuncSym};
pub use error::CompileError;
