//! Struct layout under a pointer strategy.
//!
//! Layout differences are a first-order effect in the paper's Figure 4:
//! "Unsafe nodes are 24-bytes, which fit more efficiently in our 32-byte
//! cache lines than CHERI's 96-byte nodes."

use crate::ir::Ty;
use crate::strategy::PtrStrategy;

/// The resolved layout of one struct under one strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructLayout {
    /// Byte offset of each field.
    pub offsets: Vec<u64>,
    /// Total size in bytes, rounded up so that arrays of the struct keep
    /// every element (and the heap bump pointer) correctly aligned.
    pub size: u64,
    /// Struct alignment.
    pub align: u64,
}

impl StructLayout {
    /// Computes offsets and size for `fields` under `strategy`.
    #[must_use]
    pub fn compute(fields: &[Ty], strategy: &dyn PtrStrategy) -> StructLayout {
        let mut off = 0u64;
        let mut align = 8u64;
        let mut offsets = Vec::with_capacity(fields.len());
        for f in fields {
            let (fsize, falign) = match f {
                Ty::I64 => (8, 8),
                Ty::Ptr(_) => (strategy.ptr_size(), strategy.ptr_align()),
            };
            off = off.div_ceil(falign) * falign;
            offsets.push(off);
            off += fsize;
            align = align.max(falign);
        }
        // Also keep heap allocations aligned for the next object.
        let align = align.max(strategy.heap_align());
        StructLayout { offsets, size: off.div_ceil(align) * align, align }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CapPtr, LegacyPtr, SoftFatPtr};

    #[test]
    fn bisort_node_sizes_match_paper() {
        // value, left, right — the bisort/treeadd node shape.
        let node = [Ty::I64, Ty::ptr(0), Ty::ptr(0)];
        let legacy = StructLayout::compute(&node, &LegacyPtr);
        assert_eq!(legacy.offsets, vec![0, 8, 16]);
        assert_eq!(legacy.size, 24);

        let cheri = StructLayout::compute(&node, &CapPtr::c256());
        assert_eq!(cheri.offsets, vec![0, 32, 64]);
        assert_eq!(cheri.size, 96);

        let soft = StructLayout::compute(&node, &SoftFatPtr::checked());
        assert_eq!(soft.offsets, vec![0, 8, 32]);
        assert_eq!(soft.size, 56);
    }

    #[test]
    fn int_only_struct_is_rounded_for_cap_heap() {
        let s = [Ty::I64, Ty::I64, Ty::I64];
        assert_eq!(StructLayout::compute(&s, &LegacyPtr).size, 24);
        // The capability heap hands out 32-byte-aligned blocks so later
        // capability-sized fields stay representable.
        assert_eq!(StructLayout::compute(&s, &CapPtr::c256()).size, 32);
    }

    #[test]
    fn int_fields_first_keeps_offsets_small() {
        let s = [Ty::I64, Ty::I64, Ty::ptr(0), Ty::ptr(0), Ty::ptr(0), Ty::ptr(0)];
        let cap = StructLayout::compute(&s, &CapPtr::c256());
        assert_eq!(cap.offsets, vec![0, 8, 32, 64, 96, 128]);
        assert_eq!(cap.size, 160);
    }

    #[test]
    fn empty_struct_is_heap_align_sized_or_zero() {
        let e = StructLayout::compute(&[], &LegacyPtr);
        assert_eq!(e.size, 0);
        assert_eq!(e.offsets, Vec::<u64>::new());
    }
}
