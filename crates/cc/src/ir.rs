//! The intermediate representation: a tiny typed language of integers,
//! typed pointers to heap structures, functions, and structured control
//! flow — just expressive enough for the Olden benchmarks.
//!
//! Restrictions (enforced by [`crate::check`]):
//!
//! * `Call` and `Alloc` may appear only as the top-level expression of a
//!   `Let`, `Expr`, or `Return` statement (so no evaluation state is live
//!   across a call).
//! * Expression depth is bounded by the code generator's scratch budget.
//! * `main` takes no parameters and returns `I64`.

/// A struct type id (index into [`Module::structs`]).
pub type StructId = usize;
/// A function id (index into [`Module::funcs`]).
pub type FuncId = usize;
/// A local-variable id (index into [`FuncDef::locals`]; parameters come
/// first).
pub type LocalId = usize;

/// A value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// A 64-bit integer.
    I64,
    /// A pointer to struct `StructId`.
    Ptr(StructId),
}

impl Ty {
    /// Shorthand for `Ty::Ptr(s)`.
    #[must_use]
    pub const fn ptr(s: StructId) -> Ty {
        Ty::Ptr(s)
    }

    /// Whether this is a pointer type.
    #[must_use]
    pub const fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }
}

/// A heap structure definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Diagnostic name.
    pub name: &'static str,
    /// Field types in declaration order.
    pub fields: Vec<Ty>,
}

/// Integer binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Low 64 bits of the product.
    Mul,
    /// Signed division (0 on divide-by-zero, as the hardware).
    Div,
    /// Signed remainder.
    Rem,
    /// Unsigned division.
    Udiv,
    /// Unsigned remainder.
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by the low 6 bits).
    Shl,
    /// Logical right shift.
    Shr,
    /// Arithmetic right shift.
    Sar,
}

/// Integer comparisons, producing 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// An integer constant.
    Const(i64),
    /// A local variable (integer or pointer, per its declared type).
    Local(LocalId),
    /// The null pointer of struct type `StructId`.
    Null(StructId),
    /// Integer arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Integer comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Load the integer field `field` of `*ptr`.
    Load {
        /// Pointer operand.
        ptr: Box<Expr>,
        /// The struct type being accessed.
        strukt: StructId,
        /// Field index.
        field: usize,
    },
    /// Load the pointer field `field` of `*ptr`.
    LoadPtr {
        /// Pointer operand.
        ptr: Box<Expr>,
        /// The struct type being accessed.
        strukt: StructId,
        /// Field index.
        field: usize,
    },
    /// Call a function (top-level positions only).
    Call {
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Allocate `count` contiguous instances of `strukt`, returning a
    /// pointer to the first (top-level positions only).
    Alloc {
        /// Element type.
        strukt: StructId,
        /// Element count (an integer expression).
        count: Box<Expr>,
    },
    /// 1 if the pointer is null, else 0.
    IsNull(Box<Expr>),
    /// The pointer's address as an integer (for hashing; `CToPtr` under
    /// the capability strategy).
    PtrToInt(Box<Expr>),
    /// `&ptr[index]`: advance a pointer by `index` elements of `strukt`.
    Index {
        /// Base pointer.
        ptr: Box<Expr>,
        /// The element struct type.
        strukt: StructId,
        /// Element index (an integer expression).
        index: Box<Expr>,
    },
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Evaluate and assign to a local.
    Let(LocalId, Expr),
    /// Store an integer into a struct field.
    Store {
        /// Pointer to the struct.
        ptr: Expr,
        /// The struct type.
        strukt: StructId,
        /// Field index.
        field: usize,
        /// The value stored.
        value: Expr,
    },
    /// Store a pointer into a struct field.
    StorePtr {
        /// Pointer to the struct.
        ptr: Expr,
        /// The struct type.
        strukt: StructId,
        /// Field index.
        field: usize,
        /// The pointer stored.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch (may be empty).
        els: Vec<Stmt>,
    },
    /// Pre-tested loop.
    While {
        /// Condition (non-zero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return from the function.
    Return(Option<Expr>),
    /// Evaluate for side effects (calls).
    Expr(Expr),
    /// Emit a `SYS_PHASE` marker with this id (Figure 4 decomposition).
    Phase(u64),
    /// Emit the value via `SYS_PRINT` (checksums for cross-mode
    /// result comparison).
    Print(Expr),
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct FuncDef {
    /// Diagnostic name.
    pub name: &'static str,
    /// Number of parameters (the first `params` locals).
    pub params: usize,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// All local types, parameters first.
    pub locals: Vec<Ty>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Clone, Debug)]
pub struct Module {
    /// Struct types.
    pub structs: Vec<StructDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
    /// The entry function (no parameters, returns `I64`).
    pub entry: FuncId,
}

/// Expression-building helpers, so benchmark sources stay readable.
pub mod build {
    use super::{BinOp, CmpOp, Expr, LocalId, StructId};

    /// Integer constant.
    #[must_use]
    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// Local variable reference.
    #[must_use]
    pub fn l(id: LocalId) -> Expr {
        Expr::Local(id)
    }

    /// `a + b`.
    #[must_use]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    #[must_use]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// Unsigned `a % b`.
    #[must_use]
    pub fn urem(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Urem, Box::new(a), Box::new(b))
    }

    /// Unsigned `a / b`.
    #[must_use]
    pub fn udiv(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Udiv, Box::new(a), Box::new(b))
    }

    /// `a & b`.
    #[must_use]
    pub fn band(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(a), Box::new(b))
    }

    /// `a ^ b`.
    #[must_use]
    pub fn bxor(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Xor, Box::new(a), Box::new(b))
    }

    /// `a << b`.
    #[must_use]
    pub fn shl(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Shl, Box::new(a), Box::new(b))
    }

    /// `a >> b` (logical).
    #[must_use]
    pub fn shr(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Shr, Box::new(a), Box::new(b))
    }

    /// Comparison.
    #[must_use]
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Integer field load.
    #[must_use]
    pub fn load(ptr: Expr, strukt: StructId, field: usize) -> Expr {
        Expr::Load { ptr: Box::new(ptr), strukt, field }
    }

    /// Pointer field load.
    #[must_use]
    pub fn loadp(ptr: Expr, strukt: StructId, field: usize) -> Expr {
        Expr::LoadPtr { ptr: Box::new(ptr), strukt, field }
    }

    /// Function call.
    #[must_use]
    pub fn call(func: usize, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }

    /// Allocation of `count` elements.
    #[must_use]
    pub fn alloc(strukt: StructId, count: Expr) -> Expr {
        Expr::Alloc { strukt, count: Box::new(count) }
    }

    /// Null test.
    #[must_use]
    pub fn is_null(p: Expr) -> Expr {
        Expr::IsNull(Box::new(p))
    }

    /// Pointer-to-integer.
    #[must_use]
    pub fn ptoi(p: Expr) -> Expr {
        Expr::PtrToInt(Box::new(p))
    }

    /// `&p[i]`.
    #[must_use]
    pub fn index(p: Expr, strukt: StructId, i: Expr) -> Expr {
        Expr::Index { ptr: Box::new(p), strukt, index: Box::new(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn ty_helpers() {
        assert!(Ty::ptr(3).is_ptr());
        assert!(!Ty::I64.is_ptr());
        assert_eq!(Ty::ptr(3), Ty::Ptr(3));
    }

    #[test]
    fn builders_construct_expected_shapes() {
        match add(c(1), l(0)) {
            Expr::Bin(BinOp::Add, a, b) => {
                assert!(matches!(*a, Expr::Const(1)));
                assert!(matches!(*b, Expr::Local(0)));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(is_null(l(1)), Expr::IsNull(_)));
        assert!(matches!(alloc(0, c(1)), Expr::Alloc { strukt: 0, .. }));
    }
}
