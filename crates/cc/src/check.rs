//! Static validation: types, call positions, scratch-depth limits, and
//! entry/return conventions.
//!
//! [`check`] must pass before [`crate::codegen`] runs; after it has
//! passed, [`expr_ty`] is total on the module's expressions.

use crate::error::CompileError;
use crate::ir::{Expr, FuncDef, Module, Stmt, Ty};

/// Scratch budgets for depth checking.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Integer scratch registers available.
    pub max_int: usize,
    /// Pointer scratch slots available.
    pub max_ptr: usize,
}

/// (int regs, ptr slots) an expression needs, mirroring the code
/// generator's evaluation order exactly.
#[allow(clippy::only_used_in_recursion)]
fn need(module: &Module, f: &FuncDef, e: &Expr) -> (usize, usize) {
    match e {
        Expr::Const(_) => (1, 0),
        Expr::Local(l) => match f.locals[*l] {
            Ty::I64 => (1, 0),
            Ty::Ptr(_) => (0, 1),
        },
        Expr::Null(_) => (0, 1),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            let (ai, ap) = need(module, f, a);
            let (bi, bp) = need(module, f, b);
            (ai.max(bi + 1), ap.max(bp))
        }
        Expr::Load { ptr, .. } => {
            let (pi, pp) = need(module, f, ptr);
            (pi.max(1), pp.max(1))
        }
        Expr::LoadPtr { ptr, .. } => {
            let (pi, pp) = need(module, f, ptr);
            (pi, pp.max(1))
        }
        Expr::IsNull(p) | Expr::PtrToInt(p) => {
            let (pi, pp) = need(module, f, p);
            (pi.max(1), pp.max(1))
        }
        Expr::Index { ptr, index, .. } => {
            let (pi, pp) = need(module, f, ptr);
            let (ii, ip) = need(module, f, index);
            // index is evaluated with the base pointer live at the
            // current slot, and may need a size temporary.
            (pi.max(ii + 1), pp.max(ip + 1).max(1))
        }
        // Calls/allocs are checked at their (top-level) statement.
        Expr::Call { .. } | Expr::Alloc { .. } => (1, 1),
    }
}

/// The type of a checked expression.
///
/// # Panics
///
/// Panics on malformed expressions; call only after [`check`] has
/// accepted the module.
#[must_use]
pub fn expr_ty(module: &Module, f: &FuncDef, e: &Expr) -> Ty {
    match e {
        Expr::Const(_)
        | Expr::Bin(..)
        | Expr::Cmp(..)
        | Expr::Load { .. }
        | Expr::IsNull(_)
        | Expr::PtrToInt(_) => Ty::I64,
        Expr::Local(l) => f.locals[*l],
        Expr::Null(s) => Ty::Ptr(*s),
        Expr::LoadPtr { strukt, field, .. } => module.structs[*strukt].fields[*field],
        Expr::Call { func, .. } => {
            module.funcs[*func].ret.expect("checked call to void function in value position")
        }
        Expr::Alloc { strukt, .. } | Expr::Index { strukt, .. } => Ty::Ptr(*strukt),
    }
}

struct Checker<'m> {
    module: &'m Module,
    limits: Limits,
}

impl<'m> Checker<'m> {
    fn err(&self, f: &FuncDef, message: String) -> CompileError {
        CompileError::Type { func: f.name, message }
    }

    fn ty(&self, f: &FuncDef, e: &Expr) -> Result<Ty, CompileError> {
        Ok(match e {
            Expr::Const(_) => Ty::I64,
            Expr::Local(l) => {
                *f.locals.get(*l).ok_or_else(|| self.err(f, format!("local {l} out of range")))?
            }
            Expr::Null(s) => {
                self.strukt(f, *s)?;
                Ty::Ptr(*s)
            }
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                self.expect_int(f, a)?;
                self.expect_int(f, b)?;
                Ty::I64
            }
            Expr::Load { ptr, strukt, field } => {
                self.expect_ptr_to(f, ptr, *strukt)?;
                match self.field(f, *strukt, *field)? {
                    Ty::I64 => Ty::I64,
                    Ty::Ptr(_) => return Err(self.err(f, format!("Load of pointer field {field}"))),
                }
            }
            Expr::LoadPtr { ptr, strukt, field } => {
                self.expect_ptr_to(f, ptr, *strukt)?;
                match self.field(f, *strukt, *field)? {
                    Ty::Ptr(s) => Ty::Ptr(s),
                    Ty::I64 => return Err(self.err(f, format!("LoadPtr of integer field {field}"))),
                }
            }
            Expr::IsNull(p) | Expr::PtrToInt(p) => {
                if !self.ty(f, p)?.is_ptr() {
                    return Err(self.err(f, "IsNull/PtrToInt of non-pointer".into()));
                }
                Ty::I64
            }
            Expr::Index { ptr, strukt, index } => {
                self.expect_ptr_to(f, ptr, *strukt)?;
                self.expect_int(f, index)?;
                Ty::Ptr(*strukt)
            }
            Expr::Call { func, args } => {
                let callee = self
                    .module
                    .funcs
                    .get(*func)
                    .ok_or_else(|| self.err(f, format!("function {func} out of range")))?;
                if args.len() != callee.params {
                    return Err(self.err(
                        f,
                        format!(
                            "{} expects {} args, got {}",
                            callee.name,
                            callee.params,
                            args.len()
                        ),
                    ));
                }
                for (i, a) in args.iter().enumerate() {
                    let got = self.ty(f, a)?;
                    if got != callee.locals[i] {
                        return Err(self.err(
                            f,
                            format!(
                                "arg {i} of {}: expected {:?}, got {got:?}",
                                callee.name, callee.locals[i]
                            ),
                        ));
                    }
                    self.no_calls(f, a)?;
                }
                callee.ret.ok_or_else(|| self.err(f, format!("{} returns nothing", callee.name)))?
            }
            Expr::Alloc { strukt, count } => {
                self.strukt(f, *strukt)?;
                self.expect_int(f, count)?;
                self.no_calls(f, count)?;
                Ty::Ptr(*strukt)
            }
        })
    }

    fn strukt(&self, f: &FuncDef, s: usize) -> Result<(), CompileError> {
        if s >= self.module.structs.len() {
            return Err(self.err(f, format!("struct {s} out of range")));
        }
        Ok(())
    }

    fn field(&self, f: &FuncDef, s: usize, field: usize) -> Result<Ty, CompileError> {
        self.strukt(f, s)?;
        self.module.structs[s].fields.get(field).copied().ok_or_else(|| {
            self.err(f, format!("field {field} of {} out of range", self.module.structs[s].name))
        })
    }

    fn expect_int(&self, f: &FuncDef, e: &Expr) -> Result<(), CompileError> {
        if self.ty(f, e)? != Ty::I64 {
            return Err(self.err(f, "expected integer expression".into()));
        }
        Ok(())
    }

    fn expect_ptr_to(&self, f: &FuncDef, e: &Expr, s: usize) -> Result<(), CompileError> {
        match self.ty(f, e)? {
            Ty::Ptr(got) if got == s => Ok(()),
            other => Err(self.err(f, format!("expected pointer to struct {s}, got {other:?}"))),
        }
    }

    /// Rejects `Call`/`Alloc` anywhere inside `e` (used for non-top-level
    /// positions).
    fn no_calls(&self, f: &FuncDef, e: &Expr) -> Result<(), CompileError> {
        let bad = match e {
            Expr::Call { .. } | Expr::Alloc { .. } => true,
            Expr::Const(_) | Expr::Local(_) | Expr::Null(_) => false,
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                self.no_calls(f, a)?;
                self.no_calls(f, b)?;
                false
            }
            Expr::Load { ptr, .. } | Expr::LoadPtr { ptr, .. } => {
                self.no_calls(f, ptr)?;
                false
            }
            Expr::IsNull(p) | Expr::PtrToInt(p) => {
                self.no_calls(f, p)?;
                false
            }
            Expr::Index { ptr, index, .. } => {
                self.no_calls(f, ptr)?;
                self.no_calls(f, index)?;
                false
            }
        };
        if bad {
            return Err(CompileError::CallPosition { func: f.name });
        }
        Ok(())
    }

    fn depth_ok(&self, f: &FuncDef, e: &Expr, extra_ptr: usize) -> Result<(), CompileError> {
        let (ni, np) = need(self.module, f, e);
        if ni > self.limits.max_int {
            return Err(CompileError::DepthExceeded {
                func: f.name,
                pool: "integer",
                needed: ni,
                available: self.limits.max_int,
            });
        }
        if np + extra_ptr > self.limits.max_ptr {
            return Err(CompileError::DepthExceeded {
                func: f.name,
                pool: "pointer",
                needed: np + extra_ptr,
                available: self.limits.max_ptr,
            });
        }
        Ok(())
    }

    /// Checks a value expression in a top-level position (where a call
    /// or alloc is permitted).
    fn top_expr(&self, f: &FuncDef, e: &Expr, want: Option<Ty>) -> Result<(), CompileError> {
        match e {
            Expr::Call { args, .. } => {
                let got = self.ty(f, e)?;
                if let Some(w) = want {
                    if got != w {
                        return Err(self.err(f, format!("expected {w:?}, call returns {got:?}")));
                    }
                }
                for a in args {
                    self.depth_ok(f, a, 0)?;
                }
            }
            Expr::Alloc { count, .. } => {
                let got = self.ty(f, e)?;
                if let Some(w) = want {
                    if got != w {
                        return Err(self.err(f, format!("expected {w:?}, alloc returns {got:?}")));
                    }
                }
                self.depth_ok(f, count, 0)?;
            }
            _ => {
                let got = self.ty(f, e)?;
                if let Some(w) = want {
                    if got != w {
                        return Err(self.err(f, format!("expected {w:?}, got {got:?}")));
                    }
                }
                self.no_calls(f, e)?;
                self.depth_ok(f, e, 0)?;
            }
        }
        Ok(())
    }

    fn stmts(&self, f: &FuncDef, body: &[Stmt]) -> Result<(), CompileError> {
        for s in body {
            match s {
                Stmt::Let(l, e) => {
                    let want = *f
                        .locals
                        .get(*l)
                        .ok_or_else(|| self.err(f, format!("local {l} out of range")))?;
                    self.top_expr(f, e, Some(want))?;
                }
                Stmt::Store { ptr, strukt, field, value } => {
                    self.expect_ptr_to(f, ptr, *strukt)?;
                    if self.field(f, *strukt, *field)? != Ty::I64 {
                        return Err(self.err(f, "Store to pointer field".into()));
                    }
                    self.expect_int(f, value)?;
                    self.no_calls(f, ptr)?;
                    self.no_calls(f, value)?;
                    self.depth_ok(f, ptr, 0)?;
                    self.depth_ok(f, value, 1)?; // base pointer stays live
                }
                Stmt::StorePtr { ptr, strukt, field, value } => {
                    self.expect_ptr_to(f, ptr, *strukt)?;
                    let fty = self.field(f, *strukt, *field)?;
                    let vty = self.ty(f, value)?;
                    if !fty.is_ptr() || fty != vty {
                        return Err(self.err(f, format!("StorePtr {fty:?} <- {vty:?}")));
                    }
                    self.no_calls(f, ptr)?;
                    self.no_calls(f, value)?;
                    self.depth_ok(f, ptr, 0)?;
                    self.depth_ok(f, value, 1)?;
                }
                Stmt::If { cond, then, els } => {
                    self.expect_int(f, cond)?;
                    self.no_calls(f, cond)?;
                    self.depth_ok(f, cond, 0)?;
                    self.stmts(f, then)?;
                    self.stmts(f, els)?;
                }
                Stmt::While { cond, body } => {
                    self.expect_int(f, cond)?;
                    self.no_calls(f, cond)?;
                    self.depth_ok(f, cond, 0)?;
                    self.stmts(f, body)?;
                }
                Stmt::Return(e) => match (e, f.ret) {
                    (None, None) => {}
                    (Some(e), Some(want)) => self.top_expr(f, e, Some(want))?,
                    (None, Some(_)) => {
                        return Err(self.err(f, "return without value".into()));
                    }
                    (Some(_), None) => {
                        return Err(self.err(f, "return with value from void function".into()));
                    }
                },
                Stmt::Expr(e) => {
                    if !matches!(e, Expr::Call { .. }) {
                        return Err(self.err(f, "expression statement must be a call".into()));
                    }
                    // Void calls are allowed here.
                    if let Expr::Call { func, args } = e {
                        let callee = &self.module.funcs[*func];
                        if args.len() != callee.params {
                            return Err(self.err(f, format!("{} arity mismatch", callee.name)));
                        }
                        for (i, a) in args.iter().enumerate() {
                            let got = self.ty(f, a)?;
                            if got != callee.locals[i] {
                                return Err(self.err(f, format!("arg {i} type mismatch")));
                            }
                            self.no_calls(f, a)?;
                            self.depth_ok(f, a, 0)?;
                        }
                    }
                }
                Stmt::Phase(_) => {}
                Stmt::Print(e) => {
                    self.expect_int(f, e)?;
                    self.no_calls(f, e)?;
                    self.depth_ok(f, e, 0)?;
                }
            }
        }
        Ok(())
    }
}

/// Validates a module against the given scratch limits.
///
/// # Errors
///
/// Any [`CompileError`] describing the first problem found.
pub fn check(module: &Module, limits: Limits) -> Result<(), CompileError> {
    let entry = module.funcs.get(module.entry).ok_or(CompileError::BadEntry)?;
    if entry.params != 0 || entry.ret != Some(Ty::I64) {
        return Err(CompileError::BadEntry);
    }
    let checker = Checker { module, limits };
    for f in &module.funcs {
        if f.params > f.locals.len() {
            return Err(checker.err(f, "more params than locals".into()));
        }
        checker.stmts(f, &f.body)?;
        if f.ret.is_some() && !matches!(f.body.last(), Some(Stmt::Return(_))) {
            return Err(CompileError::MissingReturn { func: f.name });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build::*;
    use crate::ir::{FuncDef, Module, StructDef};

    fn limits() -> Limits {
        Limits { max_int: 6, max_ptr: 3 }
    }

    fn module_with_main(body: Vec<Stmt>, locals: Vec<Ty>) -> Module {
        Module {
            structs: vec![StructDef { name: "node", fields: vec![Ty::I64, Ty::ptr(0)] }],
            funcs: vec![FuncDef { name: "main", params: 0, ret: Some(Ty::I64), locals, body }],
            entry: 0,
        }
    }

    #[test]
    fn accepts_simple_main() {
        let m = module_with_main(vec![Stmt::Return(Some(c(0)))], vec![]);
        check(&m, limits()).unwrap();
    }

    #[test]
    fn rejects_entry_with_params() {
        let mut m = module_with_main(vec![Stmt::Return(Some(c(0)))], vec![Ty::I64]);
        m.funcs[0].params = 1;
        assert_eq!(check(&m, limits()), Err(CompileError::BadEntry));
    }

    #[test]
    fn rejects_type_confusion() {
        // Load of a pointer field as integer.
        let m = module_with_main(
            vec![Stmt::Let(0, alloc(0, c(1))), Stmt::Return(Some(load(l(0), 0, 1)))],
            vec![Ty::ptr(0)],
        );
        assert!(matches!(check(&m, limits()), Err(CompileError::Type { .. })));
    }

    #[test]
    fn rejects_nested_call() {
        let m = module_with_main(vec![Stmt::Return(Some(add(call(0, vec![]), c(1))))], vec![]);
        assert!(matches!(check(&m, limits()), Err(CompileError::CallPosition { .. })));
    }

    #[test]
    fn rejects_excessive_depth() {
        // ((((((1+1)+1)+1)... nested the wrong way around to force depth.
        let mut e = c(1);
        for _ in 0..8 {
            e = add(c(1), e);
        }
        let m = module_with_main(vec![Stmt::Return(Some(e))], vec![]);
        assert!(matches!(
            check(&m, limits()),
            Err(CompileError::DepthExceeded { pool: "integer", .. })
        ));
    }

    #[test]
    fn rejects_missing_return() {
        let m = module_with_main(vec![Stmt::Phase(1)], vec![]);
        assert!(matches!(check(&m, limits()), Err(CompileError::MissingReturn { .. })));
    }

    #[test]
    fn left_leaning_chains_are_cheap() {
        // (((1+1)+1)+1)... needs only 2 int registers.
        let mut e = c(1);
        for _ in 0..50 {
            e = add(e, c(1));
        }
        let m = module_with_main(vec![Stmt::Return(Some(e))], vec![]);
        check(&m, limits()).unwrap();
    }

    #[test]
    fn expr_ty_after_check() {
        let m = module_with_main(
            vec![Stmt::Let(0, alloc(0, c(1))), Stmt::Return(Some(load(l(0), 0, 0)))],
            vec![Ty::ptr(0)],
        );
        check(&m, limits()).unwrap();
        let f = &m.funcs[0];
        assert_eq!(expr_ty(&m, f, &l(0)), Ty::ptr(0));
        assert_eq!(expr_ty(&m, f, &load(l(0), 0, 0)), Ty::I64);
        assert_eq!(expr_ty(&m, f, &loadp(l(0), 0, 1)), Ty::ptr(0));
    }
}
