//! The code generator: IR → MIPS64(+CHERI) via a pointer strategy.
//!
//! Design notes:
//!
//! * All locals live in the stack frame; expression evaluation uses a
//!   bounded scratch discipline (integers in `$t0-$t3`,`$t8`,`$t9`;
//!   pointers in the strategy's scratch slots). This is a deliberately
//!   simple, uniform register policy: all three strategies pay the same
//!   local-traffic cost, so measured differences isolate the pointer
//!   representation — the quantity the Section 8 comparison is about.
//! * Calls and allocations only occur at statement level (enforced by
//!   [`crate::check`]), so no scratch value is ever live across a call
//!   and everything is caller-saved by construction.
//! * Software bounds checks are emitted by the strategy; this module
//!   decides *whether* a check is needed, implementing conservative
//!   straight-line elision over named locals when the strategy allows it
//!   (the CCured-style optimisation).

use std::collections::HashMap;

use beri_sim::reg;
use cheri_asm::{Asm, Label, Program};
use cheri_os::abi;
use cheri_os::ProcessLayout;

use crate::check::{check, expr_ty, Limits};
use crate::error::CompileError;
use crate::ir::{BinOp, CmpOp, Expr, FuncDef, LocalId, Module, Stmt, Ty};
use crate::layout::StructLayout;
use crate::strategy::{emit_trap_stub, Emit, PtrLoc, PtrStrategy, CAP_ARG_BASE};

/// Integer expression scratch registers, indexed by depth.
const INT_POOL: [u8; 6] = [reg::T0, reg::T1, reg::T2, reg::T3, reg::T8, reg::T9];

/// Compilation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileOpts {
    /// Process layout (text base, heap-pointer cell) to target.
    pub layout: ProcessLayout,
}

/// Where an argument travels.
#[derive(Clone, Copy, Debug)]
enum ArgLoc {
    Int(u8),
    Ptr(PtrLoc),
}

/// One compiled function's symbol: name plus its `[start, end)` text
/// range. Returned by [`compile_with_symbols`] for profilers and other
/// tooling that needs to map PCs back to source functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncSym {
    /// The IR function name (`"_start"` for the entry/trap stub region
    /// that precedes the first function).
    pub name: &'static str,
    /// Address of the function's first instruction.
    pub start: u64,
    /// One past the function's last instruction.
    pub end: u64,
}

/// Compiles `module` under `strategy` into a loadable [`Program`].
///
/// # Errors
///
/// Validation errors from [`crate::check`], plus resource errors
/// (argument or offset overflow) detected during generation.
pub fn compile(
    module: &Module,
    strategy: &dyn PtrStrategy,
    opts: CompileOpts,
) -> Result<Program, CompileError> {
    compile_with_symbols(module, strategy, opts).map(|(program, _)| program)
}

/// Like [`compile`], but also returns the function symbol map. Symbols
/// are contiguous and in address order: the synthetic `_start` region
/// (entry + trap stubs) first, then every IR function.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_symbols(
    module: &Module,
    strategy: &dyn PtrStrategy,
    opts: CompileOpts,
) -> Result<(Program, Vec<FuncSym>), CompileError> {
    check(module, Limits { max_int: INT_POOL.len(), max_ptr: strategy.num_scratch() })?;
    let layouts: Vec<StructLayout> =
        module.structs.iter().map(|s| StructLayout::compute(&s.fields, strategy)).collect();
    for (s, l) in module.structs.iter().zip(&layouts) {
        if l.size > 30_000 {
            return Err(CompileError::OffsetTooLarge { func: s.name, offset: l.size });
        }
    }

    let mut asm = Asm::new(opts.layout.text_base);
    let trap = asm.new_label();
    let func_labels: Vec<Label> = module.funcs.iter().map(|_| asm.new_label()).collect();

    // Entry stub: call main, then exit with its result.
    asm.jal(func_labels[module.entry]);
    asm.move_(reg::A0, reg::V0);
    asm.li64(reg::V0, abi::SYS_EXIT as i64);
    asm.syscall(0);
    emit_trap_stub(&mut asm, trap);

    let mut cg = Codegen {
        module,
        strategy,
        asm,
        trap,
        func_labels,
        layouts,
        heap_cell: opts.layout.heap_ptr_cell(),
    };
    for (id, f) in module.funcs.iter().enumerate() {
        cg.compile_func(id, f)?;
    }

    // Functions are emitted contiguously in id order, so each one ends
    // where the next begins (the last at the current emission point).
    let mut starts: Vec<(&'static str, u64)> = Vec::with_capacity(module.funcs.len() + 1);
    starts.push(("_start", opts.layout.text_base));
    for (id, f) in module.funcs.iter().enumerate() {
        if let Some(addr) = cg.asm.label_addr(cg.func_labels[id]) {
            starts.push((f.name, addr));
        }
    }
    starts.sort_by_key(|(_, start)| *start);
    let end_of_text = cg.asm.here();
    let symbols = starts
        .iter()
        .enumerate()
        .map(|(i, &(name, start))| {
            let end = starts.get(i + 1).map_or(end_of_text, |&(_, next)| next);
            FuncSym { name, start, end }
        })
        .collect();

    Ok((cg.asm.finalize()?, symbols))
}

struct FuncCtx {
    local_off: Vec<i16>,
    epilogue: Label,
    /// Per-local intervals already bounds-checked (software strategy
    /// elision); cleared at control-flow joins.
    checked: HashMap<LocalId, Vec<(u64, u64)>>,
    /// Which local each integer scratch register currently holds — a
    /// sound reload-elision peephole (real compilers keep hot locals in
    /// registers; without this the uniform spill-everything policy
    /// overstates frame traffic in every mode equally, but distorts the
    /// cache-pressure comparison).
    int_cache: [Option<LocalId>; INT_POOL.len()],
    /// Which local each pointer scratch slot currently holds.
    ptr_cache: Vec<Option<LocalId>>,
}

impl FuncCtx {
    /// Forgets all register-residency and elision knowledge (at calls
    /// and control-flow joins).
    fn clear_flow_state(&mut self) {
        self.checked.clear();
        self.int_cache = [None; INT_POOL.len()];
        for s in &mut self.ptr_cache {
            *s = None;
        }
    }

    /// A local was reassigned: forget stale register copies and checked
    /// extents.
    fn local_clobbered(&mut self, l: LocalId) {
        self.checked.remove(&l);
        for e in &mut self.int_cache {
            if *e == Some(l) {
                *e = None;
            }
        }
        for e in &mut self.ptr_cache {
            if *e == Some(l) {
                *e = None;
            }
        }
    }
}

struct Codegen<'m> {
    module: &'m Module,
    strategy: &'m dyn PtrStrategy,
    asm: Asm,
    trap: Label,
    func_labels: Vec<Label>,
    layouts: Vec<StructLayout>,
    heap_cell: u64,
}

impl<'m> Codegen<'m> {
    fn emitter(&mut self) -> Emit<'_> {
        Emit { asm: &mut self.asm, trap: self.trap }
    }

    fn assign_args(&self, f: &FuncDef) -> Result<Vec<ArgLoc>, CompileError> {
        let mut gpr = reg::A0;
        let mut cap = CAP_ARG_BASE;
        let mut out = Vec::with_capacity(f.params);
        for ty in &f.locals[..f.params] {
            match ty {
                Ty::I64 => {
                    if gpr > reg::A7 {
                        return Err(CompileError::TooManyArgs { func: f.name });
                    }
                    out.push(ArgLoc::Int(gpr));
                    gpr += 1;
                }
                Ty::Ptr(_) => match self.strategy.arg_gprs_per_ptr() {
                    Some(1) => {
                        if gpr > reg::A7 {
                            return Err(CompileError::TooManyArgs { func: f.name });
                        }
                        out.push(ArgLoc::Ptr(PtrLoc::Gpr(gpr)));
                        gpr += 1;
                    }
                    Some(3) => {
                        if gpr + 2 > reg::A7 {
                            return Err(CompileError::TooManyArgs { func: f.name });
                        }
                        out.push(ArgLoc::Ptr(PtrLoc::Fat {
                            addr: gpr,
                            base: gpr + 1,
                            len: gpr + 2,
                        }));
                        gpr += 3;
                    }
                    None => {
                        if cap > CAP_ARG_BASE + 7 {
                            return Err(CompileError::TooManyArgs { func: f.name });
                        }
                        out.push(ArgLoc::Ptr(PtrLoc::Cap(cap)));
                        cap += 1;
                    }
                    Some(other) => {
                        unreachable!("unsupported GPRs-per-pointer {other}")
                    }
                },
            }
        }
        Ok(out)
    }

    fn frame_layout(&self, f: &FuncDef) -> Result<(Vec<i16>, i16), CompileError> {
        let mut off: u64 = 8; // 0: saved $ra
        let mut local_off = Vec::with_capacity(f.locals.len());
        for ty in &f.locals {
            let (size, align) = match ty {
                Ty::I64 => (8u64, 8u64),
                Ty::Ptr(_) => (self.strategy.ptr_size(), self.strategy.ptr_align()),
            };
            off = off.div_ceil(align) * align;
            local_off.push(off as i16);
            off += size;
        }
        let frame = off.div_ceil(32) * 32; // keep SP 32-byte aligned
        if frame > 30_000 {
            return Err(CompileError::OffsetTooLarge { func: f.name, offset: frame });
        }
        Ok((local_off, frame as i16))
    }

    fn compile_func(&mut self, id: usize, f: &FuncDef) -> Result<(), CompileError> {
        let (local_off, frame) = self.frame_layout(f)?;
        let epilogue = self.asm.new_label();
        let mut ctx = FuncCtx {
            local_off,
            epilogue,
            checked: HashMap::new(),
            int_cache: [None; INT_POOL.len()],
            ptr_cache: vec![None; self.strategy.num_scratch()],
        };

        self.asm.bind(self.func_labels[id])?;
        self.asm.daddiu(reg::SP, reg::SP, -frame);
        self.asm.sd(reg::RA, reg::SP, 0);
        let args = self.assign_args(f)?;
        for (i, a) in args.iter().enumerate() {
            let off = ctx.local_off[i];
            match a {
                ArgLoc::Int(g) => self.asm.sd(*g, reg::SP, off),
                ArgLoc::Ptr(p) => {
                    let strategy = self.strategy;
                    strategy.emit_store_local(&mut self.emitter(), *p, off);
                }
            }
        }

        self.compile_stmts(f, &mut ctx, &f.body)?;

        self.asm.bind(epilogue)?;
        self.asm.ld(reg::RA, reg::SP, 0);
        self.asm.daddiu(reg::SP, reg::SP, frame);
        self.asm.ret();
        Ok(())
    }

    /// Decides whether a dereference of `[off, off+size)` through a
    /// pointer with provenance `prov` needs an emitted check, updating
    /// the elision state.
    fn need_check(&self, ctx: &mut FuncCtx, prov: Option<LocalId>, off: u64, size: u64) -> bool {
        if !self.strategy.wants_check() {
            return false;
        }
        if !self.strategy.elides_checks() {
            return true;
        }
        let Some(lid) = prov else { return true };
        let intervals = ctx.checked.entry(lid).or_default();
        if intervals.iter().any(|(lo, hi)| *lo <= off && off + size <= *hi) {
            return false;
        }
        intervals.push((off, off + size));
        true
    }

    // --- expressions -----------------------------------------------------

    /// Evaluates an integer expression into `INT_POOL[i]`.
    #[allow(clippy::too_many_lines)]
    fn eval_int(
        &mut self,
        f: &FuncDef,
        ctx: &mut FuncCtx,
        e: &Expr,
        i: usize,
        p: usize,
    ) -> Result<u8, CompileError> {
        let dst = INT_POOL[i];
        // Default: the register no longer mirrors any local.
        let mut now_holds: Option<LocalId> = None;
        match e {
            Expr::Const(v) => self.asm.li64(dst, *v),
            Expr::Local(l) => {
                if ctx.int_cache[i] != Some(*l) {
                    self.asm.ld(dst, reg::SP, ctx.local_off[*l]);
                }
                now_holds = Some(*l);
            }
            Expr::Bin(op, a, b) => {
                let ra = self.eval_int(f, ctx, a, i, p)?;
                let rb = self.eval_int(f, ctx, b, i + 1, p)?;
                match op {
                    BinOp::Add => self.asm.daddu(dst, ra, rb),
                    BinOp::Sub => self.asm.dsubu(dst, ra, rb),
                    BinOp::Mul => {
                        self.asm.dmultu(ra, rb);
                        self.asm.mflo(dst);
                    }
                    BinOp::Div => {
                        self.asm.ddiv(ra, rb);
                        self.asm.mflo(dst);
                    }
                    BinOp::Rem => {
                        self.asm.ddiv(ra, rb);
                        self.asm.mfhi(dst);
                    }
                    BinOp::Udiv => {
                        self.asm.ddivu(ra, rb);
                        self.asm.mflo(dst);
                    }
                    BinOp::Urem => {
                        self.asm.ddivu(ra, rb);
                        self.asm.mfhi(dst);
                    }
                    BinOp::And => self.asm.and_(dst, ra, rb),
                    BinOp::Or => self.asm.or_(dst, ra, rb),
                    BinOp::Xor => self.asm.xor_(dst, ra, rb),
                    BinOp::Shl => self.asm.dsllv(dst, ra, rb),
                    BinOp::Shr => self.asm.dsrlv(dst, ra, rb),
                    BinOp::Sar => {
                        self.asm.emit(beri_sim::inst::Inst::ShiftV {
                            op: beri_sim::inst::ShiftOp::Dsra,
                            rd: dst,
                            rt: ra,
                            rs: rb,
                        });
                    }
                }
            }
            Expr::Cmp(op, a, b) => {
                let ra = self.eval_int(f, ctx, a, i, p)?;
                let rb = self.eval_int(f, ctx, b, i + 1, p)?;
                match op {
                    CmpOp::Eq => {
                        self.asm.xor_(dst, ra, rb);
                        self.asm.sltiu(dst, dst, 1);
                    }
                    CmpOp::Ne => {
                        self.asm.xor_(dst, ra, rb);
                        self.asm.sltu(dst, reg::ZERO, dst);
                    }
                    CmpOp::Lt => self.asm.slt(dst, ra, rb),
                    CmpOp::Gt => self.asm.slt(dst, rb, ra),
                    CmpOp::Le => {
                        self.asm.slt(dst, rb, ra);
                        self.asm.xori(dst, dst, 1);
                    }
                    CmpOp::Ge => {
                        self.asm.slt(dst, ra, rb);
                        self.asm.xori(dst, dst, 1);
                    }
                    CmpOp::Ltu => self.asm.sltu(dst, ra, rb),
                }
            }
            Expr::Load { ptr, strukt, field } => {
                let (loc, prov) = self.eval_ptr(f, ctx, ptr, i, p)?;
                let off = self.layouts[*strukt].offsets[*field];
                let chk = self.need_check(ctx, prov, off, 8);
                let strategy = self.strategy;
                strategy.emit_load_field(&mut self.emitter(), dst, loc, off as i16, chk);
            }
            Expr::IsNull(inner) => {
                let (loc, _) = self.eval_ptr(f, ctx, inner, i, p)?;
                let strategy = self.strategy;
                strategy.emit_is_null(&mut self.emitter(), dst, loc);
            }
            Expr::PtrToInt(inner) => {
                let (loc, _) = self.eval_ptr(f, ctx, inner, i, p)?;
                let strategy = self.strategy;
                strategy.emit_to_int(&mut self.emitter(), dst, loc);
            }
            Expr::Null(_)
            | Expr::LoadPtr { .. }
            | Expr::Index { .. }
            | Expr::Call { .. }
            | Expr::Alloc { .. } => {
                unreachable!("checked module: {e:?} is not an int expression here")
            }
        }
        ctx.int_cache[i] = now_holds;
        Ok(dst)
    }

    /// Evaluates a pointer expression into the strategy's scratch slot
    /// `p`; returns the slot and the provenance local (for elision).
    fn eval_ptr(
        &mut self,
        f: &FuncDef,
        ctx: &mut FuncCtx,
        e: &Expr,
        i: usize,
        p: usize,
    ) -> Result<(PtrLoc, Option<LocalId>), CompileError> {
        let slot = self.strategy.scratch(p);
        match e {
            Expr::Local(l) => {
                if ctx.ptr_cache[p] != Some(*l) {
                    let strategy = self.strategy;
                    let off = ctx.local_off[*l];
                    strategy.emit_load_local(&mut self.emitter(), slot, off);
                    ctx.ptr_cache[p] = Some(*l);
                }
                Ok((slot, Some(*l)))
            }
            Expr::Null(_) => {
                let strategy = self.strategy;
                strategy.emit_null(&mut self.emitter(), slot);
                ctx.ptr_cache[p] = None;
                Ok((slot, None))
            }
            Expr::LoadPtr { ptr, strukt, field } => {
                let (loc, prov) = self.eval_ptr(f, ctx, ptr, i, p)?;
                let off = self.layouts[*strukt].offsets[*field];
                let chk = self.need_check(ctx, prov, off, self.strategy.ptr_size());
                let strategy = self.strategy;
                strategy.emit_load_ptr_field(&mut self.emitter(), slot, loc, off as i16, chk);
                ctx.ptr_cache[p] = None;
                Ok((slot, None))
            }
            Expr::Index { ptr, strukt, index } => {
                let (loc, _) = self.eval_ptr(f, ctx, ptr, i, p)?;
                debug_assert_eq!(loc, slot);
                let idx = self.eval_int(f, ctx, index, i, p + 1)?;
                let size = self.layouts[*strukt].size;
                if size.is_power_of_two() {
                    if size > 1 {
                        self.asm.dsll(idx, idx, size.trailing_zeros() as u8);
                    }
                } else {
                    self.asm.li64(INT_POOL[i + 1], size as i64);
                    self.asm.dmultu(idx, INT_POOL[i + 1]);
                    self.asm.mflo(idx);
                }
                let strategy = self.strategy;
                strategy.emit_index(&mut self.emitter(), slot, slot, idx);
                ctx.ptr_cache[p] = None;
                ctx.int_cache[i] = None;
                if i + 1 < INT_POOL.len() {
                    ctx.int_cache[i + 1] = None;
                }
                Ok((slot, None))
            }
            Expr::Const(_)
            | Expr::Bin(..)
            | Expr::Cmp(..)
            | Expr::Load { .. }
            | Expr::IsNull(_)
            | Expr::PtrToInt(_)
            | Expr::Call { .. }
            | Expr::Alloc { .. } => {
                unreachable!("checked module: {e:?} is not a pointer expression here")
            }
        }
    }

    /// Emits a call, leaving the result in `$v0` / the strategy's return
    /// location.
    fn emit_call(
        &mut self,
        f: &FuncDef,
        ctx: &mut FuncCtx,
        func: usize,
        args: &[Expr],
    ) -> Result<(), CompileError> {
        let callee = &self.module.funcs[func];
        let locs = self.assign_args(callee)?;
        for (a, loc) in args.iter().zip(&locs) {
            match loc {
                ArgLoc::Int(g) => {
                    let r = self.eval_int(f, ctx, a, 0, 0)?;
                    self.asm.move_(*g, r);
                }
                ArgLoc::Ptr(pl) => {
                    let (src, _) = self.eval_ptr(f, ctx, a, 0, 0)?;
                    let strategy = self.strategy;
                    strategy.emit_move(&mut self.emitter(), *pl, src);
                }
            }
        }
        self.asm.jal(self.func_labels[func]);
        // Called code may have invalidated anything we knew.
        ctx.clear_flow_state();
        Ok(())
    }

    /// Emits an allocation, leaving the pointer in scratch slot 0.
    /// Returns the statically-known byte size, if any.
    fn emit_alloc(
        &mut self,
        f: &FuncDef,
        ctx: &mut FuncCtx,
        strukt: usize,
        count: &Expr,
    ) -> Result<Option<u64>, CompileError> {
        let size = self.layouts[strukt].size.max(self.strategy.heap_align());
        let bytes = INT_POOL[0];
        let known = if let Expr::Const(n) = count {
            let total = size * (*n as u64);
            self.asm.li64(bytes, total as i64);
            Some(total)
        } else {
            let r = self.eval_int(f, ctx, count, 0, 0)?;
            debug_assert_eq!(r, bytes);
            if size.is_power_of_two() {
                self.asm.dsll(bytes, bytes, size.trailing_zeros() as u8);
            } else {
                self.asm.li64(INT_POOL[1], size as i64);
                self.asm.dmultu(bytes, INT_POOL[1]);
                self.asm.mflo(bytes);
            }
            None
        };
        ctx.int_cache[0] = None;
        ctx.int_cache[1] = None;
        ctx.ptr_cache[0] = None;
        let slot = self.strategy.scratch(0);
        let heap_cell = self.heap_cell;
        let strategy = self.strategy;
        strategy.emit_alloc(&mut self.emitter(), slot, bytes, heap_cell);
        Ok(known)
    }

    // --- statements --------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn compile_stmts(
        &mut self,
        f: &FuncDef,
        ctx: &mut FuncCtx,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        for s in body {
            match s {
                Stmt::Let(l, e) => {
                    let off = ctx.local_off[*l];
                    match e {
                        Expr::Call { func, args } => {
                            self.emit_call(f, ctx, *func, args)?;
                            ctx.local_clobbered(*l);
                            match f.locals[*l] {
                                Ty::I64 => self.asm.sd(reg::V0, reg::SP, off),
                                Ty::Ptr(_) => {
                                    let strategy = self.strategy;
                                    let ret = strategy.ret_loc();
                                    strategy.emit_store_local(&mut self.emitter(), ret, off);
                                }
                            }
                        }
                        Expr::Alloc { strukt, count } => {
                            let known = self.emit_alloc(f, ctx, *strukt, count)?;
                            let strategy = self.strategy;
                            let slot = strategy.scratch(0);
                            strategy.emit_store_local(&mut self.emitter(), slot, off);
                            ctx.local_clobbered(*l);
                            // Slot 0 now holds the new local's value.
                            ctx.ptr_cache[0] = Some(*l);
                            if let Some(total) = known {
                                if strategy.elides_checks() {
                                    // A fresh allocation is known in-bounds
                                    // over its whole extent.
                                    ctx.checked.insert(*l, vec![(0, total)]);
                                }
                            }
                        }
                        _ => match f.locals[*l] {
                            Ty::I64 => {
                                let r = self.eval_int(f, ctx, e, 0, 0)?;
                                self.asm.sd(r, reg::SP, off);
                                ctx.local_clobbered(*l);
                                ctx.int_cache[0] = Some(*l);
                            }
                            Ty::Ptr(_) => {
                                let (loc, _) = self.eval_ptr(f, ctx, e, 0, 0)?;
                                let strategy = self.strategy;
                                strategy.emit_store_local(&mut self.emitter(), loc, off);
                                ctx.local_clobbered(*l);
                                debug_assert_eq!(loc, strategy.scratch(0));
                                ctx.ptr_cache[0] = Some(*l);
                            }
                        },
                    }
                }
                Stmt::Store { ptr, strukt, field, value } => {
                    let (loc, prov) = self.eval_ptr(f, ctx, ptr, 0, 0)?;
                    let v = self.eval_int(f, ctx, value, 0, 1)?;
                    let off = self.layouts[*strukt].offsets[*field];
                    let chk = self.need_check(ctx, prov, off, 8);
                    let strategy = self.strategy;
                    strategy.emit_store_field(&mut self.emitter(), v, loc, off as i16, chk);
                }
                Stmt::StorePtr { ptr, strukt, field, value } => {
                    let (dst, prov) = self.eval_ptr(f, ctx, ptr, 0, 0)?;
                    let (src, _) = self.eval_ptr(f, ctx, value, 0, 1)?;
                    let off = self.layouts[*strukt].offsets[*field];
                    let chk = self.need_check(ctx, prov, off, self.strategy.ptr_size());
                    let strategy = self.strategy;
                    strategy.emit_store_ptr_field(&mut self.emitter(), src, dst, off as i16, chk);
                }
                Stmt::If { cond, then, els } => {
                    let c = self.eval_int(f, ctx, cond, 0, 0)?;
                    let else_l = self.asm.new_label();
                    let end_l = self.asm.new_label();
                    self.asm.beq(c, reg::ZERO, else_l);
                    ctx.clear_flow_state();
                    self.compile_stmts(f, ctx, then)?;
                    self.asm.b(end_l);
                    self.asm.bind(else_l)?;
                    ctx.clear_flow_state();
                    self.compile_stmts(f, ctx, els)?;
                    self.asm.bind(end_l)?;
                    ctx.clear_flow_state();
                }
                Stmt::While { cond, body } => {
                    let top = self.asm.new_label();
                    let end = self.asm.new_label();
                    self.asm.bind(top)?;
                    ctx.clear_flow_state();
                    let c = self.eval_int(f, ctx, cond, 0, 0)?;
                    self.asm.beq(c, reg::ZERO, end);
                    self.compile_stmts(f, ctx, body)?;
                    self.asm.b(top);
                    self.asm.bind(end)?;
                    ctx.clear_flow_state();
                }
                Stmt::Return(e) => {
                    match e {
                        None => {}
                        Some(Expr::Call { func, args }) => {
                            // Result is already in the return location.
                            self.emit_call(f, ctx, *func, args)?;
                        }
                        Some(Expr::Alloc { strukt, count }) => {
                            self.emit_alloc(f, ctx, *strukt, count)?;
                            let strategy = self.strategy;
                            let (slot, ret) = (strategy.scratch(0), strategy.ret_loc());
                            strategy.emit_move(&mut self.emitter(), ret, slot);
                        }
                        Some(other) => match expr_ty(self.module, f, other) {
                            Ty::I64 => {
                                let r = self.eval_int(f, ctx, other, 0, 0)?;
                                self.asm.move_(reg::V0, r);
                            }
                            Ty::Ptr(_) => {
                                let (loc, _) = self.eval_ptr(f, ctx, other, 0, 0)?;
                                let strategy = self.strategy;
                                let ret = strategy.ret_loc();
                                strategy.emit_move(&mut self.emitter(), ret, loc);
                            }
                        },
                    }
                    self.asm.b(ctx.epilogue);
                }
                Stmt::Expr(e) => {
                    if let Expr::Call { func, args } = e {
                        self.emit_call(f, ctx, *func, args)?;
                    }
                }
                Stmt::Phase(id) => {
                    self.asm.li64(reg::A0, *id as i64);
                    self.asm.li64(reg::V0, abi::SYS_PHASE as i64);
                    self.asm.syscall(0);
                }
                Stmt::Print(e) => {
                    let r = self.eval_int(f, ctx, e, 0, 0)?;
                    self.asm.move_(reg::A0, r);
                    self.asm.li64(reg::V0, abi::SYS_PRINT as i64);
                    self.asm.syscall(0);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::build::*;
    use crate::ir::{FuncDef, Module, StructDef};
    use crate::strategy::{CapPtr, LegacyPtr, SoftFatPtr};
    use cheri_os::{boot, ExitReason, KernelConfig};

    fn strategies() -> Vec<Box<dyn PtrStrategy>> {
        vec![
            Box::new(LegacyPtr),
            Box::new(SoftFatPtr::checked()),
            Box::new(SoftFatPtr::eliding()),
            Box::new(CapPtr::c256()),
        ]
    }

    fn run(module: &Module, strategy: &dyn PtrStrategy) -> cheri_os::RunOutcome {
        let prog = compile(module, strategy, CompileOpts::default())
            .unwrap_or_else(|e| panic!("[{}] compile failed: {e}", strategy.name()));
        let mut k = boot(KernelConfig {
            machine: beri_sim::MachineConfig { mem_bytes: 16 << 20, ..Default::default() },
            max_instructions: 50_000_000,
            ..KernelConfig::default()
        });
        k.exec_and_run(&prog).unwrap_or_else(|e| panic!("[{}] run failed: {e}", strategy.name()))
    }

    fn assert_all_modes(module: &Module, expect: u64) {
        for s in strategies() {
            let out = run(module, s.as_ref());
            assert_eq!(out.exit_value(), Some(expect), "[{}] exit {:?}", s.name(), out.exit);
        }
    }

    /// node { val, left, right }
    fn tree_module() -> (Module, usize) {
        let node = 0usize;
        let module = Module {
            structs: vec![StructDef {
                name: "node",
                fields: vec![Ty::I64, Ty::ptr(0), Ty::ptr(0)],
            }],
            funcs: vec![],
            entry: 0,
        };
        (module, node)
    }

    #[test]
    fn arithmetic_program_runs_in_all_modes() {
        let m = Module {
            structs: vec![],
            funcs: vec![FuncDef {
                name: "main",
                params: 0,
                ret: Some(Ty::I64),
                locals: vec![Ty::I64, Ty::I64],
                body: vec![
                    Stmt::Let(0, c(0)),
                    Stmt::Let(1, c(1)),
                    Stmt::While {
                        cond: cmp(CmpOp::Le, l(1), c(10)),
                        body: vec![Stmt::Let(0, add(l(0), l(1))), Stmt::Let(1, add(l(1), c(1)))],
                    },
                    Stmt::Return(Some(l(0))),
                ],
            }],
            entry: 0,
        };
        assert_all_modes(&m, 55);
    }

    #[test]
    fn heap_allocation_and_field_access() {
        let (mut m, node) = tree_module();
        m.funcs.push(FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(node), Ty::ptr(node)],
            body: vec![
                Stmt::Let(0, alloc(node, c(1))),
                Stmt::Store { ptr: l(0), strukt: node, field: 0, value: c(41) },
                Stmt::Let(1, alloc(node, c(1))),
                Stmt::Store { ptr: l(1), strukt: node, field: 0, value: c(1) },
                Stmt::StorePtr { ptr: l(0), strukt: node, field: 1, value: l(1) },
                // return p->val + p->left->val
                Stmt::Return(Some(add(load(l(0), node, 0), load(loadp(l(0), node, 1), node, 0)))),
            ],
        });
        assert_all_modes(&m, 42);
    }

    #[test]
    fn recursion_with_pointer_args_and_returns() {
        // build(depth): allocates a tree; sum(p): adds it up.
        let (mut m, node) = tree_module();
        let build = 0usize;
        let sum = 1usize;
        let main = 2usize;
        m.funcs = vec![
            FuncDef {
                name: "build",
                params: 1,
                ret: Some(Ty::ptr(node)),
                locals: vec![Ty::I64, Ty::ptr(node), Ty::ptr(node)],
                body: vec![
                    Stmt::If {
                        cond: cmp(CmpOp::Le, l(0), c(0)),
                        then: vec![Stmt::Return(Some(Expr::Null(node)))],
                        els: vec![],
                    },
                    Stmt::Let(1, alloc(node, c(1))),
                    Stmt::Store { ptr: l(1), strukt: node, field: 0, value: l(0) },
                    Stmt::Let(2, call(build, vec![sub(l(0), c(1))])),
                    Stmt::StorePtr { ptr: l(1), strukt: node, field: 1, value: l(2) },
                    Stmt::Let(2, call(build, vec![sub(l(0), c(1))])),
                    Stmt::StorePtr { ptr: l(1), strukt: node, field: 2, value: l(2) },
                    Stmt::Return(Some(l(1))),
                ],
            },
            FuncDef {
                name: "sum",
                params: 1,
                ret: Some(Ty::I64),
                locals: vec![Ty::ptr(node), Ty::I64, Ty::I64],
                body: vec![
                    Stmt::If {
                        cond: is_null(l(0)),
                        then: vec![Stmt::Return(Some(c(0)))],
                        els: vec![],
                    },
                    Stmt::Let(1, call(sum, vec![loadp(l(0), node, 1)])),
                    Stmt::Let(2, call(sum, vec![loadp(l(0), node, 2)])),
                    Stmt::Return(Some(add(load(l(0), node, 0), add(l(1), l(2))))),
                ],
            },
            FuncDef {
                name: "main",
                params: 0,
                ret: Some(Ty::I64),
                locals: vec![Ty::ptr(node)],
                body: vec![
                    Stmt::Let(0, call(build, vec![c(4)])),
                    Stmt::Return(Some(call(sum, vec![l(0)]))),
                ],
            },
        ];
        m.entry = main;
        // depth-4 tree: level values 4,3,2,1 with 1,2,4,8 nodes.
        assert_all_modes(&m, 4 + 3 * 2 + 2 * 4 + 8);
    }

    #[test]
    fn array_indexing() {
        let cell = 0usize;
        let m = Module {
            structs: vec![StructDef { name: "cell", fields: vec![Ty::I64] }],
            funcs: vec![FuncDef {
                name: "main",
                params: 0,
                ret: Some(Ty::I64),
                locals: vec![Ty::ptr(cell), Ty::I64, Ty::I64],
                body: vec![
                    Stmt::Let(0, alloc(cell, c(10))),
                    Stmt::Let(1, c(0)),
                    Stmt::While {
                        cond: cmp(CmpOp::Lt, l(1), c(10)),
                        body: vec![
                            Stmt::Store {
                                ptr: index(l(0), cell, l(1)),
                                strukt: cell,
                                field: 0,
                                value: mul(l(1), l(1)),
                            },
                            Stmt::Let(1, add(l(1), c(1))),
                        ],
                    },
                    Stmt::Let(1, c(0)),
                    Stmt::Let(2, c(0)),
                    Stmt::While {
                        cond: cmp(CmpOp::Lt, l(1), c(10)),
                        body: vec![
                            Stmt::Let(2, add(l(2), load(index(l(0), cell, l(1)), cell, 0))),
                            Stmt::Let(1, add(l(1), c(1))),
                        ],
                    },
                    Stmt::Return(Some(l(2))),
                ],
            }],
            entry: 0,
        };
        assert_all_modes(&m, 285); // sum of squares 0..9
    }

    #[test]
    fn out_of_bounds_caught_by_cheri_and_soft_but_not_legacy() {
        let cell = 0usize;
        let m = Module {
            structs: vec![StructDef { name: "cell", fields: vec![Ty::I64] }],
            funcs: vec![FuncDef {
                name: "main",
                params: 0,
                ret: Some(Ty::I64),
                locals: vec![Ty::ptr(cell)],
                body: vec![
                    Stmt::Let(0, alloc(cell, c(4))),
                    // read element 4 of a 4-element array: one past the end
                    Stmt::Return(Some(load(index(l(0), cell, c(4)), cell, 0))),
                ],
            }],
            entry: 0,
        };
        let legacy = run(&m, &LegacyPtr);
        assert!(
            matches!(legacy.exit, ExitReason::Exit(_)),
            "legacy silently reads past the allocation: {:?}",
            legacy.exit
        );
        let soft = run(&m, &SoftFatPtr::checked());
        assert!(matches!(soft.exit, ExitReason::SoftBoundsFault { .. }), "{:?}", soft.exit);
        let cheri = run(&m, &CapPtr::c256());
        match cheri.exit {
            ExitReason::CapFault { cause, .. } => {
                assert_eq!(cause.code(), cheri_core::CapExcCode::LengthViolation);
            }
            other => panic!("expected CapFault, got {other:?}"),
        }
    }

    #[test]
    fn phases_and_prints_flow_through() {
        let m = Module {
            structs: vec![],
            funcs: vec![FuncDef {
                name: "main",
                params: 0,
                ret: Some(Ty::I64),
                locals: vec![],
                body: vec![
                    Stmt::Phase(1),
                    Stmt::Print(c(99)),
                    Stmt::Phase(2),
                    Stmt::Return(Some(c(0))),
                ],
            }],
            entry: 0,
        };
        let out = run(&m, &LegacyPtr);
        assert_eq!(out.prints, vec![99]);
        assert_eq!(out.phases.len(), 2);
    }

    #[test]
    fn elision_reduces_instructions_but_not_safety() {
        // Repeated field stores through one pointer in straight-line code.
        let (mut m, node) = tree_module();
        m.funcs.push(FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(node)],
            body: vec![
                Stmt::Let(0, alloc(node, c(1))),
                Stmt::Store { ptr: l(0), strukt: node, field: 0, value: c(1) },
                Stmt::Store { ptr: l(0), strukt: node, field: 0, value: c(2) },
                Stmt::Store { ptr: l(0), strukt: node, field: 0, value: c(3) },
                Stmt::Return(Some(load(l(0), node, 0))),
            ],
        });
        let checked = run(&m, &SoftFatPtr::checked());
        let eliding = run(&m, &SoftFatPtr::eliding());
        assert_eq!(checked.exit_value(), Some(3));
        assert_eq!(eliding.exit_value(), Some(3));
        assert!(
            eliding.stats.instructions < checked.stats.instructions,
            "elision must save instructions: {} vs {}",
            eliding.stats.instructions,
            checked.stats.instructions
        );
    }

    #[test]
    fn cheri_mode_instructions_close_to_legacy() {
        // The headline Section 8 claim in miniature: CHERI's per-access
        // instruction overhead is ~zero; software checking is not.
        let (mut m, node) = tree_module();
        m.funcs.push(FuncDef {
            name: "main",
            params: 0,
            ret: Some(Ty::I64),
            locals: vec![Ty::ptr(node), Ty::I64, Ty::I64],
            body: vec![
                Stmt::Let(0, alloc(node, c(1))),
                Stmt::Let(1, c(0)),
                Stmt::Let(2, c(0)),
                Stmt::While {
                    cond: cmp(CmpOp::Lt, l(1), c(1000)),
                    body: vec![
                        Stmt::Store { ptr: l(0), strukt: node, field: 0, value: l(1) },
                        Stmt::Let(2, add(l(2), load(l(0), node, 0))),
                        Stmt::Let(1, add(l(1), c(1))),
                    ],
                },
                Stmt::Return(Some(l(2))),
            ],
        });
        let legacy = run(&m, &LegacyPtr).stats.instructions;
        let cheri = run(&m, &CapPtr::c256()).stats.instructions;
        let soft = run(&m, &SoftFatPtr::checked()).stats.instructions;
        let cheri_over = cheri as f64 / legacy as f64;
        let soft_over = soft as f64 / legacy as f64;
        assert!(cheri_over < 1.05, "CHERI instruction overhead too high: {cheri_over}");
        assert!(soft_over > 1.30, "software checks should cost much more: {soft_over}");
    }
}
