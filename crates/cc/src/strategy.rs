//! Pointer strategies: the three compilation modes of the Section 8
//! evaluation.
//!
//! A [`PtrStrategy`] decides how pointer values are represented in
//! registers and memory and emits the machine code for every
//! pointer-touching operation. The code generator is otherwise identical
//! across modes, so measured differences between binaries are exactly the
//! differences the paper attributes to the protection scheme.
//!
//! Register conventions shared with the code generator:
//!
//! * `$k0`, `$k1`, `$at` are strategy scratch (no user code runs in
//!   kernel mode, so `k0`/`k1` are free);
//! * int expression scratch is `$t0-$t3`, `$t8`, `$t9`;
//! * `$a0-$a7` carry arguments (integers and, for the GPR-based
//!   strategies, pointer components);
//! * the capability strategy uses `C4-C7` as scratch, `C16-C23` as the
//!   eight capability argument registers (Section 5.1: "The CHERI ABI
//!   defines eight capability-argument registers"), and `C3` for pointer
//!   returns.

use beri_sim::reg;
use cheri_asm::{Asm, Label};
use cheri_os::SOFT_BOUNDS_BREAK_CODE;

/// Where a pointer value currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrLoc {
    /// A bare address in one GPR (legacy mode).
    Gpr(u8),
    /// A software fat pointer in three GPRs.
    Fat {
        /// Current address.
        addr: u8,
        /// Region base.
        base: u8,
        /// Region length in bytes.
        len: u8,
    },
    /// A capability register (CHERI mode).
    Cap(u8),
}

/// Emission context handed to strategy hooks.
pub struct Emit<'a> {
    /// The assembler.
    pub asm: &'a mut Asm,
    /// Label of the program's bounds-trap stub (software checks branch
    /// here; it executes `BREAK 0xbad`).
    pub trap: Label,
}

/// A pointer representation + code-emission strategy.
///
/// All `emit_*` hooks may clobber `$k0`, `$k1` and `$at` only (besides
/// their destination).
pub trait PtrStrategy {
    /// Short mode name ("mips", "ccured", "cheri").
    fn name(&self) -> &'static str;

    /// In-memory pointer size in bytes (8 / 24 / 32).
    fn ptr_size(&self) -> u64;

    /// In-memory pointer alignment in bytes.
    fn ptr_align(&self) -> u64;

    /// Alignment every heap allocation must keep so that subsequent
    /// allocations stay representable (32 under CHERI: tags cover
    /// aligned 256-bit granules).
    fn heap_align(&self) -> u64 {
        self.ptr_align().max(8)
    }

    /// How many pointer scratch slots the code generator may use.
    fn num_scratch(&self) -> usize;

    /// The `i`-th pointer scratch slot.
    fn scratch(&self, i: usize) -> PtrLoc;

    /// Where pointer-typed function results are returned.
    fn ret_loc(&self) -> PtrLoc;

    /// `Some(n)` if pointer arguments consume `n` consecutive GPR
    /// argument registers; `None` if they travel in dedicated capability
    /// argument registers (`C16 + i`).
    fn arg_gprs_per_ptr(&self) -> Option<usize>;

    /// Whether dereferences require an explicit emitted check (software
    /// fat pointers only).
    fn wants_check(&self) -> bool {
        false
    }

    /// Whether provably-redundant checks may be elided (the CCured
    /// optimisation the paper credits for mst's tight inner loop).
    fn elides_checks(&self) -> bool {
        false
    }

    /// `dst = src` (pointer register move).
    fn emit_move(&self, e: &mut Emit<'_>, dst: PtrLoc, src: PtrLoc);

    /// `dst = NULL`.
    fn emit_null(&self, e: &mut Emit<'_>, dst: PtrLoc);

    /// Load a pointer local from `sp + off`.
    fn emit_load_local(&self, e: &mut Emit<'_>, dst: PtrLoc, off: i16);

    /// Store a pointer local to `sp + off`.
    fn emit_store_local(&self, e: &mut Emit<'_>, src: PtrLoc, off: i16);

    /// `dst_gpr = (p == NULL)`.
    fn emit_is_null(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc);

    /// `dst_gpr = address of p` (hashing; `CToPtr` under CHERI).
    fn emit_to_int(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc);

    /// `dst_gpr = *(i64*)(p + off)`; `check` requests the software
    /// bounds check where applicable.
    fn emit_load_field(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc, off: i16, check: bool);

    /// `*(i64*)(p + off) = src_gpr`.
    fn emit_store_field(&self, e: &mut Emit<'_>, src_gpr: u8, p: PtrLoc, off: i16, check: bool);

    /// `dst = *(ptr*)(p + off)` (a pointer-typed field).
    fn emit_load_ptr_field(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, off: i16, check: bool);

    /// `*(ptr*)(p + off) = src`.
    fn emit_store_ptr_field(&self, e: &mut Emit<'_>, src: PtrLoc, p: PtrLoc, off: i16, check: bool);

    /// `dst = p advanced by byte_off_gpr bytes` (array indexing).
    fn emit_index(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, byte_off_gpr: u8);

    /// Bump-allocate `bytes_gpr` bytes from the heap cell at
    /// `heap_cell`, leaving a pointer to the block in `dst`. `bytes_gpr`
    /// is already a multiple of [`PtrStrategy::heap_align`].
    fn emit_alloc(&self, e: &mut Emit<'_>, dst: PtrLoc, bytes_gpr: u8, heap_cell: u64);
}

fn expect_gpr(p: PtrLoc) -> u8 {
    match p {
        PtrLoc::Gpr(r) => r,
        other => panic!("legacy strategy handed a non-GPR location {other:?}"),
    }
}

fn expect_fat(p: PtrLoc) -> (u8, u8, u8) {
    match p {
        PtrLoc::Fat { addr, base, len } => (addr, base, len),
        other => panic!("fat-pointer strategy handed {other:?}"),
    }
}

fn expect_cap(p: PtrLoc) -> u8 {
    match p {
        PtrLoc::Cap(c) => c,
        other => panic!("capability strategy handed {other:?}"),
    }
}

/// Shared bump-allocator prologue: leaves the old heap pointer in `$k1`
/// and advances the cell by `bytes_gpr`.
fn emit_bump(a: &mut Asm, bytes_gpr: u8, heap_cell: u64) {
    a.li64(reg::K0, heap_cell as i64);
    a.ld(reg::K1, reg::K0, 0);
    a.daddu(reg::AT, reg::K1, bytes_gpr);
    a.sd(reg::AT, reg::K0, 0);
}

// ---------------------------------------------------------------------
// Legacy (unsafe MIPS baseline)
// ---------------------------------------------------------------------

/// Pointers are bare 64-bit integers: the conventional-MIPS baseline of
/// Figure 4. No bounds exist and no checks are emitted.
#[derive(Clone, Copy, Debug, Default)]
pub struct LegacyPtr;

impl PtrStrategy for LegacyPtr {
    fn name(&self) -> &'static str {
        "mips"
    }

    fn ptr_size(&self) -> u64 {
        8
    }

    fn ptr_align(&self) -> u64 {
        8
    }

    fn num_scratch(&self) -> usize {
        4
    }

    fn scratch(&self, i: usize) -> PtrLoc {
        PtrLoc::Gpr([reg::S0, reg::S1, reg::S2, reg::S3][i])
    }

    fn ret_loc(&self) -> PtrLoc {
        PtrLoc::Gpr(reg::V0)
    }

    fn arg_gprs_per_ptr(&self) -> Option<usize> {
        Some(1)
    }

    fn emit_move(&self, e: &mut Emit<'_>, dst: PtrLoc, src: PtrLoc) {
        let (d, s) = (expect_gpr(dst), expect_gpr(src));
        if d != s {
            e.asm.move_(d, s);
        }
    }

    fn emit_null(&self, e: &mut Emit<'_>, dst: PtrLoc) {
        e.asm.move_(expect_gpr(dst), reg::ZERO);
    }

    fn emit_load_local(&self, e: &mut Emit<'_>, dst: PtrLoc, off: i16) {
        e.asm.ld(expect_gpr(dst), reg::SP, off);
    }

    fn emit_store_local(&self, e: &mut Emit<'_>, src: PtrLoc, off: i16) {
        e.asm.sd(expect_gpr(src), reg::SP, off);
    }

    fn emit_is_null(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        e.asm.sltiu(dst_gpr, expect_gpr(p), 1);
    }

    fn emit_to_int(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        let s = expect_gpr(p);
        if dst_gpr != s {
            e.asm.move_(dst_gpr, s);
        }
    }

    fn emit_load_field(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc, off: i16, _check: bool) {
        e.asm.ld(dst_gpr, expect_gpr(p), off);
    }

    fn emit_store_field(&self, e: &mut Emit<'_>, src_gpr: u8, p: PtrLoc, off: i16, _check: bool) {
        e.asm.sd(src_gpr, expect_gpr(p), off);
    }

    fn emit_load_ptr_field(
        &self,
        e: &mut Emit<'_>,
        dst: PtrLoc,
        p: PtrLoc,
        off: i16,
        _check: bool,
    ) {
        e.asm.ld(expect_gpr(dst), expect_gpr(p), off);
    }

    fn emit_store_ptr_field(
        &self,
        e: &mut Emit<'_>,
        src: PtrLoc,
        p: PtrLoc,
        off: i16,
        _check: bool,
    ) {
        e.asm.sd(expect_gpr(src), expect_gpr(p), off);
    }

    fn emit_index(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, byte_off_gpr: u8) {
        e.asm.daddu(expect_gpr(dst), expect_gpr(p), byte_off_gpr);
    }

    fn emit_alloc(&self, e: &mut Emit<'_>, dst: PtrLoc, bytes_gpr: u8, heap_cell: u64) {
        emit_bump(e.asm, bytes_gpr, heap_cell);
        e.asm.move_(expect_gpr(dst), reg::K1);
    }
}

// ---------------------------------------------------------------------
// Software fat pointers (CCured stand-in)
// ---------------------------------------------------------------------

/// Pointers are `(address, base, length)` triples ("at least two
/// general-purpose registers for each pointer", Section 5.1 — we carry
/// three, as CCured's sequence pointers do) and every dereference is
/// guarded by an explicit check unless elided.
#[derive(Clone, Copy, Debug)]
pub struct SoftFatPtr {
    elide: bool,
}

impl SoftFatPtr {
    /// Checks on every dereference.
    #[must_use]
    pub fn checked() -> SoftFatPtr {
        SoftFatPtr { elide: false }
    }

    /// Straight-line redundant checks are elided (closer to CCured's
    /// static elision; still sound).
    #[must_use]
    pub fn eliding() -> SoftFatPtr {
        SoftFatPtr { elide: true }
    }

    /// Emits the bounds check for an access of `size` bytes at
    /// `addr + off`:
    /// `if (addr+off < base || addr+off+size > base+len) trap`.
    fn emit_check(e: &mut Emit<'_>, p: PtrLoc, off: i16, size: i16) {
        let (addr, base, len) = expect_fat(p);
        let a = &mut *e.asm;
        a.daddiu(reg::K0, addr, off); // ea
        a.sltu(reg::AT, reg::K0, base); // ea < base ?
        a.bne(reg::AT, reg::ZERO, e.trap);
        a.daddu(reg::K1, base, len); // limit
        a.daddiu(reg::K0, reg::K0, size); // ea + size
        a.sltu(reg::AT, reg::K1, reg::K0); // limit < ea+size ?
        a.bne(reg::AT, reg::ZERO, e.trap);
    }
}

impl PtrStrategy for SoftFatPtr {
    fn name(&self) -> &'static str {
        if self.elide {
            "ccured-elide"
        } else {
            "ccured"
        }
    }

    fn ptr_size(&self) -> u64 {
        24
    }

    fn ptr_align(&self) -> u64 {
        8
    }

    fn num_scratch(&self) -> usize {
        3
    }

    fn scratch(&self, i: usize) -> PtrLoc {
        [
            PtrLoc::Fat { addr: reg::S0, base: reg::S1, len: reg::S2 },
            PtrLoc::Fat { addr: reg::S3, base: reg::S4, len: reg::S5 },
            PtrLoc::Fat { addr: reg::S6, base: reg::S7, len: reg::GP },
        ][i]
    }

    fn ret_loc(&self) -> PtrLoc {
        PtrLoc::Fat { addr: reg::V0, base: reg::V1, len: reg::GP }
    }

    fn arg_gprs_per_ptr(&self) -> Option<usize> {
        Some(3)
    }

    fn wants_check(&self) -> bool {
        true
    }

    fn elides_checks(&self) -> bool {
        self.elide
    }

    fn emit_move(&self, e: &mut Emit<'_>, dst: PtrLoc, src: PtrLoc) {
        let (da, db, dl) = expect_fat(dst);
        let (sa, sb, sl) = expect_fat(src);
        if da != sa {
            e.asm.move_(da, sa);
        }
        if db != sb {
            e.asm.move_(db, sb);
        }
        if dl != sl {
            e.asm.move_(dl, sl);
        }
    }

    fn emit_null(&self, e: &mut Emit<'_>, dst: PtrLoc) {
        let (a, b, l) = expect_fat(dst);
        e.asm.move_(a, reg::ZERO);
        e.asm.move_(b, reg::ZERO);
        e.asm.move_(l, reg::ZERO);
    }

    fn emit_load_local(&self, e: &mut Emit<'_>, dst: PtrLoc, off: i16) {
        let (a, b, l) = expect_fat(dst);
        e.asm.ld(a, reg::SP, off);
        e.asm.ld(b, reg::SP, off + 8);
        e.asm.ld(l, reg::SP, off + 16);
    }

    fn emit_store_local(&self, e: &mut Emit<'_>, src: PtrLoc, off: i16) {
        let (a, b, l) = expect_fat(src);
        e.asm.sd(a, reg::SP, off);
        e.asm.sd(b, reg::SP, off + 8);
        e.asm.sd(l, reg::SP, off + 16);
    }

    fn emit_is_null(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        let (a, _, _) = expect_fat(p);
        e.asm.sltiu(dst_gpr, a, 1);
    }

    fn emit_to_int(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        let (a, _, _) = expect_fat(p);
        if dst_gpr != a {
            e.asm.move_(dst_gpr, a);
        }
    }

    fn emit_load_field(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc, off: i16, check: bool) {
        if check {
            Self::emit_check(e, p, off, 8);
        }
        let (a, _, _) = expect_fat(p);
        e.asm.ld(dst_gpr, a, off);
    }

    fn emit_store_field(&self, e: &mut Emit<'_>, src_gpr: u8, p: PtrLoc, off: i16, check: bool) {
        if check {
            Self::emit_check(e, p, off, 8);
        }
        let (a, _, _) = expect_fat(p);
        e.asm.sd(src_gpr, a, off);
    }

    fn emit_load_ptr_field(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, off: i16, check: bool) {
        if check {
            Self::emit_check(e, p, off, 24);
        }
        let (pa, _, _) = expect_fat(p);
        let (da, db, dl) = expect_fat(dst);
        // Load `addr` last so `dst` may alias `p` (p = p->next).
        e.asm.ld(dl, pa, off + 16);
        e.asm.ld(db, pa, off + 8);
        e.asm.ld(da, pa, off);
    }

    fn emit_store_ptr_field(
        &self,
        e: &mut Emit<'_>,
        src: PtrLoc,
        p: PtrLoc,
        off: i16,
        check: bool,
    ) {
        if check {
            Self::emit_check(e, p, off, 24);
        }
        let (pa, _, _) = expect_fat(p);
        let (sa, sb, sl) = expect_fat(src);
        e.asm.sd(sa, pa, off);
        e.asm.sd(sb, pa, off + 8);
        e.asm.sd(sl, pa, off + 16);
    }

    fn emit_index(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, byte_off_gpr: u8) {
        let (pa, pb, pl) = expect_fat(p);
        let (da, db, dl) = expect_fat(dst);
        e.asm.daddu(da, pa, byte_off_gpr);
        if db != pb {
            e.asm.move_(db, pb);
        }
        if dl != pl {
            e.asm.move_(dl, pl);
        }
    }

    fn emit_alloc(&self, e: &mut Emit<'_>, dst: PtrLoc, bytes_gpr: u8, heap_cell: u64) {
        emit_bump(e.asm, bytes_gpr, heap_cell);
        let (a, b, l) = expect_fat(dst);
        e.asm.move_(a, reg::K1);
        e.asm.move_(b, reg::K1);
        e.asm.move_(l, bytes_gpr);
    }
}

// ---------------------------------------------------------------------
// CHERI capabilities
// ---------------------------------------------------------------------

/// Pointers are CHERI capabilities: hardware enforces bounds and
/// permissions on every dereference; the only instruction overhead is
/// setting bounds at allocation (Section 8: "CHERI requires one extra
/// instruction for each allocation to set bounds").
///
/// The default targets the 256-bit research format; [`CapPtr::c128`]
/// targets the compressed 128-bit production format — same code shape,
/// half the in-memory pointer size — and must be run on a machine
/// configured with `CapFormat::C128`.
#[derive(Clone, Copy, Debug)]
pub struct CapPtr {
    mem_bytes: u64,
}

impl Default for CapPtr {
    fn default() -> CapPtr {
        CapPtr::c256()
    }
}

impl CapPtr {
    /// The 256-bit architectural format (Figure 1).
    #[must_use]
    pub const fn c256() -> CapPtr {
        CapPtr { mem_bytes: 32 }
    }

    /// The compressed 128-bit production format (Section 4.1 / the
    /// Figure 3 "128b CHERI" column).
    #[must_use]
    pub const fn c128() -> CapPtr {
        CapPtr { mem_bytes: 16 }
    }
}

/// First capability argument register.
pub const CAP_ARG_BASE: u8 = 16;
/// Capability register used for pointer returns.
pub const CAP_RET: u8 = 3;

impl CapPtr {
    /// Offset addressing for a capability access of `unit`-byte scaled
    /// immediates: returns `(rt, imm)` such that `gpr[rt] + imm*unit ==
    /// off`, using `$at` when `off` exceeds the scaled 6-bit immediate.
    fn offset_operands(a: &mut Asm, off: i16, unit: i16) -> (u8, i8) {
        if off % unit == 0 && (off / unit) < 32 && (off / unit) >= -32 {
            (reg::ZERO, (off / unit) as i8)
        } else {
            a.li64(reg::AT, i64::from(off));
            (reg::AT, 0)
        }
    }
}

impl PtrStrategy for CapPtr {
    fn name(&self) -> &'static str {
        if self.mem_bytes == 16 {
            "cheri128"
        } else {
            "cheri"
        }
    }

    fn ptr_size(&self) -> u64 {
        self.mem_bytes
    }

    fn ptr_align(&self) -> u64 {
        self.mem_bytes
    }

    fn num_scratch(&self) -> usize {
        4
    }

    fn scratch(&self, i: usize) -> PtrLoc {
        PtrLoc::Cap([4, 5, 6, 7][i])
    }

    fn ret_loc(&self) -> PtrLoc {
        PtrLoc::Cap(CAP_RET)
    }

    fn arg_gprs_per_ptr(&self) -> Option<usize> {
        None
    }

    fn emit_move(&self, e: &mut Emit<'_>, dst: PtrLoc, src: PtrLoc) {
        let (d, s) = (expect_cap(dst), expect_cap(src));
        if d != s {
            // CIncBase cd, cb, $zero is the capability move idiom.
            e.asm.cincbase(d, s, reg::ZERO);
        }
    }

    fn emit_null(&self, e: &mut Emit<'_>, dst: PtrLoc) {
        e.asm.cfromptr(expect_cap(dst), 0, reg::ZERO);
    }

    fn emit_load_local(&self, e: &mut Emit<'_>, dst: PtrLoc, off: i16) {
        let d = expect_cap(dst);
        let unit = self.mem_bytes as i16;
        if off % unit == 0 && off / unit < 32 && off >= 0 {
            e.asm.clc(d, reg::SP, (off / unit) as i8, 0);
        } else {
            e.asm.daddiu(reg::AT, reg::SP, off);
            e.asm.clc(d, reg::AT, 0, 0);
        }
    }

    fn emit_store_local(&self, e: &mut Emit<'_>, src: PtrLoc, off: i16) {
        let s = expect_cap(src);
        let unit = self.mem_bytes as i16;
        if off % unit == 0 && off / unit < 32 && off >= 0 {
            e.asm.csc(s, reg::SP, (off / unit) as i8, 0);
        } else {
            e.asm.daddiu(reg::AT, reg::SP, off);
            e.asm.csc(s, reg::AT, 0, 0);
        }
    }

    fn emit_is_null(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        e.asm.cgettag(dst_gpr, expect_cap(p));
        e.asm.xori(dst_gpr, dst_gpr, 1);
    }

    fn emit_to_int(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc) {
        e.asm.ctoptr(dst_gpr, expect_cap(p), 0);
    }

    fn emit_load_field(&self, e: &mut Emit<'_>, dst_gpr: u8, p: PtrLoc, off: i16, _check: bool) {
        let (rt, imm) = Self::offset_operands(e.asm, off, 8);
        e.asm.cld(dst_gpr, rt, imm, expect_cap(p));
    }

    fn emit_store_field(&self, e: &mut Emit<'_>, src_gpr: u8, p: PtrLoc, off: i16, _check: bool) {
        let (rt, imm) = Self::offset_operands(e.asm, off, 8);
        e.asm.csd(src_gpr, rt, imm, expect_cap(p));
    }

    fn emit_load_ptr_field(
        &self,
        e: &mut Emit<'_>,
        dst: PtrLoc,
        p: PtrLoc,
        off: i16,
        _check: bool,
    ) {
        let (rt, imm) = Self::offset_operands(e.asm, off, self.mem_bytes as i16);
        e.asm.clc(expect_cap(dst), rt, imm, expect_cap(p));
    }

    fn emit_store_ptr_field(
        &self,
        e: &mut Emit<'_>,
        src: PtrLoc,
        p: PtrLoc,
        off: i16,
        _check: bool,
    ) {
        let (rt, imm) = Self::offset_operands(e.asm, off, self.mem_bytes as i16);
        e.asm.csc(expect_cap(src), rt, imm, expect_cap(p));
    }

    fn emit_index(&self, e: &mut Emit<'_>, dst: PtrLoc, p: PtrLoc, byte_off_gpr: u8) {
        e.asm.cincbase(expect_cap(dst), expect_cap(p), byte_off_gpr);
    }

    fn emit_alloc(&self, e: &mut Emit<'_>, dst: PtrLoc, bytes_gpr: u8, heap_cell: u64) {
        emit_bump(e.asm, bytes_gpr, heap_cell);
        let d = expect_cap(dst);
        // Derive the object capability and set its bounds — the
        // allocation-time extra instructions of Figure 4.
        e.asm.cfromptr(d, 0, reg::K1);
        e.asm.csetlen(d, d, bytes_gpr);
    }
}

/// The trap stub every compiled program carries: software bounds checks
/// branch here.
pub fn emit_trap_stub(a: &mut Asm, trap: Label) {
    a.bind(trap).expect("trap label bound once");
    a.break_(SOFT_BOUNDS_BREAK_CODE);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_the_paper() {
        assert_eq!(LegacyPtr.ptr_size(), 8);
        assert_eq!(SoftFatPtr::checked().ptr_size(), 24);
        assert_eq!(CapPtr::c256().ptr_size(), 32);
        assert_eq!(CapPtr::c128().ptr_size(), 16);
        assert_eq!(CapPtr::c256().ptr_align(), 32);
        assert_eq!(CapPtr::c128().ptr_align(), 16);
    }

    #[test]
    fn names_distinguish_elision() {
        assert_eq!(SoftFatPtr::checked().name(), "ccured");
        assert_eq!(SoftFatPtr::eliding().name(), "ccured-elide");
        assert!(SoftFatPtr::eliding().elides_checks());
        assert!(!SoftFatPtr::checked().elides_checks());
    }

    #[test]
    fn only_soft_wants_checks() {
        assert!(!LegacyPtr.wants_check());
        assert!(SoftFatPtr::checked().wants_check());
        assert!(!CapPtr::c256().wants_check());
    }

    #[test]
    fn scratch_slots_are_distinct() {
        for s in [&LegacyPtr as &dyn PtrStrategy, &SoftFatPtr::checked(), &CapPtr::c256()] {
            let slots: Vec<PtrLoc> = (0..s.num_scratch()).map(|i| s.scratch(i)).collect();
            for (i, a) in slots.iter().enumerate() {
                for b in &slots[i + 1..] {
                    assert_ne!(a, b, "{} has duplicate scratch", s.name());
                }
            }
        }
    }

    #[test]
    fn cap_offset_operands_use_scaled_imm_when_possible() {
        let mut a = Asm::new(0x1000);
        assert_eq!(CapPtr::offset_operands(&mut a, 64, 32), (reg::ZERO, 2));
        assert_eq!(CapPtr::offset_operands(&mut a, 248, 8), (reg::ZERO, 31));
        assert_eq!(a.here(), 0x1000, "no instructions for representable offsets");
        let (rt, imm) = CapPtr::offset_operands(&mut a, 1024, 32);
        assert_eq!((rt, imm), (reg::AT, 0));
        assert!(a.here() > 0x1000, "large offsets materialise via $at");
    }
}
