//! The two properties the sweep subsystem exists to provide:
//!
//! 1. **Determinism** — the serialised report is byte-identical at any
//!    thread count (each job owns its machine; results are reassembled
//!    in spec order).
//! 2. **The gate bites** — a seeded counter drift fails the check with
//!    the drifting metric named; an unchanged report passes.

use cheri_sweep::{
    check_reports, profile_matrix, run_matrix, run_specs, run_specs_block_cache, Profile,
    SweepReport,
};

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let serial = run_matrix(Profile::Smoke, 1);
    let parallel = run_matrix(Profile::Smoke, 8);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "sweep report must not depend on thread count or scheduling"
    );
}

#[test]
fn self_check_passes_and_seeded_drift_fails() {
    let specs: Vec<_> = profile_matrix(Profile::Smoke)
        .into_iter()
        .filter(|s| s.workload.name() == "treeadd")
        .collect();
    let results = run_specs(&specs, 2);
    let report = SweepReport::from_results("smoke", &results);

    // Round-trip through the serialised form, as the CI gate does.
    let baseline = SweepReport::from_json(&report.to_json()).expect("own JSON parses");
    assert!(
        check_reports(&baseline, &report).is_empty(),
        "a run must pass against its own baseline"
    );

    // Seed a drift on an exact-match architectural counter.
    let mut drifted = baseline.clone();
    let job_key = drifted.jobs[0].key.clone();
    *drifted.jobs[0].counters.get_mut("sim.instructions").expect("counter present") += 1;
    let drifts = check_reports(&drifted, &report);
    assert_eq!(drifts.len(), 1, "exactly the seeded drift: {drifts:?}");
    assert_eq!(drifts[0].metric, "sim.instructions");
    assert_eq!(drifts[0].job, job_key);
}

#[test]
fn block_cache_is_architecturally_transparent_in_the_sweep() {
    // The simulator's predecoded block cache is a host-side
    // optimisation: forcing it on or off must leave every reported
    // counter of a real matrix job byte-identical. (`xsweep --perf`
    // asserts the same over the whole matrix; this is the tier-1 form.)
    let specs: Vec<_> = profile_matrix(Profile::Smoke)
        .into_iter()
        .filter(|s| s.workload.name() == "treeadd")
        .collect();
    let on = SweepReport::from_results("smoke", &run_specs_block_cache(&specs, 2, true));
    let off = SweepReport::from_results("smoke", &run_specs_block_cache(&specs, 2, false));
    assert_eq!(on.to_json(), off.to_json(), "block cache changed architectural results");
}

#[test]
fn report_carries_the_evaluations_headline_shape() {
    // A cheap semantic sanity check on real sweep data: CHERI's cycle
    // overhead over MIPS exists but stays under CCured's on treeadd —
    // the Figure 4 headline — visible straight from the report.
    let specs: Vec<_> = profile_matrix(Profile::Smoke)
        .into_iter()
        .filter(|s| s.workload.name() == "treeadd")
        .collect();
    let results = run_specs(&specs, 2);
    let report = SweepReport::from_results("smoke", &results);
    let cycles = |key: &str| report.job(key).expect(key).counters["cycles.total"];
    let (mips, ccured, cheri) =
        (cycles("treeadd/mips/tag8"), cycles("treeadd/ccured/tag8"), cycles("treeadd/cheri/tag8"));
    assert!(mips < cheri, "CHERI must cost something ({mips} vs {cheri})");
    assert!(cheri < ccured, "CHERI ({cheri}) must beat CCured ({ccured})");
}
