//! End-to-end snapshot round-trips at the sweep level: for every
//! workload, interrupting a job mid-run, snapshotting (through the JSON
//! codec), restoring onto a resurrected kernel, and finishing must
//! produce a [`JobRecord`] byte-identical to the uninterrupted run —
//! and the final machine+kernel state must hash identically — with the
//! simulator's block cache on AND off on the resumed side.

use beri_sim::MachineConfig;
use cheri_olden::dsl::BenchSession;
use cheri_olden::OldenParams;
use cheri_snap::Snapshot;
use cheri_sweep::{JobRecord, JobResult, JobSpec, StrategyKind};
use cheri_work::Workload;

/// Snapshot after `k` retired instructions (through JSON), resume with
/// `bc_resume`, finish, and compare against the straight-through run.
fn check_workload(workload: Workload, k: u64, bc_resume: bool) {
    let spec = JobSpec::new(workload, StrategyKind::Cheri256, OldenParams::scaled());
    let cfg = MachineConfig { block_cache: true, ..spec.machine_config() };
    let strategy = spec.strategy.strategy();

    let module = workload.module(&spec.params);

    // Uninterrupted run.
    let mut straight =
        BenchSession::start_module(&module, strategy.as_ref(), cfg.clone(), None).unwrap();
    let run = straight.run_to_completion().unwrap();
    let want_record = JobRecord::from_result(&JobResult { spec, run });
    let want_hash = straight.snapshot().state_hash();

    // Interrupted at instruction k, snapshot through the JSON codec.
    let mut first = BenchSession::start_module(&module, strategy.as_ref(), cfg, None).unwrap();
    assert!(first.run_for(k).unwrap().is_none(), "{}: k={k} must stop mid-run", workload.name());
    let json = first.snapshot().to_json();
    let snap = Snapshot::from_json(&json).unwrap();

    let mut second = BenchSession::resume(&snap, spec.strategy.name(), bc_resume).unwrap();
    let run = second.run_to_completion().unwrap();
    let got_record = JobRecord::from_result(&JobResult { spec, run });
    let got_hash = second.snapshot().state_hash();

    assert_eq!(
        want_record,
        got_record,
        "{} (bc_resume={bc_resume}, k={k}): job record diverged",
        workload.name()
    );
    assert_eq!(
        want_hash,
        got_hash,
        "{} (bc_resume={bc_resume}, k={k}): final state diverged",
        workload.name()
    );
}

#[test]
fn treeadd_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Treeadd, 50_000, true);
    check_workload(Workload::Treeadd, 50_000, false);
}

#[test]
fn bisort_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Bisort, 50_000, true);
    check_workload(Workload::Bisort, 50_000, false);
}

#[test]
fn mst_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Mst, 50_000, true);
    check_workload(Workload::Mst, 50_000, false);
}

#[test]
fn perimeter_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Perimeter, 50_000, true);
    check_workload(Workload::Perimeter, 50_000, false);
}

#[test]
fn vmloop_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Vmloop, 50_000, true);
    check_workload(Workload::Vmloop, 50_000, false);
}

#[test]
fn allocstress_roundtrips_with_block_cache_on_and_off() {
    check_workload(Workload::Allocstress, 50_000, true);
    check_workload(Workload::Allocstress, 50_000, false);
}

/// The warm-start path itself: `run_spec_split` captures a snapshot at
/// the phase-2 boundary and `run_spec_resume` finishes from it with a
/// byte-identical record.
#[test]
fn warm_start_split_and_resume_agree() {
    let spec = JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, OldenParams::scaled());
    let cfg = spec.machine_config();
    let (cold, snap) = cheri_sweep::run_spec_split(&spec, cfg.clone()).unwrap();
    let snap = snap.expect("treeadd reaches phase 2");
    let warm = cheri_sweep::run_spec_resume(&spec, &snap, cfg.block_cache).unwrap();
    let cold_rec = JobRecord::from_result(&cold);
    let warm_rec = JobRecord::from_result(&warm);
    assert_eq!(cold_rec, warm_rec, "warm-started record must equal the cold run");
}
