//! End-to-end validation of the guest profiler over real matrix jobs:
//! a profiled run must be byte-identical to a plain run of the same
//! spec, the per-function attribution must sum to the job's global
//! cache-stat counters, the folded stacks must account for every
//! retired instruction, and the timeline JSON must parse with
//! monotonically ordered span timestamps.

use cheri_olden::OldenParams;
use cheri_sweep::{
    run_spec_profiled, run_spec_with_config, JobRecord, JobSpec, StrategyKind, SweepReport,
};
use cheri_trace::json::{self, Json};
use cheri_trace::names;
use cheri_work::Workload;

fn specs() -> Vec<JobSpec> {
    let params = OldenParams::scaled();
    vec![
        JobSpec::new(Workload::Treeadd, StrategyKind::Mips, params),
        JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, params),
        JobSpec::new(Workload::Mst, StrategyKind::Cheri128, params),
        JobSpec::new(Workload::Perimeter, StrategyKind::Ccured, params),
        JobSpec::new(Workload::Vmloop, StrategyKind::Cheri256, params),
        JobSpec::new(Workload::Allocstress, StrategyKind::Cheri128, params),
    ]
}

#[test]
fn profiled_runs_are_byte_identical_to_plain_runs() {
    for spec in specs() {
        let plain = run_spec_with_config(&spec, spec.machine_config(), None).unwrap();
        let (profiled, _) = run_spec_profiled(&spec, spec.machine_config()).unwrap();
        let a = SweepReport::from_results("test", &[plain]);
        let b = SweepReport::from_results("test", &[profiled]);
        assert_eq!(a.to_json(), b.to_json(), "{}: profiling must be transparent", spec.key());
    }
}

#[test]
fn per_function_attribution_sums_to_global_counters() {
    for spec in specs() {
        let (result, profile) = run_spec_profiled(&spec, spec.machine_config()).unwrap();
        let record = JobRecord::from_result(&result);
        let global = |name: &str| record.counters.get(name).copied().unwrap_or(0);
        let sum = |f: fn(&cheri_prof::PcCounters) -> u64| -> u64 {
            profile.functions.iter().map(|func| f(&func.counters)).sum()
        };
        let key = spec.key();
        assert_eq!(sum(|c| c.retired), global(names::INSTRUCTIONS), "{key}: retired");
        assert_eq!(sum(|c| c.l1i_misses), global(names::L1I_MISSES), "{key}: l1i misses");
        assert_eq!(sum(|c| c.l1d_misses), global(names::L1D_MISSES), "{key}: l1d misses");
        assert_eq!(sum(|c| c.l2_misses), global(names::L2_MISSES), "{key}: l2 misses");
        assert_eq!(sum(|c| c.tag_misses), global(names::TAG_CACHE_MISSES), "{key}: tag misses");
        assert_eq!(sum(|c| c.tlb_refills), global(names::TLB_REFILLS), "{key}: tlb refills");
        assert_eq!(
            sum(|c| c.cap_exceptions),
            global(names::CAP_EXCEPTIONS),
            "{key}: cap exceptions"
        );
        assert_eq!(profile.total.retired, global(names::INSTRUCTIONS), "{key}: report total");
    }
}

#[test]
fn folded_stacks_account_for_every_retired_instruction() {
    for spec in specs() {
        let (_, profile) = run_spec_profiled(&spec, spec.machine_config()).unwrap();
        let folded: u64 = profile.folded.iter().map(|(_, n)| n).sum();
        assert_eq!(folded, profile.total.retired, "{}", spec.key());
        // Every line of the rendered output is "stack count".
        for line in profile.folded_output().lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line format");
            assert!(stack.starts_with("root"), "stacks are rooted: {line}");
            count.parse::<u64>().expect("folded count");
        }
    }
}

#[test]
fn timeline_json_parses_with_monotone_span_timestamps() {
    for spec in specs() {
        let (_, profile) = run_spec_profiled(&spec, spec.machine_config()).unwrap();
        let doc = json::parse(&profile.timeline_json()).expect("timeline JSON parses");
        let obj = doc.as_obj().expect("timeline is an object");
        let events = obj.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        assert!(!events.is_empty(), "{}: timeline has events", spec.key());
        let mut last_ts = 0;
        let mut depth: i64 = 0;
        for ev in events {
            let ev = ev.as_obj().expect("event object");
            let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
            assert!(ts >= last_ts, "{}: span timestamps must be monotone", spec.key());
            last_ts = ts;
            match ev.get("ph").and_then(Json::as_str).expect("ph") {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "{}: unbalanced span end", spec.key());
                }
                "X" | "i" => {}
                other => panic!("{}: unexpected phase {other}", spec.key()),
            }
        }
        assert_eq!(depth, 0, "{}: every span must close", spec.key());
    }
}
