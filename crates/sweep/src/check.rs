//! The regression gate: mechanical comparison of a sweep report
//! against a committed golden baseline, with a per-metric tolerance
//! policy.
//!
//! Tolerance policy (documented in README/DESIGN):
//!
//! * **Architectural event counts** (instructions, loads/stores,
//!   syscalls, exceptions, checksums, heap bytes, pages) are facts
//!   about the executed program — they must match **exactly**. A drift
//!   here is a semantic change in the compiler, OS, or ISA.
//! * **Microarchitectural outcomes** (cycles, cache/TLB/tag traffic)
//!   may move within **0.5% relative** — a replacement-policy tweak or
//!   latency recalibration shouldn't force a re-bless.
//! * **Derived hit rates** (stored in basis points) may move within
//!   **50 bp absolute**.
//!
//! Intentional changes are re-blessed with `xsweep --bless`, which
//! rewrites the baseline; the diff then goes through review like any
//! other code change.

use crate::report::SweepReport;

/// A per-metric allowance: `|current − baseline|` must not exceed
/// `max(abs, baseline × rel_bp / 10⁴)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tolerance {
    /// Absolute allowance.
    pub abs: u64,
    /// Relative allowance in basis points of the baseline value.
    pub rel_bp: u64,
}

impl Tolerance {
    /// No drift allowed.
    pub const EXACT: Tolerance = Tolerance { abs: 0, rel_bp: 0 };

    /// The absolute allowance at a given baseline value.
    #[must_use]
    pub fn allowed(self, baseline: u64) -> u64 {
        self.abs.max(baseline.saturating_mul(self.rel_bp) / 10_000)
    }
}

/// Exact-match metrics: architectural event counts whose drift means
/// the program itself changed.
const EXACT_METRICS: [&str; 11] = [
    "sim.instructions",
    "sim.cap_instructions",
    "sim.exceptions",
    "cap.exceptions",
    "mem.loads",
    "mem.stores",
    "mem.cap_loads",
    "mem.cap_stores",
    "os.syscalls",
    "os.pages_touched",
    "heap.bytes_used",
];

/// The tolerance for one metric, per the policy above.
#[must_use]
pub fn tolerance_for(metric: &str) -> Tolerance {
    if EXACT_METRICS.contains(&metric) {
        Tolerance::EXACT
    } else if metric.ends_with("_rate_bp") {
        Tolerance { abs: 50, rel_bp: 0 }
    } else {
        // cycles.*, cache.*, tlb.*, tag.*, dram.*: 0.5% relative.
        Tolerance { abs: 0, rel_bp: 50 }
    }
}

/// One gate violation, rendered into the drift table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Drift {
    /// The job key, or `<report>` for report-level mismatches.
    pub job: String,
    /// The drifting metric (or a structural label such as
    /// `<missing job>`).
    pub metric: String,
    /// Baseline-side value, rendered.
    pub baseline: String,
    /// Current-side value, rendered.
    pub current: String,
    /// The allowance that was exceeded, rendered.
    pub allowed: String,
    /// Relative drift, rendered as basis points plus a percentage
    /// (`+62bp (+0.62%)`), or `-` for structural rows.
    pub drift: String,
}

impl Drift {
    fn structural(job: &str, metric: &str, baseline: &str, current: &str) -> Drift {
        Drift {
            job: job.to_string(),
            metric: metric.to_string(),
            baseline: baseline.to_string(),
            current: current.to_string(),
            allowed: "-".to_string(),
            drift: "-".to_string(),
        }
    }
}

/// Renders `baseline → current` relative drift as signed basis points
/// with the equivalent percentage, so gate failures read without a
/// calculator. A zero baseline has no relative scale and renders `-`.
fn rel_drift(baseline: u64, current: u64) -> String {
    if baseline == 0 {
        return "-".to_string();
    }
    let sign = if current >= baseline { "+" } else { "-" };
    let bp = u128::from(current.abs_diff(baseline)) * 10_000 / u128::from(baseline);
    format!("{sign}{bp}bp ({sign}{}.{:02}%)", bp / 100, bp % 100)
}

/// Diffs `current` against `baseline`, returning every violation of
/// the tolerance policy (empty = gate passes). Job sets, checksum
/// lists, and metric name sets must match structurally; matched
/// metrics are compared per [`tolerance_for`].
#[must_use]
pub fn check_reports(baseline: &SweepReport, current: &SweepReport) -> Vec<Drift> {
    let mut drifts = Vec::new();
    if baseline.profile != current.profile {
        drifts.push(Drift::structural("<report>", "profile", &baseline.profile, &current.profile));
    }
    for base_job in &baseline.jobs {
        let Some(cur_job) = current.job(&base_job.key) else {
            drifts.push(Drift::structural(&base_job.key, "<missing job>", "present", "absent"));
            continue;
        };
        if base_job.checksums != cur_job.checksums {
            drifts.push(Drift::structural(
                &base_job.key,
                "checksums",
                &format!("{:?}", base_job.checksums),
                &format!("{:?}", cur_job.checksums),
            ));
        }
        for (metric, &base) in &base_job.counters {
            let Some(&cur) = cur_job.counters.get(metric) else {
                drifts.push(Drift::structural(&base_job.key, metric, &base.to_string(), "absent"));
                continue;
            };
            let allowed = tolerance_for(metric).allowed(base);
            if cur.abs_diff(base) > allowed {
                drifts.push(Drift {
                    job: base_job.key.clone(),
                    metric: metric.clone(),
                    baseline: base.to_string(),
                    current: cur.to_string(),
                    allowed: format!("±{allowed}"),
                    drift: rel_drift(base, cur),
                });
            }
        }
        for metric in cur_job.counters.keys() {
            if !base_job.counters.contains_key(metric) {
                drifts.push(Drift::structural(&base_job.key, metric, "absent", "present"));
            }
        }
    }
    for cur_job in &current.jobs {
        if baseline.job(&cur_job.key).is_none() {
            drifts.push(Drift::structural(&cur_job.key, "<new job>", "absent", "present"));
        }
    }
    drifts
}

/// Renders drifts as an aligned, readable table (the gate's failure
/// output).
#[must_use]
pub fn render_drifts(drifts: &[Drift]) -> String {
    let col = |f: fn(&Drift) -> usize, min: usize| -> usize {
        drifts.iter().map(f).max().unwrap_or(min).max(min)
    };
    let jw = col(|d| d.job.len(), 3);
    let mw = col(|d| d.metric.len(), 6);
    let bw = col(|d| d.baseline.len(), 8);
    let cw = col(|d| d.current.len(), 7);
    let dw = col(|d| d.drift.len(), 5);
    let mut out = format!(
        "{:<jw$}  {:<mw$}  {:>bw$}  {:>cw$}  {:>9}  {:>dw$}\n",
        "job", "metric", "baseline", "current", "allowed", "drift"
    );
    out.push_str(&format!(
        "{:-<jw$}  {:-<mw$}  {:->bw$}  {:->cw$}  {:->9}  {:->dw$}\n",
        "", "", "", "", "", ""
    ));
    for d in drifts {
        out.push_str(&format!(
            "{:<jw$}  {:<mw$}  {:>bw$}  {:>cw$}  {:>9}  {:>dw$}\n",
            d.job, d.metric, d.baseline, d.current, d.allowed, d.drift
        ));
    }
    out
}

/// Total number of gated comparisons a passing check performed (for
/// the gate's success message): one per checksum list plus one per
/// baseline counter.
#[must_use]
pub fn comparisons(baseline: &SweepReport) -> usize {
    baseline.jobs.iter().map(|j| 1 + j.counters.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::JobRecord;
    use std::collections::BTreeMap;

    fn record(key: &str, metric: &str, value: u64) -> JobRecord {
        let mut counters = BTreeMap::new();
        counters.insert(metric.to_string(), value);
        JobRecord {
            key: key.to_string(),
            workload: "treeadd".into(),
            strategy: "cheri".into(),
            cap_bits: 256,
            tag_cache_kb: 8,
            checksums: vec![42],
            counters,
        }
    }

    fn report(jobs: Vec<JobRecord>) -> SweepReport {
        SweepReport { profile: "smoke".into(), jobs }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![record("a/cheri/tag8", "sim.instructions", 1000)]);
        assert!(check_reports(&r, &r).is_empty());
    }

    #[test]
    fn exact_metric_rejects_off_by_one() {
        let base = report(vec![record("a/cheri/tag8", "sim.instructions", 1000)]);
        let cur = report(vec![record("a/cheri/tag8", "sim.instructions", 1001)]);
        let drifts = check_reports(&base, &cur);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "sim.instructions");
        assert_eq!(drifts[0].allowed, "±0");
    }

    #[test]
    fn relative_metric_allows_half_percent() {
        let base = report(vec![record("a/cheri/tag8", "cycles.total", 100_000)]);
        let within = report(vec![record("a/cheri/tag8", "cycles.total", 100_400)]);
        assert!(check_reports(&base, &within).is_empty());
        let beyond = report(vec![record("a/cheri/tag8", "cycles.total", 100_600)]);
        let drifts = check_reports(&base, &beyond);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].allowed, "±500");
    }

    #[test]
    fn rate_metric_allows_50bp() {
        let base = report(vec![record("a/cheri/tag8", "tag.cache.hit_rate_bp", 9900)]);
        let within = report(vec![record("a/cheri/tag8", "tag.cache.hit_rate_bp", 9851)]);
        assert!(check_reports(&base, &within).is_empty());
        let beyond = report(vec![record("a/cheri/tag8", "tag.cache.hit_rate_bp", 9849)]);
        assert_eq!(check_reports(&base, &beyond).len(), 1);
    }

    #[test]
    fn structural_mismatches_are_drifts() {
        let base = report(vec![record("a/cheri/tag8", "sim.instructions", 1)]);
        let cur = report(vec![record("b/cheri/tag8", "sim.instructions", 1)]);
        let drifts = check_reports(&base, &cur);
        let metrics: Vec<&str> = drifts.iter().map(|d| d.metric.as_str()).collect();
        assert!(metrics.contains(&"<missing job>"));
        assert!(metrics.contains(&"<new job>"));
    }

    #[test]
    fn checksum_mismatch_is_a_drift() {
        let base = report(vec![record("a/cheri/tag8", "sim.instructions", 1)]);
        let mut cur = base.clone();
        cur.jobs[0].checksums = vec![43];
        let drifts = check_reports(&base, &cur);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "checksums");
    }

    #[test]
    fn drift_table_renders_all_rows() {
        let base = report(vec![record("a/cheri/tag8", "sim.instructions", 1000)]);
        let cur = report(vec![record("a/cheri/tag8", "sim.instructions", 2000)]);
        let table = render_drifts(&check_reports(&base, &cur));
        assert!(table.contains("sim.instructions"));
        assert!(table.contains("1000"));
        assert!(table.contains("2000"));
        assert!(table.contains("drift"));
        assert!(table.contains("+10000bp (+100.00%)"));
    }

    #[test]
    fn relative_drift_renders_bp_and_percent() {
        assert_eq!(rel_drift(100_000, 100_620), "+62bp (+0.62%)");
        assert_eq!(rel_drift(100_000, 99_000), "-100bp (-1.00%)");
        assert_eq!(rel_drift(1000, 1000), "+0bp (+0.00%)");
        assert_eq!(rel_drift(0, 5), "-");
    }

    #[test]
    fn structural_rows_have_no_relative_drift() {
        let base = report(vec![record("a/cheri/tag8", "sim.instructions", 1)]);
        let cur = report(vec![record("b/cheri/tag8", "sim.instructions", 1)]);
        for d in check_reports(&base, &cur) {
            assert_eq!(d.drift, "-");
        }
    }
}
