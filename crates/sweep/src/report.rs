//! The sweep report: every job's architectural counters as a named,
//! versioned, machine-checkable datum.
//!
//! The serialised form is deliberately integer-only (derived rates are
//! stored in basis points) and emitted from sorted maps in spec order,
//! so a report is **bit-identical** regardless of thread count,
//! scheduling, or host — the determinism test asserts exactly this.
//! Wall-clock times never appear in a report; baselines hold
//! architectural counters only (see DESIGN.md).

use crate::matrix::JobResult;
use cheri_trace::json::{self, Json, JsonWriter};
use cheri_trace::names;
use std::collections::BTreeMap;

/// Bumped when the report layout changes incompatibly (a gate run
/// refuses to compare across schema versions).
pub const SCHEMA_VERSION: u64 = 1;

/// The architectural counters every job record carries, drawn from the
/// unified [`cheri_trace`] metrics snapshot. Cycle phase totals, heap
/// use, and derived hit rates are added on top under `cycles.*`,
/// `heap.bytes_used`, and `*_rate_bp`.
pub const ARCH_COUNTERS: [&str; 23] = [
    names::INSTRUCTIONS,
    names::CAP_INSTRUCTIONS,
    "sim.exceptions",
    names::CAP_EXCEPTIONS,
    names::LOADS,
    names::STORES,
    "mem.cap_loads",
    "mem.cap_stores",
    names::L1I_HITS,
    names::L1I_MISSES,
    names::L1D_HITS,
    names::L1D_MISSES,
    names::L2_HITS,
    names::L2_MISSES,
    names::TLB_REFILLS,
    names::TAG_TABLE_READS,
    names::TAG_TABLE_WRITES,
    names::TAG_CACHE_HITS,
    names::TAG_CACHE_MISSES,
    "dram.accesses",
    "dram.bytes",
    names::SYSCALLS,
    "os.pages_touched",
];

/// Integer hit rate in basis points (hits / (hits + misses) × 10⁴);
/// 10000 for an idle unit so an unused tag cache reads as "no misses".
#[must_use]
pub fn hit_rate_bp(hits: u64, misses: u64) -> u64 {
    hits.saturating_mul(10000).checked_div(hits + misses).unwrap_or(10000)
}

/// One job's report entry: the matrix coordinates plus its counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// The unique job key (`workload/strategy/tagNN[/pVV]`).
    pub key: String,
    /// Workload name.
    pub workload: String,
    /// Strategy name.
    pub strategy: String,
    /// Capability width in bits (0 for non-capability code).
    pub cap_bits: u64,
    /// Tag-cache capacity in KB.
    pub tag_cache_kb: u64,
    /// The workload's printed checksums (exact-match gated).
    pub checksums: Vec<u64>,
    /// Architectural counters, each gated per the tolerance policy.
    pub counters: BTreeMap<String, u64>,
}

impl JobRecord {
    /// Extracts the record from a completed job.
    #[must_use]
    pub fn from_result(r: &JobResult) -> JobRecord {
        let m = &r.run.outcome.metrics;
        let mut counters = BTreeMap::new();
        for name in ARCH_COUNTERS {
            counters.insert(name.to_string(), m.counter(name));
        }
        counters.insert("cycles.alloc".into(), r.run.alloc.cycles);
        counters.insert("cycles.compute".into(), r.run.compute.cycles);
        counters.insert("cycles.total".into(), r.run.total_cycles());
        counters.insert("heap.bytes_used".into(), r.run.heap_used);
        counters.insert(
            "cache.l1d.hit_rate_bp".into(),
            hit_rate_bp(m.counter(names::L1D_HITS), m.counter(names::L1D_MISSES)),
        );
        counters.insert(
            "cache.l2.hit_rate_bp".into(),
            hit_rate_bp(m.counter(names::L2_HITS), m.counter(names::L2_MISSES)),
        );
        counters.insert(
            "tag.cache.hit_rate_bp".into(),
            hit_rate_bp(m.counter(names::TAG_CACHE_HITS), m.counter(names::TAG_CACHE_MISSES)),
        );
        JobRecord {
            key: r.spec.key(),
            workload: r.spec.workload.name().to_string(),
            strategy: r.spec.strategy.name().to_string(),
            cap_bits: r.spec.strategy.cap_bits(),
            tag_cache_kb: r.spec.tag_cache_kb as u64,
            checksums: r.run.checksums().to_vec(),
            counters,
        }
    }

    /// Serialises the record exactly as it appears on its line of a
    /// [`SweepReport`] — also the payload of `cheri-serve`'s
    /// single-job `record` events, so a served record is byte-identical
    /// to the corresponding report line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.str_field("key", &self.key);
        w.str_field("workload", &self.workload);
        w.str_field("strategy", &self.strategy);
        w.u64_field("cap_bits", self.cap_bits);
        w.u64_field("tag_cache_kb", self.tag_cache_kb);
        let sums: Vec<String> = self.checksums.iter().map(u64::to_string).collect();
        w.raw_field("checksums", &format!("[{}]", sums.join(",")));
        let mut c = JsonWriter::object();
        for (k, v) in &self.counters {
            c.u64_field(k, *v);
        }
        w.raw_field("counters", &c.close());
        w.close()
    }

    /// Parses one serialised record (the inverse of
    /// [`JobRecord::to_json`]).
    ///
    /// # Errors
    ///
    /// Describes the first malformation found.
    pub fn from_json(v: &Json) -> Result<JobRecord, String> {
        let obj = v.as_obj().ok_or("job record must be an object")?;
        let get_str = |k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("job record missing string field '{k}'"))
        };
        let get_u64 = |k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("job record missing integer field '{k}'"))
        };
        let mut checksums = Vec::new();
        for v in obj.get("checksums").and_then(Json::as_arr).ok_or("missing checksums")? {
            checksums.push(v.as_u64().ok_or("checksum must be a u64")?);
        }
        let mut counters = BTreeMap::new();
        for (k, v) in obj.get("counters").and_then(Json::as_obj).ok_or("missing counters")? {
            counters.insert(
                k.clone(),
                v.as_u64().ok_or_else(|| format!("counter '{k}' must be a u64"))?,
            );
        }
        Ok(JobRecord {
            key: get_str("key")?,
            workload: get_str("workload")?,
            strategy: get_str("strategy")?,
            cap_bits: get_u64("cap_bits")?,
            tag_cache_kb: get_u64("tag_cache_kb")?,
            checksums,
            counters,
        })
    }
}

/// A full sweep: the profile it ran plus one record per job, in
/// canonical matrix order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepReport {
    /// Profile name (`smoke`, `full`, `paper`).
    pub profile: String,
    /// Job records in spec order.
    pub jobs: Vec<JobRecord>,
}

impl SweepReport {
    /// Builds the report from completed jobs.
    #[must_use]
    pub fn from_results(profile: &str, results: &[JobResult]) -> SweepReport {
        SweepReport {
            profile: profile.to_string(),
            jobs: results.iter().map(JobRecord::from_result).collect(),
        }
    }

    /// Looks a job up by key.
    #[must_use]
    pub fn job(&self, key: &str) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.key == key)
    }

    /// Serialises the report: one job per line inside a stable wrapper,
    /// so baselines diff line-per-job under git.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut head = JsonWriter::object();
        head.u64_field("schema", SCHEMA_VERSION);
        head.str_field("profile", &self.profile);
        let head = head.close();
        // Reopen the closed object to splice in the jobs array with
        // one-record-per-line formatting.
        out.push_str(&head[..head.len() - 1]);
        out.push_str(",\"jobs\":[\n");
        for (i, job) in self.jobs.iter().enumerate() {
            out.push_str(&job.to_json());
            if i + 1 != self.jobs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a serialised report, rejecting other schema versions.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation found.
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("report must be an object")?;
        let schema = obj.get("schema").and_then(Json::as_u64).ok_or("missing schema version")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("schema version {schema} (this build reads {SCHEMA_VERSION})"));
        }
        let profile =
            obj.get("profile").and_then(Json::as_str).ok_or("missing profile")?.to_string();
        let mut jobs = Vec::new();
        for j in obj.get("jobs").and_then(Json::as_arr).ok_or("missing jobs")? {
            jobs.push(JobRecord::from_json(j)?);
        }
        Ok(SweepReport { profile, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(key: &str, instructions: u64) -> JobRecord {
        let mut counters = BTreeMap::new();
        counters.insert(names::INSTRUCTIONS.to_string(), instructions);
        counters.insert("cycles.total".to_string(), instructions * 2);
        counters.insert("cache.l1d.hit_rate_bp".to_string(), 9876);
        JobRecord {
            key: key.to_string(),
            workload: key.split('/').next().unwrap_or("w").to_string(),
            strategy: "cheri".to_string(),
            cap_bits: 256,
            tag_cache_kb: 8,
            checksums: vec![1, 2, 3],
            counters,
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let report = SweepReport {
            profile: "smoke".to_string(),
            jobs: vec![
                sample_record("treeadd/cheri/tag8", 1000),
                sample_record("mst/cheri/tag8", 2000),
            ],
        };
        let text = report.to_json();
        let back = SweepReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // One job per line between the wrapper lines.
        assert_eq!(text.lines().count(), 1 + report.jobs.len() + 1);
    }

    #[test]
    fn rejects_future_schema() {
        let text = "{\"schema\":999,\"profile\":\"smoke\",\"jobs\":[]}";
        let err = SweepReport::from_json(text).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn hit_rate_basis_points() {
        assert_eq!(hit_rate_bp(0, 0), 10000);
        assert_eq!(hit_rate_bp(999, 1), 9990);
        assert_eq!(hit_rate_bp(1, 3), 2500);
    }
}
