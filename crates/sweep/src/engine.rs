//! A deterministic work-stealing executor for independent simulator
//! jobs.
//!
//! Every job owns its own `Machine` (the simulator is single-threaded
//! by design), so the only shared state is the job queue itself: an
//! atomic cursor over the index space that idle workers steal the next
//! unclaimed index from. Results travel back over a channel tagged with
//! their index and are re-assembled in index order, so the output is
//! identical regardless of thread count or scheduling — the property
//! the sweep determinism test pins down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The host's available parallelism (≥ 1), the default for `--jobs`.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..jobs)` across `threads` workers and returns the results
/// in index order.
///
/// With `threads <= 1` the jobs run inline on the calling thread (no
/// spawn, no channel) — the parallel and serial paths must and do
/// produce identical output. A panicking job propagates out of the
/// scope with its original payload.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.max(1));
    if threads == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs || tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    slots.into_iter().map(|s| s.expect("every job index completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = run_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(7);
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(run_indexed(37, threads, f), run_indexed(37, 1, f), "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn workers_share_the_queue() {
        // Every index is claimed exactly once even under contention.
        let claims = AtomicUsize::new(0);
        let out = run_indexed(500, 8, |i| {
            claims.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(claims.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }
}
