//! The canonical experiment matrix.
//!
//! Every harness that iterates workloads × pointer strategies — the
//! Figure 4/5 reproductions, the three ablations, and the `xsweep`
//! runner — draws its axes from this module, so the workload lists,
//! strategy lists, and iteration orders cannot drift apart between
//! binaries (they used to be duplicated inline in fig4 and fig5).

use beri_sim::MachineConfig;
use cheri_cc::strategy::{CapPtr, LegacyPtr, PtrStrategy, SoftFatPtr};
use cheri_olden::dsl::{BenchRun, BenchSession};
use cheri_olden::OldenParams;
use cheri_trace::{marker, SharedSink};
use cheri_work::{machine_config, Workload};

use crate::engine;

/// The default tag-cache capacity in KB (Section 4.2's 8 KB).
pub const DEFAULT_TAG_CACHE_KB: usize = 8;

/// One point on the pointer-strategy axis. The capability width
/// (256-bit research / 128-bit production format) is part of the
/// strategy, because it changes both the compiled code and the machine
/// configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Unmodified MIPS code (the baseline).
    Mips,
    /// CCured-style software fat pointers, checked everywhere.
    Ccured,
    /// Software fat pointers with straight-line check elision (§8).
    CcuredElide,
    /// CHERI capabilities, 256-bit research format.
    Cheri256,
    /// CHERI capabilities, 128-bit production format.
    Cheri128,
}

impl StrategyKind {
    /// Every strategy, in canonical report order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Mips,
        StrategyKind::Ccured,
        StrategyKind::CcuredElide,
        StrategyKind::Cheri256,
        StrategyKind::Cheri128,
    ];

    /// The canonical name (matches `PtrStrategy::name`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Mips => "mips",
            StrategyKind::Ccured => "ccured",
            StrategyKind::CcuredElide => "ccured-elide",
            StrategyKind::Cheri256 => "cheri",
            StrategyKind::Cheri128 => "cheri128",
        }
    }

    /// Resolves a strategy by name, accepting the aliases the
    /// harnesses have always taken on the command line.
    #[must_use]
    pub fn parse(name: &str) -> Option<StrategyKind> {
        Some(match name {
            "mips" | "legacy" => StrategyKind::Mips,
            "ccured" | "soft" => StrategyKind::Ccured,
            "ccured-elide" | "elide" => StrategyKind::CcuredElide,
            "cheri" | "cap" | "c256" => StrategyKind::Cheri256,
            "cheri128" | "c128" => StrategyKind::Cheri128,
            _ => return None,
        })
    }

    /// Instantiates the compiler strategy.
    #[must_use]
    pub fn strategy(self) -> Box<dyn PtrStrategy> {
        match self {
            StrategyKind::Mips => Box::new(LegacyPtr),
            StrategyKind::Ccured => Box::new(SoftFatPtr::checked()),
            StrategyKind::CcuredElide => Box::new(SoftFatPtr::eliding()),
            StrategyKind::Cheri256 => Box::new(CapPtr::c256()),
            StrategyKind::Cheri128 => Box::new(CapPtr::c128()),
        }
    }

    /// Capability width in bits (0 for non-capability code).
    #[must_use]
    pub fn cap_bits(self) -> u64 {
        match self {
            StrategyKind::Cheri256 => 256,
            StrategyKind::Cheri128 => 128,
            _ => 0,
        }
    }

    /// Whether this strategy exercises the capability coprocessor (and
    /// therefore the tag-cache axis).
    #[must_use]
    pub fn is_capability(self) -> bool {
        self.cap_bits() != 0
    }
}

/// Figure 4's three compilation modes, baseline first.
pub const FIGURE4_STRATEGIES: [StrategyKind; 3] =
    [StrategyKind::Mips, StrategyKind::Ccured, StrategyKind::Cheri256];

/// Figure 5's heap-size sweep pair.
pub const HEAPSIZE_STRATEGIES: [StrategyKind; 2] = [StrategyKind::Mips, StrategyKind::Cheri256];

/// The capability-width ablation triple.
pub const CAPWIDTH_STRATEGIES: [StrategyKind; 3] =
    [StrategyKind::Mips, StrategyKind::Cheri256, StrategyKind::Cheri128];

/// The check-elision ablation triple.
pub const ELISION_STRATEGIES: [StrategyKind; 3] =
    [StrategyKind::Mips, StrategyKind::Ccured, StrategyKind::CcuredElide];

/// The §4.2 tag-cache size ablation axis, in KB (0 = no tag cache).
pub const TAG_ABLATION_KB: [usize; 7] = [0, 1, 2, 4, 8, 16, 64];

/// Figure 5's sweep points for one workload: the parameter values
/// whose *baseline* heaps span roughly 4 KB .. 1024 KB. The points live
/// in the workload registry ([`cheri_work::WorkloadInfo::sweep_points`]);
/// this re-export keeps the historical call-site spelling.
#[must_use]
pub fn heapsize_sweep(workload: Workload) -> Vec<(u32, OldenParams)> {
    workload.sweep_points()
}

/// One fully specified experiment: a workload at a problem size, a
/// pointer strategy, and a machine tag-cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct JobSpec {
    /// The guest workload (Olden kernel or runtime-system workload).
    pub workload: Workload,
    /// The pointer strategy (includes the capability width).
    pub strategy: StrategyKind,
    /// Tag-cache capacity in KB (0 = none).
    pub tag_cache_kb: usize,
    /// Problem sizes.
    pub params: OldenParams,
    /// The sweep-point label for parameterised sweeps (Figure 5's
    /// x-axis value); `None` for single-point experiments.
    pub variant: Option<u32>,
}

impl JobSpec {
    /// A spec at the default tag-cache size with no variant label.
    #[must_use]
    pub fn new(workload: Workload, strategy: StrategyKind, params: OldenParams) -> JobSpec {
        JobSpec { workload, strategy, tag_cache_kb: DEFAULT_TAG_CACHE_KB, params, variant: None }
    }

    /// Resolves a spec from its named parts — the one constructor every
    /// by-name surface (`profbin` flags, the `cheri-serve` wire
    /// protocol, `serveload --job`) goes through, so a job spelled the
    /// same way always means the same experiment. Returns `None` if the
    /// workload or strategy name is unknown.
    #[must_use]
    pub fn from_parts(
        workload: &str,
        strategy: &str,
        tag_cache_kb: usize,
        params: OldenParams,
    ) -> Option<JobSpec> {
        let workload = Workload::parse(workload)?;
        let strategy = StrategyKind::parse(strategy)?;
        Some(JobSpec { workload, strategy, tag_cache_kb, params, variant: None })
    }

    /// The canonical serialization of this job's *complete*
    /// configuration: every field that influences the result (workload,
    /// strategy, tag-cache size, variant label, and all problem-size
    /// parameters) in a fixed order with fixed formatting. Two specs
    /// describe the same experiment iff their canonical forms are
    /// byte-equal — this is the config half of the `cheri-serve`
    /// result-cache key, so requests that spell the same job with
    /// different JSON field order or whitespace dedup onto one entry.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        use cheri_trace::json::JsonWriter;
        let mut w = JsonWriter::object();
        w.str_field("workload", self.workload.name());
        w.str_field("strategy", self.strategy.name());
        w.u64_field("tag_cache_kb", self.tag_cache_kb as u64);
        match self.variant {
            Some(v) => w.u64_field("variant", u64::from(v)),
            None => w.raw_field("variant", "null"),
        }
        w.raw_field("params", &self.params.canonical_json());
        w.close()
    }

    /// The unique report key: `workload/strategy/tagNN[/pVV]`.
    #[must_use]
    pub fn key(&self) -> String {
        let mut k =
            format!("{}/{}/tag{}", self.workload.name(), self.strategy.name(), self.tag_cache_kb);
        if let Some(v) = self.variant {
            use std::fmt::Write as _;
            let _ = write!(k, "/p{v}");
        }
        k
    }

    /// The trace-marker label, matching the historical harness format:
    /// `workload/strategy` or `workload/strategy/variant`.
    #[must_use]
    pub fn marker_label(&self) -> String {
        match self.variant {
            Some(v) => format!("{}/{}/{}", self.workload.name(), self.strategy.name(), v),
            None => format!("{}/{}", self.workload.name(), self.strategy.name()),
        }
    }

    /// The machine configuration for this job: sized for the workload,
    /// capability format matching the strategy, tag cache as specified.
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let strategy = self.strategy.strategy();
        MachineConfig {
            tag_cache_bytes: self.tag_cache_kb * 1024,
            ..machine_config(self.workload, &self.params, strategy.as_ref())
        }
    }
}

/// A completed job: the spec it ran plus the full measured run (phase
/// statistics, checksums, and the unified metrics snapshot).
#[derive(Clone, Debug)]
pub struct JobResult {
    /// What ran.
    pub spec: JobSpec,
    /// What was measured.
    pub run: BenchRun,
}

/// Runs one job on a fresh kernel/machine, optionally streaming events
/// into `sink` (preceded by the historical `run start:` marker).
///
/// # Errors
///
/// Returns the compile/OS error rendered as a string (job context is
/// added by the callers).
pub fn run_spec_with_sink(spec: &JobSpec, sink: Option<SharedSink>) -> Result<JobResult, String> {
    run_spec_with_config(spec, spec.machine_config(), sink)
}

/// As [`run_spec_with_sink`] with an explicit machine configuration —
/// the hook the throughput harnesses use to pin simulator-internal
/// knobs (like [`MachineConfig::block_cache`]) that are not part of the
/// experiment matrix.
///
/// # Errors
///
/// As [`run_spec_with_sink`].
pub fn run_spec_with_config(
    spec: &JobSpec,
    cfg: MachineConfig,
    sink: Option<SharedSink>,
) -> Result<JobResult, String> {
    if sink.is_some() {
        marker(&sink, &format!("run start: {}", spec.marker_label()));
    }
    let strategy = spec.strategy.strategy();
    let module = spec.workload.module(&spec.params);
    let mut session = BenchSession::start_module(&module, strategy.as_ref(), cfg, sink)
        .map_err(|e| e.to_string())?;
    let run = session.run_to_completion().map_err(|e| e.to_string())?;
    Ok(JobResult { spec: *spec, run })
}

/// The phase id at which warm-start snapshots are taken. Every Olden
/// workload issues `SYS_PHASE 2` when its computation phase begins, so
/// a snapshot here has compilation, exec, and allocation already paid
/// for — the warm pass replays only the computation.
pub const WARM_SNAPSHOT_PHASE: u64 = 2;

/// Cold run of one job that *also* captures the warm-start snapshot at
/// the phase-2 (allocation → computation) boundary. Returns the full
/// cold result plus the snapshot, or `None` if the workload exited
/// before ever reaching the phase (the result is then complete anyway).
///
/// # Errors
///
/// As [`run_spec_with_config`].
pub fn run_spec_split(
    spec: &JobSpec,
    cfg: MachineConfig,
) -> Result<(JobResult, Option<cheri_snap::Snapshot>), String> {
    run_spec_split_spanned(spec, cfg, &mut |_, _| {})
}

/// As [`run_spec_split`], invoking `span(phase, is_begin)` around the
/// run's phases — `"boot"` covers module start through the phase-2
/// boundary, `"simulate"` the measured remainder. Ends are emitted on
/// error paths too, so a span stream built from the hook always
/// balances. The unspanned form delegates here with a no-op hook: there
/// is one execution path, observed or not, which is what keeps
/// telemetry out of the byte-identity argument.
///
/// # Errors
///
/// As [`run_spec_with_config`].
pub fn run_spec_split_spanned(
    spec: &JobSpec,
    cfg: MachineConfig,
    span: &mut dyn FnMut(&'static str, bool),
) -> Result<(JobResult, Option<cheri_snap::Snapshot>), String> {
    let strategy = spec.strategy.strategy();
    let module = spec.workload.module(&spec.params);
    span("boot", true);
    let booted = BenchSession::start_module(&module, strategy.as_ref(), cfg, None)
        .map_err(|e| e.to_string())
        .and_then(|mut session| {
            let early = session.run_until_phase(WARM_SNAPSHOT_PHASE).map_err(|e| e.to_string())?;
            Ok((session, early))
        });
    span("boot", false);
    let (mut session, early) = booted?;
    match early {
        Some(run) => Ok((JobResult { spec: *spec, run }, None)),
        None => {
            let snap = session.snapshot();
            span("simulate", true);
            let run = session.run_to_completion().map_err(|e| e.to_string());
            span("simulate", false);
            Ok((JobResult { spec: *spec, run: run? }, Some(snap)))
        }
    }
}

/// Warm run of one job: restores a [`run_spec_split`] snapshot and runs
/// the remainder. The result must be byte-identical to the cold run the
/// snapshot came from — `xsweep --warm` asserts this in-process.
///
/// # Errors
///
/// As [`run_spec_with_config`], plus snapshot-restore failures.
pub fn run_spec_resume(
    spec: &JobSpec,
    snap: &cheri_snap::Snapshot,
    block_cache: bool,
) -> Result<JobResult, String> {
    run_spec_resume_spanned(spec, snap, block_cache, &mut |_, _| {})
}

/// As [`run_spec_resume`], invoking `span(phase, is_begin)` around the
/// run's phases — `"restore"` covers the snapshot restore, `"simulate"`
/// the resumed remainder. See [`run_spec_split_spanned`] for the
/// balance and single-code-path guarantees.
///
/// # Errors
///
/// As [`run_spec_resume`].
pub fn run_spec_resume_spanned(
    spec: &JobSpec,
    snap: &cheri_snap::Snapshot,
    block_cache: bool,
    span: &mut dyn FnMut(&'static str, bool),
) -> Result<JobResult, String> {
    span("restore", true);
    let restored =
        BenchSession::resume(snap, spec.strategy.name(), block_cache).map_err(|e| e.to_string());
    span("restore", false);
    let mut session = restored?;
    span("simulate", true);
    let run = session.run_to_completion().map_err(|e| e.to_string());
    span("simulate", false);
    Ok(JobResult { spec: *spec, run: run? })
}

/// Runs one job to completion and returns the result together with the
/// *final* machine+kernel snapshot — the divergence artifact written
/// under `results/` when a sweep gate or transparency assert fails.
///
/// # Errors
///
/// As [`run_spec_with_config`].
pub fn run_spec_final_snap(
    spec: &JobSpec,
    cfg: MachineConfig,
) -> Result<(JobResult, cheri_snap::Snapshot), String> {
    let strategy = spec.strategy.strategy();
    let module = spec.workload.module(&spec.params);
    let mut session = BenchSession::start_module(&module, strategy.as_ref(), cfg, None)
        .map_err(|e| e.to_string())?;
    let run = session.run_to_completion().map_err(|e| e.to_string())?;
    let snap = session.snapshot();
    Ok((JobResult { spec: *spec, run }, snap))
}

/// Runs `specs` across `threads` worker threads (each job owns its own
/// machine) and returns results in spec order, independent of thread
/// count and scheduling.
///
/// # Panics
///
/// Panics with the job key if any job fails — a failed run on the
/// canonical matrix is a harness bug, not a reportable datum.
#[must_use]
pub fn run_specs(specs: &[JobSpec], threads: usize) -> Vec<JobResult> {
    engine::run_indexed(specs.len(), threads, |i| {
        let spec = &specs[i];
        run_spec_with_sink(spec, None).unwrap_or_else(|e| panic!("{}: {e}", spec.key()))
    })
}

/// As [`run_specs`], but with the simulator's predecoded block cache
/// forced on or off (instead of [`MachineConfig::default`]'s
/// environment-driven setting). The block cache is architecturally
/// transparent, so results must not depend on `enabled` — `xsweep
/// --perf` runs both and insists the reports are identical.
///
/// # Panics
///
/// As [`run_specs`].
#[must_use]
pub fn run_specs_block_cache(specs: &[JobSpec], threads: usize, enabled: bool) -> Vec<JobResult> {
    engine::run_indexed(specs.len(), threads, |i| {
        let spec = &specs[i];
        let cfg = MachineConfig { block_cache: enabled, ..spec.machine_config() };
        run_spec_with_config(spec, cfg, None).unwrap_or_else(|e| panic!("{}: {e}", spec.key()))
    })
}

/// Runs one job to completion with a [`cheri_prof::Profiler`] attached
/// (symbolized, covering the whole run), returning the result plus the
/// finished profile. Profiling is observational only, so the
/// [`JobResult`] must be byte-identical to an unprofiled run of the
/// same spec — `xsweep --prof` runs both and asserts exactly that.
///
/// # Errors
///
/// As [`run_spec_with_config`].
pub fn run_spec_profiled(
    spec: &JobSpec,
    cfg: MachineConfig,
) -> Result<(JobResult, cheri_prof::ProfileReport), String> {
    let strategy = spec.strategy.strategy();
    let module = spec.workload.module(&spec.params);
    let mut session = BenchSession::start_module_profiled(&module, strategy.as_ref(), cfg, None)
        .map_err(|e| e.to_string())?;
    let run = session.run_to_completion().map_err(|e| e.to_string())?;
    let profile = session.take_profile().ok_or("profiled session lost its profiler")?;
    Ok((JobResult { spec: *spec, run }, profile))
}

/// As [`run_specs`], but every job runs with a profiler attached;
/// returns results in spec order, each with its profile.
///
/// # Panics
///
/// As [`run_specs`].
#[must_use]
pub fn run_specs_profiled(
    specs: &[JobSpec],
    threads: usize,
) -> Vec<(JobResult, cheri_prof::ProfileReport)> {
    engine::run_indexed(specs.len(), threads, |i| {
        let spec = &specs[i];
        run_spec_profiled(spec, spec.machine_config())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.key()))
    })
}

/// Runs `specs` serially on the calling thread, streaming every event
/// of every run into `sink` with one marker per job — the `--trace-out`
/// path of the figure harnesses. Serial because the event stream is one
/// ordered file.
///
/// # Panics
///
/// As [`run_specs`].
#[must_use]
pub fn run_specs_traced(specs: &[JobSpec], sink: &SharedSink) -> Vec<JobResult> {
    specs
        .iter()
        .map(|spec| {
            run_spec_with_sink(spec, Some(sink.clone()))
                .unwrap_or_else(|e| panic!("{}: {e}", spec.key()))
        })
        .collect()
}

/// The `xsweep` problem-size / matrix-density presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: scaled parameters, default tag cache only (the
    /// `sweep-gate` matrix).
    Smoke,
    /// The default: medium parameters, tag-cache axis on capability
    /// strategies.
    Full,
    /// The paper's parameters (minutes of host time per job).
    Paper,
}

impl Profile {
    /// The profile's name as spelled on the command line.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
            Profile::Paper => "paper",
        }
    }

    /// Parses a `--profile` argument.
    #[must_use]
    pub fn parse(name: &str) -> Option<Profile> {
        Some(match name {
            "smoke" => Profile::Smoke,
            "full" => Profile::Full,
            "paper" => Profile::Paper,
            _ => return None,
        })
    }

    /// The problem sizes this profile runs.
    #[must_use]
    pub fn params(self) -> OldenParams {
        match self {
            Profile::Smoke => OldenParams::scaled(),
            Profile::Full => OldenParams::medium(),
            Profile::Paper => OldenParams::paper(),
        }
    }

    /// The tag-cache axis applied to capability strategies.
    #[must_use]
    pub fn tag_cache_axis(self) -> &'static [usize] {
        match self {
            Profile::Smoke => &[DEFAULT_TAG_CACHE_KB],
            Profile::Full | Profile::Paper => &[4, DEFAULT_TAG_CACHE_KB, 16],
        }
    }
}

/// Expands a profile into the full experiment matrix: workload ×
/// strategy, with the tag-cache axis applied to capability strategies
/// (non-capability code never touches the tag controller, so extra
/// tag-cache points would measure nothing).
#[must_use]
pub fn profile_matrix(profile: Profile) -> Vec<JobSpec> {
    let params = profile.params();
    let mut specs = Vec::new();
    for workload in Workload::ALL {
        for strategy in StrategyKind::ALL {
            let tag_axis: &[usize] = if strategy.is_capability() {
                profile.tag_cache_axis()
            } else {
                &[DEFAULT_TAG_CACHE_KB]
            };
            for &tag_cache_kb in tag_axis {
                specs.push(JobSpec { workload, strategy, tag_cache_kb, params, variant: None });
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn strategy_names_roundtrip() {
        for s in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(s.name()), Some(s));
            assert_eq!(s.strategy().name(), s.name());
        }
        assert_eq!(StrategyKind::parse("c128"), Some(StrategyKind::Cheri128));
        assert_eq!(StrategyKind::parse("bogus"), None);
    }

    #[test]
    fn smoke_matrix_shape() {
        let specs = profile_matrix(Profile::Smoke);
        // 6 workloads × (3 non-cap + 2 cap × 1 tag size).
        assert_eq!(specs.len(), 30);
        let keys: BTreeSet<String> = specs.iter().map(JobSpec::key).collect();
        assert_eq!(keys.len(), specs.len(), "job keys must be unique");
        for w in ["vmloop", "allocstress"] {
            assert!(keys.iter().any(|k| k.starts_with(w)), "{w} missing from the matrix");
        }
    }

    #[test]
    fn full_matrix_shape() {
        let specs = profile_matrix(Profile::Full);
        // 6 workloads × (3 non-cap + 2 cap × 3 tag sizes).
        assert_eq!(specs.len(), 54);
        assert!(specs.iter().any(|s| s.tag_cache_kb == 4 && s.strategy.is_capability()));
        assert!(!specs.iter().any(|s| s.tag_cache_kb != 8 && !s.strategy.is_capability()));
    }

    #[test]
    fn spec_key_and_marker_format() {
        let mut spec =
            JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, OldenParams::scaled());
        assert_eq!(spec.key(), "treeadd/cheri/tag8");
        assert_eq!(spec.marker_label(), "treeadd/cheri");
        spec.variant = Some(12);
        assert_eq!(spec.key(), "treeadd/cheri/tag8/p12");
        assert_eq!(spec.marker_label(), "treeadd/cheri/12");
    }

    #[test]
    fn from_parts_matches_direct_construction() {
        let p = OldenParams::scaled();
        let spec = JobSpec::from_parts("treeadd", "cheri", 8, p).unwrap();
        assert_eq!(spec.key(), "treeadd/cheri/tag8");
        // Aliases resolve to the same spec as canonical names.
        let alias = JobSpec::from_parts("treeadd", "c256", 8, p).unwrap();
        assert_eq!(alias.canonical_json(), spec.canonical_json());
        // The runtime-system workloads are first-class citizens.
        let vm = JobSpec::from_parts("vmloop", "cheri128", 8, p).unwrap();
        assert_eq!(vm.key(), "vmloop/cheri128/tag8");
        let al = JobSpec::from_parts("allocstress", "mips", 8, p).unwrap();
        assert_eq!(al.key(), "allocstress/mips/tag8");
        assert!(JobSpec::from_parts("nosuch", "cheri", 8, p).is_none());
        assert!(JobSpec::from_parts("treeadd", "nosuch", 8, p).is_none());
    }

    #[test]
    fn canonical_json_covers_every_field() {
        let p = OldenParams::scaled();
        let base = JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, p);
        let canon = base.canonical_json();
        // Stable under re-serialization.
        assert_eq!(base.canonical_json(), canon);
        // Every single-field change shows up.
        let variants = [
            JobSpec { workload: Workload::Mst, ..base },
            JobSpec { workload: Workload::Vmloop, ..base },
            JobSpec { strategy: StrategyKind::Cheri128, ..base },
            JobSpec { tag_cache_kb: 16, ..base },
            JobSpec { variant: Some(3), ..base },
            JobSpec { params: OldenParams { treeadd_depth: p.treeadd_depth + 1, ..p }, ..base },
            JobSpec { params: OldenParams { vm_sort: p.vm_sort + 1, ..p }, ..base },
            JobSpec { params: OldenParams { alloc_slots: p.alloc_slots + 1, ..p }, ..base },
        ];
        for v in variants {
            assert_ne!(v.canonical_json(), canon, "{v:?} must change the canonical form");
        }
        // The embedded params object is exactly the params codec's
        // canonical form, so the two cannot drift.
        assert!(canon.contains(&p.canonical_json()));
    }

    #[test]
    fn machine_config_follows_strategy() {
        use beri_sim::machine::CapFormat;
        let p = OldenParams::scaled();
        let c128 = JobSpec::new(Workload::Treeadd, StrategyKind::Cheri128, p).machine_config();
        assert_eq!(c128.cap_format, CapFormat::C128);
        let c256 = JobSpec::new(Workload::Treeadd, StrategyKind::Cheri256, p).machine_config();
        assert_eq!(c256.cap_format, CapFormat::C256);
        let spec =
            JobSpec { tag_cache_kb: 64, ..JobSpec::new(Workload::Mst, StrategyKind::Cheri256, p) };
        assert_eq!(spec.machine_config().tag_cache_bytes, 64 * 1024);
    }

    #[test]
    fn figure4_order_is_baseline_first() {
        assert_eq!(FIGURE4_STRATEGIES[0], StrategyKind::Mips);
        assert_eq!(FIGURE4_STRATEGIES[1], StrategyKind::Ccured);
        assert_eq!(FIGURE4_STRATEGIES[2], StrategyKind::Cheri256);
    }

    #[test]
    fn heapsize_sweep_covers_all_workloads() {
        for workload in Workload::ALL {
            let points = heapsize_sweep(workload);
            assert!(points.len() >= 6, "{}: too few sweep points", workload.name());
        }
    }
}
