//! # cheri-sweep — the parallel experiment-sweep engine
//!
//! The paper's evaluation is a matrix: workload × pointer strategy ×
//! capability width × tag-cache configuration. This crate owns that
//! matrix end to end:
//!
//! * [`matrix`] — the canonical axes ([`StrategyKind`], the per-figure
//!   strategy lists, [`heapsize_sweep`], [`profile_matrix`]) and the
//!   job runner ([`run_specs`]), so every harness iterates the same
//!   lists in the same order;
//! * [`engine`] — a deterministic work-stealing executor: each job owns
//!   its own `Machine`, workers steal indices from an atomic cursor,
//!   and results are reassembled in index order, so output is
//!   bit-identical at any `--jobs` count;
//! * [`report`] — the integer-only JSON sweep report
//!   (`results/sweep.json`), every reproduced number as a named,
//!   versioned datum;
//! * [`check`] — the CI regression gate: report-vs-baseline diffing
//!   under a per-metric absolute/relative tolerance policy.
//!
//! The `xsweep` binary in `cheri-bench` is the command-line front end;
//! the figure/ablation harnesses are thin text views over the same job
//! results.

pub mod check;
pub mod engine;
pub mod matrix;
pub mod report;

pub use check::{check_reports, comparisons, render_drifts, tolerance_for, Drift, Tolerance};
pub use engine::{default_threads, run_indexed};
pub use matrix::{
    heapsize_sweep, profile_matrix, run_spec_final_snap, run_spec_profiled, run_spec_resume,
    run_spec_resume_spanned, run_spec_split, run_spec_split_spanned, run_spec_with_config,
    run_spec_with_sink, run_specs, run_specs_block_cache, run_specs_profiled, run_specs_traced,
    JobResult, JobSpec, Profile, StrategyKind, CAPWIDTH_STRATEGIES, DEFAULT_TAG_CACHE_KB,
    ELISION_STRATEGIES, FIGURE4_STRATEGIES, HEAPSIZE_STRATEGIES, TAG_ABLATION_KB,
    WARM_SNAPSHOT_PHASE,
};
pub use report::{hit_rate_bp, JobRecord, SweepReport, ARCH_COUNTERS, SCHEMA_VERSION};

/// Runs a whole profile at the given thread count and returns the
/// report (the library form of `xsweep`'s default mode).
#[must_use]
pub fn run_matrix(profile: Profile, threads: usize) -> SweepReport {
    let specs = profile_matrix(profile);
    let results = run_specs(&specs, threads);
    SweepReport::from_results(profile.name(), &results)
}
