//! Edge-case tests for the specification: 128-bit representability at
//! boundary lengths, `CSetLen`/`CIncBase` against unrepresentable
//! regions, and exception-priority ordering when an access violates
//! several rules at once.

use cheri_spec::cap::{exc, pack_cause, perms};
use cheri_spec::machine::{mips, SpecEvent, SpecFormat, SpecMachine};
use cheri_spec::{decompress128, pack128, representable128, required_alignment128, SpecCap};

fn region(base: u64, length: u64) -> SpecCap {
    SpecCap { tag: true, perms: perms::ALL, reserved: 0, base, length }
}

// --- 128-bit representability at the mantissa boundary ----------------

#[test]
fn alignment_steps_at_every_mantissa_boundary() {
    // For lengths of n significant bits, the required alignment is
    // 2^(n-18) once n exceeds the 18-bit mantissa. Walk several
    // boundaries exactly.
    for extra in 1..=10u32 {
        let bits = 18 + extra;
        let align = 1u64 << extra;
        // Every length with exactly `bits` significant bits shares one
        // alignment; the next power of two doubles it.
        assert_eq!(required_alignment128(1 << (bits - 1)), align, "bits={bits}");
        assert_eq!(required_alignment128((1 << bits) - 1), align, "bits={bits}");
        assert_eq!(required_alignment128(1 << bits), align * 2, "bits={bits}");
    }
}

#[test]
fn boundary_lengths_round_trip_exactly() {
    // Lengths exactly at the mantissa edge survive compression with no
    // loss when the alignment rule is honoured.
    for &len in &[(1u64 << 18) - 1, 1 << 18, (1 << 19) - 2, 1 << 24, (1 << 30) - (1 << 12)] {
        let align = required_alignment128(len);
        if len % align != 0 {
            continue;
        }
        let c = region(align * 3, len);
        assert!(representable128(&c), "len={len:#x}");
        let back = decompress128(&pack128(&c), true);
        assert_eq!((back.base, back.length), (c.base, c.length), "len={len:#x}");
    }
}

#[test]
fn misaligned_boundary_lengths_are_rejected() {
    // One byte past the mantissa: length 2^18 + 1 can never be stored
    // (odd length, 2-byte alignment required)...
    assert!(!representable128(&region(0, (1 << 18) + 1)));
    // ...and 2^18 + 2 only from an even base.
    assert!(!representable128(&region(1, (1 << 18) + 2)));
    assert!(representable128(&region(2, (1 << 18) + 2)));
}

#[test]
fn address_ceiling_is_inclusive_at_the_top() {
    // A region ending exactly at 2^40 is representable; one byte past
    // is not, and neither is a base at the ceiling.
    assert!(representable128(&region((1 << 40) - 16, 16)));
    assert!(!representable128(&region((1 << 40) - 16, 32)));
    assert!(!representable128(&region(1 << 40, 0)));
}

// --- CSetBounds-style derivation on unrepresentable regions -----------

#[test]
fn csc_of_unrepresentable_region_is_an_alignment_fault() {
    let mut m = SpecMachine::new(SpecFormat::C128, 1 << 20);
    // CIncBase c1, c0, $8 ; CSetLen c1, c1, $9 ; CSC c1, c0, $10, 0
    let cop2 = |sub: u32, r1: u32, r2: u32, r3: u32| {
        (0x12 << 26) | (sub << 21) | (r1 << 16) | (r2 << 11) | (r3 << 6)
    };
    for (i, w) in [cop2(5, 1, 0, 8), cop2(6, 1, 1, 9), cop2(14, 1, 0, 10)].into_iter().enumerate() {
        m.poke_u32(0x1000 + 4 * i as u64, w);
    }
    m.jump_to(0x1000);
    m.gpr[8] = 0x8001; // odd base
    m.gpr[9] = (1 << 18) + 2; // needs 2-byte alignment
    m.gpr[10] = 0x4000;
    assert_eq!(m.step(), SpecEvent::Retired);
    assert_eq!(m.step(), SpecEvent::Retired);
    // The derived capability exists in the register file (derivation is
    // exact there), but storing it through the 128-bit format faults.
    assert_eq!(m.caps[1].base, 0x8001);
    assert_eq!(m.step(), SpecEvent::Trap { code: mips::CAP });
    assert_eq!(m.cp0.capcause, pack_cause(exc::ALIGNMENT, 1));
}

#[test]
fn representable_csc_with_same_shape_succeeds() {
    let mut m = SpecMachine::new(SpecFormat::C128, 1 << 20);
    let cop2 = |sub: u32, r1: u32, r2: u32, r3: u32| {
        (0x12 << 26) | (sub << 21) | (r1 << 16) | (r2 << 11) | (r3 << 6)
    };
    for (i, w) in [cop2(5, 1, 0, 8), cop2(6, 1, 1, 9), cop2(14, 1, 0, 10), cop2(13, 2, 0, 10)]
        .into_iter()
        .enumerate()
    {
        m.poke_u32(0x1000 + 4 * i as u64, w);
    }
    m.jump_to(0x1000);
    m.gpr[8] = 0x8000;
    m.gpr[9] = (1 << 18) + 2;
    m.gpr[10] = 0x4000;
    for _ in 0..4 {
        assert_eq!(m.step(), SpecEvent::Retired);
    }
    assert!(m.caps[2].tag);
    assert_eq!(m.caps[2].base, 0x8000);
    assert_eq!(m.caps[2].length, (1 << 18) + 2);
}

// --- exception priority with multiple simultaneous faults -------------

/// `CLB` through an untagged, permissionless, out-of-bounds capability:
/// the tag check wins.
#[test]
fn tag_beats_permission_beats_length() {
    let everything_wrong = SpecCap { tag: false, perms: 0, reserved: 0, base: 0, length: 0 };
    assert_eq!(everything_wrong.check_data(0x9999, 1, false), Err(exc::TAG));
    let tagged = SpecCap { tag: true, ..everything_wrong };
    assert_eq!(tagged.check_data(0x9999, 1, false), Err(exc::PERMIT_LOAD));
    let with_perm = SpecCap { perms: perms::LOAD, ..tagged };
    assert_eq!(with_perm.check_data(0x9999, 1, false), Err(exc::LENGTH));
}

/// A misaligned *and* capability-violating scalar access: address error
/// (the AGU) outranks the capability check (the coprocessor), exactly
/// as the simulator orders it.
#[test]
fn alignment_outranks_capability_violation() {
    let mut m = SpecMachine::new(SpecFormat::C256, 1 << 20);
    // CClearTag c1, c0 ; CLW $2, $1(c1) with $1 holding a misaligned
    // address.
    let clear = (0x12 << 26) | (7 << 21) | (1 << 16);
    let clw = (0x12 << 26) | (19 << 21) | (2 << 16) | (1 << 11) | (1 << 6);
    m.poke_u32(0x1000, clear);
    m.poke_u32(0x1004, clw);
    m.jump_to(0x1000);
    m.gpr[1] = 0x8003;
    assert_eq!(m.step(), SpecEvent::Retired);
    assert_eq!(m.step(), SpecEvent::Trap { code: mips::ADDR_LOAD });
    assert_eq!(m.cp0.badvaddr, 0x8003, "BadVAddr records the faulting address");
}

/// Both halves wrong on a capability store: the capability permission
/// check fires before the alignment check inside `check_cap` would.
#[test]
fn cap_store_priority_permission_then_alignment_then_length() {
    let c = SpecCap { tag: true, perms: perms::STORE, reserved: 0, base: 0x8000, length: 0x100 };
    // No STORE_CAP: permission first, even though also misaligned and
    // out of bounds.
    assert_eq!(c.check_cap(0x9001, true, 32), Err(exc::PERMIT_STORE_CAP));
    let c = SpecCap { perms: perms::STORE_CAP, ..c };
    assert_eq!(c.check_cap(0x9001, true, 32), Err(exc::ALIGNMENT));
    assert_eq!(c.check_cap(0x9000, true, 32), Err(exc::LENGTH));
    assert_eq!(c.check_cap(0x8020, true, 32), Ok(()));
}

/// A PCC fetch fault in a delay slot still reports the branch PC in
/// `EPC` with the BD bit set, and names register 0xff in `capcause`.
#[test]
fn pcc_fault_in_delay_slot() {
    let mut m = SpecMachine::new(SpecFormat::C256, 1 << 20);
    let beq = (0x04 << 26) | 0x100u32; // branch far forward
    m.poke_u32(0x1000, beq);
    m.jump_to(0x1000);
    m.pcc = SpecCap { tag: true, perms: perms::ALL, reserved: 0, base: 0x1000, length: 4 };
    assert_eq!(m.step(), SpecEvent::Retired);
    // The delay slot at 0x1004 is outside PCC.
    assert_eq!(m.step(), SpecEvent::Trap { code: mips::CAP });
    assert_eq!(m.cp0.epc, 0x1000, "EPC points at the branch");
    assert_eq!(m.cp0.cause & (1 << 31), 1 << 31, "BD bit set");
    assert_eq!(m.cp0.capcause, pack_cause(exc::LENGTH, exc::PCC_REG));
}
