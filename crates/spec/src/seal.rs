//! Sealed capabilities (Section 3.6), specified executably.
//!
//! The paper's object-capability mechanism: `CSealCode`/`CSealData`
//! mint a *sealed* (non-dereferenceable, non-modifiable) pair tied to an
//! object type `otype`, and `CUnseal` redeems a sealed data capability
//! against an authorizing code capability whose bounds span the type.
//! The simulator does not implement these instructions; this module
//! gives the mechanism an executable definition with the same
//! monotonicity flavour as the rest of the ISA, so a future sim-side
//! implementation has an oracle ready.
//!
//! Model notes, straight from the paper:
//!
//! * the object type is drawn from the *address space* — here the base
//!   of the sealing code capability — so type allocation needs no new
//!   namespace, just address-space management;
//! * a sealed capability keeps its bounds and permissions but cannot be
//!   dereferenced or modified; only `CUnseal` (checked) or `CCall`'s
//!   trap handler may use it;
//! * unsealing requires the authorizing capability to actually span the
//!   otype and carry [`crate::cap::perms::SEAL`].

use crate::cap::{exc, perms, SpecCap};

/// A capability extended with the paper's seal state. The base
/// [`SpecCap`] stays unsealed-only so the lockstep machine can't
/// accidentally accept sealed values; sealing wraps it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealedCap {
    /// The underlying capability (bounds/perms/tag as when sealed).
    pub inner: SpecCap,
    /// The object type, or `None` while unsealed.
    pub otype: Option<u64>,
}

impl SealedCap {
    /// Wraps an ordinary capability, unsealed.
    #[must_use]
    pub fn unsealed(inner: SpecCap) -> SealedCap {
        SealedCap { inner, otype: None }
    }

    /// Whether the capability is sealed.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.otype.is_some()
    }
}

/// `CSealCode`: seals an executable capability with an otype drawn from
/// its *own* base address, producing the code half of an object pair.
///
/// # Errors
///
/// Capability exception codes: tag violation for an untagged source,
/// permit-execute for a non-executable one, and a seal violation if the
/// source is already sealed.
pub fn seal_code(code: &SealedCap) -> Result<SealedCap, u8> {
    if !code.inner.tag {
        return Err(exc::TAG);
    }
    if code.is_sealed() {
        return Err(exc::SEAL);
    }
    if code.inner.perms & perms::EXECUTE == 0 {
        return Err(exc::PERMIT_EXECUTE);
    }
    Ok(SealedCap { inner: code.inner, otype: Some(code.inner.base) })
}

/// `CSealData`: seals a data capability with the otype named by an
/// authorizing code capability, which must hold [`perms::SEAL`] and span
/// the otype address within its bounds.
///
/// # Errors
///
/// Capability exception codes, highest priority first: tag violation
/// (either operand), seal violation (either already sealed),
/// permit-seal, then length if `otype` falls outside the authorizer.
pub fn seal_data(data: &SealedCap, auth: &SealedCap, otype: u64) -> Result<SealedCap, u8> {
    if !data.inner.tag || !auth.inner.tag {
        return Err(exc::TAG);
    }
    if data.is_sealed() || auth.is_sealed() {
        return Err(exc::SEAL);
    }
    if auth.inner.perms & perms::SEAL == 0 {
        return Err(exc::PERMIT_SEAL);
    }
    if !auth.inner.in_bounds(otype, 1) {
        return Err(exc::LENGTH);
    }
    Ok(SealedCap { inner: data.inner, otype: Some(otype) })
}

/// `CUnseal`: redeems a sealed capability against an authorizing
/// capability that spans its otype and holds [`perms::SEAL`]. The result
/// is the original unsealed capability — unsealing never amplifies.
///
/// # Errors
///
/// Capability exception codes: tag violation, seal violation if the
/// operand is not actually sealed (or the authorizer is), permit-seal,
/// and length if the otype is outside the authorizer's bounds.
pub fn unseal(sealed: &SealedCap, auth: &SealedCap) -> Result<SealedCap, u8> {
    if !sealed.inner.tag || !auth.inner.tag {
        return Err(exc::TAG);
    }
    let Some(otype) = sealed.otype else {
        return Err(exc::SEAL);
    };
    if auth.is_sealed() {
        return Err(exc::SEAL);
    }
    if auth.inner.perms & perms::SEAL == 0 {
        return Err(exc::PERMIT_SEAL);
    }
    if !auth.inner.in_bounds(otype, 1) {
        return Err(exc::LENGTH);
    }
    Ok(SealedCap::unsealed(sealed.inner))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(base: u64, length: u64, p: u32) -> SealedCap {
        SealedCap::unsealed(SpecCap { tag: true, perms: p, reserved: 0, base, length })
    }

    #[test]
    fn code_seals_to_its_own_base() {
        let code = cap(0x4000, 0x100, perms::EXECUTE);
        let sealed = seal_code(&code).unwrap();
        assert_eq!(sealed.otype, Some(0x4000));
        assert_eq!(sealed.inner, code.inner);
    }

    #[test]
    fn data_seal_and_unseal_round_trip() {
        let auth = cap(0x4000, 0x100, perms::SEAL);
        let data = cap(0x9000, 0x40, perms::LOAD | perms::STORE);
        let sealed = seal_data(&data, &auth, 0x4010).unwrap();
        assert!(sealed.is_sealed());
        let back = unseal(&sealed, &auth).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unseal_requires_spanning_authorizer() {
        let auth = cap(0x4000, 0x100, perms::SEAL);
        let data = cap(0x9000, 0x40, perms::LOAD);
        let sealed = seal_data(&data, &auth, 0x4010).unwrap();
        let narrow = cap(0x4020, 0x10, perms::SEAL);
        assert_eq!(unseal(&sealed, &narrow), Err(exc::LENGTH));
        let no_perm = cap(0x4000, 0x100, perms::LOAD);
        assert_eq!(unseal(&sealed, &no_perm), Err(exc::PERMIT_SEAL));
    }

    #[test]
    fn sealing_is_not_idempotent() {
        let auth = cap(0x4000, 0x100, perms::SEAL);
        let data = cap(0x9000, 0x40, perms::LOAD);
        let sealed = seal_data(&data, &auth, 0x4010).unwrap();
        assert_eq!(seal_data(&sealed, &auth, 0x4010), Err(exc::SEAL));
        let code = cap(0x4000, 0x100, perms::EXECUTE);
        let sealed_code = seal_code(&code).unwrap();
        assert_eq!(seal_code(&sealed_code), Err(exc::SEAL));
    }

    #[test]
    fn untagged_operands_fault_first() {
        let mut auth = cap(0x4000, 0x100, perms::SEAL);
        auth.inner.tag = false;
        let data = cap(0x9000, 0x40, perms::LOAD);
        assert_eq!(seal_data(&data, &auth, 0x4010), Err(exc::TAG));
    }
}
